"""Shared infrastructure for the figure-regeneration benchmarks.

Every figure/observation bench consumes the same per-(task, technique)
measurements, so the sweep runs once per pytest session and is shared.

Two modes:

* **slice mode (default)** — a stratified subset of the 80 tasks with small
  timeouts, sized to finish in minutes; regenerated figures have the same
  shape as the full run at reduced statistical weight;
* **full mode** (``REPRO_BENCH_FULL=1``) — all 80 tasks with the standard
  timeouts; this is what EXPERIMENTS.md records.

Environment knobs: ``REPRO_BENCH_FULL``, ``REPRO_BENCH_EASY_TIMEOUT``
(default 3 s), ``REPRO_BENCH_HARD_TIMEOUT`` (default 8 s).
"""

from __future__ import annotations

import os

import pytest

from repro.benchmarks import all_tasks
from repro.experiments.runner import RunConfig, run_suite

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
EASY_TIMEOUT = float(os.environ.get("REPRO_BENCH_EASY_TIMEOUT", "3"))
HARD_TIMEOUT = float(os.environ.get("REPRO_BENCH_HARD_TIMEOUT", "8"))

#: Stratified slice: easy tasks across operator counts and feature mixes,
#: hard forum tasks, and TPC-DS tasks including one of the two-join class.
SLICE_TASKS = (
    "fe01_total_sales_per_region",
    "fe05_min_price_per_category",
    "fe09_cumulative_units_per_product",
    "fe10_salary_rank_within_dept",
    "fe17_line_revenue",
    "fe20_share_of_region_total",
    "fe23_amount_by_segment",
    "fe24_cumulative_quarterly_sales",
    "fe26_stock_value_per_category",
    "fe33_price_vs_product_peak",
    "fe36_health_program_percentage",
    "fe41_city_temp_vs_overall",
    "fh02_region_quarter_share",
    "fh04_cumulative_share_of_region",
    "fh06_weekly_weight_deviation",
    "fh07_best_subject_vs_cohort",
    "fh12_country_weight_share",
    "td01_item_cumulative_monthly_sales",
    "td07_state_profit_share",
    "td14_category_state_profit_rank",
    "td18_gap_to_best_month",
)


def bench_tasks():
    tasks = all_tasks()
    if FULL:
        return list(tasks)
    wanted = set(SLICE_TASKS)
    return [t for t in tasks if t.name in wanted]


def bench_run_config() -> RunConfig:
    return RunConfig(easy_timeout_s=EASY_TIMEOUT,
                     hard_timeout_s=HARD_TIMEOUT)


@pytest.fixture(scope="session")
def sweep_results():
    """One sweep of all three techniques over the bench task set."""
    return run_suite(bench_tasks(), ("provenance", "value", "type"),
                     bench_run_config())


@pytest.fixture(scope="session")
def provenance_results(sweep_results):
    return [r for r in sweep_results if r.technique == "provenance"]

"""Seeded large-scale inputs for the database-oracle benchmarks.

The registry tables stay at the paper's working scale (§5.1 samples
inputs down to ~20 rows), which is right for synthesis but useless for
exercising the oracle's loader and the renderer's window/join SQL at
database scale.  This module grows inputs to whatever row count the
nightly leg asks for — everything flows through
:func:`repro.util.rng.stable_rng`, so a failure reproduces from its
(rows, seed) pair alone.

Distinct from :mod:`repro.benchmarks.datagen`, which builds the small
registry tables; this file belongs to the benchmark tier and never ships
in the library.
"""

from __future__ import annotations

from repro.lang import Env
from repro.table.schema import ForeignKey
from repro.table.table import Table
from repro.util.rng import stable_rng

REGIONS = ("North", "South", "East", "West", "Central")
SEGMENTS = ("Retail", "Wholesale", "Online")


def oracle_dim_table(name: str = "regions", seed: int = 0) -> Table:
    """Small dimension table: (RegionID, Region, Segment)."""
    rng = stable_rng(f"oracle-dim:{name}", seed)
    rows = [[i, region, rng.choice(SEGMENTS)]
            for i, region in enumerate(REGIONS)]
    return Table.from_rows(name, ["RegionID", "Region", "Segment"], rows,
                           primary_key=("RegionID",))


def oracle_fact_table(rows: int, name: str = "sales", seed: int = 0,
                      dim: Table | None = None) -> Table:
    """Wide fact table: (OrderID, RegionID, Quarter, Units, Price, Flag).

    Mixes the value shapes the oracle must round-trip at scale: ints,
    floats needing tolerance, NULLs (~3% of Units), and booleans.
    """
    rng = stable_rng(f"oracle-fact:{name}", seed)
    n_regions = dim.n_rows if dim is not None else len(REGIONS)
    data = []
    for i in range(rows):
        units = None if rng.random() < 0.03 else rng.randrange(1, 500)
        data.append([i, rng.randrange(n_regions), rng.randrange(1, 5),
                     units, round(rng.uniform(0.5, 999.75), 2),
                     rng.random() < 0.5])
    fks = () if dim is None else (
        ForeignKey("RegionID", dim.name, "RegionID"),)
    return Table.from_rows(
        name, ["OrderID", "RegionID", "Quarter", "Units", "Price", "Flag"],
        data, primary_key=("OrderID",), foreign_keys=fks)


def oracle_env(rows: int, seed: int = 0) -> Env:
    """A >``rows``-row fact table plus its dimension, FK-linked."""
    dim = oracle_dim_table(seed=seed)
    fact = oracle_fact_table(rows, seed=seed, dim=dim)
    return Env.of(fact, dim)


def scale_table(table: Table, rows: int, seed: int = 0) -> Table:
    """Resample an existing table's rows (with replacement) to ``rows``.

    Value distributions per column are preserved row-wise, so plans typed
    on the original table stay typed on the scaled one.
    """
    if table.n_rows == 0:
        return table
    rng = stable_rng(f"oracle-scale:{table.name}", seed)
    data = [list(rng.choice(table.rows)) for _ in range(rows)]
    return Table.from_rows(table.name, table.columns, data,
                           primary_key=(),
                           foreign_keys=table.schema.foreign_keys)

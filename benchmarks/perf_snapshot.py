"""Write a perf-trajectory snapshot (``BENCH_<date>.json``).

Runs the micro-benchmarks — engine (columnar vs row on the
forum-easy evaluation hot path), tracking (columnar vs row provenance
tracking on provenance-heavy forum tasks), consistency (incremental
checker vs naive Definition 1 on consistency-heavy tasks), numpy
(vectorized vs pure-python columnar kernels on scaled forum-hard eval
and tracking; recorded as unavailable without NumPy), parallel
(sharded vs serial on forum-hard experiment mode), dispatch
(shared-memory handle vs pickled-table payload bytes, plus the
skewed-lane imbalance of static shard planning), serve (warm-pool
vs cold request latency on repeated-schema service traffic), pool
(thread-tier vs process-tier aggregate throughput for concurrent
CPU-bound requests) and recovery (clean vs crashed-and-replayed run of
one request, the fault-tolerance overhead) — and records their timings
plus environment
metadata as one JSON document.  The nightly
``perf.yml`` workflow uploads these as artifacts, giving the repo a
queryable performance history; ratios are recorded, never asserted
(assertion lives in the pytest benchmarks).

Usage::

    PYTHONPATH=src python benchmarks/perf_snapshot.py [--out FILE]
        [--engine-rounds N] [--tracking-rounds N] [--consistency-rounds N]
        [--numpy-rounds N] [--parallel-rounds N] [--serve-pairs N]
        [--pool-budget N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import test_consistency_speed as consistency_bench  # noqa: E402
import test_engine_speed as engine_bench  # noqa: E402
import test_numpy_speed as numpy_bench  # noqa: E402
import test_parallel_speed as parallel_bench  # noqa: E402
import test_serve_speed as serve_bench  # noqa: E402
import test_tracking_speed as tracking_bench  # noqa: E402
from repro.benchmarks import easy_tasks  # noqa: E402
from repro.engine import capabilities  # noqa: E402


def _git_commit() -> str | None:
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, timeout=10,
                             cwd=os.path.dirname(os.path.abspath(__file__)))
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        # No git, or a hung .git lock — metadata only, never fail the
        # snapshot over it.
        return None


def engine_snapshot(rounds: int) -> dict:
    tasks = [t for t in easy_tasks() if t.suite == "forum"]
    workload = [(t.env, engine_bench._candidates(t)) for t in tasks]
    row_s, columnar_s = engine_bench._measure(workload, rounds)
    return {
        "workload_queries": sum(len(qs) for _, qs in workload),
        "rounds": rounds,
        "row_ms": round(row_s * 1000, 2),
        "columnar_ms": round(columnar_s * 1000, 2),
        "speedup": round(row_s / columnar_s, 3),
    }


def tracking_snapshot(rounds: int) -> dict:
    workload = tracking_bench.tracking_workload()
    row_s, columnar_s = tracking_bench.measure(workload, rounds)
    return {
        "tasks": list(tracking_bench.TRACKING_TASKS),
        "workload_queries": sum(len(qs) for _, qs in workload),
        "rounds": rounds,
        "row_ms": round(row_s * 1000, 2),
        "columnar_ms": round(columnar_s * 1000, 2),
        "speedup": round(row_s / columnar_s, 3),
    }


def consistency_snapshot(rounds: int) -> dict:
    workload = consistency_bench.consistency_workload()
    naive_s, incremental_s = consistency_bench.measure(workload, rounds)
    return {
        "tasks": list(consistency_bench.CONSISTENCY_TASKS),
        "workload_queries": sum(len(c) for _, _, c in workload),
        "rounds": rounds,
        "naive_ms": round(naive_s * 1000, 2),
        "incremental_ms": round(incremental_s * 1000, 2),
        "speedup": round(naive_s / incremental_s, 3),
    }


def numpy_snapshot(rounds: int) -> dict:
    """NumPy vs columnar on the scaled forum-hard eval + tracking paths.

    Recorded as unavailable (rather than omitted) when NumPy is missing,
    so the trajectory shows *why* a data point is absent.
    """
    if not numpy_bench.HAVE_NUMPY:
        return {"available": False}
    workload = numpy_bench.numpy_workload()
    columnar_s, numpy_s = numpy_bench.measure(workload, rounds)
    track_columnar_s, track_numpy_s = numpy_bench.measure_tracking(
        workload, rounds)
    return {
        "available": True,
        "numpy_version": capabilities()["numpy_version"],
        "tasks": list(numpy_bench.NUMPY_TASKS),
        "scale_rows": numpy_bench.SCALE_ROWS,
        "workload_queries": sum(len(qs) for _, qs in workload),
        "rounds": rounds,
        "eval_columnar_ms": round(columnar_s * 1000, 2),
        "eval_numpy_ms": round(numpy_s * 1000, 2),
        "eval_speedup": round(columnar_s / numpy_s, 3),
        "tracking_columnar_ms": round(track_columnar_s * 1000, 2),
        "tracking_numpy_ms": round(track_numpy_s * 1000, 2),
        "tracking_speedup": round(track_columnar_s / track_numpy_s, 3),
    }


def parallel_snapshot(rounds: int) -> dict:
    tasks = parallel_bench.bench_tasks()
    serial_s, sharded_s = parallel_bench.measure(tasks, rounds)
    return {
        "tasks": [t.name for t in tasks],
        "workers": parallel_bench.WORKERS,
        "rounds": rounds,
        "serial_ms": round(serial_s * 1000, 2),
        "sharded_ms": round(sharded_s * 1000, 2),
        "speedup": round(serial_s / sharded_s, 3),
    }


def dispatch_snapshot() -> dict:
    """Shared-memory dispatch payload (pickled tables vs handle) and the
    skewed-lane imbalance of static planning — both core-count
    independent, so these trajectory points are meaningful even on the
    noisiest shared runner.  The payload reduction is the gated bar
    (``test_dispatch_payload_reduction``)."""
    from repro.benchmarks import all_tasks

    payload_task = next(t for t in all_tasks()
                        if t.name == parallel_bench.PAYLOAD_TASK)
    pickled, handle = parallel_bench.dispatch_payload_bytes(payload_task)
    skew_task = next(t for t in all_tasks()
                     if t.name == parallel_bench.SKEW_TASK)
    skew = parallel_bench.skew_measurements(skew_task)
    return {
        "payload_task": parallel_bench.PAYLOAD_TASK,
        "scale_rows": parallel_bench.PAYLOAD_SCALE_ROWS,
        "pickled_table_bytes": pickled,
        "handle_bytes": handle,
        "payload_reduction": round(pickled / handle, 2),
        "payload_bar": parallel_bench.MIN_PAYLOAD_REDUCTION,
        "skew_task": parallel_bench.SKEW_TASK,
        "skew_workers": parallel_bench.WORKERS,
        "estimated_imbalance": round(skew["estimated_imbalance"], 3),
        "actual_imbalance": round(skew["actual_imbalance"], 3),
        "per_shard_visited": skew["per_shard_visited"],
    }


def serve_snapshot(pairs: int) -> dict:
    """Warm-pool request latency on repeated-schema service traffic.

    The ratio is the gated bar in ``test_serve_speed`` (p50 warm ≤ 0.5×
    p50 cold); here it is recorded as a trajectory point alongside the
    cross-worker sub-plan hit count.
    """
    m = serve_bench.serve_measurements(pairs)
    return {
        "task": serve_bench.SERVE_TASK,
        "pairs": pairs,
        "cold_p50_ms": round(m["cold_p50_s"] * 1000, 2),
        "warm_p50_ms": round(m["warm_p50_s"] * 1000, 2),
        "warm_ratio": round(m["warm_p50_s"] / m["cold_p50_s"], 3),
        "warm_ratio_bar": serve_bench.MAX_WARM_RATIO,
        "cross_request_hits": m["cross_request_hits"],
    }


def pool_snapshot(budget: int) -> dict:
    """Thread-tier vs process-tier aggregate throughput for concurrent
    CPU-bound requests — the process tier's reason to exist, recorded
    with the core count so sub-4-core trajectory points (where the GIL
    comparison is meaningless and the pytest gate skips) are legible.
    """
    cores = os.cpu_count() or 1
    m = serve_bench.concurrency_measurements(budget)
    return {
        "task": serve_bench.CONCURRENT_TASK,
        "requests": m["requests"],
        "budget": budget,
        "cpu_cores": cores,
        "threads_pops_per_s": round(m["threads_pops_per_s"], 1),
        "processes_pops_per_s": round(m["processes_pops_per_s"], 1),
        "process_speedup": round(m["process_speedup"], 3),
        "speedup_bar": serve_bench.MIN_PROCESS_SPEEDUP,
        "bar_gated": cores >= serve_bench.CONCURRENT_REQUESTS,
    }


def recovery_snapshot() -> dict:
    """Crash-recovery overhead: the same request clean vs under an
    injected crash-before-first-slice (supervised restart + checkpoint
    replay), results asserted identical inside the measurement.  Wall
    clock is platform noise; the restart/death counters are the
    behavioral trajectory point."""
    m = serve_bench.recovery_measurements()
    return {
        "task": serve_bench.SERVE_TASK,
        "clean_ms": round(m["clean_s"] * 1000, 2),
        "crashed_ms": round(m["crashed_s"] * 1000, 2),
        "recovery_overhead_ms": round(m["recovery_overhead_s"] * 1000, 2),
        "restarts": m["restarts"],
        "worker_deaths": m["worker_deaths"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="perf_snapshot")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<date>.json)")
    parser.add_argument("--engine-rounds", type=int, default=3)
    parser.add_argument("--tracking-rounds", type=int, default=3)
    parser.add_argument("--consistency-rounds", type=int, default=3)
    parser.add_argument("--numpy-rounds", type=int, default=3)
    parser.add_argument("--parallel-rounds", type=int, default=2)
    parser.add_argument("--serve-pairs", type=int,
                        default=serve_bench.PAIRS)
    parser.add_argument("--pool-budget", type=int,
                        default=serve_bench.CONCURRENT_BUDGET)
    args = parser.parse_args(argv)

    date = time.strftime("%Y-%m-%d", time.gmtime())
    out_path = args.out or f"BENCH_{date}.json"

    snapshot = {
        "date": date,
        "commit": _git_commit(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_cores": parallel_bench.cpu_cores(),
        "engine": engine_snapshot(args.engine_rounds),
        "tracking": tracking_snapshot(args.tracking_rounds),
        "consistency": consistency_snapshot(args.consistency_rounds),
        "numpy": numpy_snapshot(args.numpy_rounds),
        "parallel": parallel_snapshot(args.parallel_rounds),
        "dispatch": dispatch_snapshot(),
        "serve": serve_snapshot(args.serve_pairs),
        "pool": pool_snapshot(args.pool_budget),
        "recovery": recovery_snapshot(),
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")
    print(json.dumps(snapshot, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation: the contribution of each pruning component (ours, beyond the
paper's figures — DESIGN.md's design-choice index).

Components toggled on the provenance abstraction:

* target-column refinement (abstraction uses the instantiated aggregation
  column, §4's "the abstraction is stronger when more parameters are
  instantiated");
* value shadows (complete demo cells must match known cell values);
* head typing (demo cells only embed into columns whose producer can build
  their head function kind);
* the expression-shape skeleton precheck.

Each variant runs the running example plus a hard task; the full
configuration must dominate every ablated one on queries visited.
"""

from __future__ import annotations

import pytest

from repro.benchmarks import get_task
from repro.experiments.runner import RunConfig, run_task

VARIANTS = {
    "full": {},
    "no_target_refinement": {"target_refinement": False},
    "no_value_shadow": {"value_shadow": False},
    "no_head_typing": {"head_typing": False},
    "no_shape_precheck": {"shape_precheck": False},
}

TASKS = ("fe36_health_program_percentage", "fh04_cumulative_share_of_region")


@pytest.fixture(scope="module")
def ablation_results():
    import dataclasses

    out = {}
    for task_name in TASKS:
        task = get_task(task_name)
        for variant, overrides in VARIANTS.items():
            patched = dataclasses.replace(
                task, config=task.config.replace(**overrides))
            out[(task_name, variant)] = run_task(
                patched, "provenance", RunConfig(easy_timeout_s=45,
                                                 hard_timeout_s=45))
    return out


def test_ablation_table(benchmark, ablation_results):
    def render():
        lines = [f"{'task':38s} {'variant':22s} {'solved':7s} "
                 f"{'visited':>9s} {'time':>7s}"]
        for (task_name, variant), r in ablation_results.items():
            lines.append(f"{task_name:38s} {variant:22s} {str(r.solved):7s} "
                         f"{r.visited:>9d} {r.time_s:>6.2f}s")
        return "\n".join(lines)

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    print("\n" + table)

    for task_name in TASKS:
        full = ablation_results[(task_name, "full")]
        assert full.solved, f"{task_name}: full configuration must solve"


def test_full_configuration_dominates(benchmark, ablation_results):
    """No ablated variant beats the full configuration on visited count
    (among runs that solved)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for task_name in TASKS:
        full = ablation_results[(task_name, "full")]
        for variant in VARIANTS:
            if variant == "full":
                continue
            r = ablation_results[(task_name, variant)]
            if r.solved:
                assert full.visited <= r.visited * 1.05


def test_components_matter_somewhere(benchmark, ablation_results):
    """Each component demonstrably reduces visits on at least one task."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    helped = set()
    for (task_name, variant), r in ablation_results.items():
        if variant == "full":
            continue
        full = ablation_results[(task_name, "full")]
        if not r.solved or r.visited > full.visited:
            helped.add(variant)
    assert {"no_value_shadow", "no_head_typing"} <= helped

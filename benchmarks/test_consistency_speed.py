"""Consistency micro-benchmark: incremental checker vs naive Definition 1.

The ≺ judgment runs once per fully-instantiated candidate, so its constant
factor multiplies with the whole search.  The workload replays each
consistency-heavy task's real instantiation stream — the first few hundred
concrete candidates, generated sibling-family-contiguously exactly as the
enumerator does — against a warm evaluation engine, and times the two
consistency pipelines end to end:

* **naive** — the pre-incremental hot path: per candidate, a tracking
  evaluation (cache hit) followed by ``demo_consistent``, which
  re-simplifies both grids and re-matches the demonstration from scratch;
* **incremental** — a cold :class:`ConsistencyChecker` running
  ``demo_consistent_many`` over the same stream: per-(column, demo) match
  matrices memoized across siblings, column-level pruning, bitset
  embedding.

Both paths face identical evaluation-cache state; only the judgment
machinery differs.  The acceptance bar is a ≥1.5× speedup.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.benchmarks import all_tasks, instantiation_stream
from repro.engine import make_engine
from repro.provenance.consistency import demo_consistent
from repro.provenance.incremental import ConsistencyChecker

#: Consistency-heavy tasks: partition/group pipelines whose tracked grids
#: carry group-collapsing terms (the expensive ≺ instances).
CONSISTENCY_TASKS = (
    "fe09_cumulative_units_per_product",
    "fe10_salary_rank_within_dept",
    "fe20_share_of_region_total",
    "fe24_cumulative_quarterly_sales",
    "td03_category_profit_rank",
    "td01_item_cumulative_monthly_sales",
)

CANDIDATES_PER_TASK = 250
ROUNDS = 5
MIN_SPEEDUP = 1.5


def _candidates(task, cap=CANDIDATES_PER_TASK):
    """The task's real instantiation stream (shared helper)."""
    return instantiation_stream(task, cap)


def consistency_workload():
    """(task, warm engine, candidates) triples; tracking pre-evaluated so
    both timed paths run against identical cache state."""
    wanted = set(CONSISTENCY_TASKS)
    work = []
    for task in all_tasks():
        if task.name not in wanted:
            continue
        engine = make_engine("columnar")
        candidates = _candidates(task)
        engine.evaluate_tracking_many(candidates, task.env, errors="none")
        engine.tracked_columns_many(candidates, task.env, errors="none")
        work.append((task, engine, candidates))
    return work


@pytest.fixture(scope="module")
def workload():
    return consistency_workload()


def _naive_round(workload) -> float:
    start = time.perf_counter()
    for task, engine, candidates in workload:
        demo_cells = task.demonstration.cells
        for table in engine.evaluate_tracking_many(candidates, task.env,
                                                   errors="none"):
            if table is not None:
                demo_consistent(table.exprs, demo_cells)
    return time.perf_counter() - start


def _incremental_round(workload) -> float:
    start = time.perf_counter()
    for task, engine, candidates in workload:
        # A cold checker per round: verdict and match-state caches start
        # empty, so the measurement includes all memo-building work.
        checker = ConsistencyChecker(engine)
        checker.demo_consistent_many(candidates, task.env,
                                     task.demonstration)
    return time.perf_counter() - start


def measure(workload, rounds: int) -> tuple[float, float]:
    """Interleaved best-of-N (same discipline as the other benches)."""
    naive_times, incremental_times = [], []
    gc.collect()
    gc.disable()
    try:
        _naive_round(workload)        # warm bytecode/allocator once
        _incremental_round(workload)
        for _ in range(rounds):
            naive_times.append(_naive_round(workload))
            incremental_times.append(_incremental_round(workload))
    finally:
        gc.enable()
    return min(naive_times), min(incremental_times)


def test_incremental_consistency_speedup(workload):
    n_queries = sum(len(c) for _, _, c in workload)
    assert n_queries > 800, "workload unexpectedly small"

    naive_t, incremental_t = measure(workload, ROUNDS)
    if naive_t / incremental_t < MIN_SPEEDUP:
        # One slow-machine retry with more rounds before declaring failure.
        naive_t, incremental_t = measure(workload, ROUNDS * 2)
    speedup = naive_t / incremental_t
    print(f"\nconsistency-check hot path ({n_queries} candidate queries"
          f" per round, best of {ROUNDS}+ rounds):")
    print(f"  naive       {naive_t * 1000:8.1f} ms")
    print(f"  incremental {incremental_t * 1000:8.1f} ms")
    print(f"  speedup     {speedup:8.2f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"incremental checker only {speedup:.2f}x faster than naive "
        f"(expected >= {MIN_SPEEDUP}x)")


def test_verdicts_identical_on_workload(workload):
    """The benchmark's own workload is verified verdict-identical (the
    registry-wide differential suite covers the rest)."""
    for task, engine, candidates in workload:
        checker = ConsistencyChecker(engine)
        verdicts = checker.demo_consistent_many(candidates, task.env,
                                                task.demonstration)
        tracked = engine.evaluate_tracking_many(candidates, task.env,
                                                errors="none")
        expected = [t is not None
                    and demo_consistent(t.exprs, task.demonstration.cells)
                    for t in tracked]
        assert verdicts == expected

"""Engine micro-benchmark: columnar vs row backend on the forum-easy
evaluation hot path.

The workload replays what Algorithm 1 actually feeds an engine: for every
forum-easy task, the first few hundred *concrete candidates* reached by
skeleton instantiation (thousands of queries that share all but their
topmost operator's parameters).  Each round evaluates the full candidate
stream through a cold engine, so the measurement covers both the
structural-sharing win (one evaluation per shared prefix) and the kernel
cost of the candidate-specific top operator.

The acceptance bar for the columnar backend is a ≥1.5× speedup here; in
practice it lands around 1.6–1.8× (and the two backends are verified
byte-identical by ``tests/test_engine_differential.py``).
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.benchmarks import easy_tasks, instantiation_stream
from repro.engine import make_engine

#: Candidates per task: enough to cross several sibling families per
#: skeleton while keeping a round well under a second.
CANDIDATES_PER_TASK = 300
ROUNDS = 5
MIN_SPEEDUP = 1.5


def _candidates(task, cap=CANDIDATES_PER_TASK):
    """The task's real instantiation stream (shared helper)."""
    return instantiation_stream(task, cap)


@pytest.fixture(scope="module")
def workload():
    tasks = [t for t in easy_tasks() if t.suite == "forum"]
    return [(t.env, _candidates(t)) for t in tasks]


def _round(backend: str, workload) -> float:
    """One cold-cache pass of the whole candidate stream."""
    start = time.perf_counter()
    for env, queries in workload:
        engine = make_engine(backend)
        for query in queries:
            try:
                engine.evaluate(query, env)
            except Exception:
                pass  # ill-typed candidates are part of the real stream
    return time.perf_counter() - start


def _measure(workload, rounds: int) -> tuple[float, float]:
    """Interleaved best-of-N times for both backends.

    Interleaving makes clock-speed drift hit both backends equally;
    best-of (the ``timeit`` statistic) shrugs off load spikes from
    whatever else the machine is doing; and the collector stays out of
    the measurement (the workload is allocation-heavy and GC pauses
    otherwise dominate the variance).
    """
    row_times, columnar_times = [], []
    gc.collect()
    gc.disable()
    try:
        _round("row", workload)        # warm the bytecode/allocator once
        _round("columnar", workload)
        for _ in range(rounds):
            row_times.append(_round("row", workload))
            columnar_times.append(_round("columnar", workload))
    finally:
        gc.enable()
    return min(row_times), min(columnar_times)


def test_columnar_speedup_on_forum_easy(workload):
    n_queries = sum(len(qs) for _, qs in workload)
    assert n_queries > 5_000, "workload unexpectedly small"

    row_t, columnar_t = _measure(workload, ROUNDS)
    if row_t / columnar_t < MIN_SPEEDUP:
        # One slow-machine retry with more rounds before declaring failure.
        row_t, columnar_t = _measure(workload, ROUNDS * 2)
    speedup = row_t / columnar_t
    print(f"\nforum-easy evaluation hot path ({n_queries} candidate queries"
          f" per round, best of {ROUNDS}+ rounds):")
    print(f"  row      {row_t * 1000:8.1f} ms")
    print(f"  columnar {columnar_t * 1000:8.1f} ms")
    print(f"  speedup  {speedup:8.2f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"columnar backend only {speedup:.2f}x faster than row "
        f"(expected >= {MIN_SPEEDUP}x)")


def test_columnar_shares_subtrees_across_candidates(workload):
    """The structural-key cache turns sibling evaluation into O(top node)."""
    env, queries = max(workload, key=lambda pair: len(pair[1]))
    engine = make_engine("columnar")
    for query in queries:
        try:
            engine.evaluate(query, env)
        except Exception:
            pass
    stats = engine.stats
    # Cold engine, distinct candidates: every evaluation is a top-level
    # miss, but the shared prefixes below them were computed once — far
    # fewer block computations than a naive per-candidate tree walk.
    assert stats.concrete_evals <= len(queries)
    assert len(engine._blocks) < 2 * len(queries)

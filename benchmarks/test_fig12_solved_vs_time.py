"""Figure 12: number of benchmarks solved within a given time limit.

Regenerates, for each technique, the cumulative solved-within-limit curve
the paper plots, split into easy and hard tasks.  The paper's headline
shape: Sickle (provenance) dominates at every limit; the gap explodes on
hard tasks.
"""

from __future__ import annotations

from repro.experiments.figures import fig12_curve, fig12_table


def test_fig12_regeneration(benchmark, sweep_results):
    table = benchmark.pedantic(
        lambda: fig12_table(sweep_results), rounds=1, iterations=1)
    print("\n" + table)

    # Shape assertions (the paper's qualitative claims):
    limits = [0.5, 1.0, 2.0, 5.0, 10.0, 20.0]
    prov = fig12_curve(sweep_results, "provenance", limits)
    value = fig12_curve(sweep_results, "value", limits)
    typ = fig12_curve(sweep_results, "type", limits)

    # curves are monotone
    assert prov == sorted(prov) and value == sorted(value)
    # provenance dominates both baselines at every time limit
    assert all(p >= v for p, v in zip(prov, value))
    assert all(p >= t for p, t in zip(prov, typ))
    # ... strictly at the small-limit end (the short slice budgets let the
    # baselines catch up on the curated slice's tail; the full suite shows
    # strict dominance everywhere — see EXPERIMENTS.md)
    assert prov[0] > value[0]
    assert prov[0] > typ[0]


def test_fig12_hard_task_gap(benchmark, sweep_results):
    """On hard tasks the provenance advantage is decisive (Obs. 1)."""
    hard = [r for r in sweep_results if r.difficulty == "hard"]
    solved = benchmark.pedantic(
        lambda: {tech: sum(1 for r in hard
                           if r.technique == tech and r.solved)
                 for tech in ("provenance", "value", "type")},
        rounds=1, iterations=1)
    assert solved["provenance"] >= solved["value"] >= solved["type"]
    # within one second, provenance has solved strictly more hard tasks
    fast = fig12_curve(hard, "provenance", [1.0])[0]
    fast_value = fig12_curve(
        [r for r in hard if r.technique == "value"], "value", [1.0])[0]
    assert fast > fast_value

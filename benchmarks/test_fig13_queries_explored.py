"""Figure 13: distribution of the number of queries explored per technique.

Regenerates the box-plot statistics (min / quartiles / mean / max) for easy
and hard tasks.  Paper shape: on easy tasks the distributions are close; on
hard tasks provenance explores orders of magnitude fewer queries (Sickle
~917 mean vs ~6,837 value and ~31,371 type).
"""

from __future__ import annotations

from repro.experiments.figures import fig13_stats, fig13_table


def test_fig13_regeneration(benchmark, sweep_results):
    table = benchmark.pedantic(
        lambda: fig13_table(sweep_results), rounds=1, iterations=1)
    print("\n" + table)

    hard_prov = fig13_stats(sweep_results, "provenance", "hard")
    hard_value = fig13_stats(sweep_results, "value", "hard")
    hard_type = fig13_stats(sweep_results, "type", "hard")
    assert hard_prov["n"] and hard_value["n"] and hard_type["n"]

    # Hard tasks: provenance explores far fewer queries than both baselines.
    assert hard_prov["mean"] < hard_value["mean"]
    assert hard_prov["mean"] < hard_type["mean"]
    assert hard_prov["median"] <= hard_value["median"]


def test_fig13_solved_only_medians(benchmark, sweep_results):
    """Restricting to tasks every technique solved (the paper's common
    set), provenance still visits the fewest queries."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    solved_by = {}
    for r in sweep_results:
        solved_by.setdefault(r.task, set())
        if r.solved:
            solved_by[r.task].add(r.technique)
    common = {t for t, s in solved_by.items()
              if {"provenance", "value", "type"} <= s}
    if not common:
        return  # tiny slice: nothing commonly solved, nothing to compare
    means = {}
    for tech in ("provenance", "value", "type"):
        visits = [r.visited for r in sweep_results
                  if r.technique == tech and r.task in common]
        means[tech] = sum(visits) / len(visits)
    assert means["provenance"] <= means["value"]
    assert means["provenance"] <= means["type"]

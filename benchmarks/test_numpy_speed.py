"""NumPy-kernel micro-benchmark: numpy vs columnar backend at scale.

The registry's demonstration tables are deliberately tiny (tens of rows —
they model what a user pastes into a UI), and at that size vectorization
cannot pay for its dispatch.  The NumPy backend exists for the serving
scenario the roadmap targets: the same candidate populations evaluated
over *production-sized* inputs.  This benchmark replays exactly that — the
forum-hard tasks' real instantiation streams (the population Algorithm 1
feeds the engine) evaluated over the tasks' tables scaled to a few
thousand rows by deterministic row replication (``repro.util.rng``; only
the largest table grows, so join outputs scale linearly, and replication
preserves every schema/type the candidate queries were enumerated
against).

Measured cold-engine, interleaved, best-of-N — the discipline of the
other micro-benchmarks:

* the concrete evaluation hot path (bar: ≥1.5× over columnar), and
* the tracking hot path (``evaluate_tracking_many``; bar: no regression
  — term construction is inherently object work, the win there is the
  shared selections the NumPy kernels compute).

Skips cleanly when NumPy is absent.  ``perf_snapshot.py`` folds both
ratios into the nightly perf-trajectory artifact.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.benchmarks import hard_tasks, instantiation_stream
from repro.engine import HAVE_NUMPY, make_engine
from repro.lang import ast
from repro.table.table import Table
from repro.util.rng import stable_rng

pytestmark = pytest.mark.skipif(not HAVE_NUMPY,
                                reason="NumPy not installed")

#: Provenance-/window-heavy forum-hard tasks (partition pipelines, joins,
#: share-of-total arithmetic) — the paper's hardest evaluation workload.
NUMPY_TASKS = (
    "fh02_region_quarter_share",
    "fh04_cumulative_share_of_region",
    "fh05_category_value_rank",
    "fh15_bonus_dept_deviation_rank",
)

#: Rows the largest input table is replicated to.
SCALE_ROWS = 2_000
CANDIDATES_PER_TASK = 40
ROUNDS = 3
MIN_EVAL_SPEEDUP = 1.5
MIN_TRACKING_SPEEDUP = 1.0


def scaled_env(task, n_rows: int = SCALE_ROWS) -> ast.Env:
    """The task's env with its largest table row-replicated to ``n_rows``.

    Replication (not random regeneration) keeps every value, join match
    and group key of the original data — groups grow deeper rather than
    more numerous, which is the analytic-serving shape — and the stream of
    candidate queries enumerated against the original env stays valid
    cell-for-cell.
    """
    largest = max(task.tables, key=lambda t: t.n_rows)
    tables = []
    for table in task.tables:
        if table is not largest:
            tables.append(table)
            continue
        rng = stable_rng(f"numpy-bench-{task.name}-{table.name}")
        base = list(table.rows)
        rows = [base[rng.randrange(len(base))] for _ in range(n_rows)]
        tables.append(Table.from_rows(table.name, table.schema.columns,
                                      rows))
    return ast.Env(tuple(tables))


def numpy_workload():
    wanted = set(NUMPY_TASKS)
    tasks = [t for t in hard_tasks() if t.name in wanted]
    assert len(tasks) == len(NUMPY_TASKS)
    workload = []
    for task in tasks:
        queries = instantiation_stream(task, CANDIDATES_PER_TASK)
        queries.append(task.ground_truth)
        workload.append((scaled_env(task), queries))
    return workload


@pytest.fixture(scope="module")
def workload():
    return numpy_workload()


def _eval_round(backend: str, workload) -> float:
    start = time.perf_counter()
    for env, queries in workload:
        engine = make_engine(backend)
        for query in queries:
            try:
                engine.evaluate(query, env)
            except Exception:
                pass  # ill-typed candidates are part of the real stream
    return time.perf_counter() - start


def _tracking_round(backend: str, workload) -> float:
    start = time.perf_counter()
    for env, queries in workload:
        engine = make_engine(backend)
        engine.evaluate_tracking_many(queries, env, errors="none")
    return time.perf_counter() - start


def measure(workload, rounds: int,
            round_fn=_eval_round) -> tuple[float, float]:
    """Interleaved best-of-N columnar vs numpy times (see the engine
    benchmark for why: drift hits both, best-of sheds load spikes, GC
    stays out of the measurement)."""
    columnar_times, numpy_times = [], []
    gc.collect()
    gc.disable()
    try:
        round_fn("columnar", workload)     # warm bytecode/allocator
        round_fn("numpy", workload)
        for _ in range(rounds):
            columnar_times.append(round_fn("columnar", workload))
            numpy_times.append(round_fn("numpy", workload))
    finally:
        gc.enable()
    return min(columnar_times), min(numpy_times)


def measure_tracking(workload, rounds: int) -> tuple[float, float]:
    return measure(workload, rounds, round_fn=_tracking_round)


def test_numpy_speedup_on_scaled_forum_hard_eval(workload):
    n_queries = sum(len(qs) for _, qs in workload)
    assert n_queries > 100, "workload unexpectedly small"

    columnar_t, numpy_t = measure(workload, ROUNDS)
    if columnar_t / numpy_t < MIN_EVAL_SPEEDUP:
        # One slow-machine retry with more rounds before failing.
        columnar_t, numpy_t = measure(workload, ROUNDS * 2)
    speedup = columnar_t / numpy_t
    print(f"\nforum-hard evaluation at {SCALE_ROWS} rows "
          f"({n_queries} candidate queries per round, best of {ROUNDS}+):")
    print(f"  columnar {columnar_t * 1000:8.1f} ms")
    print(f"  numpy    {numpy_t * 1000:8.1f} ms")
    print(f"  speedup  {speedup:8.2f}x")
    assert speedup >= MIN_EVAL_SPEEDUP, (
        f"numpy backend only {speedup:.2f}x faster than columnar "
        f"(expected >= {MIN_EVAL_SPEEDUP}x)")


def test_numpy_tracking_does_not_regress(workload):
    columnar_t, numpy_t = measure_tracking(workload, ROUNDS)
    if columnar_t / numpy_t < MIN_TRACKING_SPEEDUP:
        columnar_t, numpy_t = measure_tracking(workload, ROUNDS * 2)
    speedup = columnar_t / numpy_t
    print(f"\nforum-hard tracking at {SCALE_ROWS} rows:")
    print(f"  columnar {columnar_t * 1000:8.1f} ms")
    print(f"  numpy    {numpy_t * 1000:8.1f} ms")
    print(f"  speedup  {speedup:8.2f}x")
    assert speedup >= MIN_TRACKING_SPEEDUP, (
        f"numpy tracking path regressed: {speedup:.2f}x vs columnar")


def test_scaled_results_identical_across_backends(workload):
    """The scaled workload is still covered by the equivalence guarantee."""
    for env, queries in workload:
        columnar = make_engine("columnar")
        numpy_engine = make_engine("numpy")
        for query in queries[:8] + [queries[-1]]:
            try:
                expected = columnar.evaluate(query, env)
            except Exception as err:
                with pytest.raises(type(err)):
                    numpy_engine.evaluate(query, env)
                continue
            assert numpy_engine.evaluate(query, env) == expected, query

"""Observation 1 (§5.2): tasks solved and relative solve times.

Paper numbers (600 s timeout, authors' machine): Sickle 76/80 solved
(43/43 easy, 33/37 hard), mean 12.8 s; value abstraction 60, type 51;
Sickle on average 22.5× faster on commonly solved tasks.  Absolute numbers
are hardware- and budget-bound; the assertions below pin the *ordering*
claims, and the regenerated report records the measured values.
"""

from __future__ import annotations

from repro.experiments.report import (
    mean_solve_time,
    observation_report,
    solved_counts,
    speedup_over,
)


def test_observation1_report(benchmark, sweep_results):
    report = benchmark.pedantic(
        lambda: observation_report(sweep_results), rounds=1, iterations=1)
    print("\n" + report)

    counts = solved_counts(sweep_results)
    # Solve-count ordering: provenance >= value >= type (paper: 76/60/51).
    assert counts["provenance"]["all"] >= counts["value"]["all"]
    assert counts["value"]["all"] >= counts["type"]["all"]

    # Provenance solves every easy task in the set (paper: 43/43).
    easy_total = len({r.task for r in sweep_results
                      if r.difficulty == "easy"})
    assert counts["provenance"]["easy"] == easy_total


def test_observation1_speedups(benchmark, sweep_results):
    """Provenance is faster on commonly solved tasks (paper: 22.5x mean)."""
    speedups = benchmark.pedantic(
        lambda: {b: speedup_over(sweep_results, b)
                 for b in ("value", "type")}, rounds=1, iterations=1)
    for baseline in ("value", "type"):
        speedup = speedups[baseline]
        print(f"provenance speedup over {baseline}: {speedup:.1f}x")
        if speedup == speedup:  # not NaN (needs common solved tasks)
            assert speedup >= 1.0


def test_observation1_mean_times(benchmark, sweep_results):
    prov = benchmark.pedantic(
        lambda: mean_solve_time(sweep_results, "provenance"),
        rounds=1, iterations=1)
    assert prov == prov  # solved something
    value = mean_solve_time(sweep_results, "value")
    if value == value:
        # mean over *solved* tasks: provenance solves strictly more of the
        # hard tail, so compare on easy tasks where both solve everything
        prov_easy = mean_solve_time(sweep_results, "provenance", "easy")
        value_easy = mean_solve_time(sweep_results, "value", "easy")
        assert prov_easy <= value_easy * 1.5  # at worst comparable

"""Observation 2 (§5.2): pruning power — queries explored per technique.

Paper numbers: on hard tasks Sickle explores 917 queries on average before
finding the correct one vs 6,837 (value) and 31,371 (type); overall its
abstraction visits 97.08% fewer queries.  The assertions pin the ordering
and a substantial (>50%) reduction; the measured percentages are recorded
in the regenerated report / EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.report import mean_visited, visit_reduction


def test_observation2_visit_reduction(benchmark, sweep_results):
    reduction = benchmark.pedantic(
        lambda: visit_reduction(sweep_results), rounds=1, iterations=1)
    print(f"\nprovenance visit reduction vs baselines: {reduction:.2f}% "
          "(paper: 97.08%)")
    assert reduction > 50.0


def test_observation2_hard_task_ordering(benchmark, sweep_results):
    prov = benchmark.pedantic(
        lambda: mean_visited(sweep_results, "provenance", "hard"),
        rounds=1, iterations=1)
    value = mean_visited(sweep_results, "value", "hard")
    typ = mean_visited(sweep_results, "type", "hard")
    print(f"\nmean queries visited (hard): provenance={prov:.0f} "
          f"value={value:.0f} type={typ:.0f} "
          "(paper: 917 / 6,837 / 31,371)")
    assert prov < value
    assert prov < typ


def test_observation2_pruned_fraction(benchmark, sweep_results):
    """Provenance prunes a large fraction of the partial queries it sees."""
    prov = [r for r in sweep_results if r.technique == "provenance"]
    pruned = benchmark.pedantic(lambda: sum(r.pruned for r in prov),
                                rounds=1, iterations=1)
    visited = sum(r.visited for r in prov)
    assert visited > 0
    assert pruned / visited > 0.3

"""Database oracle at scale: the differential check on >100k-row inputs.

The tier-1 oracle suite (:mod:`tests.test_oracle`) proves correctness on
registry-sized tables; this benchmark proves the loader and the rendered
SQL hold up when the fact table is five to six orders of magnitude past a
demonstration.  Representative plans (filter, group, window cumsum, rank,
sort, arithmetic, fact→dim FK join — no big×big cross products) run
through :func:`repro.oracle.check_query` on every available database and
must compare clean.

Knobs, for the nightly leg:

* ``REPRO_ORACLE_ROWS`` — fact-table rows (default 5000; nightly 120000);
* ``REPRO_ORACLE_SEEDS`` — distinct seeded datasets (default 2).
"""

from __future__ import annotations

import os

import pytest

from repro.lang import (
    Arithmetic,
    Filter,
    Group,
    Join,
    Partition,
    Proj,
    Sort,
    TableRef,
)
from repro.lang.predicates import ColCmp, ConstCmp
from repro.oracle import HAVE_DUCKDB, Oracle, check_query

from datagen import oracle_env

ROWS = int(os.environ.get("REPRO_ORACLE_ROWS", "5000"))
SEEDS = int(os.environ.get("REPRO_ORACLE_SEEDS", "2"))

DB_DIALECTS = ["sqlite",
               pytest.param("duckdb",
                            marks=pytest.mark.skipif(
                                not HAVE_DUCKDB,
                                reason="duckdb not installed"))]

# Fact columns: 0 OrderID, 1 RegionID, 2 Quarter, 3 Units, 4 Price, 5 Flag.
FACT = TableRef("sales")
PLANS = {
    "filter": Filter(FACT, ConstCmp(3, ">", 250)),
    "group-sum": Group(FACT, keys=(1, 2), agg_func="sum", agg_col=3),
    "partition-cumsum": Partition(FACT, keys=(1,), agg_func="cumsum",
                                  agg_col=4),
    "rank-desc": Partition(Group(FACT, keys=(1,), agg_func="avg",
                                 agg_col=4),
                           keys=(), agg_func="rank_desc", agg_col=1),
    "sort": Sort(Filter(FACT, ConstCmp(5, "==", True)),
                 cols=(4, 0), ascending=False),
    "arithmetic-div": Proj(Arithmetic(FACT, func="div", cols=(4, 3)),
                           cols=(0, 6)),
    "fk-join": Group(Join(FACT, TableRef("regions"), ColCmp(1, "==", 6)),
                     keys=(7,), agg_func="sum", agg_col=3),
}


@pytest.fixture(scope="module", params=range(SEEDS),
                ids=[f"seed{s}" for s in range(SEEDS)])
def env(request):
    return oracle_env(ROWS, seed=request.param)


@pytest.mark.parametrize("dialect", DB_DIALECTS)
@pytest.mark.parametrize("plan", PLANS, ids=list(PLANS))
def test_plan_matches_database_at_scale(env, dialect, plan):
    # One oracle per (env, dialect) would be nicer still, but the loader
    # is itself part of what this benchmark times — keep it in the test.
    with Oracle(env, dialect) as oracle:
        outcome = check_query(PLANS[plan], env, dialect, oracle=oracle)
        assert outcome.status == "ok", (
            outcome.skip_reason or outcome.mismatch.describe())


def test_fact_table_meets_row_floor(env):
    assert env.get("sales").n_rows == ROWS

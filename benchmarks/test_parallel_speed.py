"""Parallel-search micro-benchmark: sharded vs serial on forum-hard.

The workload is the §5.2 experiment mode on forum-hard tasks ("run until
q_gt is found", visited-budget bounded): the mode where sharding pays —
the shard holding the ground truth's skeleton reaches it after exploring
only its own lanes, and first-consistent-query cancellation reclaims the
sibling shards.  Tasks are chosen to solve within the budget so the
cancellation path (not budget exhaustion) decides each run.

The speedup assertion needs real cores; on single-core machines the
benchmark still verifies sharded/serial result equality and reports the
(meaningless) timing, but skips the ratio check.  CI runs this file
non-gating; the nightly perf workflow records the numbers as a trajectory
artifact (``benchmarks/perf_snapshot.py``).
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from repro.benchmarks import all_tasks
from repro.synthesis import GroundTruthStop, Synthesizer

#: Forum-hard tasks that solve within the budget at serial visited counts
#: between ~1k and ~4k — enough search for sharding to matter, small enough
#: for a round to stay in seconds.
TASK_NAMES = (
    "fh01_cumulative_signup_share",
    "fh04_cumulative_share_of_region",
    "fh10_conversion_deviation_rank",
    "fh16_early_rainfall_share",
)
VISITED_BUDGET = 4000
WORKERS = 4
ROUNDS = 3


def cpu_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def bench_tasks():
    wanted = set(TASK_NAMES)
    return [t for t in all_tasks() if t.name in wanted]


def run_once(task, workers: int):
    config = task.config.replace(
        workers=workers, parallel_executor="process",
        timeout_s=None, max_visited=VISITED_BUDGET)
    synthesizer = Synthesizer("provenance", config)
    return synthesizer.run(task.tables, task.demonstration,
                           stop_predicate=GroundTruthStop(task.ground_truth))


def _round(tasks, workers: int) -> float:
    start = time.perf_counter()
    for task in tasks:
        run_once(task, workers)
    return time.perf_counter() - start


def measure(tasks, rounds: int = ROUNDS) -> tuple[float, float]:
    """Interleaved best-of-N wall times for (serial, sharded)."""
    serial_times, sharded_times = [], []
    gc.collect()
    for _ in range(rounds):
        serial_times.append(_round(tasks, 1))
        sharded_times.append(_round(tasks, WORKERS))
    return min(serial_times), min(sharded_times)


@pytest.fixture(scope="module")
def tasks():
    found = bench_tasks()
    assert len(found) == len(TASK_NAMES)
    return found


def test_sharded_run_solves_and_matches_serial(tasks):
    """The benchmark workload itself is covered by the determinism pledge."""
    for task in tasks:
        serial = run_once(task, 1)
        sharded = run_once(task, WORKERS)
        assert serial.target is not None, task.name
        assert sharded.target == serial.target, task.name
        assert sharded.queries == serial.queries, task.name
        assert sharded.stats.visited == serial.stats.visited, task.name


def test_parallel_speedup_on_forum_hard(tasks):
    cores = cpu_cores()
    serial_t, sharded_t = measure(tasks)
    speedup = serial_t / sharded_t
    print(f"\nforum-hard experiment mode ({len(tasks)} tasks, "
          f"{WORKERS} workers, best of {ROUNDS} rounds, {cores} cores):")
    print(f"  serial   {serial_t * 1000:8.1f} ms")
    print(f"  sharded  {sharded_t * 1000:8.1f} ms")
    print(f"  speedup  {speedup:8.2f}x")
    if cores < 2:
        pytest.skip("parallel speedup needs >= 2 cores "
                    f"(have {cores}); result equality still verified")
    assert speedup > 1.0, (
        f"sharded search only {speedup:.2f}x vs serial with {WORKERS} "
        f"workers on {cores} cores (expected > 1x)")

"""Parallel-search micro-benchmark: sharded vs serial on forum-hard.

The workload is the §5.2 experiment mode on forum-hard tasks ("run until
q_gt is found", visited-budget bounded): the mode where sharding pays —
the shard holding the ground truth's skeleton reaches it after exploring
only its own lanes, and first-consistent-query cancellation reclaims the
sibling shards.  Tasks are chosen to solve within the budget so the
cancellation path (not budget exhaustion) decides each run.

The speedup assertion needs real cores; on single-core machines the
benchmark still verifies sharded/serial result equality and reports the
(meaningless) timing, but skips the ratio check.  CI runs this file
non-gating; the nightly perf workflow records the numbers as a trajectory
artifact (``benchmarks/perf_snapshot.py``).

Two further measurements ride along, both core-count independent:

* **skewed lanes** — per-shard visited counts under ``cost_rr`` planning
  on an exhaustive (no-stop) hard-task sweep.  The static cost estimate
  deals near-equal shards, the abstraction then prunes lanes the estimate
  cannot see, and the measured ``ShardPlan.load_imbalance`` of actual
  work quantifies what dynamic re-planning (ROADMAP) would reclaim.
* **dispatch payload** — bytes a worker dispatch ships at 2k-row scale:
  the pickled input tables vs the shared-memory :class:`EnvHandle`
  (``repro.engine.shm``).  This one is gated (≥5× reduction), here and
  in the nightly perf workflow.
"""

from __future__ import annotations

import gc
import os
import pickle
import time

import pytest

from repro.benchmarks import all_tasks
from repro.engine import shm
from repro.lang import ast
from repro.parallel import ShardPlan, ShardPlanner, run_shards
from repro.synthesis import GroundTruthStop, Synthesizer
from repro.synthesis.skeletons import construct_skeletons
from repro.table.table import Table
from repro.util.rng import stable_rng

#: Forum-hard tasks that solve within the budget at serial visited counts
#: between ~1k and ~4k — enough search for sharding to matter, small enough
#: for a round to stay in seconds.
TASK_NAMES = (
    "fh01_cumulative_signup_share",
    "fh04_cumulative_share_of_region",
    "fh10_conversion_deviation_rank",
    "fh16_early_rainfall_share",
)
VISITED_BUDGET = 4000
WORKERS = 4
ROUNDS = 3


def cpu_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def bench_tasks():
    wanted = set(TASK_NAMES)
    return [t for t in all_tasks() if t.name in wanted]


def run_once(task, workers: int):
    config = task.config.replace(
        workers=workers, parallel_executor="process",
        timeout_s=None, max_visited=VISITED_BUDGET)
    synthesizer = Synthesizer("provenance", config)
    return synthesizer.run(task.tables, task.demonstration,
                           stop_predicate=GroundTruthStop(task.ground_truth))


def _round(tasks, workers: int) -> float:
    start = time.perf_counter()
    for task in tasks:
        run_once(task, workers)
    return time.perf_counter() - start


def measure(tasks, rounds: int = ROUNDS) -> tuple[float, float]:
    """Interleaved best-of-N wall times for (serial, sharded)."""
    serial_times, sharded_times = [], []
    gc.collect()
    for _ in range(rounds):
        serial_times.append(_round(tasks, 1))
        sharded_times.append(_round(tasks, WORKERS))
    return min(serial_times), min(sharded_times)


@pytest.fixture(scope="module")
def tasks():
    found = bench_tasks()
    assert len(found) == len(TASK_NAMES)
    return found


def test_sharded_run_solves_and_matches_serial(tasks):
    """The benchmark workload itself is covered by the determinism pledge."""
    for task in tasks:
        serial = run_once(task, 1)
        sharded = run_once(task, WORKERS)
        assert serial.target is not None, task.name
        assert sharded.target == serial.target, task.name
        assert sharded.queries == serial.queries, task.name
        assert sharded.stats.visited == serial.stats.visited, task.name


def test_parallel_speedup_on_forum_hard(tasks):
    cores = cpu_cores()
    serial_t, sharded_t = measure(tasks)
    speedup = serial_t / sharded_t
    print(f"\nforum-hard experiment mode ({len(tasks)} tasks, "
          f"{WORKERS} workers, best of {ROUNDS} rounds, {cores} cores):")
    print(f"  serial   {serial_t * 1000:8.1f} ms")
    print(f"  sharded  {sharded_t * 1000:8.1f} ms")
    print(f"  speedup  {speedup:8.2f}x")
    if cores < 2:
        pytest.skip("parallel speedup needs >= 2 cores "
                    f"(have {cores}); result equality still verified")
    assert speedup > 1.0, (
        f"sharded search only {speedup:.2f}x vs serial with {WORKERS} "
        f"workers on {cores} cores (expected > 1x)")


# --- skewed-lane workload: where static cost_rr planning loses ----------

#: Hard task whose lanes the provenance abstraction prunes very unevenly.
SKEW_TASK = "fh02_region_quarter_share"
SKEW_BUDGET = 1200


def per_shard_visited(task, workers: int = WORKERS):
    """(plan, per-shard visited) of an exhaustive no-stop sharded sweep.

    The serial executor removes scheduling noise: every shard runs to its
    own budget/exhaustion, so visited counts are the lanes' actual work.
    """
    config = task.config.replace(
        workers=workers, parallel_executor="serial", shm="off",
        timeout_s=None, max_visited=SKEW_BUDGET)
    skeletons = construct_skeletons(task.env, config)
    plan = ShardPlanner(workers, config.shard_strategy).plan(skeletons)
    outcomes, _ = run_shards(plan, skeletons, task.env, task.demonstration,
                             config, "provenance", stop_spec=None)
    return plan, [o.stats.visited for o in outcomes]


def skew_measurements(task, workers: int = WORKERS) -> dict:
    plan, visited = per_shard_visited(task, workers)
    return {
        "estimated_imbalance": ShardPlan.load_imbalance(plan.costs),
        "actual_imbalance": ShardPlan.load_imbalance(visited),
        "per_shard_visited": visited,
        "per_shard_cost": list(plan.costs),
    }


def test_skewed_lanes_defeat_static_planning():
    """cost_rr deals near-even estimates; pruning skews the real work."""
    task = next(t for t in all_tasks() if t.name == SKEW_TASK)
    m = skew_measurements(task)
    print(f"\nskewed-lane workload ({SKEW_TASK}, {WORKERS} shards):")
    print(f"  estimated cost per shard  {m['per_shard_cost']}")
    print(f"  actual visited per shard  {m['per_shard_visited']}")
    print(f"  imbalance estimated {m['estimated_imbalance']:.2f}  "
          f"actual {m['actual_imbalance']:.2f}")
    # The planner believes the split is close to even ...
    assert m["estimated_imbalance"] < 1.5
    # ... while the measured work is demonstrably skewed beyond it — the
    # headroom the ROADMAP's dynamic re-planning is chartered to reclaim.
    assert m["actual_imbalance"] > m["estimated_imbalance"]


# --- dispatch payload: pickled tables vs shared-memory handle -----------

PAYLOAD_TASK = "fh02_region_quarter_share"
PAYLOAD_SCALE_ROWS = 2_000
MIN_PAYLOAD_REDUCTION = 5.0


def payload_env(task, n_rows: int) -> ast.Env:
    """The task's env with its largest table grown to ``n_rows`` of
    *distinct* row objects.

    ``test_numpy_speed.scaled_env`` recycles the original row tuples —
    right for evaluation benchmarks, but pickle memoizes the repeats down
    to backreferences, which no production table enjoys.  Here each
    sampled row (and each string cell) is rebuilt as a fresh object so
    the pickled size is what distinct real rows would actually cost.
    """
    largest = max(task.tables, key=lambda t: t.n_rows)
    rng = stable_rng(f"payload-bench-{task.name}-{largest.name}")
    base = list(largest.rows)

    def fresh(value):
        return value.encode().decode() if isinstance(value, str) else value

    rows = [tuple(fresh(cell) for cell in base[rng.randrange(len(base))])
            for _ in range(n_rows)]
    grown = Table.from_rows(largest.name, largest.schema.columns, rows)
    return ast.Env(tuple(grown if t is largest else t
                         for t in task.tables))


def dispatch_payload_bytes(task, n_rows: int = PAYLOAD_SCALE_ROWS):
    """(pickled-table bytes, handle bytes) one worker dispatch ships.

    Both measure the same object slot in the worker's argument tuple: the
    input ``Env`` as the pickled tables (the pre-shm payload, and still
    the spawn path with shm off) vs the :class:`~repro.engine.shm
    .EnvHandle` naming the coordinator's one shared segment.
    """
    env = payload_env(task, n_rows)
    pickled = len(pickle.dumps(env))
    store = shm.ShmStore()
    try:
        handle = store.publish_env(env)
        handle_bytes = len(pickle.dumps(handle))
    finally:
        store.close()
        shm.sweep_prefix(store.prefix)
    return pickled, handle_bytes


def test_dispatch_payload_reduction():
    """Gated: the shm handle is ≥5× smaller than the pickled tables."""
    task = next(t for t in all_tasks() if t.name == PAYLOAD_TASK)
    pickled, handle = dispatch_payload_bytes(task)
    reduction = pickled / handle
    print(f"\ndispatch payload ({PAYLOAD_TASK} at "
          f"{PAYLOAD_SCALE_ROWS} rows):")
    print(f"  pickled tables  {pickled:10d} bytes")
    print(f"  shm handle      {handle:10d} bytes")
    print(f"  reduction       {reduction:10.1f}x")
    assert reduction >= MIN_PAYLOAD_REDUCTION, (
        f"handle dispatch only {reduction:.1f}x smaller than pickled "
        f"tables (bar: {MIN_PAYLOAD_REDUCTION}x)")

"""Ranking study (§5.2): where does q_gt land among consistent queries?

Paper: of 76 solved benchmarks, 71 rank the correct query top-1, 4 rank it
within 2-9, and 1 ranks it at 10 or worse.  The assertions pin the shape
(top-1 dominates); measured counts are printed for EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.report import ranking_stats


def test_ranking_distribution(benchmark, provenance_results):
    stats = benchmark.pedantic(
        lambda: ranking_stats(provenance_results), rounds=1, iterations=1)
    solved = [r for r in provenance_results if r.solved]
    print(f"\nranking of q_gt over {len(solved)} solved tasks: "
          f"top-1 {stats['top1']}, rank 2-9 {stats['rank2to9']}, "
          f">=10 {stats['rank10plus']} (paper: 71 / 4 / 1)")
    assert stats["top1"] >= stats["rank2to9"] + stats["rank10plus"]


def test_most_solved_tasks_rank_top1(benchmark, provenance_results):
    solved = benchmark.pedantic(
        lambda: [r for r in provenance_results if r.solved],
        rounds=1, iterations=1)
    top1 = [r for r in solved if r.rank == 1]
    assert len(top1) >= 0.6 * len(solved)

"""Search-space size vs queries visited (§2.2).

Paper: the running example's space holds 1,181,224 queries at size ≤ 3,
of which Sickle visits only 1,453 before finding the solution (~6 s).
We count our grammar's exact space for the same task and compare it with
the number of queries the provenance-guided search actually visits.
"""

from __future__ import annotations

import os

from repro.benchmarks import get_task
from repro.experiments.runner import RunConfig, run_task
from repro.experiments.space import count_search_space

CAP = int(os.environ.get("REPRO_BENCH_SPACE_CAP", "2000000"))


def test_running_example_space_vs_visited(benchmark):
    task = get_task("fe36_health_program_percentage")

    space, exact = benchmark.pedantic(
        lambda: count_search_space(task.env, task.config,
                                   task.demonstration, timeout_s=120,
                                   cap=CAP),
        rounds=1, iterations=1)

    result = run_task(task, "provenance",
                      RunConfig(easy_timeout_s=60, hard_timeout_s=60))

    marker = "" if exact else ">="
    print(f"\nsearch space (size<=3): {marker}{space:,} queries "
          "(paper: 1,181,224)")
    print(f"provenance visited: {result.visited:,} (paper: 1,453)")
    ratio = result.visited / max(space, 1)
    print(f"fraction visited: {100 * ratio:.3f}%")

    assert result.solved
    assert space > 100_000            # the space is genuinely huge
    assert result.visited < space / 20  # ...and the search sees a sliver


def test_pruning_fraction_claim(benchmark):
    """§1: 'the new abstraction lets our algorithm on average visit 97.08%
    less queries' — check the running example's reduction vs no pruning."""
    task = get_task("fe36_health_program_percentage")
    rc = RunConfig(easy_timeout_s=45, hard_timeout_s=45)

    prov = benchmark.pedantic(
        lambda: run_task(task, "provenance", rc), rounds=1, iterations=1)
    value = run_task(task, "value", rc)

    visited_cap = max(value.visited, 1)
    print(f"\nprovenance visited {prov.visited:,} vs value-baseline "
          f"{value.visited:,} in the same budget")
    assert prov.solved
    assert prov.visited < visited_cap

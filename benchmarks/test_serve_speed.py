"""Serving-tier benchmarks: warm-request latency, process-tier
concurrent throughput, and crash-recovery overhead.

**Latency** — the warm pool's claim is about the second request, not the
first: a worker that already hosts the engine (subtree/block/verdict
caches hot) for a request shape it has seen serves it without the cold
build, and the pool-wide sub-plan cache serves multi-operator blocks
across workers.  The workload is repeated same-schema traffic on the
registry task whose concrete sub-plans are cache-eligible
(``fe20_share_of_region_total``), measured end-to-end through the
asyncio service so queueing and slice scheduling are part of every
sample.  Pinned to the thread tier: the samples are sub-slice latencies
where process dispatch overhead would drown the cache signal.

Gated bar: p50 warm latency ≤ ``MAX_WARM_RATIO`` × p50 cold latency, and
the cross-worker request sees ≥ 1 cross-request sub-plan hit.  Both are
schedule-independent — warm/cold run interleaved in the same process —
so the gate holds on shared runners, unlike core-count-bound speedups.

**Throughput** — the process tier exists because CPU-bound searches on
worker threads share one GIL.  Four concurrent hard requests through a
four-worker pool, thread tier vs process tier, identical results
asserted: the aggregate pops/s ratio is the tier's reason to exist, and
is gated at ≥ ``MIN_PROCESS_SPEEDUP``× on runners with ≥ 4 cores.

**Recovery** — the fault-tolerance claim is that a worker crash costs
latency, never correctness: the same request runs clean and under an
injected crash-before-slice (supervised restart + checkpoint replay),
results asserted byte-identical, and the wall-clock overhead reported.
Not latency-gated (restart cost is platform-dependent); gated on the
recovery actually happening (restarts ≥ 1, retries ≥ 1).
"""

from __future__ import annotations

import asyncio
import gc
import os
import statistics
import time

import pytest

from repro.benchmarks import all_tasks
from repro.serve import (
    FaultPlan,
    ServiceConfig,
    SynthesisService,
    WorkerPool,
)

SERVE_TASK = "fe20_share_of_region_total"
VISITED_BUDGET = 400
PAIRS = 5
MAX_WARM_RATIO = 0.5

CONCURRENT_TASK = "fh02_region_quarter_share"
CONCURRENT_REQUESTS = 4
CONCURRENT_BUDGET = 10_000
MIN_PROCESS_SPEEDUP = 2.0


def serve_task():
    return next(t for t in all_tasks() if t.name == SERVE_TASK)


async def _timed_request(svc, task, config, worker):
    start = time.perf_counter()
    handle = svc.submit(task.tables, task.demonstration, config,
                        worker=worker)
    result = await handle.result()
    return time.perf_counter() - start, result


async def _measure_pair(task, config):
    """(cold_s, warm_s, cross_hits, results) for one fresh pool.

    Request 1 on worker 0 is the cold sample (engine built + every cache
    empty), request 2 on worker 0 the warm sample, request 3 on worker 1
    the cross-worker probe: its engine is fresh, so any sub-plan it gets
    for free came through the pool-wide cache.
    """
    pool = WorkerPool(2, backend="threads")
    try:
        async with SynthesisService(pool=pool) as svc:
            cold_s, first = await _timed_request(svc, task, config, 0)
            warm_s, second = await _timed_request(svc, task, config, 0)
            _, cross = await _timed_request(svc, task, config, 1)
    finally:
        pool.close()
    return cold_s, warm_s, cross.engine_stats.cross_shard_hits, \
        (first, second, cross)


def serve_measurements(pairs: int = PAIRS) -> dict:
    """p50 cold/warm request latency over ``pairs`` fresh pools, plus the
    minimum cross-worker sub-plan hits seen (results are asserted equal
    pairwise — warmth must never change them)."""
    task = serve_task()
    config = task.config.replace(timeout_s=None, max_visited=VISITED_BUDGET)
    cold, warm, cross_hits = [], [], []
    gc.collect()
    for _ in range(pairs):
        cold_s, warm_s, hits, results = asyncio.run(
            _measure_pair(task, config))
        first, second, cross = results
        assert second.queries == first.queries
        assert cross.queries == first.queries
        assert second.stats.visited == first.stats.visited
        cold.append(cold_s)
        warm.append(warm_s)
        cross_hits.append(hits)
    return {
        "cold_p50_s": statistics.median(cold),
        "warm_p50_s": statistics.median(warm),
        "cross_request_hits": min(cross_hits),
    }


def test_warm_pool_latency_and_cross_request_hits():
    """Gated: warm p50 ≤ 0.5× cold p50; fresh engines get sub-plan hits."""
    m = serve_measurements()
    ratio = m["warm_p50_s"] / m["cold_p50_s"]
    print(f"\nwarm-pool serving ({SERVE_TASK}, p50 of {PAIRS} pairs):")
    print(f"  cold request  {m['cold_p50_s'] * 1000:8.2f} ms")
    print(f"  warm request  {m['warm_p50_s'] * 1000:8.2f} ms")
    print(f"  warm/cold     {ratio:8.2f}  (bar: <= {MAX_WARM_RATIO})")
    print(f"  cross-request sub-plan hits  {m['cross_request_hits']}")
    assert ratio <= MAX_WARM_RATIO, (
        f"warm request p50 only {ratio:.2f}x of cold "
        f"(bar: <= {MAX_WARM_RATIO}x)")
    assert m["cross_request_hits"] >= 1, (
        "a fresh engine on a sibling worker saw no cross-request "
        "sub-plan hits — the pool-wide cache is not being consulted")


async def _tier_wall_s(backend: str, task, config) -> tuple[float, list]:
    """Wall clock for CONCURRENT_REQUESTS simultaneous requests, one per
    worker (pinned, so placement is identical across tiers)."""
    pool = WorkerPool(CONCURRENT_REQUESTS, backend=backend)
    try:
        async with SynthesisService(pool=pool) as svc:
            start = time.perf_counter()
            handles = [svc.submit(task.tables, task.demonstration, config,
                                  worker=i)
                       for i in range(CONCURRENT_REQUESTS)]
            results = [await handle.result() for handle in handles]
            wall_s = time.perf_counter() - start
    finally:
        pool.close()
    return wall_s, results


def concurrency_measurements(budget: int = CONCURRENT_BUDGET) -> dict:
    """Aggregate pops/s for concurrent CPU-bound requests, thread tier vs
    process tier — the number the process backend exists for."""
    task = next(t for t in all_tasks() if t.name == CONCURRENT_TASK)
    config = task.config.replace(timeout_s=None, max_visited=budget,
                                 top_n=10**6)
    gc.collect()
    walls, all_results = {}, {}
    for backend in ("threads", "processes"):
        walls[backend], all_results[backend] = asyncio.run(
            _tier_wall_s(backend, task, config))
    # Throughput never buys divergence: both tiers produced the same
    # ranked queries and stats for every request.
    for thread_r, process_r in zip(all_results["threads"],
                                   all_results["processes"]):
        assert process_r.queries == thread_r.queries
        assert process_r.stats.visited == thread_r.stats.visited
    pops = sum(r.stats.visited for r in all_results["threads"])
    return {
        "requests": CONCURRENT_REQUESTS,
        "threads_pops_per_s": pops / walls["threads"],
        "processes_pops_per_s": pops / walls["processes"],
        "process_speedup": walls["threads"] / walls["processes"],
    }


def test_process_tier_concurrent_throughput():
    """Gated on ≥ 4 cores: four concurrent hard requests run ≥ 2× faster
    on the process tier than on the GIL-shared thread tier."""
    if (os.cpu_count() or 1) < CONCURRENT_REQUESTS:
        pytest.skip(f"needs >= {CONCURRENT_REQUESTS} cores for a "
                    f"meaningful GIL-contention comparison")
    m = concurrency_measurements()
    print(f"\nconcurrent serving ({CONCURRENT_TASK}, "
          f"{m['requests']} simultaneous requests):")
    print(f"  thread tier   {m['threads_pops_per_s']:10.0f} pops/s")
    print(f"  process tier  {m['processes_pops_per_s']:10.0f} pops/s")
    print(f"  speedup       {m['process_speedup']:10.2f}x "
          f"(bar: >= {MIN_PROCESS_SPEEDUP}x)")
    assert m["process_speedup"] >= MIN_PROCESS_SPEEDUP, (
        f"process tier only {m['process_speedup']:.2f}x over threads for "
        f"{m['requests']} concurrent requests "
        f"(bar: >= {MIN_PROCESS_SPEEDUP}x)")


async def _recovery_run(task, config, faults) -> tuple[float, object, dict]:
    """(wall_s, result, pool telemetry) for one request through a fresh
    single-worker process pool, with or without injected faults."""
    svc_cfg = ServiceConfig(pool_size=1, pool_backend="processes",
                            slice_pops=100, max_retries=4,
                            supervise_interval_s=0.02, faults=faults)
    async with SynthesisService(svc_cfg) as svc:
        start = time.perf_counter()
        handle = svc.submit(task.tables, task.demonstration, config)
        result = await handle.result()
        wall_s = time.perf_counter() - start
        telemetry = svc.pool.telemetry()
    return wall_s, result, telemetry


def recovery_measurements() -> dict:
    """Clean run vs crash-before-first-slice run of the same request on
    the process tier: recovery overhead in wall clock, with results
    asserted byte-identical (the transparency claim) and the recovery
    counters returned for the snapshot."""
    task = serve_task()
    config = task.config.replace(timeout_s=None, max_visited=VISITED_BUDGET)
    gc.collect()
    clean_s, clean, _ = asyncio.run(_recovery_run(task, config, None))
    faults = FaultPlan(seed=5, crash_before=1.0)
    crashed_s, crashed, telemetry = asyncio.run(
        _recovery_run(task, config, faults))
    assert crashed.queries == clean.queries
    assert crashed.stats.visited == clean.stats.visited
    return {
        "clean_s": clean_s,
        "crashed_s": crashed_s,
        "recovery_overhead_s": crashed_s - clean_s,
        "restarts": telemetry["restarts"],
        "worker_deaths": telemetry["worker_deaths"],
    }


def test_crash_recovery_is_transparent():
    """Gated on behavior, not speed: the crashed run restarts its worker,
    replays, and produces the byte-identical result (asserted inside
    recovery_measurements)."""
    m = recovery_measurements()
    print(f"\ncrash recovery ({SERVE_TASK}, process tier, "
          f"crash before first slice):")
    print(f"  clean run     {m['clean_s'] * 1000:8.2f} ms")
    print(f"  crashed run   {m['crashed_s'] * 1000:8.2f} ms")
    print(f"  overhead      {m['recovery_overhead_s'] * 1000:8.2f} ms")
    print(f"  restarts={m['restarts']} worker_deaths={m['worker_deaths']}")
    assert m["restarts"] >= 1
    assert m["worker_deaths"] >= 1

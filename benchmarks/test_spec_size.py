"""Specification-size statistics (§5.2 / §5.3 substrate).

Paper: "the average user demonstration size is 9 cells (the number would be
50 if full output examples were required from the user)".  This bench
computes both quantities over the full 80-task suite (independent of the
synthesis sweep — demonstrations are deterministic).
"""

from __future__ import annotations

from repro.benchmarks import all_tasks


def _stats():
    tasks = all_tasks()
    demo = sum(t.demonstration.size for t in tasks) / len(tasks)
    full = sum(t.full_output_size for t in tasks) / len(tasks)
    return demo, full


def test_spec_size(benchmark):
    demo, full = benchmark.pedantic(_stats, rounds=1, iterations=1)
    print(f"\nmean demonstration size: {demo:.1f} cells (paper: 9)")
    print(f"mean full-output size:   {full:.1f} cells (paper: 50)")
    assert 6 <= demo <= 12
    assert full / demo >= 3


def test_incomplete_expressions_present(benchmark):
    """The ♦-omission mechanism is exercised by the suite."""
    tasks = all_tasks()
    partial = benchmark.pedantic(
        lambda: sum(1 for t in tasks if t.demonstration.is_partial()),
        rounds=1, iterations=1)
    assert partial >= len(tasks) * 0.3

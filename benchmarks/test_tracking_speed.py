"""Tracking micro-benchmark: columnar vs row provenance evaluation.

The provenance-tracking semantics ``[[q(T̄)]]★`` dominates consistency-check
time: every concrete candidate reached by the search faces the ≺ judgment
over its tracked table.  The workload replays that exact population — for
provenance-heavy forum tasks (partition/group pipelines whose tracked terms
collapse whole groups), the first few hundred concrete candidates of the
instantiation stream — and evaluates it through a cold engine of each
backend via the batched ``evaluate_tracking_many`` entry point.

The columnar backend builds the provenance grid as TrackedBlock expression
columns: value shadows shared with the concrete block cache, selections and
``extractGroups`` shared across the concrete/tracking paths and across
sibling candidates, and per-*group* (not per-row) window-term construction.
The acceptance bar is a ≥1.3× speedup; in practice it lands well above.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.benchmarks import easy_tasks, instantiation_stream
from repro.engine import make_engine

#: Provenance-heavy forum-easy tasks: partition/group pipelines whose
#: tracked terms aggregate whole groups (cumsum / rank / share-of-total).
TRACKING_TASKS = (
    "fe09_cumulative_units_per_product",
    "fe10_salary_rank_within_dept",
    "fe20_share_of_region_total",
    "fe24_cumulative_quarterly_sales",
)

CANDIDATES_PER_TASK = 250
ROUNDS = 5
MIN_SPEEDUP = 1.3


def _candidates(task, cap=CANDIDATES_PER_TASK):
    """The task's real instantiation stream (shared helper)."""
    return instantiation_stream(task, cap)


def tracking_workload():
    wanted = set(TRACKING_TASKS)
    tasks = [t for t in easy_tasks() if t.name in wanted]
    return [(t.env, _candidates(t)) for t in tasks]


@pytest.fixture(scope="module")
def workload():
    return tracking_workload()


def _round(backend: str, workload) -> float:
    """One cold-cache pass of the whole candidate stream."""
    start = time.perf_counter()
    for env, queries in workload:
        engine = make_engine(backend)
        engine.evaluate_tracking_many(queries, env, errors="none")
    return time.perf_counter() - start


def measure(workload, rounds: int) -> tuple[float, float]:
    """Interleaved best-of-N times for both backends (same discipline as
    ``test_engine_speed``: interleaving cancels clock drift, best-of
    shrugs off load spikes, GC stays out of the measurement)."""
    row_times, columnar_times = [], []
    gc.collect()
    gc.disable()
    try:
        _round("row", workload)        # warm the bytecode/allocator once
        _round("columnar", workload)
        for _ in range(rounds):
            row_times.append(_round("row", workload))
            columnar_times.append(_round("columnar", workload))
    finally:
        gc.enable()
    return min(row_times), min(columnar_times)


def test_columnar_tracking_speedup(workload):
    n_queries = sum(len(qs) for _, qs in workload)
    assert n_queries > 500, "workload unexpectedly small"

    row_t, columnar_t = measure(workload, ROUNDS)
    if row_t / columnar_t < MIN_SPEEDUP:
        # One slow-machine retry with more rounds before declaring failure.
        row_t, columnar_t = measure(workload, ROUNDS * 2)
    speedup = row_t / columnar_t
    print(f"\nprovenance-tracking hot path ({n_queries} candidate queries"
          f" per round, best of {ROUNDS}+ rounds):")
    print(f"  row      {row_t * 1000:8.1f} ms")
    print(f"  columnar {columnar_t * 1000:8.1f} ms")
    print(f"  speedup  {speedup:8.2f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"columnar tracking only {speedup:.2f}x faster than row "
        f"(expected >= {MIN_SPEEDUP}x)")


def test_tracking_results_identical_on_workload(workload):
    """The benchmark's own workload is verified term-identical across
    backends (the registry-wide differential suite covers the rest)."""
    env, queries = workload[0]
    row, columnar = make_engine("row"), make_engine("columnar")
    row_out = row.evaluate_tracking_many(queries, env, errors="none")
    col_out = columnar.evaluate_tracking_many(queries, env, errors="none")
    assert row_out == col_out

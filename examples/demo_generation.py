"""How computation demonstrations are generated for the benchmarks (§5.1).

Shows the four-step procedure on one benchmark: evaluate the ground truth
under provenance-tracking semantics, sample two output rows, shuffle
commutative arguments, and truncate long expressions with ♦.  Also prints
the specification-size comparison the paper reports: demonstration cells
vs. the cells a full input-output example would need.

Run:  python examples/demo_generation.py
"""

from repro import DemoGenConfig, evaluate, evaluate_tracking, \
    generate_demonstration
from repro.benchmarks import all_tasks, get_task


def main() -> None:
    task = get_task("fe24_cumulative_quarterly_sales")
    env = task.env
    print(task.description)
    print("\nInput:")
    print(task.tables[0])

    tracked = evaluate_tracking(task.ground_truth, env)
    print("\nFull provenance-tracked output "
          f"({tracked.n_rows} x {tracked.n_cols} cells):")
    for i in range(min(3, tracked.n_rows)):
        print("  ", [repr(e)[:44] for e in tracked.exprs[i]])
    print("   ...")

    for seed in (0, 1):
        demo = generate_demonstration(task.ground_truth, env,
                                      DemoGenConfig(seed=seed),
                                      label=task.name)
        print(f"\nGenerated demonstration (seed={seed}, "
              f"{demo.size} cells):")
        for row in demo.cells:
            print("  ", [repr(e) for e in row])

    # Specification size across the whole suite (paper: ~9 vs ~50 cells).
    tasks = all_tasks()
    demo_cells = sum(t.demonstration.size for t in tasks) / len(tasks)
    full_cells = sum(t.full_output_size for t in tasks) / len(tasks)
    print(f"\nAcross all {len(tasks)} benchmarks:")
    print(f"  mean demonstration size: {demo_cells:.1f} cells")
    print(f"  mean full-output size:   {full_cells:.1f} cells "
          f"({full_cells / demo_cells:.1f}x larger)")


if __name__ == "__main__":
    main()

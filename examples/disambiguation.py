"""Disambiguating several demonstration-consistent queries (§3.2 Remarks).

A small demonstration is ambiguous: several queries can generalize it.  The
synthesizer returns a ranked list; this example then runs the interactive
disambiguation loop — asking "which value belongs in this output cell?" —
to narrow the candidates to the intended query, using a scripted oracle in
place of a human.

Run:  python examples/disambiguation.py
"""

from repro import Demonstration, Env, SynthesisConfig, Table, cell, \
    evaluate, partial_func, synthesize, to_sql
from repro.interaction import (
    disambiguate_interactively,
    distinguishing_cells,
    partition_candidates,
)


def main() -> None:
    table = Table.from_rows("T", ["ID", "Quarter", "Sales"], [
        ["A", 1, 10], ["A", 2, 20], ["A", 3, 15],
        ["B", 1, 20], ["B", 2, 15],
    ])
    env = Env.of(table)

    # A deliberately vague demonstration: partial sums with omissions.
    demo = Demonstration.of([
        [cell("T", 0, 0), partial_func("sum", cell("T", 0, 2))],
        [cell("T", 3, 0), partial_func("sum", cell("T", 3, 2))],
    ])
    print("Ambiguous demonstration (every cell partially omitted):")
    for row in demo.cells:
        print("  ", [repr(e) for e in row])

    result = synthesize([table], demo,
                        config=SynthesisConfig(max_operators=1, timeout_s=15,
                                               top_n=8))
    print(f"\n{len(result.queries)} consistent queries found:")
    for i, q in enumerate(result.queries):
        print(f"  [{i}] {to_sql(q, env).splitlines()[0]}")

    classes = partition_candidates(result.queries, env)
    print(f"\nObservational equivalence classes: {len(classes)}")

    cells = distinguishing_cells(result.queries, env, max_cells=3)
    print("\nBest distinguishing questions:")
    for c in cells:
        options = ", ".join(f"{v!r} -> keeps {len(ids)}"
                            for v, ids in c.options)
        print(f"  output cell ({c.row}, {c.col}): {options}")

    # Pretend the user wanted the cumulative sum per ID.
    target = next(q for q in result.queries
                  if getattr(q, "agg_func", None) == "cumsum")
    target_out = evaluate(target, env)

    def oracle(question):
        return target_out.cell(question.row, question.col)

    alive = disambiguate_interactively(result.queries, env, oracle)
    print(f"\nAfter the question loop, {len(alive)} candidate(s) remain:")
    for i in alive:
        print(to_sql(result.queries[i], env))


if __name__ == "__main__":
    main()

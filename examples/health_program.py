"""The paper's running example, end to end (§2, Figs. 1-6).

A city health-program table; the user wants, for each city, the percentage
of the population enrolled by the end of each quarter.  The solution needs
three operators: group-aggregate, windowed cumulative sum, and arithmetic.
The user demonstrates just two output rows — with an incomplete (♦) sum for
the quarter-4 row — and Sickle-style synthesis recovers the query.

Run:  python examples/health_program.py
"""

import time

from repro import (
    Demonstration,
    Env,
    SynthesisConfig,
    Table,
    cell,
    evaluate,
    evaluate_tracking,
    func,
    partial_func,
    synthesize,
    to_instructions,
    to_sql,
)

ENROLLMENT = {
    "A": [(1667, 1367), (256, 347), (148, 237), (556, 432)],
    "B": [(2578, 1200), (300, 400), (500, 600), (768, 801)],
}
POPULATION = {"A": 5668, "B": 10541}


def build_table() -> Table:
    rows = []
    for city in ("A", "B"):
        for quarter, (youth, adult) in enumerate(ENROLLMENT[city], start=1):
            rows.append([city, quarter, "Youth", youth, POPULATION[city]])
            rows.append([city, quarter, "Adult", adult, POPULATION[city]])
    return Table.from_rows(
        "T", ["City", "Quarter", "Group", "Enrolled", "Population"], rows)


def build_demo() -> Demonstration:
    """Fig. 3: quarter 1 and quarter 4 of city A, with a ♦-omitted sum."""
    return Demonstration.of([
        [cell("T", 0, 0), cell("T", 0, 1),
         func("percent",
              func("sum", cell("T", 0, 3), cell("T", 1, 3)),
              cell("T", 0, 4))],
        [cell("T", 6, 0), cell("T", 6, 1),
         func("percent",
              partial_func("sum", cell("T", 0, 3), cell("T", 1, 3),
                           cell("T", 7, 3)),
              cell("T", 6, 4))],
    ])


def main() -> None:
    table = build_table()
    env = Env.of(table)
    demo = build_demo()

    print("Input T (city health-program enrollment):")
    print(table)
    print("\nUser demonstration (2 rows; ♦ marks omitted values):")
    for row in demo.cells:
        print("  ", [repr(e) for e in row])

    config = SynthesisConfig(max_operators=3, timeout_s=60)
    start = time.monotonic()
    result = synthesize([table], demo, abstraction="provenance",
                        config=config)
    elapsed = time.monotonic() - start

    print(f"\nSynthesis: {result.stats.visited} queries visited, "
          f"{result.stats.pruned} pruned, "
          f"{len(result.queries)} consistent, {elapsed:.1f}s")

    top = result.queries[0]
    print("\nTop query:")
    print(to_instructions(top, env))
    print("\nSQL:")
    print(to_sql(top, env))
    print("\nOutput:")
    print(evaluate(top, env))

    # Show the provenance-tracking view of the output (Fig. 4)
    tracked = evaluate_tracking(top, env)
    print("\nProvenance of the first output row (Fig. 4 style):")
    for name, expr in zip(tracked.columns, tracked.exprs[0]):
        print(f"  {name}: {expr!r}")


if __name__ == "__main__":
    main()

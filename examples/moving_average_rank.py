"""Forum-style scenario: rank departments by average salary.

A two-step analytical task over an HR table: aggregate salaries per
department, then rank the departments.  The demonstration is generated
programmatically from the ground truth (the §5.1 procedure) — exactly what
the benchmark harness does — and we compare all three abstraction
techniques on it.

Run:  python examples/moving_average_rank.py
"""

import time

from repro import (
    Env,
    Group,
    Partition,
    SynthesisConfig,
    TableRef,
    evaluate,
    generate_demonstration,
    synthesize,
    to_sql,
)
from repro.benchmarks.datagen import employee_salaries
from repro.synthesis import same_output


def main() -> None:
    table = employee_salaries()
    env = Env.of(table)
    print("Input table (employees):")
    print(table)

    # Ground truth: average salary per department, then rank departments.
    gt = Partition(
        Group(TableRef("employees"), keys=(1,), agg_func="avg", agg_col=2),
        keys=(), agg_func="rank_desc", agg_col=1)
    print("\nTarget output:")
    print(evaluate(gt, env))

    demo = generate_demonstration(gt, env, label="example-dept-rank")
    print("\nAuto-generated demonstration (§5.1 procedure):")
    for row in demo.cells:
        print("  ", [repr(e) for e in row])

    config = SynthesisConfig(max_operators=2, timeout_s=30)
    for technique in ("provenance", "value", "type"):
        start = time.monotonic()
        result = synthesize([table], demo, abstraction=technique,
                            config=config,
                            stop_predicate=lambda q: same_output(q, gt, env))
        elapsed = time.monotonic() - start
        status = "solved" if result.solved else "timed out"
        print(f"\n[{technique}] {status} in {elapsed:.2f}s "
              f"({result.stats.visited} queries visited, "
              f"{result.stats.pruned} pruned)")
        if result.solved:
            print(to_sql(result.target, env))


if __name__ == "__main__":
    main()

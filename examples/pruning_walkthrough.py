"""Why abstract provenance prunes where value/type abstraction cannot.

Reproduces the §2.2 / Fig. 6 narrative: the partial query

    q_B:  t1 <- group(T, [City, Quarter, Population], □, □)
          t2 <- arithmetic(t1, □, □)

cannot realize the user demonstration — the quarter-4 percentage needs
enrollment values from *eight* input rows to flow into one output cell, and
no instantiation of q_B merges those rows.  Abstract provenance proves it;
shape- and value-based abstractions cannot.

Run:  python examples/pruning_walkthrough.py
"""

from repro import Arithmetic, Env, Group, Hole, Partition, TableRef
from repro.abstraction import (
    ProvenanceAbstraction,
    TypeAbstraction,
    ValueAbstraction,
    abstract_eval,
)
from health_program import build_demo, build_table  # sibling example module

H = Hole


def main() -> None:
    table = build_table()
    env = Env.of(table)
    demo = build_demo()

    q_b = Arithmetic(
        Group(TableRef("T"), keys=(0, 1, 4), agg_func=H("agg_func"),
              agg_col=H("agg_col")),
        func=H("func"), cols=H("cols"))

    print("Partial query q_B (Fig. 6):")
    from repro import to_instructions
    print(to_instructions(q_b, env))

    abs_table = abstract_eval(q_b, env)
    print(f"\nAbstract output: {abs_table.n_rows} rows x "
          f"{abs_table.n_cols} cols")
    print("Abstract provenance of output row 1:")
    for j in range(abs_table.n_cols):
        refs = sorted(repr(r) for r in abs_table.cell(0, j).refs)
        shown = ", ".join(refs[:4]) + (" ..." if len(refs) > 4 else "")
        print(f"  col {j}: {{{shown}}}")

    print("\nThe demo's quarter-4 cell needs values from rows 1-8 of T in "
          "ONE cell;\nno abstract cell of q_B contains them all.\n")

    verdicts = {
        "provenance": ProvenanceAbstraction().feasible(q_b, env, demo),
        "value (Scythe-style)": ValueAbstraction().feasible(q_b, env, demo),
        "type (Morpheus-style)": TypeAbstraction().feasible(q_b, env, demo),
    }
    for name, feasible in verdicts.items():
        print(f"  {name:22s} -> {'keeps (cannot prune)' if feasible else 'PRUNES'}")

    # The correct skeleton, by contrast, must survive:
    good = Arithmetic(
        Partition(Group(TableRef("T"), keys=(0, 1, 4), agg_func=H("f"),
                        agg_col=H("c")),
                  keys=H("k"), agg_func=H("f"), agg_col=H("c")),
        func=H("f"), cols=H("c"))
    assert ProvenanceAbstraction().feasible(good, env, demo)
    print("\nThe correct group->partition->arithmetic path survives the "
          "provenance check.")


if __name__ == "__main__":
    main()

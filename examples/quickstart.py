"""Quickstart: synthesize an analytical SQL query from a tiny demonstration.

This walks the paper's §1 example: given the sales table T, demonstrate
"sum Sales per ID" by dragging input cells into two output rows, then let
the synthesizer recover the GROUP BY query.

Run:  python examples/quickstart.py
"""

from repro import (
    Demonstration,
    Env,
    SynthesisConfig,
    Table,
    cell,
    func,
    synthesize,
    to_instructions,
    to_sql,
)


def main() -> None:
    # --- 1. the input table (paper §1) -------------------------------------
    table = Table.from_rows("T", ["ID", "Quarter", "Sales"], [
        ["A", 1, 10],
        ["A", 2, 20],
        ["A", 3, 15],
        ["B", 1, 20],
        ["B", 2, 15],
    ])
    print("Input table T:")
    print(table)

    # --- 2. the computation demonstration ----------------------------------
    # Two output rows: for each, the user drags the ID cell and *shows the
    # computation* of the aggregate — not just its value.
    demo = Demonstration.of([
        [cell("T", 0, 0), func("sum", cell("T", 0, 2), cell("T", 1, 2),
                               cell("T", 2, 2))],
        [cell("T", 3, 0), func("sum", cell("T", 3, 2), cell("T", 4, 2))],
    ])
    print("\nDemonstration E (cell-level computation traces):")
    for row in demo.cells:
        print("  ", [repr(e) for e in row])

    # --- 3. synthesize -------------------------------------------------------
    # ``backend`` picks the evaluation engine: "columnar" (default) caches
    # evaluated subtrees by structural key and runs vectorized kernels;
    # "row" is the reference interpreter.  Results are identical either way.
    config = SynthesisConfig(max_operators=1, timeout_s=10,
                             backend="columnar")
    result = synthesize([table], demo, abstraction="provenance",
                        config=config)

    env = Env.of(table)
    print(f"\nSearch: visited {result.stats.visited} queries, "
          f"pruned {result.stats.pruned}, "
          f"found {len(result.queries)} consistent")

    top = result.queries[0]
    print("\nTop-ranked query (instruction form):")
    print(to_instructions(top, env))
    print("\nAs SQL:")
    print(to_sql(top, env))

    from repro import evaluate
    print("\nIts output:")
    print(evaluate(top, env))


if __name__ == "__main__":
    main()

"""TPC-DS-style scenario: cumulative monthly sales per item (q51 pattern).

Joins the store_sales fact table with the date dimension, aggregates monthly
revenue per item, and computes a running total — a window-function pipeline
with a star-schema join, synthesized from a 2-row demonstration.

Run:  python examples/tpcds_cumulative.py
"""

import time

from repro import Env, SynthesisConfig, evaluate, synthesize, to_sql
from repro.benchmarks import get_task
from repro.synthesis import same_output


def main() -> None:
    task = get_task("td01_item_cumulative_monthly_sales")
    env = task.env

    print(task.description)
    for table in task.tables:
        print(f"\n{table.name}:")
        print(table)

    print("\nDemonstration:")
    for row in task.demonstration.cells:
        print("  ", [repr(e)[:78] for e in row])

    gt = task.ground_truth
    config = task.config.replace(timeout_s=60)
    start = time.monotonic()
    result = synthesize(task.tables, task.demonstration,
                        abstraction="provenance", config=config,
                        stop_predicate=lambda q: same_output(q, gt, env))
    elapsed = time.monotonic() - start

    if not result.solved:
        print(f"\nnot solved within {config.timeout_s}s "
              f"({result.stats.visited} queries visited)")
        return

    print(f"\nSolved in {elapsed:.2f}s; visited {result.stats.visited} "
          f"queries, pruned {result.stats.pruned}.")
    print("\nSynthesized SQL:")
    print(to_sql(result.target, env))
    print("\nOutput:")
    print(evaluate(result.target, env))


if __name__ == "__main__":
    main()

"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so PEP 517
editable installs fail; ``pip install -e . --no-use-pep517
--no-build-isolation`` uses this shim instead.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()

"""Setup shim (the execution environment has no ``wheel`` package and no
network, so PEP 517 editable installs fail; ``pip install -e .
--no-use-pep517 --no-build-isolation`` uses this shim instead).

The library itself is dependency-free pure Python.  The ``numpy`` extra
enables the vectorized ``backend="numpy"`` engine kernels::

    pip install -e .[numpy]

Without it, ``backend="numpy"`` degrades to the pure-python columnar
engine with a logged warning (identical results, slower kernels).
"""

from setuptools import find_packages, setup

setup(
    name="repro-sickle",
    version="0.5.0",
    description=("Reproduction of 'Synthesizing analytical SQL queries "
                 "from computation demonstration' (PLDI 2022)"),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=[],
    extras_require={
        # Optional vectorized ColumnBlock kernels (repro.engine, the
        # "numpy" backend).  Any NumPy >= 1.24 works; results are
        # byte-identical with or without it (enforced by
        # tests/test_backend_fuzz.py and the differential suites).
        "numpy": ["numpy>=1.24"],
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
)

"""repro — a reproduction of *Synthesizing Analytical SQL Queries from
Computation Demonstration* (Sickle, PLDI 2022).

Public API tour
---------------

Build tables and queries::

    from repro import Table, Env, TableRef, Group, Partition, Arithmetic

Demonstrate a computation and synthesize queries::

    from repro import Demonstration, cell, func, partial_func, synthesize

    demo = Demonstration.of([[cell("T", 0, 0), func("sum", cell("T", 0, 3),
                                                    cell("T", 1, 3))]])
    result = synthesize([table], demo)
    print(to_sql(result.queries[0], Env.of(table)))

The one-stop supported surface is :mod:`repro.api` — one-shot
``synthesize``, resumable ``SynthesisSession`` objects, and the
``SynthesisService`` warm-pool serving layer are all re-exported there
(and the most-used names here as well).

Everything the paper's evaluation needs lives under
:mod:`repro.benchmarks` (the 80-task suite) and :mod:`repro.experiments`
(figure/report harness).
"""

from repro.lang import (
    Arithmetic,
    Env,
    Filter,
    Group,
    Hole,
    Join,
    LeftJoin,
    Partition,
    Proj,
    Query,
    Sort,
    TableRef,
    parse_instructions,
    to_instructions,
    to_sql,
)
from repro.provenance import (
    Demonstration,
    cell,
    const,
    demo_consistent,
    func,
    generalizes,
    group,
    partial_func,
)
from repro.engine import ColumnarEngine, EvalEngine, RowEngine, make_engine
from repro.semantics import evaluate, evaluate_tracking
from repro.spec import DemoGenConfig, generate_demonstration
from repro.synthesis import (
    SynthesisConfig,
    SynthesisResult,
    SynthesisSession,
    Synthesizer,
    synthesize,
)
from repro.serve import ServiceConfig, SynthesisService, WorkerPool
from repro.table import Table
from repro import api

__version__ = "1.0.0"

__all__ = [
    # the supported facade
    "api",
    # tables
    "Table", "Env",
    # language
    "Query", "TableRef", "Filter", "Join", "LeftJoin", "Proj", "Sort",
    "Group", "Partition", "Arithmetic", "Hole", "to_sql", "to_instructions",
    "parse_instructions",
    # semantics / engines
    "evaluate", "evaluate_tracking",
    "EvalEngine", "RowEngine", "ColumnarEngine", "make_engine",
    # demonstrations
    "Demonstration", "cell", "const", "func", "partial_func", "group",
    "generalizes", "demo_consistent",
    "generate_demonstration", "DemoGenConfig",
    # synthesis
    "synthesize", "Synthesizer", "SynthesisConfig", "SynthesisResult",
    "SynthesisSession",
    # serving
    "SynthesisService", "ServiceConfig", "WorkerPool",
    "__version__",
]

"""Abstract interpreters for partial queries.

Three abstractions share the pluggable interface
:class:`~repro.abstraction.base.Abstraction`:

* :class:`~repro.abstraction.provenance_abs.ProvenanceAbstraction` — the
  paper's contribution (Fig. 11): over-approximate cell-level provenance;
* :class:`~repro.abstraction.type_abs.TypeAbstraction` — Morpheus-style
  table-shape reasoning (baseline);
* :class:`~repro.abstraction.value_abs.ValueAbstraction` — Scythe-style
  known-value tracking (baseline).

All three answer one question: *can some instantiation of this partial query
still satisfy the demonstration?*  ``False`` lets the enumerator prune.
"""

from repro.abstraction.base import Abstraction, NoAbstraction, make_abstraction
from repro.abstraction.cells import AbstractCell, AbstractTable
from repro.abstraction.consistency import abstract_consistent
from repro.abstraction.provenance_abs import ProvenanceAbstraction, abstract_eval
from repro.abstraction.type_abs import TypeAbstraction
from repro.abstraction.value_abs import ValueAbstraction

__all__ = [
    "Abstraction", "NoAbstraction", "make_abstraction",
    "AbstractCell", "AbstractTable", "abstract_consistent",
    "ProvenanceAbstraction", "abstract_eval",
    "TypeAbstraction", "ValueAbstraction",
]

"""The pluggable abstraction interface used by the enumerator (Alg. 1, l.13).

An abstraction's :meth:`feasible` implements ``AbstractReasoning`` +
``UNSAT``: it must return ``False`` only when *no* instantiation of the
partial query can satisfy the demonstration (Property 2) — soundness of the
whole synthesizer rests on this contract, and the property-based tests
hammer it.
"""

from __future__ import annotations

from repro.lang.ast import Env, Query
from repro.provenance.demo import Demonstration


class Abstraction:
    """Base class: subclasses override :meth:`feasible`.

    Abstractions evaluate concrete subqueries through an
    :class:`~repro.engine.base.EvalEngine`; the synthesizer binds its engine
    via :meth:`bind_engine` so the whole session shares one set of caches.
    Unbound abstractions (direct API use, tests) lazily create a private
    engine — still instance-owned, never module-global.
    """

    name = "abstract"

    #: The bound evaluation engine (None until :meth:`bind_engine`).
    engine = None

    def bind_engine(self, engine) -> None:
        """Evaluate through ``engine`` from now on (drops private caches)."""
        self.engine = engine

    def _engine(self):
        if self.engine is None:
            from repro.engine.row import RowEngine
            self.engine = RowEngine()
        return self.engine

    def feasible(self, query: Query, env: Env, demo: Demonstration) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop any per-run caches (called between benchmark tasks)."""
        if self.engine is not None:
            self.engine.reset()


class NoAbstraction(Abstraction):
    """Never prunes — the plain enumerative-search baseline."""

    name = "none"

    def feasible(self, query: Query, env: Env, demo: Demonstration) -> bool:
        return True


def make_abstraction(name: str, **kwargs) -> Abstraction:
    """Factory: ``provenance`` | ``type`` | ``value`` | ``none``."""
    from repro.abstraction.provenance_abs import ProvenanceAbstraction
    from repro.abstraction.type_abs import TypeAbstraction
    from repro.abstraction.value_abs import ValueAbstraction

    factories = {
        "provenance": ProvenanceAbstraction,
        "type": TypeAbstraction,
        "value": ValueAbstraction,
        "none": NoAbstraction,
    }
    try:
        return factories[name](**kwargs)
    except KeyError:
        raise ValueError(
            f"unknown abstraction {name!r}; choose from {sorted(factories)}") from None

"""Abstract tables: grids of over-approximated provenance sets.

Each abstract cell carries

* ``refs`` — a set of input-cell references over-approximating every input
  value that can flow into this position under *any* instantiation of the
  partial query (the paper's ``T◦[i, j]``), and
* an optional concrete shadow value (``known`` + ``value``) — exact cell
  values survive operators that only move rows around, and they are what
  lets the analyzer apply the *strong* abstraction tier (grouping needs
  concrete key values: ``extractGroups([[T◦[c̄]]])``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.provenance.expr import CellRef
from repro.table.values import Value

EMPTY_REFS: frozenset[CellRef] = frozenset()


#: What kind of term a cell can hold under the tracking semantics:
#: ``ref`` — raw input references (and group{} collapses of them);
#: ``aggregate`` / ``ranker`` / ``arithmetic`` — terms headed by a function
#: of that registry kind; ``window`` — an uninstantiated partition output
#: (either an aggregate or a ranker); ``any`` — no information.
HEAD_REF = "ref"
HEAD_AGGREGATE = "aggregate"
HEAD_RANKER = "ranker"
HEAD_ARITHMETIC = "arithmetic"
HEAD_WINDOW = "window"
HEAD_ANY = "any"


def head_matches(demo_kind: str, host_head: str) -> bool:
    """Can a cell with producer ``host_head`` generalize a demo cell whose
    outermost term has ``demo_kind``?"""
    if host_head == HEAD_ANY:
        return True
    if host_head == HEAD_WINDOW:
        return demo_kind in (HEAD_AGGREGATE, HEAD_RANKER)
    return demo_kind == host_head


@dataclass(frozen=True)
class AbstractCell:
    """One cell of an abstract table."""

    refs: frozenset[CellRef]
    value: Value = None
    known: bool = False
    head: str = HEAD_ANY

    @staticmethod
    def of_ref(ref: CellRef, value: Value) -> "AbstractCell":
        return AbstractCell(frozenset((ref,)), value, True, HEAD_REF)

    @staticmethod
    def unknown(refs: frozenset[CellRef],
                head: str = HEAD_ANY) -> "AbstractCell":
        return AbstractCell(refs, None, False, head)


@dataclass(frozen=True)
class AbstractTable:
    """An abstract output ``T◦``: rows of :class:`AbstractCell`.

    ``rows_exact`` records whether the row *set* is exact or a superset of
    every possible instantiation's rows (it becomes a superset once an
    uninstantiated filter/join predicate is passed through).  Aggregate
    shadow values may only be computed over exact row sets.
    """

    rows: tuple[tuple[AbstractCell, ...], ...]
    rows_exact: bool = True

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_cols(self) -> int:
        return len(self.rows[0]) if self.rows else 0

    def cell(self, i: int, j: int) -> AbstractCell:
        return self.rows[i][j]

    def column(self, j: int) -> list[AbstractCell]:
        return [row[j] for row in self.rows]

    def column_known(self, cols: tuple[int, ...]) -> bool:
        """True when every cell of every listed column has a known value."""
        return all(row[c].known for row in self.rows for c in cols)

    def all_refs(self) -> frozenset[CellRef]:
        out: frozenset[CellRef] = EMPTY_REFS
        for row in self.rows:
            for c in row:
                out |= c.refs
        return out

    def row_refs(self, i: int) -> frozenset[CellRef]:
        out: frozenset[CellRef] = EMPTY_REFS
        for c in self.rows[i]:
            out |= c.refs
        return out

"""Abstract provenance consistency ``E ◁ T◦`` (Definition 3).

The demonstration embeds into the abstract table when there are injective
row and column assignments under which every demonstration cell's input-cell
references are a subset of the assigned abstract cell's over-approximated
provenance: ``ref(E[i,j]) ⊆ T◦[r_i, c_j]``.

By Property 2, failure of this check proves that *no* instantiation of the
partial query satisfies the demonstration — the pruning foundation.

Value-shadow refinement (sound, ablatable)
------------------------------------------
For a *complete* demonstration cell (no ♦), ``e ≺ e★`` forces the two
expressions to evaluate to the same value: constants and cell references
match syntactically, ``group{...}`` members all share one value, and the
complete commutative/positional rules demand argument bijections.  So when
the abstract cell carries an exact value shadow (concrete subqueries, strong
tiers over exact row sets) and that value differs from the demonstrated
cell's value, the mapping is refuted.  This is what lets the analyzer reject
a wrong aggregation *function* — which leaves provenance sets untouched —
without enumerating its entire downstream subtree.
"""

from __future__ import annotations

from repro.abstraction.cells import AbstractTable, head_matches
from repro.errors import ExpressionError
from repro.lang.ast import Env
from repro.lang.functions import function_spec
from repro.provenance.demo import Demonstration
from repro.provenance.expr import FuncApp
from repro.provenance.refs import refs_of
from repro.util.matching import embedding_exists
from repro.table.values import value_eq

_NO_VALUE = object()


def _demo_values(demo: Demonstration, env: Env | None) -> list[list[object]]:
    """Per-cell demonstrated values; ``_NO_VALUE`` where not computable."""
    out: list[list[object]] = []
    for row in demo.cells:
        values: list[object] = []
        for expr in row:
            if env is None:
                values.append(_NO_VALUE)
                continue
            try:
                values.append(expr.evaluate(env))
            except ExpressionError:
                values.append(_NO_VALUE)  # partial expression (♦)
        out.append(values)
    return out


def _demo_heads(demo: Demonstration) -> list[list[str]]:
    """Outermost term kind per demo cell ('ref' for references/constants)."""
    out = []
    for row in demo.cells:
        out.append([function_spec(e.func).kind if isinstance(e, FuncApp)
                    else "ref" for e in row])
    return out


def _demo_analysis(demo: Demonstration, env: Env | None,
                   value_shadow: bool) -> tuple:
    refs = [[refs_of(demo.cell(i, j)) for j in range(demo.n_cols)]
            for i in range(demo.n_rows)]
    values = _demo_values(demo, env) if value_shadow else None
    heads = _demo_heads(demo)
    return refs, values, heads


class DemoAnalysisCache:
    """Instance-owned memo of per-cell demo analyses.

    Demonstrations and environments are fixed across the thousands of
    feasibility checks of one synthesis run, so their extracted
    refs/values/heads are memoized by identity.  Each entry *pins* both
    the demonstration and the environment it was computed against: an
    ``id()`` can only be reused after its object is garbage-collected, so
    pinning makes the identity keys stable for the entry's lifetime — a
    recycled ``Env`` id can never surface another environment's cell
    values.  (Both objects are still identity-checked on every hit as a
    belt-and-braces guard.)

    The cache is owned by whoever performs the consistency checks
    (normally a :class:`~repro.abstraction.provenance_abs.ProvenanceAbstraction`
    instance) — there is no module-global evaluation state, matching the
    engine layer's session-isolation invariant.
    """

    def __init__(self, maxsize: int = 256) -> None:
        self._maxsize = maxsize
        self._entries: dict[tuple[int, int, bool], tuple] = {}

    def analysis(self, demo: Demonstration, env: Env | None,
                 value_shadow: bool) -> tuple:
        key = (id(demo), id(env), value_shadow)
        cached = self._entries.get(key)
        if cached is not None and cached[0] is demo and cached[1] is env:
            return cached[2], cached[3], cached[4]
        refs, values, heads = _demo_analysis(demo, env, value_shadow)
        if len(self._entries) > self._maxsize:
            self._entries.clear()
        self._entries[key] = (demo, env, refs, values, heads)
        return refs, values, heads

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


def abstract_consistent(table: AbstractTable, demo: Demonstration,
                        env: Env | None = None,
                        value_shadow: bool = True,
                        head_typing: bool = True,
                        demo_cache: DemoAnalysisCache | None = None) -> bool:
    """Definition 3: ``E ◁ T◦`` (+ value-shadow / head-typing refinements).

    Head typing: under the tracking semantics each operator family produces
    one kind of term (arithmetic functions only from ``arithmetic``, rank
    terms only from ``partition``, ...), and ``e ≺ e★`` preserves the
    outermost function.  A demonstration cell can therefore only embed into
    an abstract cell whose producer can build its head kind — which stops
    not-yet-instantiated upper operators from shielding wrong lower
    parameters.

    ``demo_cache`` memoizes the demo analysis across calls; when omitted
    the analysis is computed fresh (the direct-API / test path).
    """
    if demo_cache is not None:
        demo_refs, demo_vals, demo_heads = \
            demo_cache.analysis(demo, env, value_shadow)
    else:
        demo_refs, demo_vals, demo_heads = \
            _demo_analysis(demo, env, value_shadow)

    # Weak / medium abstraction tiers produce many identical rows (the whole
    # table collapses to one shape).  The embedding only needs each distinct
    # row up to ``demo.n_rows`` times (injectivity is per-row-slot), so
    # deduplicating with a multiplicity cap shrinks the matching problem from
    # hundreds of rows to a handful.
    kept_rows: list[tuple] = []
    seen: dict[tuple, int] = {}
    for row in table.rows:
        key = tuple((c.refs, c.value if c.known else _NO_VALUE) for c in row)
        count = seen.get(key, 0)
        if count < demo.n_rows:
            seen[key] = count + 1
            kept_rows.append(row)

    def cell_ok(i: int, j: int, r: int, c: int) -> bool:
        cell = kept_rows[r][c]
        if not demo_refs[i][j] <= cell.refs:
            return False
        if head_typing and not head_matches(demo_heads[i][j], cell.head):
            return False
        if demo_vals is not None and cell.known:
            demonstrated = demo_vals[i][j]
            if demonstrated is not _NO_VALUE \
                    and not value_eq(cell.value, demonstrated):
                return False
        return True

    # The embedding search materializes this relation once as row bitmasks
    # and runs the bitset backtracking shared with the Definition-1 fast
    # path — each (demo cell, abstract cell) pair is judged at most once.
    return embedding_exists(demo.n_rows, demo.n_cols,
                            len(kept_rows), table.n_cols, cell_ok)

"""Abstract data provenance — the paper's core abstraction (Fig. 11).

Given a partial query ``q`` and inputs ``T̄``, the analyzer returns an
abstract table ``T◦ = [[q(T̄)]]◦`` whose every cell over-approximates the set
of input cells that can flow into that position under *any* instantiation of
``q`` (Property 1).  Precision climbs a ladder as parameters are filled:

* **weak** — no parameters known: a new aggregate/arithmetic column may draw
  from every cell (of the row, for row-local arithmetic; of the table, for
  grouping operators);
* **medium** — grouping/partition keys known but key *values* not yet
  concrete: the new column may draw from all rows but only non-key columns;
* **strong** — key values concrete: ``extractGroups`` determines the actual
  partition, and each new cell draws only from its own group's rows.

Two sound refinements beyond the figure (both toggleable for ablation):

* *target-column refinement* — once the aggregation column ``c_t`` is
  instantiated, the new column draws only from ``c_t`` (the figure's rules
  leave the whole ``α(c)`` parameter as one hole);
* *value shadows* — exact cell values are propagated where possible, which
  is what makes the strong tier applicable above partially-formed operators.

Concrete subqueries are evaluated under the tracking semantics and lifted,
exactly as §4 prescribes ("the analyzer will evaluate q using
provenance-tracking semantics ... to achieve stronger analysis").

All memoization lives in :class:`ProvenanceAnalyzer` *instances* (bounded
caches) — there is no module-global evaluation state, so independent
synthesis sessions never share or clobber each other's results.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.abstraction.base import Abstraction
from repro.abstraction.cells import (
    EMPTY_REFS,
    HEAD_AGGREGATE,
    HEAD_ARITHMETIC,
    HEAD_REF,
    HEAD_WINDOW,
    AbstractCell,
    AbstractTable,
)
from repro.abstraction.consistency import DemoAnalysisCache, \
    abstract_consistent
from repro.engine.cache import BoundedCache
from repro.errors import EvaluationError
from repro.lang import ast
from repro.lang.functions import analytic_spec, apply_function, function_spec
from repro.lang.holes import Hole, is_concrete
from repro.provenance.demo import Demonstration
from repro.provenance.expr import FuncApp, GroupSet
from repro.provenance.refs import refs_of
from repro.semantics.groups import extract_groups, group_index_map

DEFAULT_EVAL_CACHE = 100_000
DEFAULT_HELPER_CACHE = 50_000


def _expr_head(expr) -> str:
    """Producer kind of a tracked term (group{} collapses are transparent —
    the ≺ judgment descends into any member)."""
    if isinstance(expr, GroupSet):
        return _expr_head(expr.members[0])
    if isinstance(expr, FuncApp):
        return function_spec(expr.func).kind
    return HEAD_REF


def _analytic_head(func_name: str | None) -> str:
    """Head of a partition output column for a (possibly unknown) α′."""
    if func_name is None:
        return HEAD_WINDOW
    return function_spec(analytic_spec(func_name).term_name).kind


def _union_refs(cells) -> frozenset:
    out = EMPTY_REFS
    for c in cells:
        out |= c.refs
    return out


def _join_heads(cells) -> str:
    """Common head of a cell collection; ``any`` when they disagree."""
    from repro.abstraction.cells import HEAD_ANY
    heads = {c.head for c in cells}
    if len(heads) == 1:
        return next(iter(heads))
    return HEAD_ANY


class ProvenanceAnalyzer:
    """``[[q(T̄)]]◦`` with all memoization owned by this instance.

    Concrete subqueries are evaluated through ``engine`` (tracked tables are
    lifted to abstract cells), so the analyzer reuses the synthesis session's
    subtree caches.
    """

    def __init__(self, engine=None,
                 eval_cache_size: int | None = DEFAULT_EVAL_CACHE,
                 helper_cache_size: int | None = DEFAULT_HELPER_CACHE) -> None:
        if engine is None:
            from repro.engine.row import RowEngine
            engine = RowEngine()
        self.engine = engine
        self._tables: BoundedCache = BoundedCache(eval_cache_size)
        self._column_heads: BoundedCache = BoundedCache(helper_cache_size)
        self._column_unions: BoundedCache = BoundedCache(helper_cache_size)
        self._table_unions: BoundedCache = BoundedCache(helper_cache_size)
        self._groupings: BoundedCache = BoundedCache(helper_cache_size)
        self._group_key_cells: BoundedCache = BoundedCache(helper_cache_size)
        self._group_pool_refs: BoundedCache = BoundedCache(helper_cache_size)

    def clear(self) -> None:
        """Drop memoized abstract results (between experiment runs)."""
        self._tables.clear()
        self._column_heads.clear()
        self._column_unions.clear()
        self._table_unions.clear()
        self._groupings.clear()
        self._group_key_cells.clear()
        self._group_pool_refs.clear()

    # ---------------------------------------------------------------- entry
    def abstract_eval(self, query: ast.Query, env: ast.Env,
                      target_refinement: bool = True) -> AbstractTable:
        """``[[q(T̄)]]◦`` for a (possibly partial) query."""
        key = (query, env, target_refinement)
        hit = self._tables.get(key)
        if hit is not None:
            return hit
        table = self._eval(query, env, target_refinement)
        self._tables[key] = table
        return table

    def _eval(self, query: ast.Query, env: ast.Env,
              refine: bool) -> AbstractTable:
        if is_concrete(query):
            return self._lift_tracked(query, env)

        if isinstance(query, ast.Filter):
            child = self.abstract_eval(query.child, env, refine)
            # An unknown predicate keeps at most these rows: same cells, row
            # set no longer exact.
            return AbstractTable(child.rows, rows_exact=False)

        if isinstance(query, ast.Join):
            return self._abstract_join(query, env, refine, outer=False)

        if isinstance(query, ast.LeftJoin):
            return self._abstract_join(query, env, refine, outer=True)

        if isinstance(query, ast.Proj):
            child = self.abstract_eval(query.child, env, refine)
            if isinstance(query.cols, Hole):
                return child
            rows = tuple(tuple(row[c] for c in query.cols)
                         for row in child.rows)
            return AbstractTable(rows, rows_exact=child.rows_exact)

        if isinstance(query, ast.Sort):
            # Sorting permutes rows; the abstraction is order-insensitive, so
            # the child's abstract table is already sound.
            return self.abstract_eval(query.child, env, refine)

        if isinstance(query, ast.Group):
            return self._abstract_group(query, env, refine)

        if isinstance(query, ast.Partition):
            return self._abstract_partition(query, env, refine)

        if isinstance(query, ast.Arithmetic):
            return self._abstract_arithmetic(query, env, refine)

        raise EvaluationError(f"no abstract rule for {type(query).__name__}")

    def _lift_tracked(self, query: ast.Query, env: ast.Env) -> AbstractTable:
        return self.lift_tracked_many((query,), env)[0]

    def lift_tracked_many(self, queries, env: ast.Env) -> list[AbstractTable]:
        """Lift a batch of concrete subqueries through the engine's batched
        tracking evaluation (§4: concrete subqueries are evaluated under
        the tracking semantics for stronger analysis) — one engine dispatch
        for the whole sibling family."""
        out = []
        for tracked in self.engine.evaluate_tracking_many(queries, env):
            rows = tuple(
                tuple(AbstractCell(refs_of(expr), value, True,
                                   _expr_head(expr))
                      for expr, value in zip(expr_row, value_row))
                for expr_row, value_row in zip(tracked.exprs, tracked.values))
            out.append(AbstractTable(rows, rows_exact=True))
        return out

    # ------------------------------------------------------- cached helpers
    def column_heads(self, child: AbstractTable) -> tuple[str, ...]:
        hit = self._column_heads.get(child)
        if hit is None:
            hit = tuple(_join_heads(child.column(j))
                        for j in range(child.n_cols))
            self._column_heads[child] = hit
        return hit

    def column_unions(self, child: AbstractTable) -> tuple[frozenset, ...]:
        hit = self._column_unions.get(child)
        if hit is None:
            hit = tuple(_union_refs(child.column(j))
                        for j in range(child.n_cols))
            self._column_unions[child] = hit
        return hit

    def table_union(self, child: AbstractTable) -> frozenset:
        hit = self._table_unions.get(child)
        if hit is None:
            hit = _union_refs(c for row in child.rows for c in row)
            self._table_unions[child] = hit
        return hit

    def grouping(self, child: AbstractTable,
                 keys: tuple[int, ...]) -> tuple[tuple[int, ...], ...]:
        """``extractGroups`` over concrete key shadows, cached per
        (child, keys).

        Every (agg_col, agg_func) sibling in the search shares this grouping
        — caching it is the difference between linear and quadratic
        enumeration cost around grouping operators.
        """
        key = (child, keys)
        hit = self._groupings.get(key)
        if hit is None:
            key_rows = [[row[k].value for k in keys] for row in child.rows]
            hit = tuple(tuple(g) for g in extract_groups(key_rows))
            self._groupings[key] = hit
        return hit

    def group_key_cells(self, child: AbstractTable, keys: tuple[int, ...]
                        ) -> tuple[tuple[AbstractCell, ...], ...]:
        key = (child, keys)
        hit = self._group_key_cells.get(key)
        if hit is None:
            groups = self.grouping(child, keys)
            heads = self.column_heads(child)
            hit = tuple(
                tuple(AbstractCell(_union_refs(child.rows[i][k] for i in g),
                                   child.rows[g[0]][k].value, True, heads[k])
                      for k in keys)
                for g in groups)
            self._group_key_cells[key] = hit
        return hit

    def group_pool_refs(self, child: AbstractTable, keys: tuple[int, ...],
                        agg_pool: tuple[int, ...]) -> tuple[frozenset, ...]:
        """Per-group union of refs over the aggregation candidate columns."""
        key = (child, keys, agg_pool)
        hit = self._group_pool_refs.get(key)
        if hit is None:
            groups = self.grouping(child, keys)
            out = []
            for g in groups:
                refs = EMPTY_REFS
                for i in g:
                    for c in agg_pool:
                        refs |= child.rows[i][c].refs
                out.append(refs)
            hit = tuple(out)
            self._group_pool_refs[key] = hit
        return hit

    # ------------------------------------------------------- operator rules
    def _abstract_join(self, query, env: ast.Env, refine: bool,
                       outer: bool) -> AbstractTable:
        left = self.abstract_eval(query.left, env, refine)
        right = self.abstract_eval(query.right, env, refine)
        pred = query.pred
        pred_known = not isinstance(pred, Hole)
        rows = []
        for lrow in left.rows:
            for rrow in right.rows:
                if pred_known and pred is not None and not outer:
                    # Concrete inner-join predicate over known values:
                    # apply it.
                    if all(c.known for c in lrow + rrow):
                        if not pred.evaluate([c.value for c in lrow + rrow]):
                            continue
                rows.append(lrow + rrow)
        if outer:
            pad = tuple(AbstractCell(EMPTY_REFS, None, True, HEAD_REF)
                        for _ in range(right.n_cols))
            rows.extend(lrow + pad for lrow in left.rows)
        exact = False  # the surviving row set depends on the predicate
        if pred is None and not outer:
            exact = left.rows_exact and right.rows_exact
        return AbstractTable(tuple(rows), rows_exact=exact)

    def _abstract_group(self, query: ast.Group, env: ast.Env,
                        refine: bool) -> AbstractTable:
        child = self.abstract_eval(query.child, env, refine)
        n, m = child.n_rows, child.n_cols
        agg_col = None if isinstance(query.agg_col, Hole) else query.agg_col
        agg_func = None if isinstance(query.agg_func, Hole) else query.agg_func

        if isinstance(query.keys, Hole):
            # Weak: grouping unknown — every original column is a candidate
            # key whose cells may collapse any subset of rows; the new column
            # may draw from anywhere.
            col_unions = self.column_unions(child)
            heads = self.column_heads(child)
            everything = self.table_union(child)
            row = tuple(AbstractCell.unknown(u, h)
                        for u, h in zip(col_unions, heads)) \
                + (AbstractCell.unknown(everything, HEAD_AGGREGATE),)
            return AbstractTable(tuple(row for _ in range(max(n, 1))),
                                 rows_exact=False)

        keys = query.keys
        agg_pool = (agg_col,) if (refine and agg_col is not None) \
            else tuple(c for c in range(m) if c not in keys)

        if not child.column_known(keys):
            # Medium: keys known, key values not yet concrete.
            col_unions = self.column_unions(child)
            heads = self.column_heads(child)
            key_cells = tuple(AbstractCell.unknown(col_unions[k], heads[k])
                              for k in keys)
            new_refs = EMPTY_REFS
            for c in agg_pool:
                new_refs |= col_unions[c]
            row = key_cells + (AbstractCell.unknown(new_refs, HEAD_AGGREGATE),)
            return AbstractTable(tuple(row for _ in range(max(n, 1))),
                                 rows_exact=False)

        # Strong: extractGroups over the concrete key values.
        groups = self.grouping(child, keys)
        key_cell_rows = self.group_key_cells(child, keys)
        pool_refs = self.group_pool_refs(child, keys, agg_pool)
        out_rows = []
        for g, key_cells, new_refs in zip(groups, key_cell_rows, pool_refs):
            new_cell = _aggregate_shadow(child, g, agg_col, agg_func, new_refs)
            out_rows.append(key_cells + (new_cell,))
        return AbstractTable(tuple(out_rows), rows_exact=child.rows_exact)

    def _abstract_partition(self, query: ast.Partition, env: ast.Env,
                            refine: bool) -> AbstractTable:
        child = self.abstract_eval(query.child, env, refine)
        n, m = child.n_rows, child.n_cols
        agg_col = None if isinstance(query.agg_col, Hole) else query.agg_col
        agg_func = None if isinstance(query.agg_func, Hole) else query.agg_func

        new_head = _analytic_head(agg_func)

        if isinstance(query.keys, Hole):
            # Weak: any row may share a partition with any other.
            everything = self.table_union(child)
            rows = tuple(row + (AbstractCell.unknown(everything, new_head),)
                         for row in child.rows)
            return AbstractTable(rows, rows_exact=child.rows_exact)

        keys = query.keys
        agg_pool = (agg_col,) if (refine and agg_col is not None) \
            else tuple(c for c in range(m) if c not in keys)

        if not child.column_known(keys):
            # Medium: keys known, partition membership unknown.
            col_unions = self.column_unions(child)
            new_refs = EMPTY_REFS
            for c in agg_pool:
                new_refs |= col_unions[c]
            rows = tuple(row + (AbstractCell.unknown(new_refs, new_head),)
                         for row in child.rows)
            return AbstractTable(rows, rows_exact=child.rows_exact)

        # Strong: partition membership is determined by the concrete key
        # values.
        groups = self.grouping(child, keys)
        pool_refs = self.group_pool_refs(child, keys, agg_pool)
        row_group = group_index_map(groups)
        rows = []
        for i, row in enumerate(child.rows):
            gi = row_group[i]
            new_cell = _partition_shadow(child, groups[gi], i, agg_col,
                                         agg_func, pool_refs[gi])
            rows.append(row + (new_cell,))
        return AbstractTable(tuple(rows), rows_exact=child.rows_exact)

    def _abstract_arithmetic(self, query: ast.Arithmetic, env: ast.Env,
                             refine: bool) -> AbstractTable:
        child = self.abstract_eval(query.child, env, refine)
        func = None if isinstance(query.func, Hole) else query.func

        if isinstance(query.cols, Hole):
            # Weak: the new value may use any cell of its own row.
            rows = tuple(
                row + (AbstractCell.unknown(_union_refs(row),
                                            HEAD_ARITHMETIC),)
                for row in child.rows)
            return AbstractTable(rows, rows_exact=child.rows_exact)

        cols = query.cols
        rows = []
        for row in child.rows:
            refs = _union_refs(row[c] for c in cols)
            if func is not None and all(row[c].known for c in cols):
                value = apply_function(func, [row[c].value for c in cols])
                rows.append(row + (AbstractCell(refs, value, True,
                                                HEAD_ARITHMETIC),))
            else:
                rows.append(row + (AbstractCell.unknown(refs,
                                                        HEAD_ARITHMETIC),))
        return AbstractTable(tuple(rows), rows_exact=child.rows_exact)


def _aggregate_shadow(child: AbstractTable, group_rows,
                      agg_col: int | None, agg_func: str | None,
                      refs: frozenset) -> AbstractCell:
    """Compute the aggregate's exact value when everything needed is known."""
    if agg_col is None or agg_func is None or not child.rows_exact:
        return AbstractCell.unknown(refs, HEAD_AGGREGATE)
    member_cells = [child.rows[i][agg_col] for i in group_rows]
    if not all(c.known for c in member_cells):
        return AbstractCell.unknown(refs, HEAD_AGGREGATE)
    value = apply_function(agg_func, [c.value for c in member_cells])
    return AbstractCell(refs, value, True, HEAD_AGGREGATE)


def _partition_shadow(child: AbstractTable, group_rows, row: int,
                      agg_col: int | None, agg_func: str | None,
                      refs: frozenset) -> AbstractCell:
    head = _analytic_head(agg_func)
    if agg_col is None or agg_func is None or not child.rows_exact:
        return AbstractCell.unknown(refs, head)
    spec = analytic_spec(agg_func)
    if spec.order_dependent:
        # Row order below may differ from the eventual concrete order
        # (uninstantiated sorts pass through unchanged), so prefix-based
        # functions get no shadow value.
        return AbstractCell.unknown(refs, head)
    member_cells = [child.rows[i][agg_col] for i in group_rows]
    if not all(c.known for c in member_cells):
        return AbstractCell.unknown(refs, head)
    args = spec.row_args([c.value for c in member_cells], group_rows.index(row))
    return AbstractCell(refs, apply_function(spec.term_name, args), True, head)


def abstract_eval(query: ast.Query, env: ast.Env,
                  target_refinement: bool = True,
                  engine=None) -> AbstractTable:
    """``[[q(T̄)]]◦`` via a transient analyzer (direct API / tests).

    Synthesis sessions should use a persistent :class:`ProvenanceAnalyzer`
    (as :class:`ProvenanceAbstraction` does) so results are memoized across
    calls.
    """
    return ProvenanceAnalyzer(engine).abstract_eval(query, env,
                                                    target_refinement)


class ProvenanceAbstraction(Abstraction):
    """Sickle's pruning: abstract provenance + Definition 3 consistency."""

    name = "provenance"

    #: Retained analyzers: the pinned session analyzer plus up to three
    #: override analyzers (per-run backend overrides must not accumulate).
    MAX_ANALYZERS = 4

    def __init__(self, target_refinement: bool = True,
                 value_shadow: bool = True, head_typing: bool = True) -> None:
        self.target_refinement = target_refinement
        self.value_shadow = value_shadow
        self.head_typing = head_typing
        self._analyzer: ProvenanceAnalyzer | None = None
        # One analyzer per engine ever bound: a transient rebind (per-run
        # backend override) must not discard the session's memoization.
        # Explicit retention policy: the *first-bound* (session) analyzer
        # is pinned for the abstraction's lifetime; override analyzers are
        # kept in an LRU order (most recently re-bound last) and the least
        # recently used override is evicted past MAX_ANALYZERS.
        self._analyzers: OrderedDict[int, ProvenanceAnalyzer] = OrderedDict()
        self._session_key: int | None = None
        # Demo analyses are memoized per instance (Definition 3 checks the
        # same demonstration thousands of times per run) — no module-global
        # evaluation state anywhere in the stack.
        self._demo_cache = DemoAnalysisCache()

    def bind_engine(self, engine) -> None:
        super().bind_engine(engine)
        key = id(engine)
        analyzer = self._analyzers.get(key)
        if analyzer is not None and analyzer.engine is engine:
            # Rebind of a retained engine: refresh its LRU recency.
            self._analyzers.move_to_end(key)
        else:
            # New engine — or a stale entry whose engine was collected and
            # its id recycled (the identity check above catches it); the
            # fresh analyzer replaces the stale one under the same key.
            analyzer = ProvenanceAnalyzer(engine)
            self._analyzers[key] = analyzer
            self._analyzers.move_to_end(key)
            if self._session_key is None:
                self._session_key = key
            while len(self._analyzers) > self.MAX_ANALYZERS:
                for candidate in self._analyzers:   # LRU first
                    if candidate != self._session_key:
                        del self._analyzers[candidate]
                        break
        self._analyzer = analyzer

    @property
    def analyzer(self) -> ProvenanceAnalyzer:
        if self._analyzer is None:
            self.bind_engine(self._engine())
        return self._analyzer

    def feasible(self, query: ast.Query, env: ast.Env,
                 demo: Demonstration) -> bool:
        # Partial queries face Definition 3 here; once fully instantiated
        # they instead face Definition 1 through the engine-owned
        # incremental checker (``engine.consistency``) — the two layers
        # share the bitset embedding core in :mod:`repro.util.matching`.
        table = self.analyzer.abstract_eval(query, env, self.target_refinement)
        return abstract_consistent(table, demo, env,
                                   value_shadow=self.value_shadow,
                                   head_typing=self.head_typing,
                                   demo_cache=self._demo_cache)

    def reset(self) -> None:
        super().reset()
        for analyzer in self._analyzers.values():
            analyzer.clear()
        if self._analyzer is not None:
            self._analyzer.clear()
        self._demo_cache.clear()

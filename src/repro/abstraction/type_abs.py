"""Morpheus-style *type* abstraction (baseline, §5.1).

Tracks high-level table-shape information — intervals on row and column
counts, with exact group counts where derivable — extended to the analytical
operators exactly as the paper describes ("we extend the abstract semantics
to infer the most precise table shape and group number for partition and
aggregation rules").

The consistency check is necessarily weak for *partial* demonstrations: the
demonstration is a fragment of the output, so only upper bounds can prune
(the output must be able to hold at least the demonstrated rows/columns).
"""

from __future__ import annotations

from collections.abc import MutableMapping
from dataclasses import dataclass

from repro.abstraction.base import Abstraction
from repro.engine.cache import BoundedCache
from repro.errors import EvaluationError
from repro.lang import ast
from repro.lang.holes import Hole, is_concrete
from repro.provenance.demo import Demonstration
from repro.semantics.groups import extract_groups


@dataclass(frozen=True)
class Shape:
    """Row/column count intervals (inclusive)."""

    rows_min: int
    rows_max: int
    cols_min: int
    cols_max: int

    @staticmethod
    def exact(rows: int, cols: int) -> "Shape":
        return Shape(rows, rows, cols, cols)


def shape_of(query: ast.Query, env: ast.Env, engine=None,
             cache: MutableMapping | None = None) -> Shape:
    """Output-shape interval, memoized through ``cache`` (owned by the
    calling :class:`TypeAbstraction` — no module-global state)."""
    if engine is None:
        from repro.engine.row import RowEngine
        engine = RowEngine()
    if cache is None:
        cache = {}
    return _shape(query, env, engine, cache)


def _shape(query: ast.Query, env: ast.Env, engine,
           cache: MutableMapping) -> Shape:
    key = (query, env)
    hit = cache.get(key)
    if hit is not None:
        return hit
    out = _shape_of(query, env, engine, cache)
    cache[key] = out
    return out


def _shape_of(query: ast.Query, env: ast.Env, engine,
              cache: MutableMapping) -> Shape:
    if is_concrete(query):
        out = engine.evaluate(query, env)
        return Shape.exact(out.n_rows, out.n_cols)

    if isinstance(query, ast.Filter):
        child = _shape(query.child, env, engine, cache)
        return Shape(0, child.rows_max, child.cols_min, child.cols_max)

    if isinstance(query, ast.Join):
        left = _shape(query.left, env, engine, cache)
        right = _shape(query.right, env, engine, cache)
        rows_max = left.rows_max * right.rows_max
        rows_min = rows_max if query.pred is None else 0
        return Shape(rows_min, rows_max,
                     left.cols_min + right.cols_min,
                     left.cols_max + right.cols_max)

    if isinstance(query, ast.LeftJoin):
        left = _shape(query.left, env, engine, cache)
        right = _shape(query.right, env, engine, cache)
        return Shape(left.rows_min, left.rows_max * max(right.rows_max, 1),
                     left.cols_min + right.cols_min,
                     left.cols_max + right.cols_max)

    if isinstance(query, ast.Proj):
        child = _shape(query.child, env, engine, cache)
        if isinstance(query.cols, Hole):
            return Shape(child.rows_min, child.rows_max, 1, child.cols_max)
        n = len(query.cols)
        return Shape(child.rows_min, child.rows_max, n, n)

    if isinstance(query, ast.Sort):
        return _shape(query.child, env, engine, cache)

    if isinstance(query, ast.Group):
        child = _shape(query.child, env, engine, cache)
        if isinstance(query.keys, Hole):
            return Shape(min(child.rows_min, 1), max(child.rows_max, 1),
                         1, child.cols_max + 1)
        n_keys = len(query.keys)
        if is_concrete(query.child):
            # Exact group count (the "most precise group number").
            child_out = engine.evaluate(query.child, env)
            key_rows = [[row[k] for k in query.keys] for row in child_out.rows]
            n_groups = max(len(extract_groups(key_rows)), 1)
            return Shape.exact(n_groups, n_keys + 1)
        return Shape(min(child.rows_min, 1), max(child.rows_max, 1),
                     n_keys + 1, n_keys + 1)

    if isinstance(query, ast.Partition):
        child = _shape(query.child, env, engine, cache)
        return Shape(child.rows_min, child.rows_max,
                     child.cols_min + 1, child.cols_max + 1)

    if isinstance(query, ast.Arithmetic):
        child = _shape(query.child, env, engine, cache)
        return Shape(child.rows_min, child.rows_max,
                     child.cols_min + 1, child.cols_max + 1)

    raise EvaluationError(f"no type-abstract rule for {type(query).__name__}")


class TypeAbstraction(Abstraction):
    """Prune when the demonstration cannot fit the output shape."""

    name = "type"

    def __init__(self, cache_size: int | None = 100_000) -> None:
        self._cache: BoundedCache = BoundedCache(cache_size)

    def feasible(self, query: ast.Query, env: ast.Env,
                 demo: Demonstration) -> bool:
        shape = shape_of(query, env, self._engine(), self._cache)
        return demo.n_rows <= shape.rows_max and demo.n_cols <= shape.cols_max

    def reset(self) -> None:
        super().reset()
        self._cache.clear()

"""Scythe-style *value* abstraction (baseline, §5.1).

Tracks, per output column, the set of concrete values that can possibly
appear; columns derived by aggregation/partition/arithmetic are ⊤
("unknown") because without the function and its parameters no concrete
value can be predicted — the paper's reimplementation keeps "all known
values (e.g., values from the grouping columns) for analytical operators but
ignores unknown values (e.g., values from the aggregation column)".

The consistency check evaluates each demonstration cell to its final value
when possible (complete expressions over input references) and requires an
injective assignment of demonstration columns to output columns whose value
sets cover them; unknown columns cover anything — which is exactly why the
running example's ``q_B`` survives this abstraction (§2.2) but not the
provenance abstraction.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from dataclasses import dataclass

from repro.abstraction.base import Abstraction
from repro.engine.cache import BoundedCache
from repro.errors import EvaluationError, ExpressionError
from repro.lang import ast
from repro.lang.holes import Hole, is_concrete
from repro.provenance.demo import Demonstration
from repro.table.values import Value, canonical
from repro.util.matching import bipartite_match


@dataclass(frozen=True)
class ColumnValues:
    """Values a column may hold: a known set, plus a ⊤ flag."""

    known: frozenset
    unknown: bool

    @staticmethod
    def top() -> "ColumnValues":
        return ColumnValues(frozenset(), True)

    def covers(self, value: Value) -> bool:
        return self.unknown or canonical(value) in self.known

    def union(self, other: "ColumnValues") -> "ColumnValues":
        return ColumnValues(self.known | other.known,
                            self.unknown or other.unknown)


def _exact_columns(table) -> tuple[ColumnValues, ...]:
    return tuple(
        ColumnValues(frozenset(canonical(v) for v in table.column_values(j)),
                     False)
        for j in range(table.n_cols))


def column_values_of(query: ast.Query, env: ast.Env, engine=None,
                     cache: MutableMapping | None = None
                     ) -> tuple[ColumnValues, ...]:
    """Per-column possible-value sets, memoized through ``cache`` (owned by
    the calling :class:`ValueAbstraction` — no module-global state)."""
    if engine is None:
        from repro.engine.row import RowEngine
        engine = RowEngine()
    if cache is None:
        cache = {}
    return _values(query, env, engine, cache)


def _values(query: ast.Query, env: ast.Env, engine,
            cache: MutableMapping) -> tuple[ColumnValues, ...]:
    key = (query, env)
    hit = cache.get(key)
    if hit is not None:
        return hit
    out = _values_of(query, env, engine, cache)
    cache[key] = out
    return out


def _values_of(query: ast.Query, env: ast.Env, engine,
               cache: MutableMapping) -> tuple[ColumnValues, ...]:
    if is_concrete(query):
        return _exact_columns(engine.evaluate(query, env))

    if isinstance(query, ast.Filter):
        return _values(query.child, env, engine, cache)

    if isinstance(query, (ast.Join, ast.LeftJoin)):
        left = _values(query.left, env, engine, cache)
        right = _values(query.right, env, engine, cache)
        if isinstance(query, ast.LeftJoin):
            right = tuple(c.union(ColumnValues(frozenset((None,)), False))
                          for c in right)
        return left + right

    if isinstance(query, ast.Proj):
        child = _values(query.child, env, engine, cache)
        if isinstance(query.cols, Hole):
            return child
        return tuple(child[c] for c in query.cols)

    if isinstance(query, ast.Sort):
        return _values(query.child, env, engine, cache)

    if isinstance(query, ast.Group):
        child = _values(query.child, env, engine, cache)
        if isinstance(query.keys, Hole):
            return child + (ColumnValues.top(),)
        return tuple(child[k] for k in query.keys) + (ColumnValues.top(),)

    if isinstance(query, (ast.Partition, ast.Arithmetic)):
        return _values(query.child, env, engine, cache) + (ColumnValues.top(),)

    raise EvaluationError(f"no value-abstract rule for {type(query).__name__}")


class ValueAbstraction(Abstraction):
    """Prune when a computable demonstration value cannot appear anywhere."""

    name = "value"

    def __init__(self, cache_size: int | None = 100_000) -> None:
        self._cache: BoundedCache = BoundedCache(cache_size)

    def feasible(self, query: ast.Query, env: ast.Env,
                 demo: Demonstration) -> bool:
        columns = column_values_of(query, env, self._engine(), self._cache)
        if demo.n_cols > len(columns):
            return False
        demo_values = self._demo_values(demo, env)
        # Injective demo-column → output-column assignment covering every
        # computable demonstration value (no row-level reasoning: Scythe's
        # abstraction tracks value flow, not positions).
        return bipartite_match(
            demo.n_cols, len(columns),
            lambda j, c: all(columns[c].covers(v)
                             for v in demo_values[j])) is not None

    @staticmethod
    def _demo_values(demo: Demonstration, env: ast.Env) -> list[list[Value]]:
        by_col: list[list[Value]] = [[] for _ in range(demo.n_cols)]
        for i in range(demo.n_rows):
            for j in range(demo.n_cols):
                try:
                    by_col[j].append(demo.cell(i, j).evaluate(env))
                except ExpressionError:
                    continue  # partial expression: value unknowable
        return by_col

    def reset(self) -> None:
        super().reset()
        self._cache.clear()

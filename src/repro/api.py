"""The supported public surface of ``repro`` in one module.

Everything a user of the synthesizer needs — and nothing that reaches
into :mod:`repro.experiments` or :mod:`repro.synthesis` internals:

One-shot synthesis::

    from repro.api import synthesize, SynthesisConfig

    result = synthesize(tables, demo, config=SynthesisConfig(top_n=5))
    result.queries        # ranked consistent queries

Resumable sessions (checkpoint, stream, cancel)::

    from repro.api import SynthesisSession

    session = SynthesisSession(tables, demo)
    report = session.step(max_pops=1000)      # first hits stream here
    blob = session.checkpoint()               # picklable; resume anywhere
    result = SynthesisSession.resume(blob).run()

Synthesis-as-a-service (warm worker tier + asyncio front-end)::

    from repro.api import SynthesisService, ServiceConfig

    async with SynthesisService(ServiceConfig(pool_size=4)) as svc:
        handle = svc.submit(tables, demo, timeout_s=5.0)
        async for query in handle.stream(): ...
        result = await handle.result()

The worker tier is pluggable: ``pool_backend="threads"`` shares the
caller's GIL, ``"processes"`` hosts sessions in long-lived worker
processes fed over the shared-memory column store (the default for
pools larger than one worker; ``REPRO_POOL_BACKEND`` overrides).
Requests route by schema affinity — repeated-schema traffic lands on
already-warm workers — and a request whose config asks for
``workers > 1`` fans out onto shard workers when the pool has idle
capacity.  Results are byte-identical across tiers.

Engines are explicit when you want them (``make_engine("numpy")``) and
implicit otherwise (``config.backend`` selects one per run).
"""

from __future__ import annotations

from repro.engine.base import EvalEngine, make_engine, resolve_backend
from repro.lang.ast import Env
from repro.provenance.demo import Demonstration
from repro.serve import (
    POOL_BACKENDS,
    RequestHandle,
    ServiceConfig,
    ServiceOverloaded,
    SynthesisService,
    WorkerPool,
    resolve_pool_backend,
)
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.enumerator import SearchStats, SynthesisResult
from repro.synthesis.session import StepReport, SynthesisSession
from repro.synthesis.stop import (
    CallableStop,
    GroundTruthStop,
    StopSpec,
    as_stop_spec,
)
from repro.synthesis.synthesizer import Synthesizer, synthesize
from repro.table.table import Table

__all__ = [
    # one-shot + reusable synthesis
    "synthesize", "Synthesizer", "SynthesisConfig", "SynthesisResult",
    "SearchStats",
    # resumable sessions
    "SynthesisSession", "StepReport",
    # serving layer
    "SynthesisService", "ServiceConfig", "ServiceOverloaded",
    "RequestHandle", "WorkerPool", "POOL_BACKENDS", "resolve_pool_backend",
    # stop predicates
    "StopSpec", "GroundTruthStop", "CallableStop", "as_stop_spec",
    # engines & data
    "EvalEngine", "make_engine", "resolve_backend",
    "Table", "Env", "Demonstration",
]

"""Deterministic synthetic data for the benchmark suite.

The original forum posts' data and TPC-DS's dsdgen are unavailable offline,
so every input table is generated here from seeded RNGs: same name + seed →
same rows, run after run, machine after machine.  Tables are kept at the
paper's working scale (§5.1 samples inputs down to 20 rows anyway).
"""

from __future__ import annotations

from repro.table.schema import ForeignKey
from repro.table.table import Table
from repro.util.rng import stable_rng

# --------------------------------------------------------------------- forum

REGIONS = ("North", "South", "East", "West")
CITIES = ("Oslo", "Lima", "Kyoto", "Cairo", "Perth")
CATEGORIES = ("Books", "Games", "Music")
DEPARTMENTS = ("Sales", "Engineering", "Support")
PRODUCTS = ("P1", "P2", "P3", "P4")
STUDENTS = ("Ana", "Ben", "Cleo", "Dev", "Eli")
SUBJECTS = ("Math", "History")


def sales_by_region_quarter(name: str = "sales", regions: int = 3,
                            quarters: int = 4, seed: int = 0) -> Table:
    """region × quarter sales facts: (Region, Quarter, Sales)."""
    rng = stable_rng(f"sales:{name}", seed)
    rows = [[REGIONS[r], q, rng.randrange(50, 500)]
            for r in range(regions) for q in range(1, quarters + 1)]
    return Table.from_rows(name, ["Region", "Quarter", "Sales"], rows)


def product_sales(name: str = "orders", products: int = 3, per_product: int = 4,
                  seed: int = 0) -> Table:
    """order lines: (Product, Month, Units, Price)."""
    rng = stable_rng(f"orders:{name}", seed)
    rows = []
    for p in range(products):
        for m in range(1, per_product + 1):
            rows.append([PRODUCTS[p], m, rng.randrange(1, 20),
                         rng.randrange(5, 60)])
    return Table.from_rows(name, ["Product", "Month", "Units", "Price"], rows)


def employee_salaries(name: str = "employees", per_dept: int = 4,
                      seed: int = 0) -> Table:
    """(Name, Dept, Salary, Bonus)."""
    rng = stable_rng(f"emp:{name}", seed)
    rows = []
    for d, dept in enumerate(DEPARTMENTS):
        for i in range(per_dept):
            rows.append([f"{dept[:3]}{i}", dept,
                         rng.randrange(40, 120) * 1000,
                         rng.randrange(0, 15) * 500])
    return Table.from_rows(name, ["Name", "Dept", "Salary", "Bonus"], rows)


def student_scores(name: str = "scores", students: int = 4, tests: int = 3,
                   seed: int = 0) -> Table:
    """(Student, Subject, Test, Score)."""
    rng = stable_rng(f"scores:{name}", seed)
    rows = []
    for s in range(students):
        for subject in SUBJECTS[:2]:
            for t in range(1, tests + 1):
                rows.append([STUDENTS[s], subject, t, rng.randrange(40, 100)])
    return Table.from_rows(name, ["Student", "Subject", "Test", "Score"], rows)


def weather_readings(name: str = "weather", cities: int = 3, days: int = 5,
                     seed: int = 0) -> Table:
    """(City, Day, TempC, Rainfall)."""
    rng = stable_rng(f"weather:{name}", seed)
    rows = [[CITIES[c], d, rng.randrange(-5, 35), rng.randrange(0, 30)]
            for c in range(cities) for d in range(1, days + 1)]
    return Table.from_rows(name, ["City", "Day", "TempC", "Rainfall"], rows)


def stock_prices(name: str = "stocks", tickers: int = 2, days: int = 6,
                 seed: int = 0) -> Table:
    """(Ticker, Day, Close, Volume)."""
    rng = stable_rng(f"stocks:{name}", seed)
    rows = []
    for t in range(tickers):
        price = rng.randrange(50, 150)
        for d in range(1, days + 1):
            price = max(5, price + rng.randrange(-10, 12))
            rows.append([f"TK{t}", d, price, rng.randrange(100, 900) * 10])
    return Table.from_rows(name, ["Ticker", "Day", "Close", "Volume"], rows)


def website_sessions(name: str = "sessions", pages: int = 3, weeks: int = 4,
                     seed: int = 0) -> Table:
    """(Page, Week, Visits, Signups)."""
    rng = stable_rng(f"web:{name}", seed)
    rows = []
    for p in range(pages):
        for w in range(1, weeks + 1):
            visits = rng.randrange(100, 900)
            rows.append([f"/page{p}", w, visits,
                         rng.randrange(0, max(2, visits // 10))])
    return Table.from_rows(name, ["Page", "Week", "Visits", "Signups"], rows)


def category_products(name: str = "catalog", per_category: int = 4,
                      seed: int = 0) -> Table:
    """(Item, Category, Price, Stock) with an Item primary key."""
    rng = stable_rng(f"catalog:{name}", seed)
    rows = []
    for c, cat in enumerate(CATEGORIES):
        for i in range(per_category):
            rows.append([f"{cat[:2]}{i}", cat, rng.randrange(4, 80),
                         rng.randrange(0, 50)])
    return Table.from_rows(name, ["Item", "Category", "Price", "Stock"], rows,
                           primary_key=["Item"])


def orders_with_customers(seed: int = 0) -> tuple[Table, Table]:
    """orders(CustomerId FK, Amount, Quarter) + customers(CustomerId, Segment, Region)."""
    rng = stable_rng("orders-customers", seed)
    customers = Table.from_rows(
        "customers", ["CustomerId", "Segment", "Region"],
        [[100 + i, ("Retail", "Corporate")[i % 2], REGIONS[i % 3]]
         for i in range(4)],
        primary_key=["CustomerId"])
    orders = Table.from_rows(
        "orders", ["OrderId", "CustomerId", "Amount", "Quarter"],
        [[i + 1, 100 + rng.randrange(4), rng.randrange(20, 400),
          rng.randrange(1, 5)] for i in range(12)],
        primary_key=["OrderId"],
        foreign_keys=[ForeignKey("CustomerId", "customers", "CustomerId")])
    return orders, customers


def shipments_with_warehouses(seed: int = 0) -> tuple[Table, Table]:
    """shipments(WarehouseId FK, Weight, Week) + warehouses(WarehouseId, Country)."""
    rng = stable_rng("shipments", seed)
    warehouses = Table.from_rows(
        "warehouses", ["WarehouseId", "Country", "Capacity"],
        [[10 + i, ("NO", "PE", "JP")[i % 3], rng.randrange(100, 400)]
         for i in range(3)],
        primary_key=["WarehouseId"])
    shipments = Table.from_rows(
        "shipments", ["ShipmentId", "WarehouseId", "Weight", "Week"],
        [[i + 1, 10 + rng.randrange(3), rng.randrange(5, 95),
          1 + rng.randrange(4)] for i in range(14)],
        primary_key=["ShipmentId"],
        foreign_keys=[ForeignKey("WarehouseId", "warehouses", "WarehouseId")])
    return shipments, warehouses


def shuffled(table: Table, seed: int = 0) -> Table:
    """Deterministically shuffle a table's rows (for sort-needing tasks)."""
    rng = stable_rng(f"shuffle:{table.name}", seed)
    order = list(range(table.n_rows))
    rng.shuffle(order)
    return table.take_rows(order)


# -------------------------------------------------------------------- TPC-DS

ITEM_CATEGORIES = ("Electronics", "Home", "Sports")
ITEM_BRANDS = ("acme", "zenco", "orbit")
STATES = ("CA", "WA", "TX")


def tpcds_item(n_items: int = 6, seed: int = 0) -> Table:
    rng = stable_rng("tpcds:item", seed)
    rows = []
    for i in range(n_items):
        cat = ITEM_CATEGORIES[i % len(ITEM_CATEGORIES)]
        rows.append([1000 + i, cat, ITEM_BRANDS[rng.randrange(3)],
                     f"{cat[:4].lower()}-cls{i % 2}",
                     round(rng.uniform(5, 90), 2)])
    return Table.from_rows(
        "item", ["i_item_sk", "i_category", "i_brand", "i_class",
                 "i_current_price"],
        rows, primary_key=["i_item_sk"])


def tpcds_date_dim(n_months: int = 4, seed: int = 0) -> Table:
    rows = []
    for m in range(n_months):
        rows.append([2450815 + m, 1998 + m // 12, m % 12 + 1, m % 12 // 3 + 1])
    return Table.from_rows(
        "date_dim", ["d_date_sk", "d_year", "d_moy", "d_qoy"],
        rows, primary_key=["d_date_sk"])


def tpcds_store(n_stores: int = 3, seed: int = 0) -> Table:
    rows = [[1 + s, STATES[s % len(STATES)], f"store_{s}"]
            for s in range(n_stores)]
    return Table.from_rows("store", ["s_store_sk", "s_state", "s_store_name"],
                           rows, primary_key=["s_store_sk"])


def tpcds_store_sales(n_rows: int = 18, n_items: int = 6, n_months: int = 4,
                      n_stores: int = 3, seed: int = 0) -> Table:
    rng = stable_rng("tpcds:store_sales", seed)
    rows = []
    for _ in range(n_rows):
        qty = rng.randrange(1, 10)
        price = round(rng.uniform(4, 80), 2)
        rows.append([
            2450815 + rng.randrange(n_months),
            1000 + rng.randrange(n_items),
            1 + rng.randrange(n_stores),
            qty,
            round(qty * price, 2),
            round(qty * price * rng.uniform(-0.2, 0.4), 2),
        ])
    return Table.from_rows(
        "store_sales",
        ["ss_sold_date_sk", "ss_item_sk", "ss_store_sk", "ss_quantity",
         "ss_ext_sales_price", "ss_net_profit"],
        rows,
        foreign_keys=[
            ForeignKey("ss_sold_date_sk", "date_dim", "d_date_sk"),
            ForeignKey("ss_item_sk", "item", "i_item_sk"),
            ForeignKey("ss_store_sk", "store", "s_store_sk"),
        ])


def tpcds_flat_sales(name: str = "sales_flat", n_rows: int = 18,
                     seed: int = 0) -> Table:
    """A pre-joined sales view: several TPC-DS tasks operate on view
    definitions the benchmark's long scripts materialize first (§5.1:
    "isolating table view definitions")."""
    rng = stable_rng(f"tpcds:flat:{name}", seed)
    rows = []
    for _ in range(n_rows):
        cat = ITEM_CATEGORIES[rng.randrange(3)]
        month = rng.randrange(1, 5)
        qty = rng.randrange(1, 10)
        price = round(rng.uniform(4, 80), 2)
        rows.append([cat, ITEM_BRANDS[rng.randrange(3)], month,
                     STATES[rng.randrange(3)], qty, round(qty * price, 2),
                     round(qty * price * rng.uniform(-0.2, 0.4), 2)])
    return Table.from_rows(
        name,
        ["category", "brand", "month", "state", "quantity", "sales_price",
         "net_profit"],
        rows)

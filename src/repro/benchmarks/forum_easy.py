"""The 43 easy forum-style tasks (1–3 operators).

Modelled on the analytical-SQL questions the paper collects from online
tutorials and forums: per-group totals and averages, running totals, in-group
ranking, shares of group totals, deviations from group averages — each over a
small realistic table.  Task ``fe36`` is the paper's running example itself
(3 operators, so it falls in the "easier" band by the paper's own size
classification).

Column indexes in the ground truths refer to the operator's *child* output:
base tables are documented in :mod:`repro.benchmarks.datagen`; ``group``
emits its key columns then the aggregate; ``partition``/``arithmetic``
append one column at the end of the child's columns.
"""

from __future__ import annotations

from repro.benchmarks import datagen as dg
from repro.benchmarks.task import BenchmarkTask
from repro.lang.ast import (
    Arithmetic,
    Filter,
    Group,
    Join,
    Partition,
    Sort,
    TableRef,
)
from repro.lang.predicates import ColCmp, ConstCmp
from repro.synthesis.config import SynthesisConfig
from repro.table.table import Table


def _task(name: str, description: str, tables, gt, pool, max_ops: int,
          constants=(), difficulty: str = "easy",
          max_key_cols: int = 3) -> BenchmarkTask:
    if isinstance(tables, Table):
        tables = (tables,)
    return BenchmarkTask(
        name=name, suite="forum", difficulty=difficulty,
        description=description, tables=tuple(tables), ground_truth=gt,
        config=SynthesisConfig(max_operators=max_ops,
                               operator_pool=tuple(pool),
                               constants=tuple(constants),
                               max_key_cols=max_key_cols))


_GPA = ("group", "partition", "arithmetic")


def easy_tasks() -> list[BenchmarkTask]:
    tasks: list[BenchmarkTask] = []
    add = tasks.append

    # ---------------------------------------------------- 1 op: group (8)
    sales = dg.sales_by_region_quarter()
    add(_task("fe01_total_sales_per_region",
              "Total sales for each region.",
              sales, Group(TableRef("sales"), keys=(0,), agg_func="sum",
                           agg_col=2), _GPA, 1))

    scores = dg.student_scores()
    add(_task("fe02_avg_score_per_student",
              "Average test score for each student.",
              scores, Group(TableRef("scores"), keys=(0,), agg_func="avg",
                            agg_col=3), _GPA, 1))

    orders = dg.product_sales()
    add(_task("fe03_order_lines_per_product",
              "Number of order lines recorded for each product.",
              orders, Group(TableRef("orders"), keys=(0,), agg_func="count",
                            agg_col=2), _GPA, 1))

    weather = dg.weather_readings()
    add(_task("fe04_max_temp_per_city",
              "Hottest recorded temperature in each city.",
              weather, Group(TableRef("weather"), keys=(0,), agg_func="max",
                             agg_col=2), _GPA, 1))

    catalog = dg.category_products()
    add(_task("fe05_min_price_per_category",
              "Cheapest item price in each category.",
              catalog, Group(TableRef("catalog"), keys=(1,), agg_func="min",
                             agg_col=2), _GPA, 1))

    add(_task("fe06_sales_by_region_and_quarter",
              "Total sales for each region in each quarter.",
              sales, Group(TableRef("sales"), keys=(0, 1), agg_func="sum",
                           agg_col=2), _GPA, 1))

    add(_task("fe07_global_sales_total",
              "One grand total of sales over the whole table.",
              sales, Group(TableRef("sales"), keys=(), agg_func="sum",
                           agg_col=2), _GPA, 1))

    employees = dg.employee_salaries()
    add(_task("fe08_avg_salary_per_dept",
              "Average salary in each department.",
              employees, Group(TableRef("employees"), keys=(1,),
                               agg_func="avg", agg_col=2), _GPA, 1))

    # ------------------------------------------------ 1 op: partition (8)
    add(_task("fe09_cumulative_units_per_product",
              "Running total of units sold per product, month by month.",
              orders, Partition(TableRef("orders"), keys=(0,),
                                agg_func="cumsum", agg_col=2), _GPA, 1))

    add(_task("fe10_salary_rank_within_dept",
              "Rank employees by salary within their department (highest first).",
              employees, Partition(TableRef("employees"), keys=(1,),
                                   agg_func="rank_desc", agg_col=2), _GPA, 1))

    add(_task("fe11_price_dense_rank_in_category",
              "Dense rank of items by price within each category.",
              catalog, Partition(TableRef("catalog"), keys=(1,),
                                 agg_func="dense_rank", agg_col=2), _GPA, 1))

    add(_task("fe12_region_total_on_each_row",
              "Attach each region's total sales to every one of its rows.",
              sales, Partition(TableRef("sales"), keys=(0,), agg_func="sum",
                               agg_col=2), _GPA, 1))

    stocks = dg.stock_prices()
    add(_task("fe13_running_close_total_per_ticker",
              "Running sum of closing prices per ticker.",
              stocks, Partition(TableRef("stocks"), keys=(0,),
                                agg_func="cumsum", agg_col=2), _GPA, 1))

    add(_task("fe14_readings_count_per_city",
              "Attach the number of readings of each city to its rows.",
              weather, Partition(TableRef("weather"), keys=(0,),
                                 agg_func="count", agg_col=1), _GPA, 1))

    add(_task("fe15_best_score_alongside_rows",
              "Attach each student's best score to every score row.",
              scores, Partition(TableRef("scores"), keys=(0,),
                                agg_func="max", agg_col=3), _GPA, 1))

    add(_task("fe16_global_price_rank",
              "Rank all order lines by price, most expensive first.",
              orders, Partition(TableRef("orders"), keys=(),
                                agg_func="rank_desc", agg_col=3), _GPA, 1))

    # ----------------------------------------------- 1 op: arithmetic (3)
    add(_task("fe17_line_revenue",
              "Revenue of each order line (units × price).",
              orders, Arithmetic(TableRef("orders"), func="mul", cols=(2, 3)),
              _GPA, 1))

    add(_task("fe18_total_compensation",
              "Total compensation per employee (salary + bonus).",
              employees, Arithmetic(TableRef("employees"), func="add",
                                    cols=(2, 3)), _GPA, 1))

    sessions = dg.website_sessions()
    add(_task("fe19_signup_conversion_rate",
              "Signup conversion rate of each page-week (signups/visits %).",
              sessions, Arithmetic(TableRef("sessions"), func="percent",
                                   cols=(3, 2)), _GPA, 1))

    # -------------------------------------------------------- 2 ops (16)
    add(_task("fe20_share_of_region_total",
              "Each row's sales as a percentage of its region's total.",
              sales,
              Arithmetic(Partition(TableRef("sales"), keys=(0,),
                                   agg_func="sum", agg_col=2),
                         func="percent", cols=(2, 3)), _GPA, 2))

    add(_task("fe21_diff_from_dept_avg",
              "Each employee's salary minus their department's average.",
              employees,
              Arithmetic(Partition(TableRef("employees"), keys=(1,),
                                   agg_func="avg", agg_col=2),
                         func="sub", cols=(2, 4)), _GPA, 2))

    add(_task("fe22_late_quarters_sales",
              "Total sales per region counting only quarters after Q2.",
              sales,
              Group(Filter(TableRef("sales"), pred=ConstCmp(1, ">", 2)),
                    keys=(0,), agg_func="sum", agg_col=2),
              ("group", "partition", "arithmetic", "filter"), 2,
              constants=(2,)))

    o2, cust = dg.orders_with_customers()
    add(_task("fe23_amount_by_segment",
              "Total order amount per customer segment (orders ⋈ customers).",
              (o2, cust),
              Group(Join(TableRef("orders"), TableRef("customers"),
                         pred=ColCmp(1, "==", 4)),
                    keys=(5,), agg_func="sum", agg_col=2), _GPA, 2))

    add(_task("fe24_cumulative_quarterly_sales",
              "Cumulative sales per region at the end of each quarter.",
              sales,
              Partition(Group(TableRef("sales"), keys=(0, 1), agg_func="sum",
                              agg_col=2),
                        keys=(0,), agg_func="cumsum", agg_col=2), _GPA, 2))

    add(_task("fe25_product_rank_by_units",
              "Rank products by their total units sold.",
              orders,
              Partition(Group(TableRef("orders"), keys=(0,), agg_func="sum",
                              agg_col=2),
                        keys=(), agg_func="rank_desc", agg_col=1), _GPA, 2))

    add(_task("fe26_stock_value_per_category",
              "Total stock value (price × stock) per category.",
              catalog,
              Group(Arithmetic(TableRef("catalog"), func="mul", cols=(2, 3)),
                    keys=(1,), agg_func="sum", agg_col=4), _GPA, 2))

    add(_task("fe27_light_rain_peak_temps",
              "Peak temperature per city across light-rain days (< 10mm).",
              weather,
              Partition(Filter(TableRef("weather"), pred=ConstCmp(3, "<", 10)),
                        keys=(0,), agg_func="max", agg_col=2),
              ("group", "partition", "arithmetic", "filter"), 2,
              constants=(10,)))

    add(_task("fe28_cumulative_revenue_per_product",
              "Running revenue (units × price) per product.",
              orders,
              Partition(Arithmetic(TableRef("orders"), func="mul", cols=(2, 3)),
                        keys=(0,), agg_func="cumsum", agg_col=4), _GPA, 2))

    ship, wh = dg.shipments_with_warehouses()
    add(_task("fe29_country_shipment_weight",
              "Attach each country's total shipped weight (shipments ⋈ warehouses).",
              (ship, wh),
              Partition(Join(TableRef("shipments"), TableRef("warehouses"),
                             pred=ColCmp(1, "==", 4)),
                        keys=(5,), agg_func="sum", agg_col=2), _GPA, 2))

    stocks_shuffled = dg.shuffled(dg.stock_prices(), seed=3)
    add(_task("fe30_sorted_running_volume",
              "Running volume per ticker after sorting the log by day.",
              stocks_shuffled,
              Partition(Sort(TableRef("stocks"), cols=(1,), ascending=True),
                        keys=(0,), agg_func="cumsum", agg_col=3),
              ("group", "partition", "arithmetic", "sort"), 2))

    add(_task("fe31_dept_headcount_rank",
              "Rank departments by headcount.",
              employees,
              Partition(Group(TableRef("employees"), keys=(1,),
                              agg_func="count", agg_col=0),
                        keys=(), agg_func="rank_desc", agg_col=1), _GPA, 2))

    add(_task("fe32_rainiest_cities",
              "Dense-rank cities by their average rainfall.",
              weather,
              Partition(Group(TableRef("weather"), keys=(0,), agg_func="avg",
                              agg_col=3),
                        keys=(), agg_func="dense_rank_desc", agg_col=1),
              _GPA, 2))

    add(_task("fe33_price_vs_product_peak",
              "Each line's price as a fraction of its product's peak price.",
              orders,
              Arithmetic(Partition(TableRef("orders"), keys=(0,),
                                   agg_func="max", agg_col=3),
                         func="div", cols=(3, 4)), _GPA, 2))

    add(_task("fe34_score_vs_subject_avg",
              "Each score minus the student's average in that subject.",
              scores,
              Arithmetic(Partition(TableRef("scores"), keys=(0, 1),
                                   agg_func="avg", agg_col=3),
                         func="sub", cols=(3, 4)), _GPA, 2))

    add(_task("fe35_close_above_ticker_low",
              "Each close minus the ticker's lowest close.",
              stocks,
              Arithmetic(Partition(TableRef("stocks"), keys=(0,),
                                   agg_func="min", agg_col=2),
                         func="sub", cols=(2, 4)), _GPA, 2))

    # -------------------------------------------------------- 3 ops (8)
    health = _health_program_table()
    add(_task("fe36_health_program_percentage",
              "The paper's running example: % of city population enrolled "
              "by the end of each quarter.",
              health,
              Arithmetic(
                  Partition(Group(TableRef("T"), keys=(0, 1, 4),
                                  agg_func="sum", agg_col=3),
                            keys=(0,), agg_func="cumsum", agg_col=3),
                  func="percent", cols=(4, 2)), _GPA, 3))

    add(_task("fe37_revenue_rank_per_product",
              "Rank products by total revenue (units × price).",
              orders,
              Partition(Group(Arithmetic(TableRef("orders"), func="mul",
                                         cols=(2, 3)),
                              keys=(0,), agg_func="sum", agg_col=4),
                        keys=(), agg_func="rank_desc", agg_col=1), _GPA, 3))

    add(_task("fe38_top_customers_first_half",
              "Rank customers by their total spend in the first two quarters.",
              o2,
              Partition(Group(Filter(TableRef("orders"),
                                     pred=ConstCmp(3, "<=", 2)),
                              keys=(1,), agg_func="sum", agg_col=2),
                        keys=(), agg_func="rank_desc", agg_col=1),
              ("group", "partition", "arithmetic", "filter"), 3,
              constants=(2,)))

    add(_task("fe39_segment_quarter_cumulative",
              "Cumulative order amount per segment over quarters.",
              (o2, cust),
              Partition(Group(Join(TableRef("orders"), TableRef("customers"),
                                   pred=ColCmp(1, "==", 4)),
                              keys=(5, 3), agg_func="sum", agg_col=2),
                        keys=(0,), agg_func="cumsum", agg_col=2), _GPA, 3))

    add(_task("fe40_math_leaderboard",
              "Rank students by average score, Math tests only.",
              scores,
              Partition(Group(Filter(TableRef("scores"),
                                     pred=ConstCmp(1, "==", "Math")),
                              keys=(0,), agg_func="avg", agg_col=3),
                        keys=(), agg_func="rank_desc", agg_col=1),
              ("group", "partition", "arithmetic", "filter"), 3,
              constants=("Math",)))

    add(_task("fe41_city_temp_vs_overall",
              "Each city's average temperature minus the overall average.",
              weather,
              Arithmetic(Partition(Group(TableRef("weather"), keys=(0,),
                                         agg_func="avg", agg_col=2),
                                   keys=(), agg_func="avg", agg_col=1),
                         func="sub", cols=(1, 2)), _GPA, 3))

    add(_task("fe42_conversion_vs_page_avg",
              "Each week's conversion rate minus the page's average rate.",
              sessions,
              Arithmetic(
                  Partition(Arithmetic(TableRef("sessions"), func="percent",
                                       cols=(3, 2)),
                            keys=(0,), agg_func="avg", agg_col=4),
                  func="sub", cols=(4, 5)), _GPA, 3))

    orders_shuffled = dg.shuffled(dg.product_sales(), seed=7)
    add(_task("fe43_sorted_monthly_cumulative",
              "Cumulative monthly units per product from an unsorted log.",
              orders_shuffled,
              Partition(Sort(Group(TableRef("orders"), keys=(0, 1),
                                   agg_func="sum", agg_col=2),
                             cols=(1,), ascending=True),
                        keys=(0,), agg_func="cumsum", agg_col=2),
              ("group", "partition", "arithmetic", "sort"), 3))

    return tasks


def _health_program_table() -> Table:
    enrollment = {
        "A": [(1667, 1367), (256, 347), (148, 237), (556, 432)],
        "B": [(2578, 1200), (300, 400), (500, 600), (768, 801)],
    }
    population = {"A": 5668, "B": 10541}
    rows = []
    for city in ("A", "B"):
        for quarter, (youth, adult) in enumerate(enrollment[city], start=1):
            rows.append([city, quarter, "Youth", youth, population[city]])
            rows.append([city, quarter, "Adult", adult, population[city]])
    return Table.from_rows(
        "T", ["City", "Quarter", "Group", "Enrolled", "Population"], rows)

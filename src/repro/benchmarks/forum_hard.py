"""The 17 hard forum-style tasks (4–5 operators).

These mirror the paper's harder forum questions: multi-step pipelines that
combine filtering/joining with grouping, window computation and derived
arithmetic — cumulative shares, deviations from computed baselines, ranked
aggregates of aggregates.
"""

from __future__ import annotations

from repro.benchmarks import datagen as dg
from repro.benchmarks.forum_easy import _health_program_table, _task
from repro.lang.ast import (
    Arithmetic,
    Filter,
    Group,
    Join,
    Partition,
    Sort,
    TableRef,
)
from repro.lang.predicates import ColCmp, ConstCmp
from repro.benchmarks.task import BenchmarkTask

_GPA = ("group", "partition", "arithmetic")
_GPAF = ("group", "partition", "arithmetic", "filter")
_GPAS = ("group", "partition", "arithmetic", "sort")


def hard_tasks() -> list[BenchmarkTask]:
    tasks: list[BenchmarkTask] = []
    add = tasks.append

    sessions = dg.website_sessions()
    add(_task("fh01_cumulative_signup_share",
              "After week 1, cumulative signups per page as % of that "
              "page-week's visits.",
              sessions,
              Arithmetic(
                  Partition(Group(Filter(TableRef("sessions"),
                                         pred=ConstCmp(1, ">", 1)),
                                  keys=(0, 1, 2), agg_func="sum", agg_col=3),
                            keys=(0,), agg_func="cumsum", agg_col=3),
                  func="percent", cols=(4, 2)),
              _GPAF, 4, constants=(1,), difficulty="hard"))

    o2, cust = dg.orders_with_customers()
    add(_task("fh02_region_quarter_share",
              "Each region-quarter's order amount as % of the region total "
              "(orders ⋈ customers).",
              (o2, cust),
              Arithmetic(
                  Partition(Group(Join(TableRef("orders"),
                                       TableRef("customers"),
                                       pred=ColCmp(1, "==", 4)),
                                  keys=(6, 3), agg_func="sum", agg_col=2),
                            keys=(0,), agg_func="sum", agg_col=2),
                  func="percent", cols=(2, 3)),
              _GPA, 4, difficulty="hard"))

    orders = dg.product_sales()
    add(_task("fh03_revenue_share_of_total",
              "Each product's revenue (units × price) as % of total revenue.",
              orders,
              Arithmetic(
                  Partition(Group(Arithmetic(TableRef("orders"), func="mul",
                                             cols=(2, 3)),
                                  keys=(0,), agg_func="sum", agg_col=4),
                            keys=(), agg_func="sum", agg_col=1),
                  func="percent", cols=(1, 2)),
              _GPA, 4, difficulty="hard"))

    sales = dg.sales_by_region_quarter()
    add(_task("fh04_cumulative_share_of_region",
              "Cumulative quarterly sales as % of the region's full-year total.",
              sales,
              Arithmetic(
                  Partition(Partition(Group(TableRef("sales"), keys=(0, 1),
                                            agg_func="sum", agg_col=2),
                                      keys=(0,), agg_func="cumsum", agg_col=2),
                            keys=(0,), agg_func="sum", agg_col=2),
                  func="percent", cols=(3, 4)),
              _GPA, 4, difficulty="hard"))

    catalog = dg.category_products()
    add(_task("fh05_category_value_rank",
              "Rank categories by total stock value of in-stock items.",
              catalog,
              Partition(Group(Arithmetic(Filter(TableRef("catalog"),
                                                pred=ConstCmp(3, ">", 0)),
                                         func="mul", cols=(2, 3)),
                              keys=(1,), agg_func="sum", agg_col=4),
                        keys=(), agg_func="rank_desc", agg_col=1),
              _GPAF, 4, constants=(0,), difficulty="hard"))

    ship, wh = dg.shipments_with_warehouses()
    add(_task("fh06_weekly_weight_deviation",
              "Weekly shipped weight per country minus the country's weekly "
              "average (shipments ⋈ warehouses).",
              (ship, wh),
              Arithmetic(
                  Partition(Group(Join(TableRef("shipments"),
                                       TableRef("warehouses"),
                                       pred=ColCmp(1, "==", 4)),
                                  keys=(5, 3), agg_func="sum", agg_col=2),
                            keys=(0,), agg_func="avg", agg_col=2),
                  func="sub", cols=(2, 3)),
              _GPA, 4, difficulty="hard"))

    scores = dg.student_scores()
    add(_task("fh07_best_subject_vs_cohort",
              "Each student's best per-subject average minus the cohort "
              "average of best averages.",
              scores,
              Arithmetic(
                  Partition(Group(Group(TableRef("scores"), keys=(0, 1),
                                        agg_func="avg", agg_col=3),
                                  keys=(0,), agg_func="max", agg_col=2),
                            keys=(), agg_func="avg", agg_col=1),
                  func="sub", cols=(1, 2)),
              _GPA, 4, difficulty="hard"))

    stocks = dg.stock_prices()
    add(_task("fh08_early_close_vs_market",
              "Average close per ticker over the first four days, minus the "
              "market-wide average of those averages.",
              stocks,
              Arithmetic(
                  Partition(Group(Filter(TableRef("stocks"),
                                         pred=ConstCmp(1, "<=", 4)),
                                  keys=(0,), agg_func="avg", agg_col=2),
                            keys=(), agg_func="avg", agg_col=1),
                  func="sub", cols=(1, 2)),
              _GPAF, 4, constants=(4,), difficulty="hard"))

    add(_task("fh09_retail_region_rank",
              "Rank regions by retail order amount (orders ⋈ customers, "
              "retail segment only).",
              (o2, cust),
              Partition(Group(Filter(Join(TableRef("orders"),
                                          TableRef("customers"),
                                          pred=ColCmp(1, "==", 4)),
                                     pred=ConstCmp(5, "==", "Retail")),
                              keys=(6,), agg_func="sum", agg_col=2),
                        keys=(), agg_func="rank_desc", agg_col=1),
              _GPAF, 4, constants=("Retail",), difficulty="hard"))

    add(_task("fh10_conversion_deviation_rank",
              "Rank each page's weeks by how far their conversion rate sits "
              "above the page average.",
              sessions,
              Partition(Arithmetic(
                  Partition(Arithmetic(TableRef("sessions"), func="percent",
                                       cols=(3, 2)),
                            keys=(0,), agg_func="avg", agg_col=4),
                  func="sub", cols=(4, 5)),
                  keys=(0,), agg_func="rank_desc", agg_col=6),
              _GPA, 4, difficulty="hard"))

    add(_task("fh11_gap_to_best_quarter",
              "Per region-quarter: sales gap to the region's best quarter, "
              "ranked within the region.",
              sales,
              Partition(Arithmetic(
                  Partition(Group(TableRef("sales"), keys=(0, 1),
                                  agg_func="sum", agg_col=2),
                            keys=(0,), agg_func="max", agg_col=2),
                  func="sub", cols=(2, 3)),
                  keys=(0,), agg_func="rank_desc", agg_col=4),
              _GPA, 4, difficulty="hard"))

    add(_task("fh12_country_weight_share",
              "Each country's share of globally shipped weight "
              "(shipments ⋈ warehouses).",
              (ship, wh),
              Arithmetic(
                  Partition(Group(Join(TableRef("shipments"),
                                       TableRef("warehouses"),
                                       pred=ColCmp(1, "==", 4)),
                                  keys=(5,), agg_func="sum", agg_col=2),
                            keys=(), agg_func="sum", agg_col=1),
                  func="percent", cols=(1, 2)),
              _GPA, 4, difficulty="hard"))

    add(_task("fh13_cumulative_revenue_share",
              "Cumulative monthly revenue per product as % of the product's "
              "total revenue.",
              orders,
              Arithmetic(
                  Partition(Partition(Group(Arithmetic(TableRef("orders"),
                                                       func="mul",
                                                       cols=(2, 3)),
                                            keys=(0, 1), agg_func="sum",
                                            agg_col=4),
                                      keys=(0,), agg_func="cumsum",
                                      agg_col=2),
                            keys=(0,), agg_func="sum", agg_col=2),
                  func="percent", cols=(3, 4)),
              _GPA, 5, difficulty="hard", max_key_cols=2))

    health = _health_program_table()
    add(_task("fh14_youth_enrollment_percentage",
              "Running example restricted to the Youth age group: % of "
              "population enrolled by the end of each quarter.",
              health,
              Arithmetic(
                  Partition(Group(Filter(TableRef("T"),
                                         pred=ConstCmp(2, "==", "Youth")),
                                  keys=(0, 1, 4), agg_func="sum", agg_col=3),
                            keys=(0,), agg_func="cumsum", agg_col=3),
                  func="percent", cols=(4, 2)),
              _GPAF, 4, constants=("Youth",), difficulty="hard"))

    employees = dg.employee_salaries()
    add(_task("fh15_bonus_dept_deviation_rank",
              "Among employees with a bonus: department average salaries, "
              "their deviation from the company-wide mean, ranked.",
              employees,
              Partition(Arithmetic(
                  Partition(Group(Filter(TableRef("employees"),
                                         pred=ConstCmp(3, ">", 0)),
                                  keys=(1,), agg_func="avg", agg_col=2),
                            keys=(), agg_func="avg", agg_col=1),
                  func="sub", cols=(1, 2)),
                  keys=(), agg_func="rank_desc", agg_col=3),
              _GPAF, 5, constants=(0,), difficulty="hard"))

    weather = dg.weather_readings()
    add(_task("fh16_early_rainfall_share",
              "Over the first three days, each city's share of total rainfall.",
              weather,
              Arithmetic(
                  Partition(Group(Filter(TableRef("weather"),
                                         pred=ConstCmp(1, "<=", 3)),
                                  keys=(0,), agg_func="sum", agg_col=3),
                            keys=(), agg_func="sum", agg_col=1),
                  func="percent", cols=(1, 2)),
              _GPAF, 4, constants=(3,), difficulty="hard"))

    stocks_shuffled = dg.shuffled(dg.stock_prices(), seed=11)
    add(_task("fh17_final_running_volume_rank",
              "Sort the trade log by day, accumulate volume per ticker, and "
              "rank tickers by their final cumulative volume.",
              stocks_shuffled,
              Partition(Group(Partition(Sort(TableRef("stocks"), cols=(1,),
                                             ascending=True),
                                        keys=(0,), agg_func="cumsum",
                                        agg_col=3),
                              keys=(0,), agg_func="max", agg_col=4),
                        keys=(), agg_func="rank_desc", agg_col=1),
              _GPAS, 4, difficulty="hard", max_key_cols=2))

    return tasks

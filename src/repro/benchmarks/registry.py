"""Benchmark registry: lookup, filtering and suite statistics."""

from __future__ import annotations

from functools import lru_cache

from repro.benchmarks.task import BenchmarkTask


@lru_cache(maxsize=1)
def all_tasks() -> tuple[BenchmarkTask, ...]:
    """All 80 tasks: 43 easy forum + 17 hard forum + 20 TPC-DS."""
    from repro.benchmarks.forum_easy import easy_tasks as forum_easy
    from repro.benchmarks.forum_hard import hard_tasks as forum_hard
    from repro.benchmarks.tpcds import tpcds_tasks

    return tuple(forum_easy() + forum_hard() + tpcds_tasks())


def easy_tasks() -> tuple[BenchmarkTask, ...]:
    return tuple(t for t in all_tasks() if t.difficulty == "easy")


def hard_tasks() -> tuple[BenchmarkTask, ...]:
    return tuple(t for t in all_tasks() if t.difficulty == "hard")


def tasks_by_suite(suite: str) -> tuple[BenchmarkTask, ...]:
    return tuple(t for t in all_tasks() if t.suite == suite)


def get_task(name: str) -> BenchmarkTask:
    for task in all_tasks():
        if task.name == name:
            return task
    raise KeyError(f"no benchmark named {name!r}")


def task_summary() -> dict:
    """Suite statistics mirroring §5.1's benchmark description."""
    tasks = all_tasks()
    return {
        "total": len(tasks),
        "easy": sum(1 for t in tasks if t.difficulty == "easy"),
        "hard": sum(1 for t in tasks if t.difficulty == "hard"),
        "forum": sum(1 for t in tasks if t.suite == "forum"),
        "tpcds": sum(1 for t in tasks if t.suite == "tpcds"),
        "requires_join": sum(1 for t in tasks if "join" in t.features),
        "requires_partition": sum(
            1 for t in tasks if "partition" in t.features),
        "requires_group": sum(1 for t in tasks if "group" in t.features),
        "mean_demo_cells": round(
            sum(t.demonstration.size for t in tasks) / len(tasks), 2),
        "mean_full_output_cells": round(
            sum(t.full_output_size for t in tasks) / len(tasks), 2),
    }

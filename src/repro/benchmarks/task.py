"""Benchmark task model.

A task bundles everything one evaluation run needs: input tables, the
ground-truth query, the synthesis configuration (operator pool, constants,
budget caps — shared by every abstraction technique so the search space is
identical, §5.1), and a deterministically generated demonstration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import BenchmarkError
from repro.lang import ast
from repro.provenance.consistency import demo_consistent
from repro.provenance.demo import Demonstration
from repro.semantics.concrete import evaluate
from repro.semantics.tracking import evaluate_tracking
from repro.spec.demo_gen import DemoGenConfig, generate_demonstration
from repro.synthesis.config import SynthesisConfig
from repro.table.table import Table


@dataclass(frozen=True)
class BenchmarkTask:
    """One synthesis benchmark: ``(T̄, E, q_gt)`` plus its search space."""

    name: str
    suite: str                      # "forum" | "tpcds"
    difficulty: str                 # "easy" | "hard"
    description: str
    tables: tuple[Table, ...]
    ground_truth: ast.Query
    config: SynthesisConfig
    demo_config: DemoGenConfig = field(default_factory=DemoGenConfig)

    def __post_init__(self) -> None:
        if self.suite not in ("forum", "tpcds"):
            raise BenchmarkError(f"{self.name}: unknown suite {self.suite!r}")
        if self.difficulty not in ("easy", "hard"):
            raise BenchmarkError(
                f"{self.name}: unknown difficulty {self.difficulty!r}")

    @property
    def env(self) -> ast.Env:
        return ast.Env(self.tables)

    @cached_property
    def demonstration(self) -> Demonstration:
        """The §5.1-generated demonstration (deterministic per task name)."""
        return generate_demonstration(self.ground_truth, self.env,
                                      self.demo_config, label=self.name)

    @property
    def operators_required(self) -> int:
        """Operator count of the ground truth, excluding final projections.

        The search never needs ``proj`` (consistency allows demonstrations
        over column subsets), so projections in the ground truth do not
        count toward the required skeleton size.
        """
        return sum(1 for node in self.ground_truth.walk()
                   if not isinstance(node, (ast.TableRef, ast.Proj)))

    @cached_property
    def features(self) -> frozenset[str]:
        """Operator families the ground truth uses (suite statistics)."""
        names = set()
        for node in self.ground_truth.walk():
            if isinstance(node, (ast.Join, ast.LeftJoin)):
                names.add("join")
            elif isinstance(node, ast.Group):
                names.add("group")
            elif isinstance(node, ast.Partition):
                names.add("partition")
            elif isinstance(node, ast.Arithmetic):
                names.add("arithmetic")
            elif isinstance(node, ast.Filter):
                names.add("filter")
            elif isinstance(node, ast.Sort):
                names.add("sort")
        return frozenset(names)

    @property
    def full_output_size(self) -> int:
        """Cells a full I/O example would need (spec-size statistics)."""
        out = evaluate(self.ground_truth, self.env)
        return out.n_rows * out.n_cols


def validate_task(task: BenchmarkTask) -> None:
    """Raise :class:`BenchmarkError` unless the task is internally coherent.

    Checks: the ground truth evaluates; its output is non-degenerate; the
    generated demonstration is provenance-consistent with the ground truth
    (Definition 1); and the skeleton budget can reach the ground truth.
    """
    try:
        out = evaluate(task.ground_truth, task.env)
    except Exception as exc:  # pragma: no cover - authoring error
        raise BenchmarkError(f"{task.name}: ground truth fails: {exc}") from exc
    if out.n_rows < 1:
        raise BenchmarkError(
            f"{task.name}: ground-truth output is empty")
    if task.operators_required > task.config.max_operators:
        raise BenchmarkError(
            f"{task.name}: ground truth needs {task.operators_required} "
            f"operators but the budget is {task.config.max_operators}")
    tracked = evaluate_tracking(task.ground_truth, task.env)
    if not demo_consistent(tracked.exprs, task.demonstration.cells):
        raise BenchmarkError(
            f"{task.name}: generated demonstration is not consistent with "
            "the ground truth")


def instantiation_stream(task: BenchmarkTask, cap: int,
                         engine=None) -> list[ast.Query]:
    """The first ``cap`` concrete queries of the task's instantiation
    stream — the exact candidate population Algorithm 1 feeds the ≺
    check, with sibling families contiguous (the enumerator's pop order).

    One shared implementation for the differential suites and the
    micro-benchmarks, so a change to the search's expansion order cannot
    silently diverge from the streams those replay.  ``engine`` is the
    helper domain inference evaluates through (a fresh ``RowEngine`` when
    omitted).
    """
    from repro.engine.row import RowEngine
    from repro.lang.holes import fill, first_hole
    from repro.synthesis.domains import hole_domain
    from repro.synthesis.skeletons import construct_skeletons

    env = task.env
    helper = engine if engine is not None else RowEngine()
    out: list[ast.Query] = []
    stack = list(construct_skeletons(env, task.config))
    while stack and len(out) < cap:
        query = stack.pop()
        position = first_hole(query)
        if position is None:
            out.append(query)
            continue
        for value in hole_domain(query, position, env, task.config,
                                 task.demonstration, helper):
            stack.append(fill(query, position, value))
    return out

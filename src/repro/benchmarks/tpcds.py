"""The 20 TPC-DS-style tasks (4–5 operators, star-schema joins).

Modelled on the analytical views the paper extracts from TPC-DS (§5.1):
cumulative sums over months (q51), deviation from a window average
(q47/q89), in-group revenue shares (q98), ranked aggregates (q36/q44/q67),
per-unit profit ratios (q49).  Tasks ``td13``–``td16`` are the two-join,
many-column pipelines that stress every technique — the paper reports its
four unsolved benchmarks are exactly this kind of TPC-DS task.

Schema (see :mod:`repro.benchmarks.datagen`):

* ``store_sales``: ss_sold_date_sk, ss_item_sk, ss_store_sk, ss_quantity,
  ss_ext_sales_price, ss_net_profit  (FKs to the dimensions)
* ``item``: i_item_sk, i_category, i_brand, i_class, i_current_price
* ``date_dim``: d_date_sk, d_year, d_moy, d_qoy
* ``store``: s_store_sk, s_state, s_store_name
* ``sales_flat``: a pre-joined view (category, brand, month, state,
  quantity, sales_price, net_profit) standing in for the materialized views
  TPC-DS scripts build before the analytical step.
"""

from __future__ import annotations

from repro.benchmarks import datagen as dg
from repro.benchmarks.task import BenchmarkTask
from repro.lang.ast import (
    Arithmetic,
    Filter,
    Group,
    Join,
    Partition,
    Sort,
    TableRef,
)
from repro.lang.predicates import ColCmp, ConstCmp
from repro.synthesis.config import SynthesisConfig
from repro.table.table import Table


def _task(name: str, description: str, tables, gt, pool, max_ops: int,
          constants=(), max_key_cols: int = 3) -> BenchmarkTask:
    if isinstance(tables, Table):
        tables = (tables,)
    return BenchmarkTask(
        name=name, suite="tpcds", difficulty="hard", description=description,
        tables=tuple(tables), ground_truth=gt,
        config=SynthesisConfig(max_operators=max_ops,
                               operator_pool=tuple(pool),
                               constants=tuple(constants),
                               max_key_cols=max_key_cols))


_GPA = ("group", "partition", "arithmetic")
_GPAF = ("group", "partition", "arithmetic", "filter")
_GPAS = ("group", "partition", "arithmetic", "sort")


def _ss() -> Table:
    return dg.tpcds_store_sales()


def _ss_item() -> Join:
    return Join(TableRef("store_sales"), TableRef("item"),
                pred=ColCmp(1, "==", 6))


def _ss_date() -> Join:
    return Join(TableRef("store_sales"), TableRef("date_dim"),
                pred=ColCmp(0, "==", 6))


def _ss_store() -> Join:
    return Join(TableRef("store_sales"), TableRef("store"),
                pred=ColCmp(2, "==", 6))


def tpcds_tasks() -> list[BenchmarkTask]:
    tasks: list[BenchmarkTask] = []
    add = tasks.append

    ss, item, date, store = (_ss(), dg.tpcds_item(), dg.tpcds_date_dim(),
                             dg.tpcds_store())
    flat = dg.tpcds_flat_sales()

    # td01 — q51: cumulative monthly sales per item.
    add(_task("td01_item_cumulative_monthly_sales",
              "Cumulative monthly sales revenue per item (q51 pattern).",
              (ss, date),
              Partition(Sort(Group(_ss_date(), keys=(1, 8), agg_func="sum",
                                   agg_col=4),
                             cols=(1,), ascending=True),
                        keys=(0,), agg_func="cumsum", agg_col=2),
              _GPAS, 4))

    # td02 — q47: monthly brand sales deviation from the brand average.
    add(_task("td02_brand_monthly_deviation",
              "CA-only monthly sales per brand minus the brand's monthly "
              "average (q47 pattern).",
              flat,
              Arithmetic(
                  Partition(Group(Filter(TableRef("sales_flat"),
                                         pred=ConstCmp(3, "==", "CA")),
                                  keys=(1, 2), agg_func="sum", agg_col=5),
                            keys=(0,), agg_func="avg", agg_col=2),
                  func="sub", cols=(2, 3)),
              _GPAF, 4, constants=("CA",)))

    # td03 — q36: categories ranked by net profit.
    add(_task("td03_category_profit_rank",
              "Rank item categories by total net profit on bulk lines "
              "(q36 pattern).",
              (ss, item),
              Partition(Group(Filter(_ss_item(), pred=ConstCmp(3, ">", 2)),
                              keys=(7,), agg_func="sum", agg_col=5),
                        keys=(), agg_func="rank_desc", agg_col=1),
              _GPAF, 4, constants=(2,)))

    # td04 — q44: brands ranked by average selling price.
    add(_task("td04_brand_avg_price_rank",
              "Rank brands by average sale price over profitable lines "
              "(q44 pattern).",
              (ss, item),
              Partition(Group(Filter(_ss_item(), pred=ConstCmp(5, ">", 0)),
                              keys=(8,), agg_func="avg", agg_col=4),
                        keys=(), agg_func="rank_desc", agg_col=1),
              _GPAF, 4, constants=(0,)))

    # td05 — q98: brand revenue share within its category, ranked.
    add(_task("td05_brand_share_in_category",
              "Each brand's revenue share within its category, ranked "
              "(q98 pattern).",
              flat,
              Partition(Arithmetic(
                  Partition(Group(TableRef("sales_flat"), keys=(0, 1),
                                  agg_func="sum", agg_col=5),
                            keys=(0,), agg_func="sum", agg_col=2),
                  func="percent", cols=(2, 3)),
                  keys=(0,), agg_func="rank_desc", agg_col=4),
              _GPA, 4))

    # td06 — cumulative share of category revenue over months.
    add(_task("td06_category_cumulative_share",
              "Cumulative monthly revenue per category as % of the "
              "category total.",
              flat,
              Arithmetic(
                  Partition(Partition(Group(TableRef("sales_flat"),
                                            keys=(0, 2), agg_func="sum",
                                            agg_col=5),
                                      keys=(0,), agg_func="cumsum",
                                      agg_col=2),
                            keys=(0,), agg_func="sum", agg_col=2),
                  func="percent", cols=(3, 4)),
              _GPA, 4))

    # td07 — state share of total profit.
    add(_task("td07_state_profit_share",
              "Each state's share of total net profit (store join).",
              (ss, store),
              Arithmetic(
                  Partition(Group(_ss_store(), keys=(7,), agg_func="sum",
                                  agg_col=5),
                            keys=(), agg_func="sum", agg_col=1),
                  func="percent", cols=(1, 2)),
              _GPA, 4))

    # td08 — cumulative quarterly profit.
    add(_task("td08_cumulative_quarterly_profit",
              "Cumulative net profit over quarters (date join).",
              (ss, date),
              Partition(Sort(Group(_ss_date(), keys=(9,), agg_func="sum",
                                   agg_col=5),
                             cols=(0,), ascending=True),
                        keys=(), agg_func="cumsum", agg_col=1),
              _GPAS, 4))

    # td09 — item classes ranked by average profit on bulk lines.
    add(_task("td09_class_avg_profit_rank",
              "Rank item classes by average net profit on multi-unit lines.",
              (ss, item),
              Partition(Group(Filter(_ss_item(), pred=ConstCmp(3, ">=", 2)),
                              keys=(9,), agg_func="avg", agg_col=5),
                        keys=(), agg_func="rank_desc", agg_col=1),
              _GPAF, 4, constants=(2,)))

    # td10 — q49-style per-unit profit ranking.
    add(_task("td10_per_unit_profit_rank",
              "Rank brands by average per-unit profit in the first quarter "
              "months (q49 pattern).",
              flat,
              Partition(Group(Arithmetic(Filter(TableRef("sales_flat"),
                                                pred=ConstCmp(2, "<=", 3)),
                                         func="div", cols=(6, 4)),
                              keys=(1,), agg_func="avg", agg_col=7),
                        keys=(), agg_func="rank_desc", agg_col=1),
              _GPAF, 4, constants=(3,)))

    # td11 — states ranked by sales revenue on profitable lines.
    add(_task("td11_state_sales_rank",
              "Rank states by sales revenue over profitable lines.",
              (ss, store),
              Partition(Group(Filter(_ss_store(), pred=ConstCmp(5, ">", 0)),
                              keys=(7,), agg_func="sum", agg_col=4),
                        keys=(), agg_func="rank_desc", agg_col=1),
              _GPAF, 4, constants=(0,)))

    # td12 — list price vs category average (item join).
    add(_task("td12_price_vs_category_avg",
              "Each bulk sale's item list price minus the category's "
              "average list price.",
              (ss, item),
              Arithmetic(Partition(Filter(_ss_item(),
                                          pred=ConstCmp(3, ">=", 2)),
                                   keys=(7,), agg_func="avg", agg_col=10),
                         func="sub", cols=(10, 11)),
              _GPAF, 4, constants=(2,)))

    # td13–td16 — the two-join, many-column pipelines (the paper's unsolved
    # class: "the input data has many columns, or the task requires join").
    add(_task("td13_category_monthly_cumulative",
              "Cumulative monthly sales per category (two joins).",
              (ss, item, date),
              Partition(Sort(Group(Join(_ss_item(), TableRef("date_dim"),
                                        pred=ColCmp(0, "==", 11)),
                                   keys=(7, 13), agg_func="sum", agg_col=4),
                             cols=(1,), ascending=True),
                        keys=(0,), agg_func="cumsum", agg_col=2),
              _GPAS, 5))

    add(_task("td14_category_state_profit_rank",
              "Rank category × state cells by net profit (two joins).",
              (ss, item, store),
              Partition(Group(Join(_ss_item(), TableRef("store"),
                                   pred=ColCmp(2, "==", 11)),
                              keys=(7, 12), agg_func="sum", agg_col=5),
                        keys=(0,), agg_func="rank_desc", agg_col=2),
              _GPA, 4))

    add(_task("td15_brand_monthly_vs_avg",
              "Monthly brand sales minus brand monthly average (two joins).",
              (ss, item, date),
              Arithmetic(
                  Partition(Group(Join(_ss_item(), TableRef("date_dim"),
                                       pred=ColCmp(0, "==", 11)),
                                  keys=(8, 13), agg_func="sum", agg_col=4),
                            keys=(0,), agg_func="avg", agg_col=2),
                  func="sub", cols=(2, 3)),
              _GPA, 5))

    add(_task("td16_state_monthly_share",
              "Each state's monthly share of its total sales (two joins).",
              (ss, date, store),
              Arithmetic(
                  Partition(Group(Join(_ss_date(), TableRef("store"),
                                       pred=ColCmp(2, "==", 10)),
                                  keys=(11, 8), agg_func="sum", agg_col=4),
                            keys=(0,), agg_func="sum", agg_col=2),
                  func="percent", cols=(2, 3)),
              _GPA, 5))

    # td17 — category share of quantity, ranked.
    add(_task("td17_category_quantity_share_rank",
              "Each category's share of units moved, ranked.",
              flat,
              Partition(Arithmetic(
                  Partition(Group(TableRef("sales_flat"), keys=(0,),
                                  agg_func="sum", agg_col=4),
                            keys=(), agg_func="sum", agg_col=1),
                  func="percent", cols=(1, 2)),
                  keys=(), agg_func="rank_desc", agg_col=3),
              _GPA, 4))

    # td18 — q89: monthly category sales gap to the category's best month.
    add(_task("td18_gap_to_best_month",
              "Monthly category revenue gap to the category's best month, "
              "ranked within the category (q89 pattern).",
              flat,
              Partition(Arithmetic(
                  Partition(Group(TableRef("sales_flat"), keys=(0, 2),
                                  agg_func="sum", agg_col=5),
                            keys=(0,), agg_func="max", agg_col=2),
                  func="sub", cols=(2, 3)),
                  keys=(0,), agg_func="rank_desc", agg_col=4),
              _GPA, 4))

    # td19 — cumulative brand quantity share over months.
    add(_task("td19_brand_cumulative_quantity_share",
              "Cumulative monthly units per brand as % of the brand total.",
              flat,
              Arithmetic(
                  Partition(Partition(Sort(Group(TableRef("sales_flat"),
                                                 keys=(1, 2), agg_func="sum",
                                                 agg_col=4),
                                           cols=(1,), ascending=True),
                                      keys=(0,), agg_func="cumsum",
                                      agg_col=2),
                            keys=(0,), agg_func="sum", agg_col=2),
                  func="percent", cols=(3, 4)),
              _GPAS, 5))

    # td20 — electronics classes ranked by revenue.
    add(_task("td20_electronics_class_revenue_rank",
              "Within Electronics, rank item classes by sales revenue.",
              (ss, item),
              Partition(Group(Filter(_ss_item(),
                                     pred=ConstCmp(7, "==", "Electronics")),
                              keys=(9,), agg_func="sum", agg_col=4),
                        keys=(), agg_func="rank_desc", agg_col=1),
              _GPAF, 4, constants=("Electronics",)))

    return tasks

"""The pluggable evaluation engine layer.

Algorithm 1 spends nearly all of its time evaluating thousands of
structurally-shared (partial) queries.  This package makes *how* those
evaluations run — and where their results are cached — a first-class,
swappable component:

* :class:`~repro.engine.base.EvalEngine` — the interface.  An engine owns
  **all** evaluation state: the concrete cache, the tracking cache and hit
  statistics.  Two engines never share state, so two synthesis sessions can
  run interleaved (or concurrently) without interference.
* :class:`~repro.engine.row.RowEngine` — the row-at-a-time tree interpreter
  (the historical evaluator) behind the interface.
* :class:`~repro.engine.columnar.ColumnarEngine` — column-major evaluation
  over :class:`~repro.engine.columns.ColumnBlock` with vectorized
  filter/join/group/analytic kernels; evaluated subtrees are cached by
  structural key so a skeleton's shared concrete prefix is computed once
  across all of its instantiations.  Provenance tracking runs columnar
  too, over :class:`~repro.engine.tracked_columns.TrackedBlock` (an
  expression grid whose value shadow is the shared concrete block).

* :class:`~repro.engine.numpy_kernels.NumpyEngine` — the columnar engine
  with NumPy-vectorized kernels on the comparison hot paths (filters,
  join pair-building, sorts, grouping, aggregation, windows, arithmetic).
  Gated on ``import numpy`` at construction: ``make_engine("numpy")``
  degrades to the pure-python ``ColumnarEngine`` (with a logged warning)
  when NumPy is absent, so the knob is always safe to set.

All backends also expose ``evaluate_many`` / ``evaluate_tracking_many``
— batched evaluation that amortizes dispatch, cache probing and hole
checking over a stream of sibling candidates — and are held byte-identical
by the registry-wide differential suites plus the generative cross-backend
fuzz harness (``tests/test_backend_fuzz.py``).

``make_engine(name)`` is the factory the synthesis layer uses
(``SynthesisConfig.backend`` selects the name); ``capabilities()`` reports
what each name resolves to on this host.

:mod:`repro.engine.shm` is the zero-copy shared-memory column store the
parallel layer dispatches through: column blocks and whole environments
are laid out in ``multiprocessing.shared_memory`` segments, workers attach
read-only via picklable handles, and engines *adopt* the decoded columns
(``EvalEngine.adopt_env``) so leaf blocks — and, on the NumPy backend,
typed ``NDColumn`` shadows — alias the shared buffers instead of being
rebuilt per worker.
"""

from repro.engine.base import BACKENDS, EngineStats, EvalEngine, \
    capabilities, make_engine, resolve_backend
from repro.engine.cache import BoundedCache
from repro.engine.columnar import ColumnarEngine
from repro.engine.columns import ColumnBlock
from repro.engine.numpy_kernels import HAVE_NUMPY, NumpyEngine
from repro.engine.row import RowEngine
from repro.engine.tracked_columns import TrackedBlock

__all__ = [
    "BACKENDS", "EngineStats", "EvalEngine", "make_engine",
    "resolve_backend", "capabilities", "HAVE_NUMPY",
    "BoundedCache", "ColumnBlock", "TrackedBlock", "RowEngine",
    "ColumnarEngine", "NumpyEngine",
]

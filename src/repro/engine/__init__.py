"""The pluggable evaluation engine layer.

Algorithm 1 spends nearly all of its time evaluating thousands of
structurally-shared (partial) queries.  This package makes *how* those
evaluations run — and where their results are cached — a first-class,
swappable component:

* :class:`~repro.engine.base.EvalEngine` — the interface.  An engine owns
  **all** evaluation state: the concrete cache, the tracking cache and hit
  statistics.  Two engines never share state, so two synthesis sessions can
  run interleaved (or concurrently) without interference.
* :class:`~repro.engine.row.RowEngine` — the row-at-a-time tree interpreter
  (the historical evaluator) behind the interface.
* :class:`~repro.engine.columnar.ColumnarEngine` — column-major evaluation
  over :class:`~repro.engine.columns.ColumnBlock` with vectorized
  filter/join/group/analytic kernels; evaluated subtrees are cached by
  structural key so a skeleton's shared concrete prefix is computed once
  across all of its instantiations.  Provenance tracking runs columnar
  too, over :class:`~repro.engine.tracked_columns.TrackedBlock` (an
  expression grid whose value shadow is the shared concrete block).

Both backends also expose ``evaluate_many`` / ``evaluate_tracking_many``
— batched evaluation that amortizes dispatch, cache probing and hole
checking over a stream of sibling candidates.

``make_engine(name)`` is the factory the synthesis layer uses
(``SynthesisConfig.backend`` selects the name).
"""

from repro.engine.base import BACKENDS, EngineStats, EvalEngine, make_engine
from repro.engine.cache import BoundedCache
from repro.engine.columnar import ColumnarEngine
from repro.engine.columns import ColumnBlock
from repro.engine.row import RowEngine
from repro.engine.tracked_columns import TrackedBlock

__all__ = [
    "BACKENDS", "EngineStats", "EvalEngine", "make_engine",
    "BoundedCache", "ColumnBlock", "TrackedBlock", "RowEngine",
    "ColumnarEngine",
]

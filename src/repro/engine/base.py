"""The :class:`EvalEngine` interface and backend factory.

An engine answers the two evaluation questions the rest of the system asks
of a *concrete* query:

* ``evaluate(q, env)`` — the standard semantics ``[[q(T̄)]]`` (a
  :class:`~repro.table.table.Table`);
* ``evaluate_tracking(q, env)`` — the provenance-tracking semantics
  ``[[q(T̄)]]★`` (a :class:`~repro.semantics.tracking.TrackedTable`).

and owns every byte of state those answers are memoized through.  The
synthesizer, the hole-domain inference and all three abstractions evaluate
exclusively through an engine, so swapping the backend swaps the evaluation
strategy for the whole stack while search order and results stay identical.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from collections.abc import Sequence

from repro.errors import HoleError
from repro.lang import ast
from repro.semantics.tracking import TrackedTable
from repro.table.table import Table

#: The selectable evaluation backends (``SynthesisConfig.backend``).
BACKENDS: tuple[str, ...] = ("row", "columnar")

#: What ``errors="none"`` batch evaluation tolerates: the evaluation
#: failures of ill-typed candidates (e.g. arithmetic over a NULL-producing
#: division) — the exact exception set the enumerator's ≺ check treats as
#: "not a solution".  ``HoleError`` is *never* swallowed: a partial query
#: in a batch is a caller bug, not a data property.
BATCH_EVAL_ERRORS: tuple[type[Exception], ...] = (TypeError, ValueError,
                                                  ZeroDivisionError)


@dataclass
class EngineStats:
    """Cache-hit counters an engine maintains across its lifetime."""

    concrete_evals: int = 0     # evaluate() calls that missed the cache
    concrete_hits: int = 0      # evaluate() calls served from cache
    tracking_evals: int = 0     # evaluate_tracking() cache misses
    tracking_hits: int = 0      # evaluate_tracking() cache hits

    def as_dict(self) -> dict:
        return dict(self.__dict__)

    @property
    def concrete_hit_rate(self) -> float:
        """Fraction of ``evaluate()`` calls served from cache (0 when idle)."""
        total = self.concrete_evals + self.concrete_hits
        return self.concrete_hits / total if total else 0.0

    @property
    def tracking_hit_rate(self) -> float:
        """Fraction of ``evaluate_tracking()`` calls served from cache."""
        total = self.tracking_evals + self.tracking_hits
        return self.tracking_hits / total if total else 0.0

    @staticmethod
    def merge(*parts: "EngineStats") -> "EngineStats":
        """Sum cache counters across engines (one per parallel worker).

        Every field is a counter — iterated from the dataclass fields so a
        newly added one can never be dropped from merges.
        """
        merged = EngineStats()
        for part in parts:
            for f in fields(EngineStats):
                setattr(merged, f.name,
                        getattr(merged, f.name) + getattr(part, f.name))
        return merged


class EvalEngine:
    """Base class: subclasses implement the two evaluators and ``reset``."""

    name = "abstract"

    def __init__(self) -> None:
        self.stats = EngineStats()

    def evaluate(self, query: ast.Query, env: ast.Env) -> Table:
        """``[[q(T̄)]]`` for a concrete query (raises ``HoleError`` on holes)."""
        raise NotImplementedError

    def evaluate_tracking(self, query: ast.Query, env: ast.Env) -> TrackedTable:
        """``[[q(T̄)]]★`` for a concrete query (raises ``HoleError`` on holes)."""
        raise NotImplementedError

    def evaluate_many(self, queries: Sequence[ast.Query], env: ast.Env,
                      errors: str = "raise") -> list[Table | None]:
        """Batched :meth:`evaluate` over sibling candidates.

        Results come back in input order, one per query, and the cache
        counters advance exactly as the equivalent sequence of single
        calls would.  ``errors="none"`` maps a candidate whose evaluation
        fails with one of :data:`BATCH_EVAL_ERRORS` to ``None`` instead of
        aborting the batch (holes always raise).  Backends override this
        loop to amortize dispatch and hole-checking over the batch.
        """
        self._check_errors_mode(errors)
        out: list[Table | None] = []
        for query in queries:
            try:
                out.append(self.evaluate(query, env))
            except HoleError:
                raise
            except BATCH_EVAL_ERRORS:
                if errors == "raise":
                    raise
                out.append(None)
        return out

    def evaluate_tracking_many(self, queries: Sequence[ast.Query],
                               env: ast.Env, errors: str = "raise"
                               ) -> list[TrackedTable | None]:
        """Batched :meth:`evaluate_tracking`; see :meth:`evaluate_many`."""
        self._check_errors_mode(errors)
        out: list[TrackedTable | None] = []
        for query in queries:
            try:
                out.append(self.evaluate_tracking(query, env))
            except HoleError:
                raise
            except BATCH_EVAL_ERRORS:
                if errors == "raise":
                    raise
                out.append(None)
        return out

    @staticmethod
    def _check_errors_mode(errors: str) -> None:
        if errors not in ("raise", "none"):
            raise ValueError(
                f"errors must be 'raise' or 'none', got {errors!r}")

    def reset(self) -> None:
        """Drop all cached evaluation state and statistics."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def make_engine(name: str = "columnar", **kwargs) -> EvalEngine:
    """Factory: ``"row"`` | ``"columnar"``."""
    from repro.engine.columnar import ColumnarEngine
    from repro.engine.row import RowEngine

    factories = {"row": RowEngine, "columnar": ColumnarEngine}
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(
            f"unknown engine backend {name!r}; choose from {sorted(factories)}"
        ) from None
    return factory(**kwargs)

"""The :class:`EvalEngine` interface and backend factory.

An engine answers the two evaluation questions the rest of the system asks
of a *concrete* query:

* ``evaluate(q, env)`` — the standard semantics ``[[q(T̄)]]`` (a
  :class:`~repro.table.table.Table`);
* ``evaluate_tracking(q, env)`` — the provenance-tracking semantics
  ``[[q(T̄)]]★`` (a :class:`~repro.semantics.tracking.TrackedTable`).

and owns every byte of state those answers are memoized through.  The
synthesizer, the hole-domain inference and all three abstractions evaluate
exclusively through an engine, so swapping the backend swaps the evaluation
strategy for the whole stack while search order and results stay identical.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.lang import ast
from repro.semantics.tracking import TrackedTable
from repro.table.table import Table

#: The selectable evaluation backends (``SynthesisConfig.backend``).
BACKENDS: tuple[str, ...] = ("row", "columnar")


@dataclass
class EngineStats:
    """Cache-hit counters an engine maintains across its lifetime."""

    concrete_evals: int = 0     # evaluate() calls that missed the cache
    concrete_hits: int = 0      # evaluate() calls served from cache
    tracking_evals: int = 0     # evaluate_tracking() cache misses
    tracking_hits: int = 0      # evaluate_tracking() cache hits

    def as_dict(self) -> dict:
        return dict(self.__dict__)

    @property
    def concrete_hit_rate(self) -> float:
        """Fraction of ``evaluate()`` calls served from cache (0 when idle)."""
        total = self.concrete_evals + self.concrete_hits
        return self.concrete_hits / total if total else 0.0

    @property
    def tracking_hit_rate(self) -> float:
        """Fraction of ``evaluate_tracking()`` calls served from cache."""
        total = self.tracking_evals + self.tracking_hits
        return self.tracking_hits / total if total else 0.0

    @staticmethod
    def merge(*parts: "EngineStats") -> "EngineStats":
        """Sum cache counters across engines (one per parallel worker).

        Every field is a counter — iterated from the dataclass fields so a
        newly added one can never be dropped from merges.
        """
        merged = EngineStats()
        for part in parts:
            for f in fields(EngineStats):
                setattr(merged, f.name,
                        getattr(merged, f.name) + getattr(part, f.name))
        return merged


class EvalEngine:
    """Base class: subclasses implement the two evaluators and ``reset``."""

    name = "abstract"

    def __init__(self) -> None:
        self.stats = EngineStats()

    def evaluate(self, query: ast.Query, env: ast.Env) -> Table:
        """``[[q(T̄)]]`` for a concrete query (raises ``HoleError`` on holes)."""
        raise NotImplementedError

    def evaluate_tracking(self, query: ast.Query, env: ast.Env) -> TrackedTable:
        """``[[q(T̄)]]★`` for a concrete query (raises ``HoleError`` on holes)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all cached evaluation state and statistics."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def make_engine(name: str = "columnar", **kwargs) -> EvalEngine:
    """Factory: ``"row"`` | ``"columnar"``."""
    from repro.engine.columnar import ColumnarEngine
    from repro.engine.row import RowEngine

    factories = {"row": RowEngine, "columnar": ColumnarEngine}
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(
            f"unknown engine backend {name!r}; choose from {sorted(factories)}"
        ) from None
    return factory(**kwargs)

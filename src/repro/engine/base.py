"""The :class:`EvalEngine` interface and backend factory.

An engine answers the two evaluation questions the rest of the system asks
of a *concrete* query:

* ``evaluate(q, env)`` — the standard semantics ``[[q(T̄)]]`` (a
  :class:`~repro.table.table.Table`);
* ``evaluate_tracking(q, env)`` — the provenance-tracking semantics
  ``[[q(T̄)]]★`` (a :class:`~repro.semantics.tracking.TrackedTable`).

and owns every byte of state those answers are memoized through.  The
synthesizer, the hole-domain inference and all three abstractions evaluate
exclusively through an engine, so swapping the backend swaps the evaluation
strategy for the whole stack while search order and results stay identical.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from collections.abc import Sequence

from repro.engine.cache import BoundedCache
from repro.errors import HoleError
from repro.lang import ast
from repro.semantics.tracking import TrackedTable
from repro.table.table import Table

#: Transposed provenance grids retained by the generic
#: :meth:`EvalEngine.tracked_columns_many` (see there).
DEFAULT_GRID_CACHE = 50_000

#: The selectable evaluation backends (``SynthesisConfig.backend``).
#: ``"numpy"`` is always selectable — construction falls back to the
#: pure-python columnar engine (with a logged warning) when NumPy is not
#: importable; see :func:`resolve_backend` / :func:`capabilities`.
BACKENDS: tuple[str, ...] = ("row", "columnar", "numpy")

#: What ``errors="none"`` batch evaluation tolerates: the evaluation
#: failures of ill-typed candidates (e.g. arithmetic over a NULL-producing
#: division) — the exact exception set the enumerator's ≺ check treats as
#: "not a solution".  ``HoleError`` is *never* swallowed: a partial query
#: in a batch is a caller bug, not a data property.
BATCH_EVAL_ERRORS: tuple[type[Exception], ...] = (TypeError, ValueError,
                                                  ZeroDivisionError)


@dataclass
class EngineStats:
    """Cache-hit counters an engine maintains across its lifetime.

    The ``consistency_*`` / ``col_match_*`` counters belong to the engine's
    incremental Definition-1 checker (``engine.consistency``): verdicts
    computed vs served from cache, candidates rejected at the column stage
    before any row embedding, and per-(column, demonstration) match
    matrices computed vs served from the memo.
    """

    concrete_evals: int = 0     # evaluate() calls that missed the cache
    concrete_hits: int = 0      # evaluate() calls served from cache
    tracking_evals: int = 0     # evaluate_tracking() cache misses
    tracking_hits: int = 0      # evaluate_tracking() cache hits
    consistency_checks: int = 0      # Definition-1 verdicts computed
    consistency_hits: int = 0        # verdicts served from the checker cache
    consistency_col_pruned: int = 0  # verdicts decided at the column stage
    col_match_evals: int = 0    # (column, demo) match matrices computed
    col_match_hits: int = 0     # match matrices served from the memo
    shm_segments: int = 0           # shared-memory segments published
    shm_bytes_shipped: int = 0      # payload bytes laid out in those segments
    cross_shard_hits: int = 0   # sub-plan blocks served from a sibling shard

    def as_dict(self) -> dict:
        return dict(self.__dict__)

    @property
    def concrete_hit_rate(self) -> float:
        """Fraction of ``evaluate()`` calls served from cache (0 when idle)."""
        total = self.concrete_evals + self.concrete_hits
        return self.concrete_hits / total if total else 0.0

    @property
    def tracking_hit_rate(self) -> float:
        """Fraction of ``evaluate_tracking()`` calls served from cache."""
        total = self.tracking_evals + self.tracking_hits
        return self.tracking_hits / total if total else 0.0

    @property
    def consistency_hit_rate(self) -> float:
        """Fraction of consistency verdicts served from cache."""
        total = self.consistency_checks + self.consistency_hits
        return self.consistency_hits / total if total else 0.0

    @property
    def col_match_hit_rate(self) -> float:
        """Fraction of column match-matrix lookups served from the memo."""
        total = self.col_match_evals + self.col_match_hits
        return self.col_match_hits / total if total else 0.0

    @property
    def col_prune_rate(self) -> float:
        """Fraction of computed verdicts decided at the column stage."""
        return (self.consistency_col_pruned / self.consistency_checks
                if self.consistency_checks else 0.0)

    @staticmethod
    def merge(*parts: "EngineStats") -> "EngineStats":
        """Sum cache counters across engines (one per parallel worker).

        Every field is a counter — iterated from the dataclass fields so a
        newly added one can never be dropped from merges.
        """
        merged = EngineStats()
        for part in parts:
            for f in fields(EngineStats):
                setattr(merged, f.name,
                        getattr(merged, f.name) + getattr(part, f.name))
        return merged

    def snapshot(self) -> "EngineStats":
        """An independent copy frozen at this instant (the engine keeps
        counting; recorded results must not drift with it)."""
        return EngineStats(**self.as_dict())

    @staticmethod
    def delta(now: "EngineStats", since: "EngineStats") -> "EngineStats":
        """Field-wise ``now - since``: the traffic accrued after ``since``.

        This is how a :class:`~repro.synthesis.session.SynthesisSession`
        accounts for a *warm* engine handed to it by a worker pool — the
        engine's lifetime counters include other requests' traffic, and a
        session may only report the slice it caused.
        """
        out = EngineStats()
        for f in fields(EngineStats):
            setattr(out, f.name, getattr(now, f.name) - getattr(since, f.name))
        return out


class EvalEngine:
    """Base class: subclasses implement the two evaluators and ``reset``."""

    name = "abstract"

    def __init__(self) -> None:
        self.stats = EngineStats()
        self._consistency = None
        self._tracked_grids: BoundedCache = BoundedCache(DEFAULT_GRID_CACHE)
        #: Optional cross-shard evaluated-sub-plan cache client
        #: (:mod:`repro.parallel.plan_cache`); ``None`` keeps every backend
        #: on its private caches.  Set by the parallel worker after
        #: construction — the engine itself never creates one.
        self.shared_plans = None

    @property
    def consistency(self):
        """The engine-owned incremental Definition-1 checker.

        Created lazily, one per engine — per-worker engines therefore get
        per-worker checker instances, and ``reset()`` drops the checker's
        state with the rest of the evaluation caches.  Counters ride in
        :attr:`stats`, so :meth:`EngineStats.merge` folds checker traffic
        across parallel workers like any other cache counter.
        """
        if self._consistency is None:
            from repro.provenance.incremental import ConsistencyChecker
            self._consistency = ConsistencyChecker(self)
        return self._consistency

    def _reset_consistency(self) -> None:
        """Drop consistency-path state; subclasses call from ``reset()``."""
        if self._consistency is not None:
            self._consistency.clear()
        self._tracked_grids.clear()

    def evaluate(self, query: ast.Query, env: ast.Env) -> Table:
        """``[[q(T̄)]]`` for a concrete query (raises ``HoleError`` on holes)."""
        raise NotImplementedError

    def evaluate_tracking(self, query: ast.Query, env: ast.Env) -> TrackedTable:
        """``[[q(T̄)]]★`` for a concrete query (raises ``HoleError`` on holes)."""
        raise NotImplementedError

    def evaluate_many(self, queries: Sequence[ast.Query], env: ast.Env,
                      errors: str = "raise") -> list[Table | None]:
        """Batched :meth:`evaluate` over sibling candidates.

        Results come back in input order, one per query, and the cache
        counters advance exactly as the equivalent sequence of single
        calls would.  ``errors="none"`` maps a candidate whose evaluation
        fails with one of :data:`BATCH_EVAL_ERRORS` to ``None`` instead of
        aborting the batch (holes always raise).  Backends override this
        loop to amortize dispatch and hole-checking over the batch.
        """
        self._check_errors_mode(errors)
        out: list[Table | None] = []
        for query in queries:
            try:
                out.append(self.evaluate(query, env))
            except HoleError:
                raise
            except BATCH_EVAL_ERRORS:
                if errors == "raise":
                    raise
                out.append(None)
        return out

    def evaluate_tracking_many(self, queries: Sequence[ast.Query],
                               env: ast.Env, errors: str = "raise"
                               ) -> list[TrackedTable | None]:
        """Batched :meth:`evaluate_tracking`; see :meth:`evaluate_many`."""
        self._check_errors_mode(errors)
        out: list[TrackedTable | None] = []
        for query in queries:
            try:
                out.append(self.evaluate_tracking(query, env))
            except HoleError:
                raise
            except BATCH_EVAL_ERRORS:
                if errors == "raise":
                    raise
                out.append(None)
        return out

    def tracked_columns_many(self, queries: Sequence[ast.Query],
                             env: ast.Env,
                             errors: str = "raise") -> list[tuple | None]:
        """Column-major provenance grids for a batch of concrete queries.

        One entry per query, in input order: a tuple of expression columns
        (``grid[c][r]`` is the provenance term of cell ``(r, c)``), or
        ``None`` for an ill-typed candidate under ``errors="none"``.  The
        generic implementation transposes :meth:`evaluate_tracking_many`
        results, caching the transposed grid per ``(query, env)`` so a
        re-checked candidate hands out the *same* column objects — without
        that, the consistency checker's identity-keyed match memo could
        never hit on row-major backends.  The columnar backend overrides
        this to hand out its cached ``TrackedBlock`` columns, which are
        additionally shared by identity *across sibling candidates* — the
        structural key the checker memoizes match state on.
        """
        cache = self._tracked_grids
        out: list[tuple | None] = [None] * len(queries)
        missing: list[int] = []
        for idx, query in enumerate(queries):
            hit = cache.get((query, env))
            if hit is not None:
                self.stats.tracking_hits += 1
                out[idx] = hit
            else:
                missing.append(idx)
        if not missing:
            return out
        tables = self.evaluate_tracking_many([queries[i] for i in missing],
                                             env, errors)
        for idx, table in zip(missing, tables):
            if table is None:
                continue
            grid = tuple(zip(*table.exprs)) if table.exprs else \
                tuple(() for _ in table.columns)
            cache[(queries[idx], env)] = grid
            out[idx] = grid
        return out

    @staticmethod
    def _check_errors_mode(errors: str) -> None:
        if errors not in ("raise", "none"):
            raise ValueError(
                f"errors must be 'raise' or 'none', got {errors!r}")

    def adopt_env(self, env: ast.Env, adopted=None) -> None:
        """Pre-seed evaluation caches from shared-memory column storage.

        ``adopted`` is the per-table payload from
        :func:`repro.engine.shm.adopt_env` — already-decoded column lists
        plus (where valid) zero-copy NumPy views of the shared buffers.
        The base implementation is a no-op: adoption is an optimization,
        never a semantic requirement, so backends without a columnar cache
        to seed (the row engine) simply re-derive state on demand.
        """

    def reset(self) -> None:
        """Drop all cached evaluation state and statistics."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def make_engine(name: str = "columnar", **kwargs) -> EvalEngine:
    """Factory: ``"row"`` | ``"columnar"`` | ``"numpy"``.

    ``"numpy"`` requires NumPy at engine-construction time; when it is not
    importable the factory logs a warning once and hands back a
    :class:`~repro.engine.columnar.ColumnarEngine` — results are identical
    across backends, so the fallback only trades speed.
    """
    from repro.engine.columnar import ColumnarEngine
    from repro.engine.numpy_kernels import make_numpy_engine
    from repro.engine.row import RowEngine

    factories = {"row": RowEngine, "columnar": ColumnarEngine,
                 "numpy": make_numpy_engine}
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(
            f"unknown engine backend {name!r}; choose from {sorted(factories)}"
        ) from None
    return factory(**kwargs)


def resolve_backend(name: str) -> str:
    """The backend ``make_engine(name)`` will actually construct.

    ``"numpy"`` resolves to ``"columnar"`` when NumPy is unavailable;
    every other known name resolves to itself.  Callers that compare a
    configured backend against ``engine.name`` (the synthesizer's per-run
    override detection) must compare resolved names, or a fallback engine
    would be rebuilt on every run.
    """
    if name not in BACKENDS:
        raise ValueError(
            f"unknown engine backend {name!r}; choose from {sorted(BACKENDS)}")
    if name == "numpy":
        from repro.engine.numpy_kernels import HAVE_NUMPY

        return "numpy" if HAVE_NUMPY else "columnar"
    return name


def capabilities() -> dict:
    """Probe of the evaluation backends this process can construct.

    Reports the selectable names, what each resolves to on this host
    (``"numpy"`` degrades to ``"columnar"`` without NumPy), and the NumPy
    availability/version driving that resolution.  Experiment drivers log
    this next to results so a run's effective kernels are reconstructable.
    """
    from repro.engine.numpy_kernels import HAVE_NUMPY, numpy_version

    return {
        "backends": BACKENDS,
        "default_backend": "columnar",
        "resolved": {name: resolve_backend(name) for name in BACKENDS},
        "numpy_available": HAVE_NUMPY,
        "numpy_version": numpy_version(),
    }

"""Engine-owned bounded caches.

The seed memoized evaluation through module-global ``lru_cache``s — global
mutable state that made concurrent synthesis sessions share (and clobber)
each other's results.  :class:`BoundedCache` is the replacement: a plain
LRU mapping that an engine *instance* owns, so cache lifetime is engine
lifetime and ``reset()`` is engine-scoped.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator, MutableMapping


class BoundedCache(MutableMapping):
    """An LRU-evicting mapping with a fixed capacity.

    Reads refresh recency; inserting past capacity evicts the least
    recently used entry.  ``maxsize=None`` disables eviction (unbounded).
    """

    __slots__ = ("_data", "_maxsize")

    def __init__(self, maxsize: int | None = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be >= 1 (or None for unbounded)")
        self._maxsize = maxsize
        self._data: OrderedDict = OrderedDict()

    @property
    def maxsize(self) -> int | None:
        return self._maxsize

    def __getitem__(self, key):
        value = self._data[key]
        self._data.move_to_end(key)
        return value

    _MISSING = object()

    def get(self, key, default=None):
        """Single-lookup get (the MutableMapping default is exception-driven
        and this is the hottest call in the evaluation loop).

        Recency is only tracked once the cache is half full — below that no
        eviction is near, so LRU order cannot matter yet.
        """
        data = self._data
        value = data.get(key, self._MISSING)
        if value is self._MISSING:
            return default
        if self._maxsize is not None and len(data) * 2 >= self._maxsize:
            data.move_to_end(key)
        return value

    def __setitem__(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if self._maxsize is not None:
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)

    def __delitem__(self, key) -> None:
        del self._data[key]

    def __iter__(self) -> Iterator:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def clear(self) -> None:
        self._data.clear()

    def __repr__(self) -> str:
        return f"BoundedCache({len(self._data)}/{self._maxsize})"

"""The column-major backend.

``ColumnarEngine`` evaluates concrete queries bottom-up over
:class:`~repro.engine.columns.ColumnBlock`s.  Two structural levers carry
the speedup (PATSQL's lesson: column-oriented evaluation plus reuse of
intermediate relational results is the decisive throughput factor for
enumerative SQL synthesis):

* every evaluated subtree is cached by structural key ``(query, env)`` —
  the enumerator instantiates thousands of queries off one skeleton, and
  their shared concrete prefix is computed exactly once;
* intermediate results stay columnar: append-only operators share their
  input's columns, and no per-node :class:`~repro.table.table.Table`
  (with its cell-by-cell schema inference) is built until a caller
  actually asks for a table.

Provenance-tracking evaluation is cell-level term rewriting and stays on
the shared tracking semantics — through an engine-owned cache — so both
backends produce identical :class:`TrackedTable`s by construction.
"""

from __future__ import annotations

from repro.engine import columns as kernels
from repro.engine.base import EngineStats, EvalEngine
from repro.engine.cache import BoundedCache
from repro.engine.columns import ColumnBlock
from repro.errors import EvaluationError, HoleError
from repro.lang import ast
from repro.lang.holes import Hole
from repro.lang.naming import output_columns
from repro.semantics import tracking
from repro.semantics.tracking import TrackedTable
from repro.table.schema import Schema, infer_type
from repro.table.table import Table

DEFAULT_BLOCK_CACHE = 100_000
DEFAULT_TABLE_CACHE = 50_000
DEFAULT_TRACKING_CACHE = 50_000


class ColumnarEngine(EvalEngine):
    """Columnar evaluator with structural-key subtree caching."""

    name = "columnar"

    def __init__(self, block_cache_size: int | None = DEFAULT_BLOCK_CACHE,
                 table_cache_size: int | None = DEFAULT_TABLE_CACHE,
                 tracking_cache_size: int | None = DEFAULT_TRACKING_CACHE) -> None:
        super().__init__()
        self._blocks: BoundedCache = BoundedCache(block_cache_size)
        self._tables: BoundedCache = BoundedCache(table_cache_size)
        self._tracking: BoundedCache = BoundedCache(tracking_cache_size)
        # Reused partial computations: one extractGroups per (child, keys)
        # shared by all sibling (agg_col, agg_func) candidates; inferred
        # column types keyed by column-list identity (append-only kernels
        # share untouched columns, so a passthrough column is typed once).
        self._groupings: BoundedCache = BoundedCache(block_cache_size)
        self._col_types: BoundedCache = BoundedCache(block_cache_size)
        self._names: BoundedCache = BoundedCache(table_cache_size)
        self._concreteness: BoundedCache = BoundedCache(table_cache_size)

    # -------------------------------------------------------------- interface
    def evaluate(self, query: ast.Query, env: ast.Env) -> Table:
        key = (query, env)
        hit = self._tables.get(key)
        if hit is not None:
            self.stats.concrete_hits += 1
            return hit
        if not self._is_concrete(query):
            raise HoleError(
                f"cannot concretely evaluate a partial query: {query}")
        self.stats.concrete_evals += 1
        block = self._block(query, env)
        table = self._materialize(query, env, block)
        self._tables[key] = table
        return table

    def evaluate_tracking(self, query: ast.Query, env: ast.Env) -> TrackedTable:
        hit = self._tracking.get((query, env))
        if hit is not None:
            self.stats.tracking_hits += 1
            return hit
        self.stats.tracking_evals += 1
        return tracking.track_missing(query, env, self._tracking)

    def reset(self) -> None:
        self._blocks.clear()
        self._tables.clear()
        self._tracking.clear()
        self._groupings.clear()
        self._col_types.clear()
        self._names.clear()
        self._concreteness.clear()
        self.stats = EngineStats()

    def _is_concrete(self, query: ast.Query) -> bool:
        """Hole check with sharing: sibling candidates differ only at the
        top, so their shared subtrees are checked once."""
        hit = self._concreteness.get(query)
        if hit is not None:
            return hit
        result = all(not isinstance(getattr(query, f), Hole)
                     for f in query.param_fields()) and \
            all(self._is_concrete(child) for child in query.child_queries())
        self._concreteness[query] = result
        return result

    # ---------------------------------------------------------- materialize
    def _materialize(self, query: ast.Query, env: ast.Env,
                     block: ColumnBlock) -> Table:
        """Build the boundary ``Table`` without re-inferring shared columns.

        Produces exactly what ``Table.from_rows`` would: the per-column
        type inference runs over the same value sequences, it is just
        memoized by column identity.
        """
        names = tuple(output_columns(query, env, self._names))
        types = tuple(self._column_type(col) for col in block.columns)
        schema = Schema(names, types)
        return Table("t", schema, tuple(block.row_tuples()))

    def _column_type(self, col) -> str:
        entry = self._col_types.get(id(col))
        # The entry pins the column list alive, so its id cannot be reused
        # while the entry exists; the identity check guards eviction races.
        if entry is not None and entry[0] is col:
            return entry[1]
        inferred = infer_type(col)
        self._col_types[id(col)] = (col, inferred)
        return inferred

    # ---------------------------------------------------------------- kernels
    def _block(self, query: ast.Query, env: ast.Env) -> ColumnBlock:
        key = (query, env)
        hit = self._blocks.get(key)
        if hit is not None:
            return hit
        block = self._compute_block(query, env)
        self._blocks[key] = block
        return block

    def _compute_block(self, query: ast.Query, env: ast.Env) -> ColumnBlock:
        if isinstance(query, ast.TableRef):
            return ColumnBlock.from_table(env.get(query.name))

        if isinstance(query, ast.Filter):
            return kernels.filter_block(self._block(query.child, env),
                                        query.pred)

        if isinstance(query, ast.Join):
            return kernels.join_blocks(self._block(query.left, env),
                                       self._block(query.right, env),
                                       query.pred)

        if isinstance(query, ast.LeftJoin):
            return kernels.left_join_blocks(self._block(query.left, env),
                                            self._block(query.right, env),
                                            query.pred)

        if isinstance(query, ast.Proj):
            return kernels.select_columns(self._block(query.child, env),
                                          query.cols)

        if isinstance(query, ast.Sort):
            return kernels.sort_block(self._block(query.child, env),
                                      query.cols, query.ascending)

        if isinstance(query, ast.Group):
            child = self._block(query.child, env)
            groups = self._groups(query.child, env, query.keys, child)
            key_columns = self._key_columns(query.child, env, query.keys,
                                            child, groups)
            return kernels.group_block(child, query.keys, query.agg_func,
                                       query.agg_col, groups, key_columns)

        if isinstance(query, ast.Partition):
            child = self._block(query.child, env)
            groups = self._groups(query.child, env, query.keys, child)
            return kernels.partition_block(child, query.keys, query.agg_func,
                                           query.agg_col, groups)

        if isinstance(query, ast.Arithmetic):
            return kernels.arithmetic_block(self._block(query.child, env),
                                           query.func, query.cols)

        raise EvaluationError(f"unknown query node {type(query).__name__}")

    def _groups(self, child_query: ast.Query, env: ast.Env,
                keys, child_block: ColumnBlock):
        """``extractGroups`` shared across sibling aggregation candidates."""
        key = (child_query, env, keys)
        hit = self._groupings.get(key)
        if hit is None:
            hit = kernels.group_indices(child_block, keys)
            self._groupings[key] = hit
        return hit

    def _key_columns(self, child_query: ast.Query, env: ast.Env,
                     keys, child_block: ColumnBlock, groups):
        """Group key output columns, shared (by identity, so the column-type
        cache hits too) across sibling aggregation candidates."""
        key = (child_query, env, keys, "key_cols")
        hit = self._groupings.get(key)
        if hit is None:
            hit = kernels.group_key_columns(child_block, keys, groups)
            self._groupings[key] = hit
        return hit

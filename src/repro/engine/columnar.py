"""The column-major backend.

``ColumnarEngine`` evaluates concrete queries bottom-up over
:class:`~repro.engine.columns.ColumnBlock`s.  Two structural levers carry
the speedup (PATSQL's lesson: column-oriented evaluation plus reuse of
intermediate relational results is the decisive throughput factor for
enumerative SQL synthesis):

* every evaluated subtree is cached by structural key ``(query, env)`` —
  the enumerator instantiates thousands of queries off one skeleton, and
  their shared concrete prefix is computed exactly once;
* intermediate results stay columnar: append-only operators share their
  input's columns, and no per-node :class:`~repro.table.table.Table`
  (with its cell-by-cell schema inference) is built until a caller
  actually asks for a table.

Provenance-tracking evaluation ``[[q(T̄)]]★`` runs the same way over
:class:`~repro.engine.tracked_columns.TrackedBlock`s: the value shadow *is*
the concrete ``ColumnBlock`` (shared object-for-object with the concrete
cache), and the expression grid is evaluated by column kernels that reuse
the engine's row selections (filter masks, join pairs, sort orders) and
``extractGroups`` results across the concrete and tracking paths — and
across sibling candidates.  Both backends produce identical
:class:`~repro.semantics.tracking.TrackedTable`s by construction
(registry-wide differential suite).

``evaluate_many`` / ``evaluate_tracking_many`` batch sibling candidates
through one dispatch: cache probes, hole checks and shared-prefix
evaluation are amortized over the whole batch.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.engine import columns as kernels
from repro.engine import tracked_columns as tracked
from repro.engine.base import BATCH_EVAL_ERRORS, EngineStats, EvalEngine
from repro.engine.cache import BoundedCache
from repro.engine.tracked_columns import TrackedBlock
from repro.errors import EvaluationError, HoleError
from repro.lang import ast
from repro.lang.functions import analytic_spec
from repro.lang.holes import Hole
from repro.lang.naming import output_columns
from repro.semantics.tracking import TrackedTable
from repro.table.schema import Schema, infer_type
from repro.table.table import Table

DEFAULT_BLOCK_CACHE = 100_000
DEFAULT_TABLE_CACHE = 50_000
DEFAULT_TRACKING_CACHE = 50_000

#: Cached-selection marker for "every row survives" (``None`` is the
#: :class:`BoundedCache` miss value, so it cannot be stored directly).
#: Shared with subclasses that override the selection helpers.
ALL_ROWS = object()
_ALL_ROWS = ALL_ROWS


class ColumnarEngine(EvalEngine):
    """Columnar evaluator with structural-key subtree caching."""

    name = "columnar"

    def __init__(self, block_cache_size: int | None = DEFAULT_BLOCK_CACHE,
                 table_cache_size: int | None = DEFAULT_TABLE_CACHE,
                 tracking_cache_size: int | None = DEFAULT_TRACKING_CACHE) -> None:
        super().__init__()
        self._blocks: BoundedCache = BoundedCache(block_cache_size)
        self._tables: BoundedCache = BoundedCache(table_cache_size)
        self._tracking: BoundedCache = BoundedCache(tracking_cache_size)
        self._tracked_blocks: BoundedCache = BoundedCache(tracking_cache_size)
        # Reused partial computations, shared across sibling candidates and
        # across the concrete/tracking paths: one extractGroups (plus key
        # output columns, key provenance terms and per-column group member
        # terms) per (child, keys); one row selection (filter mask, join
        # pairs, sort order) per node; inferred column types keyed by
        # column-list identity (append-only kernels share untouched
        # columns, so a passthrough column is typed once).
        self._groupings: BoundedCache = BoundedCache(block_cache_size)
        self._selections: BoundedCache = BoundedCache(block_cache_size)
        self._col_types: BoundedCache = BoundedCache(block_cache_size)
        self._names: BoundedCache = BoundedCache(table_cache_size)
        self._concreteness: BoundedCache = BoundedCache(table_cache_size)

    # -------------------------------------------------------------- interface
    def evaluate(self, query: ast.Query, env: ast.Env) -> Table:
        key = (query, env)
        hit = self._tables.get(key)
        if hit is not None:
            self.stats.concrete_hits += 1
            return hit
        if not self._is_concrete(query):
            raise HoleError(
                f"cannot concretely evaluate a partial query: {query}")
        self.stats.concrete_evals += 1
        block = self._block(query, env)
        table = self._materialize(query, env, block)
        self._tables[key] = table
        return table

    def evaluate_tracking(self, query: ast.Query, env: ast.Env) -> TrackedTable:
        key = (query, env)
        hit = self._tracking.get(key)
        if hit is not None:
            self.stats.tracking_hits += 1
            return hit
        if not self._is_concrete(query):
            raise HoleError(f"cannot track a partial query: {query}")
        self.stats.tracking_evals += 1
        block = self._tracked_block(query, env)
        table = block.to_tracked_table(output_columns(query, env, self._names))
        self._tracking[key] = table
        return table

    def evaluate_many(self, queries: Sequence[ast.Query], env: ast.Env,
                      errors: str = "raise") -> list[Table | None]:
        """Batched :meth:`evaluate` with one dispatch for the whole stream.

        Sibling candidates share all but their topmost operator: the loop
        holds the cache and counters in locals, and the shared prefixes
        (blocks, names, concreteness, groupings) hit their subtree caches
        for every candidate after the first.
        """
        self._check_errors_mode(errors)
        cache, stats = self._tables, self.stats
        out: list[Table | None] = []
        for query in queries:
            key = (query, env)
            hit = cache.get(key)
            if hit is not None:
                stats.concrete_hits += 1
                out.append(hit)
                continue
            if not self._is_concrete(query):
                raise HoleError(
                    f"cannot concretely evaluate a partial query: {query}")
            stats.concrete_evals += 1
            try:
                table = self._materialize(query, env, self._block(query, env))
            except BATCH_EVAL_ERRORS:
                if errors == "raise":
                    raise
                out.append(None)
                continue
            cache[key] = table
            out.append(table)
        return out

    def evaluate_tracking_many(self, queries: Sequence[ast.Query],
                               env: ast.Env, errors: str = "raise"
                               ) -> list[TrackedTable | None]:
        """Batched :meth:`evaluate_tracking`; see :meth:`evaluate_many`."""
        self._check_errors_mode(errors)
        cache, stats = self._tracking, self.stats
        out: list[TrackedTable | None] = []
        for query in queries:
            key = (query, env)
            hit = cache.get(key)
            if hit is not None:
                stats.tracking_hits += 1
                out.append(hit)
                continue
            if not self._is_concrete(query):
                raise HoleError(f"cannot track a partial query: {query}")
            stats.tracking_evals += 1
            try:
                block = self._tracked_block(query, env)
                table = block.to_tracked_table(
                    output_columns(query, env, self._names))
            except BATCH_EVAL_ERRORS:
                if errors == "raise":
                    raise
                out.append(None)
                continue
            cache[key] = table
            out.append(table)
        return out

    def tracked_columns_many(self, queries: Sequence[ast.Query],
                             env: ast.Env, errors: str = "raise"
                             ) -> list[tuple | None]:
        """Batched column-major provenance grids from the block cache.

        Hands out the ``TrackedBlock`` expression columns directly — no
        row-major :class:`TrackedTable` is materialized for candidates that
        only face the consistency judgment — and those columns are shared
        by object identity across sibling candidates, which is what the
        incremental checker's match-state memo keys on.
        """
        self._check_errors_mode(errors)
        cache, stats = self._tracked_blocks, self.stats
        out: list[tuple | None] = []
        for query in queries:
            key = (query, env)
            hit = cache.get(key)
            if hit is not None:
                stats.tracking_hits += 1
                out.append(hit.expr_columns)
                continue
            if not self._is_concrete(query):
                raise HoleError(f"cannot track a partial query: {query}")
            stats.tracking_evals += 1
            try:
                block = self._compute_tracked_block(query, env)
            except BATCH_EVAL_ERRORS:
                if errors == "raise":
                    raise
                out.append(None)
                continue
            cache[key] = block
            out.append(block.expr_columns)
        return out

    def reset(self) -> None:
        self._blocks.clear()
        self._tables.clear()
        self._tracking.clear()
        self._tracked_blocks.clear()
        self._groupings.clear()
        self._selections.clear()
        self._col_types.clear()
        self._names.clear()
        self._concreteness.clear()
        self._reset_consistency()
        self.stats = EngineStats()

    def adopt_env(self, env: ast.Env, adopted=None) -> None:
        """Seed the block cache with shared-memory-backed input columns.

        ``adopted`` pairs each of ``env``'s tables with its already-decoded
        column lists (:class:`repro.engine.shm.AdoptedTable`), so the
        ``TableRef`` leaves of every candidate resolve to columns that
        alias the coordinator's layout work instead of re-transposing
        ``table.rows`` per worker.  Structural keys make this sound:
        ``TableRef`` equality is by name and the decoded values are exact,
        so a seeded block is indistinguishable from a computed one.
        """
        if adopted is None:
            return
        for entry in adopted:
            block = kernels.ColumnBlock(entry.columns, entry.n_rows)
            self._blocks[(ast.TableRef(entry.name), env)] = block

    def _is_concrete(self, query: ast.Query) -> bool:
        """Hole check with sharing: sibling candidates differ only at the
        top, so their shared subtrees are checked once."""
        hit = self._concreteness.get(query)
        if hit is not None:
            return hit
        result = all(not isinstance(getattr(query, f), Hole)
                     for f in query.param_fields()) and \
            all(self._is_concrete(child) for child in query.child_queries())
        self._concreteness[query] = result
        return result

    # ---------------------------------------------------------- materialize
    def _materialize(self, query: ast.Query, env: ast.Env,
                     block: kernels.ColumnBlock) -> Table:
        """Build the boundary ``Table`` without re-inferring shared columns.

        Produces exactly what ``Table.from_rows`` would: the per-column
        type inference runs over the same value sequences, it is just
        memoized by column identity.
        """
        names = tuple(output_columns(query, env, self._names))
        types = tuple(self._column_type(col) for col in block.columns)
        schema = Schema(names, types)
        return Table("t", schema, tuple(block.row_tuples()))

    def _column_type(self, col) -> str:
        entry = self._col_types.get(id(col))
        # The entry pins the column list alive, so its id cannot be reused
        # while the entry exists; the identity check guards eviction races.
        if entry is not None and entry[0] is col:
            return entry[1]
        inferred = infer_type(col)
        self._col_types[id(col)] = (col, inferred)
        return inferred

    # ---------------------------------------------------------------- kernels
    def _block(self, query: ast.Query, env: ast.Env) -> kernels.ColumnBlock:
        key = (query, env)
        hit = self._blocks.get(key)
        if hit is not None:
            return hit
        shared = self.shared_plans
        if shared is not None and shared.eligible(query):
            fetched = shared.fetch(query, env)
            if fetched is not None:
                # A sibling shard already evaluated this sub-plan; rebuild
                # the block from its published columns instead of recursing.
                self.stats.cross_shard_hits += 1
                columns, n_rows = fetched
                block = kernels.ColumnBlock(columns, n_rows)
                self._blocks[key] = block
                return block
            block = self._compute_block(query, env)
            self._blocks[key] = block
            published = shared.publish(query, env, block.columns,
                                       block.n_rows)
            if published:
                self.stats.shm_segments += 1
                self.stats.shm_bytes_shipped += published
            return block
        block = self._compute_block(query, env)
        self._blocks[key] = block
        return block

    def _compute_block(self, query: ast.Query,
                       env: ast.Env) -> kernels.ColumnBlock:
        if isinstance(query, ast.TableRef):
            return kernels.ColumnBlock.from_table(env.get(query.name))

        if isinstance(query, ast.Filter):
            child = self._block(query.child, env)
            keep = self._filter_keep(query, env)
            return child if keep is None else kernels.take_rows(child, keep)

        if isinstance(query, ast.Join):
            left = self._block(query.left, env)
            right = self._block(query.right, env)
            if query.pred is None:
                return kernels.cross_join(left, right)
            return kernels.pair_columns(left, right,
                                        self._join_pairs(query, env))

        if isinstance(query, ast.LeftJoin):
            return kernels.left_pair_columns(self._block(query.left, env),
                                             self._block(query.right, env),
                                             self._left_join_pairs(query, env))

        if isinstance(query, ast.Proj):
            return kernels.select_columns(self._block(query.child, env),
                                          query.cols)

        if isinstance(query, ast.Sort):
            child = self._block(query.child, env)
            return kernels.take_rows(child, self._sort_order(query, env))

        if isinstance(query, ast.Group):
            child = self._block(query.child, env)
            groups = self._groups(query.child, env, query.keys, child)
            key_columns = self._key_columns(query.child, env, query.keys,
                                            child, groups)
            return kernels.group_block(child, query.keys, query.agg_func,
                                       query.agg_col, groups, key_columns)

        if isinstance(query, ast.Partition):
            child = self._block(query.child, env)
            groups = self._groups(query.child, env, query.keys, child)
            return kernels.partition_block(child, query.keys, query.agg_func,
                                           query.agg_col, groups)

        if isinstance(query, ast.Arithmetic):
            return kernels.arithmetic_block(self._block(query.child, env),
                                           query.func, query.cols)

        raise EvaluationError(f"unknown query node {type(query).__name__}")

    # ------------------------------------------------------ tracking kernels
    def _tracked_block(self, query: ast.Query, env: ast.Env) -> TrackedBlock:
        key = (query, env)
        hit = self._tracked_blocks.get(key)
        if hit is not None:
            return hit
        block = self._compute_tracked_block(query, env)
        self._tracked_blocks[key] = block
        return block

    def _compute_tracked_block(self, query: ast.Query,
                               env: ast.Env) -> TrackedBlock:
        """One node of ``[[q(T̄)]]★``: the value shadow is the concrete
        block (shared with — and cached by — the concrete path), and the
        expression grid is gathered through the same cached row selections
        the concrete kernel used."""
        if isinstance(query, ast.TableRef):
            values = self._block(query, env)
            return TrackedBlock(
                tracked.table_ref_exprs(query.name, values.n_rows,
                                        values.n_cols), values)

        if isinstance(query, ast.Filter):
            child = self._tracked_block(query.child, env)
            keep = self._filter_keep(query, env)
            exprs = child.expr_columns if keep is None else \
                tracked.take_expr_columns(child.expr_columns, keep)
            return TrackedBlock(exprs, self._block(query, env))

        if isinstance(query, ast.Join):
            left = self._tracked_block(query.left, env)
            right = self._tracked_block(query.right, env)
            if query.pred is None:
                exprs = tracked.cross_join_exprs(
                    left.expr_columns, right.expr_columns,
                    left.n_rows, right.n_rows)
            else:
                exprs = tracked.pair_expr_columns(
                    left.expr_columns, right.expr_columns,
                    self._join_pairs(query, env))
            return TrackedBlock(exprs, self._block(query, env))

        if isinstance(query, ast.LeftJoin):
            left = self._tracked_block(query.left, env)
            right = self._tracked_block(query.right, env)
            exprs = tracked.left_pair_expr_columns(
                left.expr_columns, right.expr_columns,
                self._left_join_pairs(query, env))
            return TrackedBlock(exprs, self._block(query, env))

        if isinstance(query, ast.Proj):
            child = self._tracked_block(query.child, env)
            return TrackedBlock(
                tracked.select_expr_columns(child.expr_columns, query.cols),
                self._block(query, env))

        if isinstance(query, ast.Sort):
            child = self._tracked_block(query.child, env)
            return TrackedBlock(
                tracked.take_expr_columns(child.expr_columns,
                                          self._sort_order(query, env)),
                self._block(query, env))

        if isinstance(query, ast.Group):
            child = self._tracked_block(query.child, env)
            groups = self._groups(query.child, env, query.keys, child.values)
            exprs = list(self._group_key_exprs(query.child, env, query.keys,
                                               child, groups))
            members = self._group_members(query.child, env, query.keys,
                                          query.agg_col, child, groups)
            exprs.append(tracked.group_agg_expr_column(members,
                                                       query.agg_func))
            return TrackedBlock(exprs, self._block(query, env))

        if isinstance(query, ast.Partition):
            child = self._tracked_block(query.child, env)
            groups = self._groups(query.child, env, query.keys, child.values)
            new_col = tracked.partition_expr_column(
                child.expr_columns[query.agg_col], groups,
                analytic_spec(query.agg_func), child.n_rows)
            return TrackedBlock(list(child.expr_columns) + [new_col],
                                self._block(query, env))

        if isinstance(query, ast.Arithmetic):
            child = self._tracked_block(query.child, env)
            new_col = tracked.arithmetic_expr_column(
                child.expr_columns, query.func, query.cols, child.n_rows)
            return TrackedBlock(list(child.expr_columns) + [new_col],
                                self._block(query, env))

        raise EvaluationError(f"unknown query node {type(query).__name__}")

    # ------------------------------------------------------- shared partials
    def _filter_keep(self, query: ast.Filter, env: ast.Env) -> list[int] | None:
        """Surviving row indices (``None`` = all), cached per node."""
        key = (query, env)
        hit = self._selections.get(key)
        if hit is None:
            child = self._block(query.child, env)
            hit = kernels.filter_indices(child, query.pred)
            self._selections[key] = _ALL_ROWS if hit is None else hit
            return hit
        return None if hit is _ALL_ROWS else hit

    def _join_pairs(self, query: ast.Join, env: ast.Env) -> list:
        """Surviving (left, right) row pairs, cached per node."""
        key = (query, env)
        hit = self._selections.get(key)
        if hit is None:
            hit = kernels.join_pairs(self._block(query.left, env),
                                     self._block(query.right, env),
                                     query.pred)
            self._selections[key] = hit
        return hit

    def _left_join_pairs(self, query: ast.LeftJoin, env: ast.Env) -> list:
        key = (query, env)
        hit = self._selections.get(key)
        if hit is None:
            hit = kernels.left_join_pairs(self._block(query.left, env),
                                          self._block(query.right, env),
                                          query.pred)
            self._selections[key] = hit
        return hit

    def _sort_order(self, query: ast.Sort, env: ast.Env) -> list[int]:
        key = (query, env)
        hit = self._selections.get(key)
        if hit is None:
            hit = kernels.sort_indices(self._block(query.child, env),
                                       query.cols, query.ascending)
            self._selections[key] = hit
        return hit

    def _groups(self, child_query: ast.Query, env: ast.Env,
                keys, child_block: kernels.ColumnBlock):
        """``extractGroups`` shared across sibling aggregation candidates —
        and across the concrete and tracking paths (the tracked value
        shadow *is* the concrete block, so one grouping serves both)."""
        key = (child_query, env, keys)
        hit = self._groupings.get(key)
        if hit is None:
            hit = kernels.group_indices(child_block, keys)
            self._groupings[key] = hit
        return hit

    def _key_columns(self, child_query: ast.Query, env: ast.Env,
                     keys, child_block: kernels.ColumnBlock, groups):
        """Group key output columns, shared (by identity, so the column-type
        cache hits too) across sibling aggregation candidates."""
        key = (child_query, env, keys, "key_cols")
        hit = self._groupings.get(key)
        if hit is None:
            hit = kernels.group_key_columns(child_block, keys, groups)
            self._groupings[key] = hit
        return hit

    def _group_key_exprs(self, child_query: ast.Query, env: ast.Env,
                         keys, child: TrackedBlock, groups):
        """Key provenance columns (``group{...}`` terms), shared across all
        (agg_col, agg_func) sibling candidates of one (child, keys)."""
        key = (child_query, env, keys, "key_exprs")
        hit = self._groupings.get(key)
        if hit is None:
            hit = tracked.group_key_expr_columns(child.expr_columns, keys,
                                                 groups)
            self._groupings[key] = hit
        return hit

    def _group_members(self, child_query: ast.Query, env: ast.Env,
                       keys, agg_col: int, child: TrackedBlock, groups):
        """Per-group member terms of one column, shared across all sibling
        aggregation *functions* over the same target column."""
        key = (child_query, env, keys, agg_col, "members")
        hit = self._groupings.get(key)
        if hit is None:
            hit = tracked.group_member_exprs(child.expr_columns[agg_col],
                                             groups)
            self._groupings[key] = hit
        return hit

"""Column-major table representation and vectorized operator kernels.

A :class:`ColumnBlock` is a tuple of columns (each a list of cell values).
The columnar backend keeps *every intermediate result* in this form:

* projection / partition / arithmetic **share** untouched column lists with
  their input (zero-copy) instead of rebuilding one tuple per row;
* filter and sort compute a row-index selection once and gather each column
  through it;
* no intermediate :class:`~repro.table.table.Table` is materialized, so the
  per-node schema inference the row interpreter pays (a type probe of every
  cell) disappears from the hot path.

Every kernel reproduces the row interpreter's semantics exactly — same
predicate evaluation, same ``extractGroups`` ordering, same stable sort,
same NULL handling — so the two backends are byte-for-byte interchangeable.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Sequence

from repro.lang.functions import analytic_spec, apply_function
from repro.lang.predicates import AndPred, ColCmp, ConstCmp, FalsePred, \
    Predicate, TruePred, compare_values
from repro.semantics.groups import extract_groups
from repro.table.table import Table
from repro.table.values import value_sort_key


class ColumnBlock:
    """An immutable-by-convention column-major block of cells.

    ``columns[j][i]`` is the cell at row ``i``, column ``j``.  ``n_rows`` is
    carried explicitly so zero-column blocks stay well-defined.  Consumers
    must never mutate a column in place — kernels share column lists across
    blocks freely.
    """

    __slots__ = ("columns", "n_rows")

    def __init__(self, columns: Sequence[Sequence], n_rows: int) -> None:
        self.columns = tuple(columns)
        self.n_rows = n_rows

    @property
    def n_cols(self) -> int:
        return len(self.columns)

    @staticmethod
    def from_table(table: Table) -> "ColumnBlock":
        columns = [[row[j] for row in table.rows] for j in range(table.n_cols)]
        return ColumnBlock(columns, table.n_rows)

    def row_tuples(self) -> list[tuple]:
        """Materialize row-major tuples (only done at engine boundaries)."""
        if not self.columns:
            return [() for _ in range(self.n_rows)]
        return list(zip(*self.columns))

    def __repr__(self) -> str:
        return f"ColumnBlock({self.n_rows}x{self.n_cols})"


# ------------------------------------------------------------------ selection

def take_rows(block: ColumnBlock, indices: Sequence[int]) -> ColumnBlock:
    """Gather a row selection through every column."""
    columns = [[col[i] for i in indices] for col in block.columns]
    return ColumnBlock(columns, len(indices))


def select_columns(block: ColumnBlock, cols: Sequence[int]) -> ColumnBlock:
    """Projection: reuses the selected column lists without copying cells."""
    return ColumnBlock([block.columns[c] for c in cols], block.n_rows)


# ----------------------------------------------------------------- predicates

def predicate_mask(pred: Predicate, block: ColumnBlock) -> list[bool]:
    """Evaluate a predicate column-wise; falls back to row-wise for exotic
    predicate types so semantics always match ``pred.evaluate``."""
    n = block.n_rows
    if isinstance(pred, TruePred):
        return [True] * n
    if isinstance(pred, FalsePred):
        return [False] * n
    if isinstance(pred, ConstCmp):
        col, op, const = block.columns[pred.col], pred.op, pred.const
        return [compare_values(op, v, const) for v in col]
    if isinstance(pred, ColCmp):
        left, right = block.columns[pred.left], block.columns[pred.right]
        op = pred.op
        return [compare_values(op, a, b) for a, b in zip(left, right)]
    if isinstance(pred, AndPred):
        mask = [True] * n
        for part in pred.parts:
            part_mask = predicate_mask(part, block)
            mask = [m and p for m, p in zip(mask, part_mask)]
        return mask
    rows = block.row_tuples()
    return [pred.evaluate(row) for row in rows]


def filter_indices(block: ColumnBlock, pred: Predicate) -> list[int] | None:
    """Surviving row indices, or ``None`` when every row passes.

    The ``None`` form lets callers share the input block outright (and is
    how the engine's selection cache distinguishes "no gather needed").
    """
    mask = predicate_mask(pred, block)
    if all(mask):
        return None
    return [i for i, m in enumerate(mask) if m]


def filter_block(block: ColumnBlock, pred: Predicate) -> ColumnBlock:
    keep = filter_indices(block, pred)
    if keep is None:
        return block
    return take_rows(block, keep)


# ---------------------------------------------------------------------- joins

def pair_columns(left: ColumnBlock, right: ColumnBlock,
                 pairs: Sequence[tuple[int, int]]) -> ColumnBlock:
    """Assemble the join output for an explicit (left row, right row) list."""
    left_idx = [p[0] for p in pairs]
    right_idx = [p[1] for p in pairs]
    columns = [[col[i] for i in left_idx] for col in left.columns]
    columns += [[col[j] for j in right_idx] for col in right.columns]
    return ColumnBlock(columns, len(pairs))


def cross_join(left: ColumnBlock, right: ColumnBlock) -> ColumnBlock:
    """Pure cross product in nested-loop order (left-major)."""
    nl, nr = left.n_rows, right.n_rows
    columns = [[v for v in col for _ in range(nr)] for col in left.columns]
    columns += [col * nl if isinstance(col, list) else list(col) * nl
                for col in right.columns]
    return ColumnBlock(columns, nl * nr)


def join_pairs(left: ColumnBlock, right: ColumnBlock,
               pred: Predicate) -> list[tuple[int, int]]:
    """(left row, right row) index pairs surviving ``pred``, in nested-loop
    order — identical to the row interpreter's combined-row scan."""
    nl, nr = left.n_rows, right.n_rows
    n_left_cols = left.n_cols
    if isinstance(pred, ColCmp):
        # The common synthesis case: one comparison, each side resolvable to
        # a single column of one input — compare the two columns directly.
        a, b, op = pred.left, pred.right, pred.op
        if a < n_left_cols <= b:
            la, rb = left.columns[a], right.columns[b - n_left_cols]
            return [(i, j) for i, av in enumerate(la)
                    for j, bv in enumerate(rb) if compare_values(op, av, bv)]
        if a < n_left_cols and b < n_left_cols:
            ca, cb = left.columns[a], left.columns[b]
            keep = [i for i in range(nl) if compare_values(op, ca[i], cb[i])]
            return [(i, j) for i in keep for j in range(nr)]
        if a >= n_left_cols and b >= n_left_cols:
            ca, cb = right.columns[a - n_left_cols], right.columns[b - n_left_cols]
            keep = [j for j in range(nr) if compare_values(op, ca[j], cb[j])]
            return [(i, j) for i in range(nl) for j in keep]
    # General fallback: materialize each combined row for the predicate.
    left_rows = left.row_tuples()
    right_rows = right.row_tuples()
    return [(i, j) for i, lrow in enumerate(left_rows)
            for j, rrow in enumerate(right_rows)
            if pred.evaluate(lrow + rrow)]


def join_blocks(left: ColumnBlock, right: ColumnBlock,
                pred: Predicate | None) -> ColumnBlock:
    if pred is None:
        return cross_join(left, right)
    return pair_columns(left, right, join_pairs(left, right, pred))


def left_join_pairs(left: ColumnBlock, right: ColumnBlock,
                    pred: Predicate) -> list[tuple[int, int | None]]:
    """(left row, right row | None) pairs of a left outer join, in the row
    interpreter's output order — ``None`` marks a NULL-padded miss."""
    return left_pairs_from_matched(join_pairs(left, right, pred),
                                   left.n_rows)


def left_pairs_from_matched(matched: Sequence[tuple[int, int]],
                            n_left_rows: int) -> list[tuple[int, int | None]]:
    """NULL-pad an inner-join pair list into left-outer-join pairs.

    Factored out of :func:`left_join_pairs` so engines that build the
    matched pairs differently (the NumPy backend's vectorized comparison)
    reuse the exact padding/order rules of the reference kernel.
    """
    by_left: dict[int, list[int]] = {}
    for i, j in matched:
        by_left.setdefault(i, []).append(j)
    pairs: list[tuple[int, int | None]] = []
    for i in range(n_left_rows):
        js = by_left.get(i)
        if js:
            pairs.extend((i, j) for j in js)
        else:
            pairs.append((i, None))
    return pairs


def left_pair_columns(left: ColumnBlock, right: ColumnBlock,
                      pairs: Sequence[tuple[int, int | None]]) -> ColumnBlock:
    """Assemble a left-join output from :func:`left_join_pairs`."""
    left_idx = [p[0] for p in pairs]
    columns = [[col[i] for i in left_idx] for col in left.columns]
    columns += [[None if j is None else col[j] for _, j in pairs]
                for col in right.columns]
    return ColumnBlock(columns, len(pairs))


def left_join_blocks(left: ColumnBlock, right: ColumnBlock,
                     pred: Predicate) -> ColumnBlock:
    """Left outer join: unmatched left rows padded with NULLs."""
    return left_pair_columns(left, right, left_join_pairs(left, right, pred))


# ----------------------------------------------------------------------- sort

def sort_indices(block: ColumnBlock, cols: Sequence[int],
                 ascending: bool) -> list[int]:
    """The stable sort permutation (row indices in output order)."""
    key_cols = [block.columns[c] for c in cols]
    return sorted(
        range(block.n_rows),
        key=lambda i: tuple(value_sort_key(col[i]) for col in key_cols),
        reverse=not ascending)


def sort_block(block: ColumnBlock, cols: Sequence[int],
               ascending: bool) -> ColumnBlock:
    return take_rows(block, sort_indices(block, cols, ascending))


# ----------------------------------------------------- grouping and analytics

def group_indices(block: ColumnBlock,
                  keys: Sequence[int]) -> list[list[int]]:
    """``extractGroups`` over the key columns (first-occurrence order)."""
    if not keys:
        # One global group (matches extract_groups over empty key tuples).
        return [list(range(block.n_rows))] if block.n_rows else []
    key_cols = [block.columns[k] for k in keys]
    key_rows = list(zip(*key_cols)) if block.n_rows else []
    return extract_groups(key_rows)


def group_key_columns(block: ColumnBlock, keys: Sequence[int],
                      groups: Sequence[Sequence[int]]) -> list[list]:
    """The key (representative) output columns of a group-aggregation."""
    return [[block.columns[k][g[0]] for g in groups] for k in keys]


def group_block(block: ColumnBlock, keys: Sequence[int], agg_func: str,
                agg_col: int,
                groups: Sequence[Sequence[int]] | None = None,
                key_columns: Sequence[list] | None = None) -> ColumnBlock:
    """Group-aggregation: one output row per group.

    ``groups`` and ``key_columns`` let the engine reuse one
    ``extractGroups`` result (and the identical key output columns) across
    all (agg_col, agg_func) sibling candidates sharing this child and key
    set.
    """
    if groups is None:
        groups = group_indices(block, keys)
    if key_columns is None:
        key_columns = group_key_columns(block, keys, groups)
    agg_values = block.columns[agg_col]
    columns = list(key_columns)
    columns.append([apply_function(agg_func, [agg_values[i] for i in g])
                    for g in groups])
    return ColumnBlock(columns, len(groups))


def partition_block(block: ColumnBlock, keys: Sequence[int], agg_func: str,
                    agg_col: int,
                    groups: Sequence[Sequence[int]] | None = None
                    ) -> ColumnBlock:
    """Partition-aggregation: all rows kept, one analytic value per row.

    ``groups`` — see :func:`group_block`.
    """
    if groups is None:
        groups = group_indices(block, keys)
    spec = analytic_spec(agg_func)
    agg_values = block.columns[agg_col]
    new_col: list = [None] * block.n_rows
    for g in groups:
        group_values = [agg_values[i] for i in g]
        _analytic_group(new_col, g, group_values, spec)
    return ColumnBlock(list(block.columns) + [new_col], block.n_rows)


def _analytic_group(out: list, g: Sequence[int], values: list,
                    spec) -> None:
    """One group's analytic column, computed in a single pass.

    Each fast path replays the exact arithmetic of the per-row reference
    (``apply_function(spec.term_name, spec.row_args(values, pos))``) — same
    operation order, same NULL handling — so results are bit-identical;
    shapes without a fast path fall back to that reference directly.
    """
    term = spec.term_name
    if spec.style == "all":
        # Every row sees the whole group: one application, shared by all.
        value = apply_function(term, tuple(values))
        for i in g:
            out[i] = value
        return
    if spec.style == "prefix" and term in ("sum", "avg", "max", "min"):
        # Running accumulation over non-null prefix values.  The reference
        # folds left-to-right from the same seed, so floats match bitwise.
        acc = 0 if term in ("sum", "avg") else None
        count = 0
        for pos, i in enumerate(g):
            v = values[pos]
            if v is not None:
                count += 1
                if term in ("sum", "avg"):
                    acc = acc + v
                elif acc is None:
                    acc = v
                elif term == "max":
                    acc = v if value_sort_key(v) > value_sort_key(acc) else acc
                else:
                    acc = v if value_sort_key(v) < value_sort_key(acc) else acc
            if term == "sum":
                out[i] = acc
            elif term == "avg":
                out[i] = acc / count if count else None
            else:
                out[i] = acc
        return
    if spec.style == "ranked" and term in ("rank", "rank_desc"):
        # rank(v) = 1 + |{u in group : u strictly better}|; counting through
        # one sorted key array replaces the reference's per-row O(n) scan.
        keys_sorted = sorted(value_sort_key(v) for v in values
                             if v is not None)
        for pos, i in enumerate(g):
            own = value_sort_key(values[pos])
            if term == "rank":
                out[i] = 1 + bisect_left(keys_sorted, own)
            else:
                out[i] = 1 + len(keys_sorted) - bisect_right(keys_sorted, own)
        return
    # Generic reference path (dense ranks, future analytics).
    for pos, i in enumerate(g):
        out[i] = apply_function(term, spec.row_args(values, pos))


def arithmetic_block(block: ColumnBlock, func: str,
                     cols: Sequence[int]) -> ColumnBlock:
    """Row-wise arithmetic: appends ``func(cols)`` as a new column."""
    if not cols:
        new_col = [apply_function(func, []) for _ in range(block.n_rows)]
    else:
        arg_cols = [block.columns[c] for c in cols]
        new_col = [apply_function(func, args) for args in zip(*arg_cols)]
    return ColumnBlock(list(block.columns) + [new_col], block.n_rows)

"""NumPy-backed ColumnBlock kernels: the ``"numpy"`` engine backend.

:class:`NumpyEngine` is the :class:`~repro.engine.columnar.ColumnarEngine`
with its comparison-heavy kernels — filter predicates, join pair-building,
sort orders, group extraction, aggregation, window partitions and row-wise
arithmetic — replaced by vectorized NumPy implementations.  Everything
else (structural-key subtree caches, shared selections,
:class:`~repro.engine.tracked_columns.TrackedBlock` provenance tracking,
the incremental consistency checker) is inherited unchanged, which is how
the backend guarantees byte-identical results: the NumPy layer only ever
computes *selections* (row indices, join pairs, sort permutations, group
index lists) and *new value columns*, and both are converted back to the
exact Python objects the pure-python kernels would have produced.

Typed columns and the object-dtype escape hatch
-----------------------------------------------
``ColumnBlock`` columns stay plain Python lists (they are shared by
identity with the tracking path and the column-type cache); the engine
materializes a typed :class:`NDColumn` *shadow* per column, memoized by
column object identity.  A column is typed only when vectorized semantics
are provably identical to the reference kernels:

* ``int`` — every cell a Python ``int`` (never ``bool``) with magnitude
  ≤ 2⁵² so int64 arithmetic cannot overflow and float64 round-trips are
  exact;
* ``float`` — every cell a finite Python ``float`` (NaN/inf ordering and
  ``math.isclose`` edge cases stay on the reference path);
* ``str`` — every cell a ``str`` (NumPy's UCS-4 comparisons are
  code-point lexicographic, same as Python's).

Anything else — ``None`` cells, booleans, mixed classes, huge ints —
classifies as ``object`` and the kernel in question falls back to the
pure-python implementation in :mod:`repro.engine.columns`, cell-for-cell
the reference semantics.  ``value_eq``'s float tolerance is replicated
vectorized from the same :data:`~repro.table.values.FLOAT_REL_TOL` /
:data:`~repro.table.values.FLOAT_ABS_TOL` constants (including the
``a == b`` short-circuit, so infinities compare like ``math.isclose``).

Float accumulation uses ``np.add.accumulate`` / per-group fold orders that
NumPy documents as sequential left folds — bit-identical to the reference
``sum()`` loops; reductions NumPy computes pairwise (``np.sum``) are *not*
used for floats.  Row masks share the bitset matching core's integer
format (:func:`repro.util.matching.bitmask_from_bools` packs a NumPy
boolean mask into it without a per-element loop); the synthesis loop's
consistency masks are term-level and remain pure-python today.  The
cross-backend fuzz harness (``tests/test_backend_fuzz.py``) and the
registry-wide differential suites enforce all of this.

Gate on import: :func:`make_numpy_engine` (wired into
``repro.engine.make_engine``) returns a ``ColumnarEngine`` with a logged
warning when NumPy is absent, so ``backend="numpy"`` is always safe to
request.
"""

from __future__ import annotations

import logging
import math
from collections.abc import Sequence

from repro.engine import columns as kernels
from repro.engine.cache import BoundedCache
from repro.engine.columnar import ALL_ROWS, DEFAULT_BLOCK_CACHE, \
    ColumnarEngine
from repro.lang import ast
from repro.lang.functions import analytic_spec
from repro.lang.predicates import AndPred, ColCmp, ConstCmp, FalsePred, \
    Predicate, TruePred
from repro.table.values import FLOAT_ABS_TOL, FLOAT_REL_TOL

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI leg
    np = None

HAVE_NUMPY = np is not None

_LOG = logging.getLogger("repro.engine")

#: Magnitude bound for typed int columns: int64-safe under add/sub and
#: exactly representable as float64 (so int-vs-float comparisons and int
#: divisions agree with Python's arbitrary-precision arithmetic).
INT_SAFE = 2**52
#: Tighter bound under which an int64 product cannot overflow.
_MUL_SAFE = 2**31

#: Sort-key classes of :func:`repro.table.values.value_sort_key`:
#: numbers < strings < booleans < NULL.
_CLASS_NUMBER, _CLASS_STRING, _CLASS_BOOL, _CLASS_NULL = 0, 1, 2, 3


def numpy_version() -> str | None:
    """The installed NumPy version, or ``None`` when unavailable."""
    return np.__version__ if HAVE_NUMPY else None


# ------------------------------------------------------------------ columns

class NDColumn:
    """A typed NumPy shadow of one ColumnBlock column.

    ``kind`` is ``"int"`` / ``"float"`` / ``"str"`` with ``array`` the
    typed ndarray, or ``"object"`` (``array is None``) when the column
    holds values the vectorized kernels must not touch.
    """

    __slots__ = ("kind", "array")

    def __init__(self, kind: str, array) -> None:
        self.kind = kind
        self.array = array

    @property
    def is_object(self) -> bool:
        return self.array is None

    @property
    def sort_class(self) -> int:
        return _CLASS_STRING if self.kind == "str" else _CLASS_NUMBER

    def __repr__(self) -> str:
        return f"NDColumn({self.kind})"


_OBJECT = NDColumn("object", None)


def classify_column(column: Sequence) -> NDColumn:
    """Type a column, or return the object escape hatch.

    ``type()`` identity (not ``isinstance``) keeps ``bool`` out of int
    columns — ``True == 1`` in Python but sorts in a different class.
    """
    if not len(column):
        return _OBJECT
    cls = type(column[0])
    for v in column:
        if type(v) is not cls:
            return _OBJECT
    if cls is int:
        if all(-INT_SAFE <= v <= INT_SAFE for v in column):
            return NDColumn("int", np.asarray(column, dtype=np.int64))
        return _OBJECT
    if cls is float:
        array = np.asarray(column, dtype=np.float64)
        if np.isfinite(array).all() and \
                not (np.signbit(array) & (array == 0.0)).any():
            # -0.0 stays on the object path: NumPy's min/max reductions
            # and accumulate seeds pick the other signed zero than the
            # reference fold (0.0 == -0.0, so == assertions can't tell,
            # but repr/CSV output would become backend-dependent).
            return NDColumn("float", array)
        return _OBJECT
    if cls is str:
        # NumPy's UCS-4 arrays truncate trailing NUL codepoints, so
        # "a\x00" would compare equal to "a" — keep such strings (found by
        # the cross-backend fuzz harness) on the object path.
        if any("\x00" in v for v in column):
            return _OBJECT
        return NDColumn("str", np.asarray(column, dtype=np.str_))
    return _OBJECT


def classify_value(value) -> tuple[int, object] | None:
    """(sort class, comparable value) of a constant, or ``None`` for
    values the vectorized comparisons must not touch."""
    if value is None or isinstance(value, bool):
        # None compares False everywhere; bools live in their own class
        # but a bool column is never typed, so keep constants symmetric.
        return (_CLASS_NULL if value is None else _CLASS_BOOL, value)
    if isinstance(value, int):
        return (_CLASS_NUMBER, value) if -INT_SAFE <= value <= INT_SAFE \
            else None
    if isinstance(value, float):
        return (_CLASS_NUMBER, value) if math.isfinite(value) else None
    if isinstance(value, str):
        # See classify_column: NUL-bearing strings lose their trailing
        # codepoints in NumPy's fixed-width unicode representation.
        return None if "\x00" in value else (_CLASS_STRING, value)
    return None


# -------------------------------------------------------------- comparisons

def _vec_eq(a, b, isclose: bool):
    """Vectorized ``value_eq`` over same-class operands.

    ``isclose`` replays ``math.isclose(a, b, rel_tol, abs_tol)`` exactly:
    ``a == b or |a-b| <= max(rel_tol * max(|a|, |b|), abs_tol)``.
    """
    if not isclose:
        return a == b
    with np.errstate(over="ignore"):
        # |a-b| may overflow to inf for finite extremes; inf <= tol is
        # False, exactly what math.isclose concludes — only NumPy's
        # warning must not escape (backend-dependent under -W error).
        tol = np.maximum(FLOAT_REL_TOL * np.maximum(np.abs(a), np.abs(b)),
                         FLOAT_ABS_TOL)
        return (a == b) | (np.abs(a - b) <= tol)


def _vec_compare(op: str, a, b, isclose: bool):
    if op == "==":
        return _vec_eq(a, b, isclose)
    if op == "!=":
        return ~_vec_eq(a, b, isclose)
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    return a >= b


def _class_compare(op: str, class_a: int, class_b: int, shape):
    """Cross-class comparison: constant over the whole shape.

    ``value_sort_key`` orders whole classes before values, so e.g. every
    number is ``<`` every string; ``==`` across classes is always False
    (and ``!=`` True — both operands are known non-NULL here).
    """
    if op == "==":
        result = False
    elif op == "!=":
        result = True
    elif op == "<":
        result = class_a < class_b
    elif op == "<=":
        result = class_a <= class_b
    elif op == ">":
        result = class_a > class_b
    else:
        result = class_a >= class_b
    return np.full(shape, result, dtype=bool)


def compare_const(nd: NDColumn, op: str, const):
    """Column-vs-constant boolean mask, or ``None`` to fall back."""
    if nd.is_object:
        return None
    spec = classify_value(const)
    if spec is None:
        return None
    const_class, const_value = spec
    n = len(nd.array)
    if const_value is None:
        # NULL never satisfies any comparison (SQL WHERE semantics).
        return np.zeros(n, dtype=bool)
    if nd.sort_class != const_class:
        return _class_compare(op, nd.sort_class, const_class, n)
    if nd.kind == "str":
        return _vec_compare(op, nd.array, const_value, isclose=False)
    if nd.kind == "int" and isinstance(const_value, int):
        return _vec_compare(op, nd.array, const_value, isclose=False)
    # A float is involved: value_eq compares via math.isclose.
    return _vec_compare(op, nd.array.astype(np.float64, copy=False),
                        np.float64(const_value), isclose=True)


def compare_columns(nd_a: NDColumn, nd_b: NDColumn, op: str, outer: bool):
    """Column-vs-column boolean mask (elementwise, or the full outer
    comparison matrix in nested-loop orientation), or ``None``."""
    if nd_a.is_object or nd_b.is_object:
        return None
    a, b = nd_a.array, nd_b.array
    if outer:
        a = a[:, None]
    if nd_a.sort_class != nd_b.sort_class:
        shape = (len(nd_a.array), len(nd_b.array)) if outer \
            else len(nd_a.array)
        return _class_compare(op, nd_a.sort_class, nd_b.sort_class, shape)
    if nd_a.kind == "str":
        return _vec_compare(op, a, b, isclose=False)
    if nd_a.kind == "int" and nd_b.kind == "int":
        return _vec_compare(op, a, b, isclose=False)
    return _vec_compare(op, a.astype(np.float64, copy=False),
                        b.astype(np.float64, copy=False), isclose=True)


def predicate_mask(pred: Predicate, block: kernels.ColumnBlock,
                   ndcol) -> "np.ndarray | None":
    """Vectorized :func:`repro.engine.columns.predicate_mask`, or ``None``
    when some operand needs the reference path.  ``ndcol`` maps a column
    list to its cached :class:`NDColumn`."""
    n = block.n_rows
    if isinstance(pred, TruePred):
        return np.ones(n, dtype=bool)
    if isinstance(pred, FalsePred):
        return np.zeros(n, dtype=bool)
    if isinstance(pred, ConstCmp):
        return compare_const(ndcol(block.columns[pred.col]), pred.op,
                             pred.const)
    if isinstance(pred, ColCmp):
        return compare_columns(ndcol(block.columns[pred.left]),
                               ndcol(block.columns[pred.right]),
                               pred.op, outer=False)
    if isinstance(pred, AndPred):
        mask = np.ones(n, dtype=bool)
        for part in pred.parts:
            part_mask = predicate_mask(part, block, ndcol)
            if part_mask is None:
                return None
            mask &= part_mask
        return mask
    return None


# ---------------------------------------------------------------- selections

def filter_indices(block: kernels.ColumnBlock, pred: Predicate,
                   ndcol) -> "list[int] | None | type(NotImplemented)":
    """Surviving row indices (``None`` = all rows), or ``NotImplemented``
    to fall back to the reference kernel."""
    mask = predicate_mask(pred, block, ndcol)
    if mask is None:
        return NotImplemented
    if mask.all():
        return None
    return np.flatnonzero(mask).tolist()


def join_pairs(left: kernels.ColumnBlock, right: kernels.ColumnBlock,
               pred: Predicate, ndcol):
    """Vectorized (left row, right row) pair list in nested-loop order,
    or ``NotImplemented``.  Mirrors the reference kernel's ``ColCmp``
    fast paths; other predicate shapes fall back."""
    if not isinstance(pred, ColCmp):
        return NotImplemented
    nl, nr = left.n_rows, right.n_rows
    n_left_cols = left.n_cols
    a, b, op = pred.left, pred.right, pred.op
    if a < n_left_cols <= b:
        matrix = compare_columns(ndcol(left.columns[a]),
                                 ndcol(right.columns[b - n_left_cols]),
                                 op, outer=True)
        if matrix is None:
            return NotImplemented
        ii, jj = np.nonzero(matrix)          # C order == left-major scan
        return list(zip(ii.tolist(), jj.tolist()))
    if a < n_left_cols and b < n_left_cols:
        mask = compare_columns(ndcol(left.columns[a]), ndcol(left.columns[b]),
                               op, outer=False)
        if mask is None:
            return NotImplemented
        keep = np.flatnonzero(mask)
        ii = np.repeat(keep, nr)
        jj = np.tile(np.arange(nr), len(keep))
        return list(zip(ii.tolist(), jj.tolist()))
    if a >= n_left_cols and b >= n_left_cols:
        mask = compare_columns(ndcol(right.columns[a - n_left_cols]),
                               ndcol(right.columns[b - n_left_cols]),
                               op, outer=False)
        if mask is None:
            return NotImplemented
        keep = np.flatnonzero(mask)
        ii = np.repeat(np.arange(nl), len(keep))
        jj = np.tile(keep, nl)
        return list(zip(ii.tolist(), jj.tolist()))
    return NotImplemented


def _sort_codes(nd: NDColumn) -> "np.ndarray | None":
    """An int64/float64 key array whose ascending order (and ties) equal
    ``value_sort_key`` order over the column, and which is negatable for
    descending sorts."""
    if nd.is_object:
        return None
    if nd.kind == "str":
        # Rank-encode: np.unique sorts exactly like Python str comparison,
        # and integer codes negate cleanly for descending keys.
        _, inverse = np.unique(nd.array, return_inverse=True)
        return inverse.astype(np.int64, copy=False)
    return nd.array


def sort_indices(block: kernels.ColumnBlock, cols: Sequence[int],
                 ascending: bool, ndcol):
    """Vectorized stable sort permutation, or ``NotImplemented``.

    Typed key columns hold one sort class each, so their natural order is
    ``value_sort_key`` order.  ``np.lexsort`` is stable, and descending
    order negates every key — for numeric keys that is exactly
    ``sorted(reverse=True)``: descending values, ties in original order.
    """
    codes = [_sort_codes(ndcol(block.columns[c])) for c in cols]
    if any(code is None for code in codes):
        return NotImplemented
    if not ascending:
        codes = [-code for code in codes]
    return np.lexsort(tuple(reversed(codes))).tolist()


def group_rows(block: kernels.ColumnBlock, keys: Sequence[int], ndcol):
    """Vectorized ``extractGroups``, or ``NotImplemented``.

    Only int and str key columns vectorize: their ``canonical()`` form is
    the identity, so ``np.unique`` equality is exactly the reference
    bucketing.  Float keys (canonical rounds to 9 decimals) and object
    columns stay on the reference path.
    """
    if not keys or not block.n_rows:
        return NotImplemented
    codes = []
    for k in keys:
        nd = ndcol(block.columns[k])
        if nd.is_object or nd.kind == "float":
            return NotImplemented
        _, inverse = np.unique(nd.array, return_inverse=True)
        codes.append(inverse.astype(np.int64, copy=False))
    combined = codes[0]
    for code in codes[1:]:
        combined = combined * (int(code.max()) + 1) + code
    order = np.argsort(combined, kind="stable")
    sorted_codes = combined[order]
    boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
    groups = [g.tolist() for g in np.split(order, boundaries)]
    # Stable argsort keeps each group's rows in table order, so g[0] is the
    # group's first occurrence — sort groups into first-occurrence order.
    groups.sort(key=lambda g: g[0])
    return groups


# -------------------------------------------------------------- aggregation

def _group_layout(groups: Sequence[Sequence[int]]):
    """(flat gather indices, reduceat offsets, group sizes)."""
    flat = np.concatenate([np.asarray(g, dtype=np.intp) for g in groups])
    sizes = np.asarray([len(g) for g in groups], dtype=np.intp)
    offsets = np.zeros(len(sizes), dtype=np.intp)
    np.cumsum(sizes[:-1], out=offsets[1:])
    return flat, offsets, sizes


def _ordinal_view(nd: NDColumn):
    """(key array, decoder) for order-based reductions.

    ``np.maximum``/``np.minimum`` have no unicode loops, so string columns
    reduce over their ``np.unique`` rank codes and decode the winners back
    through the unique-value array; numeric columns reduce directly
    (decoder ``None``).  Rank codes preserve exact ``value_sort_key``
    order within the column's class, so the decoded extremum is the very
    value the reference fold keeps.
    """
    if nd.kind != "str":
        return nd.array, None
    uniq, inverse = np.unique(nd.array, return_inverse=True)
    return inverse.astype(np.int64, copy=False), uniq


def _int_sums_exact(nd: NDColumn, n_values: int) -> bool:
    """True when every partial int64 sum of up to ``n_values`` cells is
    exact in int64 *and* float64 (Python int arithmetic never rounds, so
    vectorized sums must provably not either)."""
    if nd.kind != "int" or not n_values:
        return False
    return int(np.abs(nd.array).max()) * n_values <= INT_SAFE


def group_aggregate(nd: NDColumn, agg_func: str,
                    groups: Sequence[Sequence[int]]):
    """One aggregated Python value per group, or ``NotImplemented``.

    Vectorizes the order-insensitive/exact cases: int sums (and the
    int-sum-over-count ``avg``) when every partial sum is provably exact,
    min/max of any typed column, and ``count`` (typed columns hold no
    NULLs).  Float ``sum``/``avg`` keep the reference left-fold so
    summation order — and therefore bit patterns — match the row engine.
    """
    if not groups:
        return []
    if nd.is_object:
        return NotImplemented
    if agg_func == "count":
        return [len(g) for g in groups]
    flat, offsets, sizes = _group_layout(groups)
    if agg_func in ("max", "min"):
        reducer = np.maximum if agg_func == "max" else np.minimum
        keys, decode = _ordinal_view(nd)
        winners = reducer.reduceat(keys[flat], offsets)
        if decode is not None:
            winners = decode[winners]
        return winners.tolist()
    if agg_func in ("sum", "avg") and \
            _int_sums_exact(nd, int(sizes.max())):
        sums = np.add.reduceat(nd.array[flat], offsets).tolist()
        if agg_func == "sum":
            return sums
        return [s / int(n) for s, n in zip(sums, sizes.tolist())]
    return NotImplemented


def partition_column(nd: NDColumn, spec, groups: Sequence[Sequence[int]],
                     n_rows: int):
    """The analytic output column as a Python list, or ``NotImplemented``.

    * ``"all"`` — one vectorized group aggregate broadcast to its rows
      (same shared-per-group value the reference kernel emits);
    * ``"prefix"`` — ``np.add.accumulate`` / ``maximum.accumulate`` per
      group; NumPy documents accumulation as the sequential left fold, so
      float ``cumsum``/``cumavg`` bit-match the reference loop;
    * ``"ranked"`` — ``rank``/``rank_desc`` via one ``searchsorted`` per
      group (the reference's sorted-keys + bisect, vectorized).

    ``dense_rank`` variants (tolerance-based distinctness) and object
    columns fall back.
    """
    if nd.is_object or not groups:
        return NotImplemented
    term = spec.term_name
    out: list = [None] * n_rows
    if spec.style == "all":
        agg = group_aggregate(nd, term, groups)
        if agg is NotImplemented:
            return NotImplemented
        for value, g in zip(agg, groups):
            for i in g:
                out[i] = value
        return out
    if spec.style == "prefix":
        if term not in ("sum", "avg", "max", "min"):
            return NotImplemented
        if term in ("sum", "avg"):
            if nd.kind == "str":
                # The reference raises TypeError summing strings — that is
                # an ill-typed-candidate signal the fallback must deliver.
                return NotImplemented
            if nd.kind == "int" and \
                    not _int_sums_exact(nd, max(len(g) for g in groups)):
                return NotImplemented
        keys, decode = _ordinal_view(nd)
        for g in groups:
            values = keys[np.asarray(g, dtype=np.intp)]
            if term in ("sum", "avg"):
                acc = np.add.accumulate(values)
                if term == "avg":
                    acc = acc / np.arange(1, len(g) + 1)
            elif term == "max":
                acc = np.maximum.accumulate(values)
            else:
                acc = np.minimum.accumulate(values)
            if decode is not None:
                acc = decode[acc]
            for i, value in zip(g, acc.tolist()):
                out[i] = value
        return out
    if spec.style == "ranked" and term in ("rank", "rank_desc"):
        keys, _ = _ordinal_view(nd)
        for g in groups:
            values = keys[np.asarray(g, dtype=np.intp)]
            keys_sorted = np.sort(values, kind="stable")
            if term == "rank":
                ranks = np.searchsorted(keys_sorted, values, side="left") + 1
            else:
                ranks = len(g) - np.searchsorted(keys_sorted, values,
                                                 side="right") + 1
            for i, rank in zip(g, ranks.tolist()):
                out[i] = rank
        return out
    return NotImplemented


# --------------------------------------------------------------- arithmetic

def arithmetic_column(nd_x: NDColumn, nd_y: NDColumn, func: str, n_rows: int):
    """``func(x, y)`` as a Python value list, or ``NotImplemented``.

    Binary arithmetic over typed numeric columns: int ``add``/``sub``
    stay int64 (magnitudes are INT_SAFE-bounded, so no overflow), int
    ``mul`` additionally requires :data:`_MUL_SAFE` operands; every
    division routes through float64 — exact, because both operands are
    exactly representable, and a correctly-rounded float64 quotient of
    exact operands equals Python's correctly-rounded ``int / int``.
    Zero divisors and NULL operands are the reference's ``None``.
    """
    if nd_x.is_object or nd_y.is_object or \
            nd_x.sort_class != _CLASS_NUMBER or \
            nd_y.sort_class != _CLASS_NUMBER:
        return NotImplemented
    x, y = nd_x.array, nd_y.array
    both_int = nd_x.kind == "int" and nd_y.kind == "int"
    # Python float arithmetic overflows silently to inf; NumPy warns.
    # Results are the same IEEE values either way — only the warning
    # channel differs, and under warnings-as-errors it would become a
    # backend-dependent exception, so silence the whole block.
    if func in ("add", "sub", "mul"):
        if func == "mul" and both_int and (
                np.abs(x).max(initial=0) > _MUL_SAFE
                or np.abs(y).max(initial=0) > _MUL_SAFE):
            return NotImplemented
        if not both_int:
            x = x.astype(np.float64, copy=False)
            y = y.astype(np.float64, copy=False)
        with np.errstate(over="ignore"):
            if func == "add":
                return (x + y).tolist()
            if func == "sub":
                return (x - y).tolist()
            return (x * y).tolist()
    if func not in ("div", "percent", "pct_change"):
        return NotImplemented
    xf = x.astype(np.float64, copy=False)
    yf = y.astype(np.float64, copy=False)
    zero = y == 0
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        if func == "div":
            result = xf / yf
        elif func == "percent":
            result = xf / yf * 100
        else:
            if both_int:
                diff = (x - y).astype(np.float64)
            else:
                diff = xf - yf
            result = diff / yf * 100
    values = result.tolist()
    if zero.any():
        for i in np.flatnonzero(zero).tolist():
            values[i] = None
    return values


# ------------------------------------------------------------------- engine

class NumpyEngine(ColumnarEngine):
    """Columnar engine with NumPy kernels on the comparison hot paths.

    Subclasses :class:`ColumnarEngine` and overrides only the shared
    selection/column computations; caches, batching, tracking and the
    consistency checker are inherited, so the two backends share one
    behavior by construction wherever NumPy offers no win.
    """

    name = "numpy"

    def __init__(self, *args, **kwargs) -> None:
        if not HAVE_NUMPY:  # pragma: no cover - guarded by make_engine
            raise RuntimeError("NumpyEngine requires NumPy")
        super().__init__(*args, **kwargs)
        # id(column list) -> (column, NDColumn); the entry pins the column
        # alive so the id cannot be recycled (same pattern as _col_types).
        self._nd_columns: BoundedCache = BoundedCache(DEFAULT_BLOCK_CACHE)

    def reset(self) -> None:
        super().reset()
        self._nd_columns.clear()

    def adopt_env(self, env: ast.Env, adopted=None) -> None:
        """Seed blocks *and* NDColumn shadows from shared memory.

        Beyond the inherited block seeding, every column whose segment
        encoding was flagged ``nd_safe`` (the encode-time replay of
        :func:`classify_column`'s rules) gets its shadow installed as a
        zero-copy view of the shared buffer — the typed kernels then read
        the coordinator's bytes directly, with no per-worker copy.
        Columns without a valid view just classify lazily as usual.
        """
        super().adopt_env(env, adopted)
        if adopted is None:
            return
        kinds = {"int64": "int", "float64": "float"}
        for entry in adopted:
            for column, view in zip(entry.columns, entry.views):
                if view is None:
                    continue
                kind = kinds.get(view.dtype.name, "str")
                self._nd_columns[id(column)] = (column, NDColumn(kind, view))

    def _ndcol(self, column) -> NDColumn:
        entry = self._nd_columns.get(id(column))
        if entry is not None and entry[0] is column:
            return entry[1]
        nd = classify_column(column)
        self._nd_columns[id(column)] = (column, nd)
        return nd

    # ------------------------------------------------- vectorized selections
    def _filter_keep(self, query: ast.Filter, env: ast.Env):
        key = (query, env)
        hit = self._selections.get(key)
        if hit is None:
            child = self._block(query.child, env)
            keep = filter_indices(child, query.pred, self._ndcol)
            if keep is NotImplemented:
                keep = kernels.filter_indices(child, query.pred)
            self._selections[key] = ALL_ROWS if keep is None else keep
            return keep
        return None if hit is ALL_ROWS else hit

    def _join_pairs(self, query: ast.Join, env: ast.Env) -> list:
        key = (query, env)
        hit = self._selections.get(key)
        if hit is None:
            left = self._block(query.left, env)
            right = self._block(query.right, env)
            hit = join_pairs(left, right, query.pred, self._ndcol)
            if hit is NotImplemented:
                hit = kernels.join_pairs(left, right, query.pred)
            self._selections[key] = hit
        return hit

    def _left_join_pairs(self, query: ast.LeftJoin, env: ast.Env) -> list:
        key = (query, env)
        hit = self._selections.get(key)
        if hit is None:
            left = self._block(query.left, env)
            right = self._block(query.right, env)
            matched = join_pairs(left, right, query.pred, self._ndcol)
            if matched is NotImplemented:
                matched = kernels.join_pairs(left, right, query.pred)
            hit = kernels.left_pairs_from_matched(matched, left.n_rows)
            self._selections[key] = hit
        return hit

    def _sort_order(self, query: ast.Sort, env: ast.Env) -> list[int]:
        key = (query, env)
        hit = self._selections.get(key)
        if hit is None:
            child = self._block(query.child, env)
            hit = sort_indices(child, query.cols, query.ascending,
                               self._ndcol)
            if hit is NotImplemented:
                hit = kernels.sort_indices(child, query.cols, query.ascending)
            self._selections[key] = hit
        return hit

    def _groups(self, child_query: ast.Query, env: ast.Env,
                keys, child_block: kernels.ColumnBlock):
        key = (child_query, env, keys)
        hit = self._groupings.get(key)
        if hit is None:
            hit = group_rows(child_block, keys, self._ndcol)
            if hit is NotImplemented:
                hit = kernels.group_indices(child_block, keys)
            self._groupings[key] = hit
        return hit

    # --------------------------------------------------- vectorized columns
    def _compute_block(self, query: ast.Query,
                       env: ast.Env) -> kernels.ColumnBlock:
        if isinstance(query, ast.Group):
            child = self._block(query.child, env)
            groups = self._groups(query.child, env, query.keys, child)
            key_columns = self._key_columns(query.child, env, query.keys,
                                            child, groups)
            agg = group_aggregate(self._ndcol(child.columns[query.agg_col]),
                                  query.agg_func, groups)
            if agg is not NotImplemented:
                columns = list(key_columns)
                columns.append(agg)
                return kernels.ColumnBlock(columns, len(groups))
            return kernels.group_block(child, query.keys, query.agg_func,
                                       query.agg_col, groups, key_columns)

        if isinstance(query, ast.Partition):
            child = self._block(query.child, env)
            groups = self._groups(query.child, env, query.keys, child)
            new_col = partition_column(
                self._ndcol(child.columns[query.agg_col]),
                analytic_spec(query.agg_func), groups, child.n_rows)
            if new_col is not NotImplemented:
                return kernels.ColumnBlock(list(child.columns) + [new_col],
                                           child.n_rows)
            return kernels.partition_block(child, query.keys, query.agg_func,
                                           query.agg_col, groups)

        if isinstance(query, ast.Arithmetic) and len(query.cols) == 2:
            child = self._block(query.child, env)
            new_col = arithmetic_column(
                self._ndcol(child.columns[query.cols[0]]),
                self._ndcol(child.columns[query.cols[1]]),
                query.func, child.n_rows)
            if new_col is not NotImplemented:
                return kernels.ColumnBlock(list(child.columns) + [new_col],
                                           child.n_rows)
            return kernels.arithmetic_block(child, query.func, query.cols)

        return super()._compute_block(query, env)


_warned_fallback = False


def make_numpy_engine(**kwargs):
    """The ``"numpy"`` backend factory behind ``make_engine``.

    Falls back to a :class:`ColumnarEngine` with a logged warning when
    NumPy is not importable — results are identical either way, only the
    kernel speed differs, so the knob is always safe to set.
    """
    if HAVE_NUMPY:
        return NumpyEngine(**kwargs)
    global _warned_fallback
    if not _warned_fallback:
        _LOG.warning(
            "backend='numpy' requested but NumPy is not installed; "
            "falling back to the pure-python columnar engine "
            "(pip install -e .[numpy] to enable the vectorized kernels)")
        _warned_fallback = True
    return ColumnarEngine(**kwargs)

"""The row-at-a-time backend.

``RowEngine`` is the historical tree interpreter
(:mod:`repro.semantics.concrete` / :mod:`repro.semantics.tracking`) moved
behind the :class:`~repro.engine.base.EvalEngine` interface: the evaluation
rules are unchanged, but every memoized result now lives in caches this
instance owns.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.engine.base import BATCH_EVAL_ERRORS, EngineStats, EvalEngine
from repro.engine.cache import BoundedCache
from repro.lang import ast
from repro.semantics import concrete, tracking
from repro.semantics.tracking import TrackedTable
from repro.table.table import Table

DEFAULT_CONCRETE_CACHE = 100_000
DEFAULT_TRACKING_CACHE = 50_000


class RowEngine(EvalEngine):
    """Row-major interpreter with engine-owned subtree caches."""

    name = "row"

    def __init__(self, concrete_cache_size: int | None = DEFAULT_CONCRETE_CACHE,
                 tracking_cache_size: int | None = DEFAULT_TRACKING_CACHE) -> None:
        super().__init__()
        self._concrete: BoundedCache = BoundedCache(concrete_cache_size)
        self._tracking: BoundedCache = BoundedCache(tracking_cache_size)

    def evaluate(self, query: ast.Query, env: ast.Env) -> Table:
        hit = self._concrete.get((query, env))
        if hit is not None:
            self.stats.concrete_hits += 1
            return hit
        self.stats.concrete_evals += 1
        return concrete.evaluate_missing(query, env, self._concrete)

    def evaluate_tracking(self, query: ast.Query, env: ast.Env) -> TrackedTable:
        hit = self._tracking.get((query, env))
        if hit is not None:
            self.stats.tracking_hits += 1
            return hit
        self.stats.tracking_evals += 1
        return tracking.track_missing(query, env, self._tracking)

    def evaluate_many(self, queries: Sequence[ast.Query], env: ast.Env,
                      errors: str = "raise") -> list[Table | None]:
        """Batched :meth:`evaluate`: one dispatch, cache held in locals."""
        self._check_errors_mode(errors)
        cache, stats = self._concrete, self.stats
        out: list[Table | None] = []
        for query in queries:
            hit = cache.get((query, env))
            if hit is not None:
                stats.concrete_hits += 1
                out.append(hit)
                continue
            stats.concrete_evals += 1
            try:
                out.append(concrete.evaluate_missing(query, env, cache))
            except BATCH_EVAL_ERRORS:
                if errors == "raise":
                    raise
                out.append(None)
        return out

    def evaluate_tracking_many(self, queries: Sequence[ast.Query],
                               env: ast.Env, errors: str = "raise"
                               ) -> list[TrackedTable | None]:
        """Batched :meth:`evaluate_tracking`; see :meth:`evaluate_many`."""
        self._check_errors_mode(errors)
        cache, stats = self._tracking, self.stats
        out: list[TrackedTable | None] = []
        for query in queries:
            hit = cache.get((query, env))
            if hit is not None:
                stats.tracking_hits += 1
                out.append(hit)
                continue
            stats.tracking_evals += 1
            try:
                out.append(tracking.track_missing(query, env, cache))
            except BATCH_EVAL_ERRORS:
                if errors == "raise":
                    raise
                out.append(None)
        return out

    def reset(self) -> None:
        self._concrete.clear()
        self._tracking.clear()
        self._reset_consistency()
        self.stats = EngineStats()

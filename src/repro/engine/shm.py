"""Zero-copy shared-memory column store (``multiprocessing.shared_memory``).

The parallel layer used to pickle every input table into every worker, and
each per-worker engine re-materialized the same columns the coordinator
already held.  This module replaces that traffic with *handles*: the
coordinator lays the environment's columns out in a shared-memory segment
once, ships each worker a small picklable :class:`EnvHandle`
``(segment name, schema, row mask)``, and workers attach read-only.

Layout and codecs
-----------------
One published unit (an environment or a single result block) is one
segment.  Each column is encoded by the narrowest exact codec:

* ``"i8"``  — every cell a Python ``int`` fitting int64; little-endian
  64-bit buffer.
* ``"f8"``  — every cell a Python ``float``; IEEE-754 doubles, so NaN
  payloads, infinities and signed zeros round-trip bit-exact.
* ``"u4"``  — every cell a ``str``; fixed-width UCS-4 (the layout NumPy's
  unicode arrays use) plus an int32 length array, so embedded and trailing
  NUL codepoints survive exactly.
* ``"obj"`` — anything else (``None``/``bool``/mixed classes/huge ints):
  the column pickled whole.  Always correct, never zero-copy.

Decoding rebuilds exact Python values, so an attached environment compares
``==`` (and hashes equal) to the original — which is what keeps the
replay-merge determinism guarantee intact under shm dispatch.  Typed
columns additionally record whether a **zero-copy NumPy view** of the
buffer is semantically valid for the vectorized kernels (``nd_safe``
replays the :func:`repro.engine.numpy_kernels.classify_column` rules at
encode time); :func:`nd_views` then hands the NumPy engine ``NDColumn``
shadows that alias the shared buffer directly — no copy per worker.

Lifecycle and crash-safety
--------------------------
Segments are named ``{prefix}_{seq}`` under a per-run prefix, so one
:func:`sweep_prefix` pass reclaims everything a run created no matter
which process created it.  The creator-side :class:`ShmStore` tracks its
segments and unlinks them on :meth:`ShmStore.close`; until then they stay
registered with the creating process's ``resource_tracker``, which unlinks
them at interpreter death if the run crashes before cleanup.  *Attaching*
processes unregister from their own tracker (:func:`_untrack`) — otherwise
every worker's tracker would unlink the segment out from under its
siblings on worker exit (the long-standing CPython attach-side behavior).
Worker-*published* segments (the cross-shard plan cache) are created with
``disown=True``: ownership transfers to the coordinator, which sweeps the
run prefix when the run ends, so a worker crash can never strand its
siblings' cache entries mid-run.  :func:`scan_segments` is the leak probe
the test-suite and CI leak-check assert through.
"""

from __future__ import annotations

import math
import os
import pickle
import struct
from collections.abc import Sequence
from dataclasses import dataclass, field
from multiprocessing import shared_memory

from repro.lang.ast import Env
from repro.table.schema import Schema
from repro.table.table import Table

#: Every segment name a run creates starts with this, whatever process
#: created it — the unit the leak scan and the end-of-run sweep key on.
SEGMENT_PREFIX = "reproshm"

#: Where POSIX shared memory surfaces as files (Linux).  The scan/sweep
#: helpers degrade gracefully on platforms without it.
SHM_DIR = "/dev/shm"

#: Magnitude bound for a zero-copy int view to be valid for the NumPy
#: kernels (mirrors ``repro.engine.numpy_kernels.INT_SAFE``).
_ND_INT_SAFE = 2**52
_I8_MIN, _I8_MAX = -(2**63), 2**63 - 1


def _untrack(shm) -> None:
    """Unregister ``shm`` from this process's resource tracker.

    Used on the attach side (so a worker's exit never unlinks a segment
    its siblings still read) and for disowned publishes (ownership moves
    to the coordinator's end-of-run sweep).  The tracker API is
    semi-private but stable across the supported interpreters; failure to
    unregister only risks an early unlink warning, never corruption.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass


def _retrack(shm) -> None:
    """Re-register ``shm`` right before an unlink that will unregister it.

    Fork children share the parent's tracker process, so a child's
    attach-side :func:`_untrack` removes the *parent's* registration from
    the shared cache; the parent's eventual ``unlink()`` would then
    unregister an absent name and the tracker logs a KeyError traceback.
    Registration is a set-add (idempotent), so compensating unconditionally
    is always balanced.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass


# ------------------------------------------------------------------- handles

@dataclass(frozen=True)
class ColumnMeta:
    """Where (and how) one column lives inside a segment."""

    tag: str                    # "i8" | "f8" | "u4" | "obj"
    offset: int                 # payload offset into the segment
    nbytes: int                 # payload byte length
    count: int                  # number of cells
    width: int = 0              # u4: UCS-4 code units per cell
    lengths_offset: int = 0     # u4: offset of the int32 length array
    nd_safe: bool = False       # zero-copy NumPy view is semantically valid


@dataclass(frozen=True)
class BlockHandle:
    """One column block in shared memory; picklable, a few hundred bytes."""

    segment: str
    n_rows: int
    columns: tuple[ColumnMeta, ...]
    nbytes: int                     # total payload bytes in the segment
    row_mask: tuple[int, ...] | None = None     # optional row selection


@dataclass(frozen=True)
class TableHandle:
    """One named input table: schema travels in the handle, cells in shm."""

    name: str
    schema: Schema
    block: BlockHandle


@dataclass(frozen=True)
class EnvHandle:
    """A whole environment in one segment — the shard dispatch payload."""

    segment: str
    tables: tuple[TableHandle, ...]
    nbytes: int


# -------------------------------------------------------------------- codecs

def encode_column(column: Sequence) -> tuple[str, tuple[bytes, ...], dict]:
    """Encode one column: ``(tag, payload parts, meta)``.

    ``meta`` carries the codec extras (``width``/lengths for ``u4``) and
    the ``nd_safe`` verdict.  Parts are concatenated by the segment
    builder; ``u4`` contributes (lengths, payload) as two parts so each
    can be 8-aligned independently.
    """
    n = len(column)
    if n:
        cls = type(column[0])
        homogeneous = all(type(v) is cls for v in column)
    else:
        cls, homogeneous = None, False
    if homogeneous and cls is int:
        if all(_I8_MIN <= v <= _I8_MAX for v in column):
            payload = struct.pack(f"<{n}q", *column)
            nd_safe = all(-_ND_INT_SAFE <= v <= _ND_INT_SAFE for v in column)
            return "i8", (payload,), {"nd_safe": nd_safe}
    elif homogeneous and cls is float:
        payload = struct.pack(f"<{n}d", *column)
        nd_safe = all(math.isfinite(v) for v in column) and not any(
            v == 0.0 and math.copysign(1.0, v) < 0 for v in column)
        return "f8", (payload,), {"nd_safe": nd_safe}
    elif homogeneous and cls is str:
        width = max(len(s) for s in column)
        lengths = struct.pack(f"<{n}i", *(len(s) for s in column))
        pad = b"\0" * (4 * width)
        payload = b"".join(
            (s.encode("utf-32-le") + pad)[: 4 * width] for s in column)
        nd_safe = width > 0 and not any("\x00" in s for s in column)
        return "u4", (lengths, payload), {"width": width, "nd_safe": nd_safe}
    payload = pickle.dumps(list(column), protocol=pickle.HIGHEST_PROTOCOL)
    return "obj", (payload,), {}


def decode_column(meta: ColumnMeta, buf) -> list:
    """Decode one column from a segment buffer back to exact Python values."""
    n = meta.count
    if meta.tag == "i8":
        return list(struct.unpack_from(f"<{n}q", buf, meta.offset))
    if meta.tag == "f8":
        return list(struct.unpack_from(f"<{n}d", buf, meta.offset))
    if meta.tag == "u4":
        lengths = struct.unpack_from(f"<{n}i", buf, meta.lengths_offset)
        stride = 4 * meta.width
        base = meta.offset
        raw = bytes(buf[base: base + n * stride])
        return [raw[i * stride: i * stride + 4 * lengths[i]]
                .decode("utf-32-le") for i in range(n)]
    if meta.tag == "obj":
        return pickle.loads(bytes(buf[meta.offset: meta.offset + meta.nbytes]))
    raise ValueError(f"unknown column codec {meta.tag!r}")


class _SegmentBuilder:
    """Accumulate 8-aligned payload parts, then copy once into a segment."""

    def __init__(self) -> None:
        self._parts: list[tuple[int, bytes]] = []
        self.size = 0

    def add(self, payload: bytes) -> int:
        """Append one part; returns its offset."""
        offset = (self.size + 7) & ~7
        self._parts.append((offset, payload))
        self.size = offset + len(payload)
        return offset

    def add_column(self, column: Sequence) -> ColumnMeta:
        tag, parts, meta = encode_column(column)
        if tag == "u4":
            lengths_offset = self.add(parts[0])
            offset = self.add(parts[1])
            return ColumnMeta(tag, offset, len(parts[1]), len(column),
                              width=meta["width"],
                              lengths_offset=lengths_offset,
                              nd_safe=meta["nd_safe"])
        offset = self.add(parts[0])
        return ColumnMeta(tag, offset, len(parts[0]), len(column),
                          nd_safe=meta.get("nd_safe", False))

    def write_into(self, buf) -> None:
        for offset, payload in self._parts:
            buf[offset: offset + len(payload)] = payload


# --------------------------------------------------------------- shared store

@dataclass
class ShmDispatchStats:
    """Coordinator-side telemetry of one run's shm dispatch."""

    shm_segments: int = 0
    shm_bytes_shipped: int = 0

    def absorb(self, other: "ShmDispatchStats") -> None:
        self.shm_segments += other.shm_segments
        self.shm_bytes_shipped += other.shm_bytes_shipped


class ShmStore:
    """Creator-side segment registry with explicit lifecycle.

    ``create → publish_* → close`` (also a context manager).  ``close``
    unlinks every segment this store created; ``disown=True`` publishes
    transfer unlink responsibility to whoever sweeps the run prefix (the
    coordinator) instead — the worker-publish mode.
    """

    def __init__(self, prefix: str | None = None) -> None:
        self.prefix = prefix or \
            f"{SEGMENT_PREFIX}_{os.getpid():x}{os.urandom(3).hex()}"
        self._segments: list[shared_memory.SharedMemory] = []
        self._seq = 0
        self.stats = ShmDispatchStats()

    # ------------------------------------------------------------- lifecycle
    def _new_segment(self, nbytes: int,
                     disown: bool) -> shared_memory.SharedMemory:
        while True:
            name = f"{self.prefix}_{self._seq}"
            self._seq += 1
            try:
                seg = shared_memory.SharedMemory(name=name, create=True,
                                                 size=max(nbytes, 1))
                break
            except FileExistsError:
                # A predecessor with this prefix left the name behind
                # (a crashed worker's disowned publish not yet swept);
                # skip it rather than fail the publish.
                continue
        if disown:
            # The coordinator's end-of-run sweep owns the unlink; without
            # this, a spawn-worker's resource tracker would unlink the
            # segment the moment that worker exits.
            _untrack(seg)
        self._segments.append(seg)
        self.stats.shm_segments += 1
        self.stats.shm_bytes_shipped += nbytes
        return seg

    def close(self, unlink: bool = True) -> None:
        """Detach (and by default unlink) every segment this store created."""
        for seg in self._segments:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - exported views alive
                continue
            if unlink:
                _retrack(seg)   # see _retrack: fork children untracked us
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass        # already swept (crash path) — idempotent
        self._segments.clear()

    def __enter__(self) -> "ShmStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ publishing
    def publish_block(self, columns: Sequence[Sequence], n_rows: int,
                      row_mask: Sequence[int] | None = None,
                      disown: bool = False) -> BlockHandle:
        """Lay one column block out in a fresh segment."""
        builder = _SegmentBuilder()
        metas = tuple(builder.add_column(col) for col in columns)
        seg = self._new_segment(builder.size, disown)
        builder.write_into(seg.buf)
        return BlockHandle(seg.name, n_rows, metas, builder.size,
                           None if row_mask is None else tuple(row_mask))

    def publish_env(self, env: Env) -> EnvHandle:
        """Lay every input table of ``env`` out in one segment."""
        builder = _SegmentBuilder()
        staged = []
        for table in env.tables:
            columns = [[row[j] for row in table.rows]
                       for j in range(table.n_cols)]
            metas = tuple(builder.add_column(col) for col in columns)
            staged.append((table, metas))
        seg = self._new_segment(builder.size, disown=False)
        builder.write_into(seg.buf)
        tables = tuple(
            TableHandle(table.name, table.schema,
                        BlockHandle(seg.name, table.n_rows, metas,
                                    builder.size))
            for table, metas in staged)
        return EnvHandle(seg.name, tables, builder.size)


# ----------------------------------------------------------------- attaching

class Attachment:
    """Consumer-side registry of attached (read-only) segments."""

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def get(self, name: str) -> shared_memory.SharedMemory:
        seg = self._segments.get(name)
        if seg is None:
            seg = shared_memory.SharedMemory(name=name)
            _untrack(seg)       # the creator (or the sweep) owns the unlink
            self._segments[name] = seg
        return seg

    def discard(self, name: str) -> None:
        """Detach one segment if attached (idempotent; never unlinks).

        Long-lived consumers — a serving pool's worker process memoizes
        one attached environment per segment — use this to drop mappings
        for evicted entries without tearing down the whole attachment.
        """
        seg = self._segments.pop(name, None)
        if seg is not None:
            try:
                seg.close()
            except BufferError:     # pragma: no cover - view still aliased
                pass

    def close(self) -> None:
        """Detach every segment (never unlinks — attachments don't own)."""
        for seg in self._segments.values():
            try:
                seg.close()
            except BufferError:
                # A zero-copy NumPy view still aliases the buffer; the
                # mapping dies with the process, which is imminent for
                # every caller that hits this.
                pass
        self._segments.clear()

    def __enter__(self) -> "Attachment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def decode_block(handle: BlockHandle, attachment: Attachment) -> list[list]:
    """Materialize a block handle's columns as exact Python value lists."""
    buf = attachment.get(handle.segment).buf
    columns = [decode_column(meta, buf) for meta in handle.columns]
    if handle.row_mask is not None:
        columns = [[col[i] for i in handle.row_mask] for col in columns]
    return columns


def block_rows(handle: BlockHandle, attachment: Attachment) -> int:
    return len(handle.row_mask) if handle.row_mask is not None \
        else handle.n_rows


def attach_table(handle: TableHandle, attachment: Attachment) -> Table:
    columns = decode_block(handle.block, attachment)
    n_rows = block_rows(handle.block, attachment)
    rows = tuple(zip(*columns)) if columns else \
        tuple(() for _ in range(n_rows))
    return Table(handle.name, handle.schema, rows)


def attach_env(handle: EnvHandle, attachment: Attachment) -> Env:
    """Rebuild the environment; ``==`` (and hash-equal) to the original."""
    return Env(tuple(attach_table(t, attachment) for t in handle.tables))


def nd_views(handle: BlockHandle, attachment: Attachment) -> list:
    """Zero-copy NumPy views of the block's columns (``None`` per column
    when no semantically-valid view exists or NumPy is absent).

    The arrays alias the shared buffer directly — this is the no-copy
    path the NumPy engine's ``NDColumn`` shadows ride on.  Views are
    read-only; the buffer outlives them via the attachment.
    """
    try:
        import numpy as np
    except ImportError:
        return [None] * len(handle.columns)
    if handle.row_mask is not None:
        return [None] * len(handle.columns)
    seg = attachment.get(handle.segment)
    views = []
    for meta in handle.columns:
        if not meta.nd_safe:
            views.append(None)
            continue
        if meta.tag == "i8":
            arr = np.frombuffer(seg.buf, dtype=np.int64, count=meta.count,
                                offset=meta.offset)
        elif meta.tag == "f8":
            arr = np.frombuffer(seg.buf, dtype=np.float64, count=meta.count,
                                offset=meta.offset)
        elif meta.tag == "u4":
            arr = np.ndarray((meta.count,), dtype=f"<U{meta.width}",
                             buffer=seg.buf, offset=meta.offset)
        else:                   # pragma: no cover - obj never nd_safe
            views.append(None)
            continue
        arr.flags.writeable = False
        views.append(arr)
    return views


@dataclass
class AdoptedTable:
    """One attached table, pre-decoded for engine adoption.

    ``columns`` are the exact Python value lists; ``views`` the optional
    zero-copy NumPy aliases (index-aligned, ``None`` where invalid).
    """

    name: str
    columns: list[list]
    n_rows: int
    views: list = field(default_factory=list)


def adopt_env(handle: EnvHandle, attachment: Attachment,
              want_views: bool = True) -> tuple[Env, list[AdoptedTable]]:
    """Attach an environment once, returning both the rebuilt ``Env`` and
    the per-table adoption payload (decoded columns + zero-copy views)
    that :meth:`repro.engine.base.EvalEngine.adopt_env` seeds caches from.
    """
    adopted = []
    tables = []
    for th in handle.tables:
        columns = decode_block(th.block, attachment)
        n_rows = block_rows(th.block, attachment)
        rows = tuple(zip(*columns)) if columns else \
            tuple(() for _ in range(n_rows))
        tables.append(Table(th.name, th.schema, rows))
        views = nd_views(th.block, attachment) if want_views else \
            [None] * len(columns)
        adopted.append(AdoptedTable(th.name, columns, n_rows, views))
    return Env(tuple(tables)), adopted


# ------------------------------------------------------------ leak handling

def scan_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of live shm segments under ``prefix`` (the leak probe)."""
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux
        return []
    return sorted(name for name in os.listdir(SHM_DIR)
                  if name.startswith(prefix))


def unlink_segment(name: str) -> bool:
    """Unlink one segment by name; True if it existed.

    No ``_untrack`` here: the attach registered the name with this
    process's tracker and ``unlink()`` unregisters it — exactly balanced.
    """
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - lost the race
        return False
    return True


def sweep_prefix(prefix: str) -> int:
    """Unlink every segment under ``prefix``; returns the count removed.

    The coordinator's end-of-run (and crash-recovery) cleanup: catches
    segments published by workers that died before handing them over, on
    platforms where the shm filesystem is scannable.
    """
    return sum(1 for name in scan_segments(prefix) if unlink_segment(name))

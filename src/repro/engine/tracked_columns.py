"""Column-major provenance tracking: :class:`TrackedBlock` + expr kernels.

The provenance-tracking semantics ``[[q(T̄)]]★`` (paper Fig. 9) pairs every
concrete cell with an :class:`~repro.provenance.expr.Expr` term recording
its derivation.  The row rewriter (:mod:`repro.semantics.tracking`)
rebuilds full row tuples — expressions *and* values — at every node; this
module is the columnar counterpart:

* a :class:`TrackedBlock` keeps the provenance grid as a tuple of
  *expression columns* next to a shared concrete
  :class:`~repro.engine.columns.ColumnBlock` (the value shadow **is** the
  concrete evaluation, so the engine reuses the very blocks — and the very
  ``extractGroups`` results, filter masks, join pairs and sort orders — the
  concrete path already cached);
* append-only operators (projection, partition, arithmetic) share their
  input's expression columns instead of copying terms cell by cell;
* aggregation/analytic terms are built with *shallow* simplification:
  tracked expressions are always in simplified form (simplification is
  idempotent), so only the top-level flattening/dedup of
  :func:`repro.provenance.simplify.simplify` needs to run when a new term
  is constructed over them — no re-walk of the argument subtrees;
* window terms are built per *group*, not per row: an ``"all"``-style
  analytic constructs one term shared by every row of its group, a
  ``"prefix"`` analytic (``cumsum``) extends one running flattened argument
  list, and a ``"ranked"`` analytic reuses one simplified member tuple —
  turning the row rewriter's O(n²) term construction per group into O(n)
  constructions.

Every kernel reproduces the row rewriter's output **term-for-term**: the
same ``simplify`` results, the same ``group{...}`` member order, the same
NULL padding.  The registry-wide differential suite holds both backends to
byte-identical :class:`~repro.semantics.tracking.TrackedTable`s.

Column identity is a structural key
-----------------------------------
Because kernels share expression columns (and individual terms) by object
reference wherever the semantics allow — sibling candidates of one
instantiation family share every column except the one their differing
parameter produces — ``id(column)`` identifies a column's *content* for as
long as the column object is alive.  The incremental consistency checker
(:mod:`repro.provenance.incremental`) keys its per-(column, demonstration)
match-state memo on exactly that identity (pinning the column in the
entry), which is what turns a k-column candidate check into a one-column
incremental one.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.engine.columns import ColumnBlock
from repro.lang.functions import AnalyticSpec, function_spec
from repro.provenance.expr import CellRef, Const, Expr, FuncApp, GroupSet
from repro.semantics.tracking import TrackedTable

#: Shared NULL-provenance term for left-join padding (terms are immutable).
NULL_EXPR = Const(None)

ExprColumn = Sequence[Expr]


class TrackedBlock:
    """A provenance grid in column-major form, next to its value shadow.

    ``expr_columns[j][i]`` is the provenance term of cell ``(i, j)``;
    ``values`` is the concrete :class:`ColumnBlock` of the same query —
    shared by reference with the engine's concrete cache.  Consumers must
    never mutate an expression column in place: kernels share columns
    across blocks freely.
    """

    __slots__ = ("expr_columns", "values")

    def __init__(self, expr_columns: Sequence[ExprColumn],
                 values: ColumnBlock) -> None:
        self.expr_columns = tuple(expr_columns)
        self.values = values

    @property
    def n_rows(self) -> int:
        return self.values.n_rows

    @property
    def n_cols(self) -> int:
        return len(self.expr_columns)

    def to_tracked_table(self, columns: Sequence[str]) -> TrackedTable:
        """Materialize the row-major :class:`TrackedTable` (engine boundary)."""
        n_rows = self.values.n_rows
        if self.expr_columns:
            exprs = tuple(zip(*self.expr_columns))
            values = tuple(zip(*self.values.columns))
        else:
            exprs = tuple(() for _ in range(n_rows))
            values = tuple(() for _ in range(n_rows))
        return TrackedTable(tuple(columns), exprs, values)

    def __repr__(self) -> str:
        return f"TrackedBlock({self.n_rows}x{self.n_cols})"


# ----------------------------------------------------- term constructors
#
# Tracked expressions are always simplified (every constructor below and in
# the row rewriter emits simplified terms, and simplify() is idempotent), so
# building a new term over them only needs simplify()'s *top-level* rule —
# flatten one level, merge partial flags, dedup group members — not the full
# bottom-up re-walk.  The results are structurally identical to
# simplify(FuncApp(...)) / simplify(GroupSet(...)) on the same inputs.

def agg_term(func: str, args: Sequence[Expr]) -> FuncApp:
    """``simplify(FuncApp(func, args))`` for already-simplified ``args``."""
    if function_spec(func).flattenable:
        flat: list[Expr] = []
        partial = False
        for arg in args:
            if isinstance(arg, FuncApp) and arg.func == func:
                flat.extend(arg.args)
                partial = partial or arg.partial
            else:
                flat.append(arg)
        return FuncApp(func, tuple(flat), partial=partial)
    return FuncApp(func, tuple(args))


def group_term(members: Sequence[Expr]) -> GroupSet:
    """``simplify(GroupSet(members))`` for already-simplified ``members``."""
    flat: list[Expr] = []
    for member in members:
        if isinstance(member, GroupSet):
            flat.extend(member.members)
        else:
            flat.append(member)
    seen: set[Expr] = set()
    out: list[Expr] = []
    for m in flat:
        if m not in seen:
            seen.add(m)
            out.append(m)
    return GroupSet(tuple(out))


def distinct_exprs(column: ExprColumn) -> list[tuple[Expr, int]]:
    """Identity-distinct terms of a column with their row bitmasks.

    Kernels share term objects aggressively — every row of an ``"all"``
    analytic group carries one term, filters/sorts/joins gather references
    — so judging each distinct object once and broadcasting the verdict
    over its row bitmask is how the consistency checker keeps per-column
    match cost proportional to distinct terms, not rows.
    """
    index: dict[int, int] = {}
    out: list[tuple[Expr, int]] = []
    for r, expr in enumerate(column):
        slot = index.get(id(expr))
        if slot is None:
            index[id(expr)] = len(out)
            out.append((expr, 1 << r))
        else:
            prev, bits = out[slot]
            out[slot] = (prev, bits | (1 << r))
    return out


# ------------------------------------------------------------- selection

def table_ref_exprs(name: str, n_rows: int,
                    n_cols: int) -> list[list[Expr]]:
    """The leaf provenance grid: every cell references itself."""
    return [[CellRef(name, i, j) for i in range(n_rows)]
            for j in range(n_cols)]


def take_expr_columns(expr_columns: Sequence[ExprColumn],
                      indices: Sequence[int]) -> list[list[Expr]]:
    """Gather a row selection through every expression column."""
    return [[col[i] for i in indices] for col in expr_columns]


def select_expr_columns(expr_columns: Sequence[ExprColumn],
                        cols: Sequence[int]) -> list[ExprColumn]:
    """Projection: shares the selected columns without copying terms."""
    return [expr_columns[c] for c in cols]


# ----------------------------------------------------------------- joins

def cross_join_exprs(left: Sequence[ExprColumn], right: Sequence[ExprColumn],
                     n_left_rows: int, n_right_rows: int) -> list[list[Expr]]:
    """Cross product in nested-loop (left-major) order."""
    columns = [[e for e in col for _ in range(n_right_rows)] for col in left]
    columns += [list(col) * n_left_rows for col in right]
    return columns


def pair_expr_columns(left: Sequence[ExprColumn],
                      right: Sequence[ExprColumn],
                      pairs: Sequence[tuple[int, int]]) -> list[list[Expr]]:
    """Join output for an explicit (left row, right row) pair list."""
    left_idx = [p[0] for p in pairs]
    right_idx = [p[1] for p in pairs]
    columns = [[col[i] for i in left_idx] for col in left]
    columns += [[col[j] for j in right_idx] for col in right]
    return columns


def left_pair_expr_columns(left: Sequence[ExprColumn],
                           right: Sequence[ExprColumn],
                           pairs: Sequence[tuple[int, int | None]]
                           ) -> list[list[Expr]]:
    """Left-join output; ``None`` right rows pad with ``Const(None)``."""
    left_idx = [p[0] for p in pairs]
    columns = [[col[i] for i in left_idx] for col in left]
    columns += [[NULL_EXPR if j is None else col[j] for _, j in pairs]
                for col in right]
    return columns


# ------------------------------------------------- grouping and analytics

def group_member_exprs(column: ExprColumn,
                       groups: Sequence[Sequence[int]]
                       ) -> tuple[tuple[Expr, ...], ...]:
    """Per-group member tuples of one expression column.

    Cached by the engine per ``(child, keys, column)`` so all sibling
    aggregation functions over the same target column share one gather.
    """
    return tuple(tuple(column[i] for i in g) for g in groups)


def group_key_expr_columns(expr_columns: Sequence[ExprColumn],
                           keys: Sequence[int],
                           groups: Sequence[Sequence[int]]
                           ) -> list[list[Expr]]:
    """Key output columns of a group-aggregation: ``group{...}`` terms
    collapsing each group's key cells (Fig. 9) — shared by the engine
    across every (agg_col, agg_func) sibling candidate."""
    return [[group_term([expr_columns[k][i] for i in g]) for g in groups]
            for k in keys]


def group_agg_expr_column(members: Sequence[tuple[Expr, ...]],
                          agg_func: str) -> list[Expr]:
    """The aggregated output column: one flattened term per group."""
    return [agg_term(agg_func, m) for m in members]


def partition_expr_column(column: ExprColumn,
                          groups: Sequence[Sequence[int]],
                          spec: AnalyticSpec, n_rows: int) -> list[Expr]:
    """The analytic output column, one term per row, built per group.

    Each style branch constructs exactly the terms the row rewriter's
    ``simplify(FuncApp(term, spec.row_args(members, pos)))`` yields — with
    per-group instead of per-row term construction wherever the argument
    shape allows.
    """
    term = spec.term_name
    out: list[Expr] = [NULL_EXPR] * n_rows
    if spec.style == "all":
        # Every row of a group carries the same term over the whole group:
        # construct it once and share it (terms are immutable).
        for g in groups:
            shared = agg_term(term, [column[i] for i in g])
            for i in g:
                out[i] = shared
        return out
    if spec.style == "prefix":
        # Running prefix: extend one flattened argument list instead of
        # re-flattening each prefix from scratch (simplify() of a prefix is
        # the simplify() of the previous prefix plus one more argument).
        flattenable = function_spec(term).flattenable
        for g in groups:
            flat: list[Expr] = []
            partial = False
            for i in g:
                member = column[i]
                if flattenable and isinstance(member, FuncApp) \
                        and member.func == term:
                    flat.extend(member.args)
                    partial = partial or member.partial
                else:
                    flat.append(member)
                out[i] = FuncApp(term, tuple(flat), partial=partial)
        return out
    if spec.style == "ranked":
        # rank terms: (own value, *group) — one shared member tuple per
        # group, re-prefixed per row (rank terms are not flattenable).
        for g in groups:
            members = tuple(column[i] for i in g)
            for pos, i in enumerate(g):
                out[i] = FuncApp(term, (members[pos], *members))
        return out
    # Generic reference path (future analytic styles).
    for g in groups:
        members = [column[i] for i in g]
        for pos, i in enumerate(g):
            out[i] = agg_term(term, tuple(spec.row_args(members, pos)))
    return out


def arithmetic_expr_column(expr_columns: Sequence[ExprColumn],
                           func: str, cols: Sequence[int],
                           n_rows: int) -> list[Expr]:
    """Row-wise arithmetic terms: ``func(row[cols])`` as a new column."""
    arg_cols = [expr_columns[c] for c in cols]
    return [agg_term(func, args) for args in zip(*arg_cols)] if cols else \
        [agg_term(func, ()) for _ in range(n_rows)]

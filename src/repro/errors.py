"""Exception hierarchy for the Sickle reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can distinguish library failures from programming mistakes with a single
``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class TableError(ReproError):
    """Malformed table: ragged rows, bad column reference, type mismatch."""


class SchemaError(TableError):
    """Invalid schema definition (duplicate columns, bad key metadata)."""


class EvaluationError(ReproError):
    """A query could not be evaluated on the given input tables."""


class HoleError(EvaluationError):
    """A concrete evaluator encountered an uninstantiated hole."""


class ExpressionError(ReproError):
    """Malformed provenance / demonstration expression."""


class SynthesisError(ReproError):
    """The synthesizer was configured inconsistently."""


class SqlRenderError(ReproError):
    """A query cannot be rendered in the requested SQL dialect."""


class OracleError(ReproError):
    """The database oracle failed to set up or execute a query."""


class OracleUnsupportedError(OracleError):
    """An input table holds values outside the oracle's SQL-typed domain."""


class BenchmarkError(ReproError):
    """A benchmark task definition is internally inconsistent."""

"""Experiment harness: reruns the paper's evaluation (§5.2).

* :mod:`repro.experiments.runner` — per-task runs with timeouts and
  statistics collection;
* :mod:`repro.experiments.figures` — regenerates Figure 12 (solved vs time
  limit) and Figure 13 (distribution of queries explored);
* :mod:`repro.experiments.report` — Observation 1/2 summaries, ranking and
  specification-size statistics;
* :mod:`repro.experiments.cli` — ``python -m repro.experiments.cli``.
"""

from repro.experiments.runner import RunConfig, TaskResult, run_suite, run_task

__all__ = ["RunConfig", "TaskResult", "run_task", "run_suite"]

"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments.cli validate          # check all 80 tasks
    python -m repro.experiments.cli summary           # suite statistics
    python -m repro.experiments.cli run [options]     # run the sweep
    python -m repro.experiments.cli fig12 [options]   # Figure 12 table
    python -m repro.experiments.cli fig13 [options]   # Figure 13 table
    python -m repro.experiments.cli report [options]  # Observations 1-2
    python -m repro.experiments.cli serve [options]   # tasks via the service

Options: ``--suite forum|tpcds``, ``--difficulty easy|hard``,
``--techniques provenance,value,type``, ``--backend row|columnar|numpy``,
``--workers N`` (shard the search across N worker processes),
``--shm auto|on|off`` (shared-memory dispatch for process workers),
``--easy-timeout S``, ``--hard-timeout S``, ``--tasks name1,name2``,
``--csv FILE``.

``serve`` drives the selected tasks concurrently through
:class:`repro.serve.SynthesisService` — the way to exercise the warm
pool from the command line.  Extra options: ``--pool-backend
auto|threads|processes`` (worker tier; ``REPRO_POOL_BACKEND`` overrides
the ``auto`` default), ``--pool-size N``, ``--slice-pops N``,
``--request-timeout S`` (per-request wall-clock budget, queueing
included), ``--max-requests N`` (admission bound; rejected submissions
back off per the service's ``retry_after_s`` hint with jitter) and
``--faults SPEC`` (deterministic chaos, e.g.
``seed=7,crash_before=1.0`` — same syntax as ``REPRO_FAULTS``).  The
final JSON blob includes ``health`` (per-worker liveness and recovery
counters) next to the pool telemetry.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.benchmarks import all_tasks, task_summary, validate_task
from repro.engine import BACKENDS
from repro.experiments.figures import fig12_table, fig13_table, results_csv
from repro.experiments.report import observation_report
from repro.experiments.runner import RunConfig, run_suite


def _select_tasks(args) -> list:
    tasks = list(all_tasks())
    if args.suite:
        tasks = [t for t in tasks if t.suite == args.suite]
    if args.difficulty:
        tasks = [t for t in tasks if t.difficulty == args.difficulty]
    if args.tasks:
        wanted = set(args.tasks.split(","))
        tasks = [t for t in tasks if t.name in wanted]
    return tasks


def build_run_config(args) -> RunConfig:
    """The one place CLI options become a sweep config."""
    return RunConfig(easy_timeout_s=args.easy_timeout,
                     hard_timeout_s=args.hard_timeout,
                     backend=args.backend,
                     workers=args.workers,
                     shm=args.shm)


def _run(args):
    tasks = _select_tasks(args)
    techniques = tuple(args.techniques.split(","))
    config = build_run_config(args)

    def progress(result):
        status = "solved" if result.solved else "timeout"
        print(f"[{result.technique:10s}] {result.task:42s} {status:8s} "
              f"{result.time_s:7.2f}s visited={result.visited}",
              file=sys.stderr, flush=True)

    return run_suite(tasks, techniques, config, progress=progress)


def _serve(args) -> int:
    """Run the selected tasks through the serving layer, concurrently."""
    import random

    from repro.experiments.runner import task_config
    from repro.serve import ServiceConfig, ServiceOverloaded, \
        SynthesisService, parse_faults
    from repro.synthesis import GroundTruthStop

    tasks = _select_tasks(args)
    techniques = tuple(args.techniques.split(","))
    run_config = build_run_config(args)
    max_requests = args.max_requests if args.max_requests is not None \
        else len(tasks) * len(techniques) or 1
    svc_config = ServiceConfig(
        pool_size=args.pool_size, max_requests=max_requests,
        slice_pops=args.slice_pops, pool_backend=args.pool_backend,
        default_timeout_s=args.request_timeout,
        faults=parse_faults(args.faults))

    async def admit(svc, task, technique):
        """Submit one request, honoring the service's backoff hint: an
        overloaded admission sleeps ``retry_after_s`` (jittered, so
        concurrent clients don't retry in lockstep) instead of failing
        the sweep."""
        while True:
            try:
                return svc.submit(task.tables, task.demonstration,
                                  task_config(task, run_config),
                                  stop=GroundTruthStop(task.ground_truth),
                                  technique=technique)
            except ServiceOverloaded as exc:
                await asyncio.sleep(
                    exc.retry_after_s * (0.5 + random.random()))

    async def drive() -> int:
        failures = 0
        async with SynthesisService(svc_config) as svc:
            async def one(task, technique):
                handle = await admit(svc, task, technique)
                result = await handle.result()
                return task, technique, handle, result

            outcomes = await asyncio.gather(
                *(one(task, technique)
                  for task in tasks for technique in techniques))
            for task, technique, handle, result in outcomes:
                solved = result.target is not None
                failures += not solved
                retried = f" retries={handle.retries}" \
                    if handle.retries else ""
                print(f"[{technique:10s}] {task.name:42s} "
                      f"{'solved' if solved else handle.status:8s} "
                      f"{result.stats.elapsed_s:7.2f}s "
                      f"visited={result.stats.visited} "
                      f"worker={handle.worker_id}{retried}", flush=True)
            telemetry = svc.pool.telemetry()
            health = svc.health()
        print(json.dumps({"pool": telemetry, "health": health}, indent=2))
        return 1 if failures else 0

    return asyncio.run(drive())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro.experiments")
    parser.add_argument("command", choices=(
        "validate", "summary", "run", "fig12", "fig13", "report", "serve"))
    parser.add_argument("--suite", choices=("forum", "tpcds"))
    parser.add_argument("--difficulty", choices=("easy", "hard"))
    parser.add_argument("--tasks", help="comma-separated task names")
    parser.add_argument("--techniques", default="provenance,value,type")
    parser.add_argument("--backend", choices=BACKENDS,
                        help="evaluation engine (default: task-configured; "
                             "'numpy' falls back to 'columnar' when NumPy "
                             "is not installed)")
    parser.add_argument("--workers", type=int, default=1,
                        help="shard the search across N worker processes "
                             "(default 1 = serial; results are identical)")
    parser.add_argument("--shm", choices=("auto", "on", "off"),
                        help="shared-memory column-store dispatch for "
                             "process workers (default: task-configured; "
                             "'auto' enables it whenever the process "
                             "executor is used)")
    parser.add_argument("--easy-timeout", type=float,
                        default=RunConfig().easy_timeout_s)
    parser.add_argument("--hard-timeout", type=float,
                        default=RunConfig().hard_timeout_s)
    parser.add_argument("--csv", help="write raw per-run results to FILE")
    parser.add_argument("--pool-backend",
                        choices=("auto", "threads", "processes"),
                        default=None,
                        help="serve: worker tier (default 'auto' = "
                             "processes when --pool-size > 1; "
                             "REPRO_POOL_BACKEND overrides 'auto')")
    parser.add_argument("--pool-size", type=int, default=2,
                        help="serve: warm pool workers (default 2)")
    parser.add_argument("--slice-pops", type=int, default=500,
                        help="serve: preemption granularity, pops per "
                             "slice (default 500)")
    parser.add_argument("--request-timeout", type=float, default=None,
                        help="serve: per-request wall-clock budget in "
                             "seconds, queueing included")
    parser.add_argument("--max-requests", type=int, default=None,
                        help="serve: live-request admission bound "
                             "(default: one slot per submitted request); "
                             "rejected submissions back off per the "
                             "service's retry_after_s hint")
    parser.add_argument("--faults", default=None,
                        help="serve: deterministic fault-injection plan, "
                             "e.g. 'seed=7,crash_before=1.0' (also via "
                             "REPRO_FAULTS); chaos-tests the recovery "
                             "path from the command line")
    args = parser.parse_args(argv)

    if args.command == "serve":
        return _serve(args)

    if args.command == "validate":
        for task in _select_tasks(args):
            validate_task(task)
            print(f"ok {task.name}")
        return 0

    if args.command == "summary":
        print(json.dumps(task_summary(), indent=2))
        return 0

    results = _run(args)
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(results_csv(results))
    if args.command == "fig12":
        print(fig12_table(results))
    elif args.command == "fig13":
        print(fig13_table(results))
    else:
        print(observation_report(results))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

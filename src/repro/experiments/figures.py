"""Regenerate the paper's figures from experiment results.

The environment has no plotting stack, so figures are emitted as aligned
text tables / CSV series — the same data the paper plots:

* **Figure 12** — for each technique, the number of benchmarks solvable
  within a given per-task time limit (a cumulative curve over solve times);
* **Figure 13** — the distribution (min / quartiles / mean / max) of the
  number of queries explored per technique, split into easy and hard tasks.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.runner import TaskResult


def _percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted data (q in [0, 1])."""
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def fig12_curve(results: Sequence[TaskResult], technique: str,
                limits: Sequence[float]) -> list[int]:
    """Solved-within-limit counts for one technique (one Fig. 12 series)."""
    times = [r.time_s for r in results
             if r.technique == technique and r.solved]
    return [sum(1 for t in times if t <= limit) for limit in limits]


def fig12_table(results: Sequence[TaskResult],
                limits: Sequence[float] | None = None) -> str:
    """The full Figure 12 as an aligned text table (easy / hard split)."""
    techniques = sorted({r.technique for r in results})
    if limits is None:
        max_t = max((r.time_s for r in results if r.solved), default=1.0)
        limits = [round(max_t * f, 2) for f in
                  (0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0)]
    lines = []
    for difficulty in ("easy", "hard", "all"):
        subset = [r for r in results
                  if difficulty == "all" or r.difficulty == difficulty]
        total = len({r.task for r in subset})
        lines.append(f"-- {difficulty} tasks (n={total}) --")
        header = "time limit (s) " + "".join(f"{t:>12.2f}" for t in limits)
        lines.append(header)
        for tech in techniques:
            counts = fig12_curve(subset, tech, limits)
            lines.append(f"{tech:15s}" + "".join(f"{c:>12d}" for c in counts))
        lines.append("")
    return "\n".join(lines)


def fig13_stats(results: Sequence[TaskResult], technique: str,
                difficulty: str) -> dict:
    """Box-plot statistics of queries explored (one Fig. 13 box)."""
    visited = sorted(r.visited for r in results
                     if r.technique == technique
                     and r.difficulty == difficulty)
    if not visited:
        return {"n": 0}
    return {
        "n": len(visited),
        "min": visited[0],
        "q1": _percentile(visited, 0.25),
        "median": _percentile(visited, 0.5),
        "q3": _percentile(visited, 0.75),
        "max": visited[-1],
        "mean": sum(visited) / len(visited),
    }


def fig13_table(results: Sequence[TaskResult]) -> str:
    """The full Figure 13 as an aligned text table."""
    techniques = sorted({r.technique for r in results})
    lines = []
    for difficulty in ("easy", "hard"):
        lines.append(f"-- queries explored, {difficulty} tasks --")
        lines.append(f"{'technique':15s}{'min':>9}{'q1':>9}{'median':>9}"
                     f"{'q3':>9}{'max':>9}{'mean':>11}")
        for tech in techniques:
            s = fig13_stats(results, tech, difficulty)
            if not s["n"]:
                continue
            lines.append(
                f"{tech:15s}{s['min']:>9d}{s['q1']:>9.0f}{s['median']:>9.0f}"
                f"{s['q3']:>9.0f}{s['max']:>9d}{s['mean']:>11.1f}")
        lines.append("")
    return "\n".join(lines)


def results_csv(results: Sequence[TaskResult]) -> str:
    """Raw per-run results as CSV (for external analysis)."""
    header = ("task,suite,difficulty,technique,solved,time_s,visited,pruned,"
              "concrete_checked,consistent_found,timed_out,rank,demo_cells,"
              "backend,workers,engine_concrete_evals,engine_concrete_hits,"
              "engine_tracking_evals,engine_tracking_hits,"
              "consistency_checks,consistency_hits,consistency_col_pruned,"
              "col_match_evals,col_match_hits,"
              "shm_segments,shm_bytes_shipped,cross_shard_hits")
    rows = [header]
    for r in results:
        rows.append(
            f"{r.task},{r.suite},{r.difficulty},{r.technique},{r.solved},"
            f"{r.time_s:.3f},{r.visited},{r.pruned},{r.concrete_checked},"
            f"{r.consistent_found},{r.timed_out},"
            f"{'' if r.rank is None else r.rank},{r.demo_cells},{r.backend},"
            f"{r.workers},{r.engine_concrete_evals},{r.engine_concrete_hits},"
            f"{r.engine_tracking_evals},{r.engine_tracking_hits},"
            f"{r.consistency_checks},{r.consistency_hits},"
            f"{r.consistency_col_pruned},{r.col_match_evals},"
            f"{r.col_match_hits},{r.shm_segments},{r.shm_bytes_shipped},"
            f"{r.cross_shard_hits}")
    return "\n".join(rows) + "\n"

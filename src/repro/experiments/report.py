"""Observation-level summaries (§5.2) from experiment results.

Computes the quantities behind the paper's claims so EXPERIMENTS.md can put
paper numbers and measured numbers side by side:

* Observation 1 — tasks solved per technique (total / easy / hard), mean
  solve times, and the mean speedup of provenance over each baseline on
  commonly-solved tasks;
* Observation 2 — mean queries explored per technique on hard tasks, and
  the percentage of query visits the provenance abstraction avoids;
* ranking statistics — how often q_gt ranks top-1 / 2–9 / ≥10;
* specification-size statistics — demonstration cells vs full-output cells.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.runner import TaskResult


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else float("nan")


def solved_counts(results: Sequence[TaskResult]) -> dict[str, dict[str, int]]:
    """technique -> {"all": n, "easy": n, "hard": n} solved counts."""
    out: dict[str, dict[str, int]] = {}
    for r in results:
        bucket = out.setdefault(r.technique, {"all": 0, "easy": 0, "hard": 0})
        if r.solved:
            bucket["all"] += 1
            bucket[r.difficulty] += 1
    return out


def mean_solve_time(results: Sequence[TaskResult], technique: str,
                    difficulty: str | None = None) -> float:
    return _mean(r.time_s for r in results
                 if r.technique == technique and r.solved
                 and (difficulty is None or r.difficulty == difficulty))


def commonly_solved(results: Sequence[TaskResult]) -> set[str]:
    """Tasks solved by every technique present in the results."""
    techniques = {r.technique for r in results}
    solved: dict[str, set[str]] = {t: set() for t in techniques}
    for r in results:
        if r.solved:
            solved[r.technique].add(r.task)
    return set.intersection(*solved.values()) if solved else set()


def speedup_over(results: Sequence[TaskResult], baseline: str,
                 reference: str = "provenance") -> float:
    """Mean per-task speedup of ``reference`` over ``baseline`` on tasks
    both solve (the paper's "on benchmarks all techniques can solve")."""
    common = commonly_solved(
        [r for r in results if r.technique in (baseline, reference)])
    by_key = {(r.technique, r.task): r.time_s for r in results if r.solved}
    ratios = []
    for task in common:
        ref = max(by_key[(reference, task)], 1e-9)
        ratios.append(by_key[(baseline, task)] / ref)
    return _mean(ratios)


def mean_visited(results: Sequence[TaskResult], technique: str,
                 difficulty: str | None = None) -> float:
    return _mean(r.visited for r in results
                 if r.technique == technique
                 and (difficulty is None or r.difficulty == difficulty))


def visit_reduction(results: Sequence[TaskResult],
                    reference: str = "provenance") -> float:
    """% fewer queries visited by ``reference`` vs the other techniques
    (the paper's "on average visit 97.08% less queries")."""
    others = sorted({r.technique for r in results} - {reference})
    ref = mean_visited(results, reference)
    other_mean = _mean(mean_visited(results, t) for t in others)
    if not other_mean or other_mean != other_mean:
        return float("nan")
    return 100.0 * (1 - ref / other_mean)


def cache_hit_rates(results: Sequence[TaskResult],
                    technique: str) -> tuple[float, float]:
    """(concrete %, tracking %) of engine evaluations served from cache.

    Aggregated over raw counters — runs with more traffic weigh more, which
    is the rate the engines actually experienced across the sweep.
    """
    subset = [r for r in results if r.technique == technique]
    concrete_total = sum(r.engine_concrete_evals + r.engine_concrete_hits
                         for r in subset)
    tracking_total = sum(r.engine_tracking_evals + r.engine_tracking_hits
                         for r in subset)
    concrete = (100.0 * sum(r.engine_concrete_hits for r in subset)
                / concrete_total) if concrete_total else float("nan")
    tracking = (100.0 * sum(r.engine_tracking_hits for r in subset)
                / tracking_total) if tracking_total else float("nan")
    return concrete, tracking


def consistency_stats(results: Sequence[TaskResult],
                      technique: str) -> tuple[float, float, float]:
    """(verdict-cache %, column-memo %, column-pruned %) for the incremental
    consistency checker — aggregated over raw counters like
    :func:`cache_hit_rates`, so runs with more traffic weigh more.

    Column-pruned is the share of *computed* verdicts decided at the
    column stage, before any row embedding ran.
    """
    subset = [r for r in results if r.technique == technique]
    checks = sum(r.consistency_checks for r in subset)
    verdict_total = checks + sum(r.consistency_hits for r in subset)
    match_total = sum(r.col_match_evals + r.col_match_hits for r in subset)
    verdict = (100.0 * sum(r.consistency_hits for r in subset)
               / verdict_total) if verdict_total else float("nan")
    matches = (100.0 * sum(r.col_match_hits for r in subset)
               / match_total) if match_total else float("nan")
    pruned = (100.0 * sum(r.consistency_col_pruned for r in subset)
              / checks) if checks else float("nan")
    return verdict, matches, pruned


def shm_stats(results: Sequence[TaskResult],
              technique: str) -> tuple[int, int, int]:
    """(segments, bytes shipped, cross-shard hits) of the shared-memory
    dispatch and cross-shard sub-plan cache, summed over the sweep.

    All-zero when runs were serial or shm was off — the report only prints
    the line when there was traffic.
    """
    subset = [r for r in results if r.technique == technique]
    return (sum(r.shm_segments for r in subset),
            sum(r.shm_bytes_shipped for r in subset),
            sum(r.cross_shard_hits for r in subset))


def ranking_stats(results: Sequence[TaskResult],
                  technique: str = "provenance") -> dict[str, int]:
    """Distribution of q_gt's rank among consistent queries (§5.2)."""
    ranks = [r.rank for r in results if r.technique == technique and r.solved]
    return {
        "top1": sum(1 for k in ranks if k == 1),
        "rank2to9": sum(1 for k in ranks if k is not None and 2 <= k <= 9),
        "rank10plus": sum(1 for k in ranks if k is not None and k >= 10),
        "unranked": sum(1 for k in ranks if k is None),
    }


def spec_size_stats(results: Sequence[TaskResult]) -> dict[str, float]:
    by_task: dict[str, int] = {}
    for r in results:
        by_task[r.task] = r.demo_cells
    return {"mean_demo_cells": _mean(by_task.values())}


def observation_report(results: Sequence[TaskResult]) -> str:
    """A text report covering Observations 1–2 and the ranking study."""
    techniques = sorted({r.technique for r in results})
    n_tasks = len({r.task for r in results})
    lines = [f"=== Experiment report over {n_tasks} tasks ===", ""]
    backends = sorted({r.backend for r in results if r.backend})
    if backends:
        from repro.engine import capabilities

        caps = capabilities()
        numpy_note = caps["numpy_version"] or "unavailable"
        lines.append("evaluation backend: " + ", ".join(backends)
                     + f" (host numpy: {numpy_note})")
        workers = sorted({r.workers for r in results})
        lines.append("search workers: "
                     + ", ".join(str(w) for w in workers))
        lines.append("")

    lines.append("-- Observation 1: tasks solved (within timeout) --")
    counts = solved_counts(results)
    for tech in techniques:
        c = counts.get(tech, {"all": 0, "easy": 0, "hard": 0})
        mean_t = mean_solve_time(results, tech)
        lines.append(f"{tech:12s} solved={c['all']:3d} "
                     f"(easy {c['easy']}, hard {c['hard']}); "
                     f"mean solve time {mean_t:.2f}s")
    for baseline in techniques:
        if baseline == "provenance":
            continue
        s = speedup_over(results, baseline)
        lines.append(f"provenance speedup over {baseline}: {s:.1f}x "
                     "(on commonly solved tasks)")
    lines.append("")

    lines.append("-- Observation 2: queries explored --")
    for difficulty in ("easy", "hard"):
        parts = [f"{t}: {mean_visited(results, t, difficulty):.0f}"
                 for t in techniques]
        lines.append(f"mean visited ({difficulty}): " + ", ".join(parts))
    lines.append(f"provenance visit reduction vs baselines: "
                 f"{visit_reduction(results):.2f}%")
    lines.append("engine cache hit rates (concrete / tracking):")
    for tech in techniques:
        concrete, tracking = cache_hit_rates(results, tech)
        lines.append(f"  {tech:12s} {concrete:5.1f}% / {tracking:5.1f}%")
    lines.append("consistency checker (verdict cache / column memo / "
                 "column-pruned):")
    for tech in techniques:
        verdict, matches, pruned = consistency_stats(results, tech)
        lines.append(f"  {tech:12s} {verdict:5.1f}% / {matches:5.1f}% / "
                     f"{pruned:5.1f}%")
    if any(r.shm_segments or r.cross_shard_hits for r in results):
        lines.append("shared-memory dispatch (segments / bytes shipped / "
                     "cross-shard hits):")
        for tech in techniques:
            segments, shipped, hits = shm_stats(results, tech)
            lines.append(f"  {tech:12s} {segments} / {shipped} / {hits}")
    lines.append("")

    if any(r.technique == "provenance" for r in results):
        lines.append("-- Ranking of q_gt among consistent queries --")
        stats = ranking_stats(results)
        lines.append(f"top-1: {stats['top1']}, rank 2-9: {stats['rank2to9']}, "
                     f"rank >=10: {stats['rank10plus']}")
        lines.append("")

    lines.append("-- Specification size --")
    lines.append(f"mean demonstration cells: "
                 f"{spec_size_stats(results)['mean_demo_cells']:.1f}")
    return "\n".join(lines)

"""Per-task experiment runs (§5.2 protocol).

"For each benchmark (T̄, E, q_gt), we run Sickle and two baselines with a
timeout ...  The synthesizer runs until the correct query q_gt is found.  We
record (1) time each technique takes to solve the tasks, and (2) the number
of consistent queries encountered."

Wall-clock budgets are environment-tunable because absolute numbers are
hardware-bound (the paper used 600 s; pure Python needs humbler defaults):

* ``REPRO_TIMEOUT_EASY``  — seconds per easy task (default 6)
* ``REPRO_TIMEOUT_HARD``  — seconds per hard task (default 15)
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, fields

from repro.benchmarks.task import BenchmarkTask
from repro.engine.base import EngineStats
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.ranking import rank_queries
from repro.synthesis.stop import GroundTruthStop
from repro.synthesis.synthesizer import Synthesizer

DEFAULT_EASY_TIMEOUT = float(os.environ.get("REPRO_TIMEOUT_EASY", "6"))
DEFAULT_HARD_TIMEOUT = float(os.environ.get("REPRO_TIMEOUT_HARD", "15"))

TECHNIQUES = ("provenance", "value", "type")

#: SynthesisConfig fields a sweep-level config overrides on each task's own
#: config.  Execution knobs only: a task's *search space* (operator pools,
#: constants, key/sort limits, …) is part of the benchmark definition and
#: never overridden by a sweep.
EXEC_OVERRIDES = ("timeout_s", "max_visited", "backend", "workers",
                  "shard_strategy", "parallel_executor", "shm", "strategy")


@dataclass(frozen=True)
class RunConfig:
    """Budgets (and evaluation backend) for one experiment sweep.

    The difficulty-dependent timeout is the one thing a flat
    :class:`~repro.synthesis.config.SynthesisConfig` cannot express —
    everything else here maps directly onto config fields, and
    ``run_task``/``run_suite`` also accept a ``SynthesisConfig`` whose
    :data:`EXEC_OVERRIDES` fields then apply uniformly to every task.
    """

    easy_timeout_s: float = DEFAULT_EASY_TIMEOUT
    hard_timeout_s: float = DEFAULT_HARD_TIMEOUT
    max_visited: int | None = None
    backend: str | None = None      # None = each task's configured backend
    workers: int = 1                # shards searched concurrently per run
    parallel_executor: str | None = None   # None = each task's configured one
    shm: str | None = None          # shared-memory mode; None = task default

    def timeout_for(self, task: BenchmarkTask) -> float:
        return (self.easy_timeout_s if task.difficulty == "easy"
                else self.hard_timeout_s)


#: Defaults a sweep-level SynthesisConfig leaves alone: an EXEC_OVERRIDES
#: field still at its dataclass default is treated as "not specified" and
#: keeps the task's own value (mirroring RunConfig's None fields).
_CONFIG_DEFAULTS = SynthesisConfig()


def task_config(task: BenchmarkTask,
                run_config: "RunConfig | SynthesisConfig") -> SynthesisConfig:
    """The effective per-task SynthesisConfig for one sweep run."""
    if isinstance(run_config, SynthesisConfig):
        overrides = {
            name: getattr(run_config, name) for name in EXEC_OVERRIDES
            if getattr(run_config, name) != getattr(_CONFIG_DEFAULTS, name)}
        return task.config.replace(**overrides) if overrides else task.config
    overrides = dict(timeout_s=run_config.timeout_for(task),
                     max_visited=run_config.max_visited,
                     workers=run_config.workers)
    if run_config.backend is not None:
        overrides["backend"] = run_config.backend
    if run_config.parallel_executor is not None:
        overrides["parallel_executor"] = run_config.parallel_executor
    if run_config.shm is not None:
        overrides["shm"] = run_config.shm
    return task.config.replace(**overrides)


def _coerce_run_config(run_config, legacy: dict,
                       caller: str) -> "RunConfig | SynthesisConfig":
    """Resolve the config argument, absorbing deprecated loose kwargs."""
    if legacy:
        unknown = set(legacy) - {f.name for f in fields(RunConfig)}
        if unknown:
            raise TypeError(
                f"{caller}() got unexpected keyword arguments "
                f"{sorted(unknown)}")
        warnings.warn(
            f"passing loose keyword arguments to {caller}() is deprecated; "
            f"pass a RunConfig or SynthesisConfig instead",
            DeprecationWarning, stacklevel=3)
        if run_config is not None:
            raise TypeError(
                f"{caller}() got both a config object and loose keyword "
                f"arguments; pass one or the other")
        return RunConfig(**legacy)
    return run_config if run_config is not None else RunConfig()


@dataclass
class TaskResult:
    """One (task, technique) measurement."""

    task: str
    suite: str
    difficulty: str
    technique: str
    solved: bool
    time_s: float
    visited: int
    pruned: int
    concrete_checked: int
    consistent_found: int
    timed_out: bool
    rank: int | None            # size-rank of q_gt among consistent queries
    demo_cells: int
    backend: str = ""           # evaluation backend that produced this run
    workers: int = 1            # parallel shards the run was searched with
    # Engine cache traffic for the run (summed over workers when sharded).
    engine_concrete_evals: int = 0
    engine_concrete_hits: int = 0
    engine_tracking_evals: int = 0
    engine_tracking_hits: int = 0
    # Incremental consistency-checker traffic (engine-owned, also summed
    # over workers): verdicts computed / served from cache, verdicts
    # decided at the column stage before any row embedding, and column
    # match matrices computed / served from the memo.
    consistency_checks: int = 0
    consistency_hits: int = 0
    consistency_col_pruned: int = 0
    col_match_evals: int = 0
    col_match_hits: int = 0
    # Shared-memory dispatch / cross-shard sub-plan cache telemetry
    # (repro.engine.shm + repro.parallel.plan_cache): segments laid out,
    # payload bytes shipped through them, and sub-plan blocks served from
    # a sibling shard's published result.
    shm_segments: int = 0
    shm_bytes_shipped: int = 0
    cross_shard_hits: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def run_task(task: BenchmarkTask, technique: str = "provenance",
             run_config: RunConfig | SynthesisConfig | None = None,
             **legacy) -> TaskResult:
    """Run one technique on one task until q_gt is found or timeout.

    ``run_config`` is a :class:`RunConfig` (difficulty-dependent budgets)
    or a :class:`~repro.synthesis.config.SynthesisConfig` whose execution
    fields (:data:`EXEC_OVERRIDES`) apply on top of the task's own config.
    Loose keyword arguments (``backend=``, ``workers=``, …) are the
    pre-session API — still accepted, with a ``DeprecationWarning``.
    """
    run_config = _coerce_run_config(run_config, legacy, "run_task")
    config = task_config(task, run_config)
    synthesizer = Synthesizer(technique, config)
    synthesizer.reset()  # cold caches: each measurement is independent

    # One resumable session per measurement; the declarative stop spec is
    # built against the session engine (sharded workers each rebuild it
    # against their own).
    session = synthesizer.session(task.tables, task.demonstration,
                                  GroundTruthStop(task.ground_truth))
    result = session.run()

    rank = None
    if result.target is not None:
        ranked = rank_queries(result.queries)
        rank = next((i for i, q in enumerate(ranked, start=1)
                     if q == result.target), None)

    stats = result.stats
    engine_stats = result.engine_stats or EngineStats()
    return TaskResult(
        task=task.name, suite=task.suite, difficulty=task.difficulty,
        technique=technique, solved=result.target is not None,
        time_s=stats.elapsed_s, visited=stats.visited, pruned=stats.pruned,
        concrete_checked=stats.concrete_checked,
        consistent_found=stats.consistent_found, timed_out=stats.timed_out,
        rank=rank, demo_cells=task.demonstration.size,
        backend=synthesizer.engine.name, workers=result.workers,
        engine_concrete_evals=engine_stats.concrete_evals,
        engine_concrete_hits=engine_stats.concrete_hits,
        engine_tracking_evals=engine_stats.tracking_evals,
        engine_tracking_hits=engine_stats.tracking_hits,
        consistency_checks=engine_stats.consistency_checks,
        consistency_hits=engine_stats.consistency_hits,
        consistency_col_pruned=engine_stats.consistency_col_pruned,
        col_match_evals=engine_stats.col_match_evals,
        col_match_hits=engine_stats.col_match_hits,
        shm_segments=engine_stats.shm_segments,
        shm_bytes_shipped=engine_stats.shm_bytes_shipped,
        cross_shard_hits=engine_stats.cross_shard_hits)


def run_suite(tasks, techniques=TECHNIQUES,
              run_config: RunConfig | SynthesisConfig | None = None,
              progress=None, **legacy) -> list[TaskResult]:
    """Run a technique sweep over a task list.

    Accepts the same config forms (and deprecated loose kwargs) as
    :func:`run_task`.
    """
    run_config = _coerce_run_config(run_config, legacy, "run_suite")
    results: list[TaskResult] = []
    for task in tasks:
        for technique in techniques:
            outcome = run_task(task, technique, run_config)
            results.append(outcome)
            if progress is not None:
                progress(outcome)
    return results

"""Search-space measurement (§2.2).

The paper quantifies the running example's space: "the search space for the
running example contains 1,181,224 queries even [when] only queries up to
size 3 are considered".  This module counts the concrete queries reachable
by the enumerator — same skeletons, same domains, no pruning, no evaluation
— so the number is exact for our grammar and directly comparable to the
number of queries a technique actually visits.
"""

from __future__ import annotations

from repro.lang.ast import Env
from repro.lang.holes import fill, first_hole
from repro.provenance.demo import Demonstration
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.domains import hole_domain
from repro.synthesis.skeletons import construct_skeletons
from repro.util.timer import Deadline


def count_search_space(env: Env, config: SynthesisConfig,
                       demo: Demonstration | None = None,
                       timeout_s: float | None = None,
                       cap: int | None = None) -> tuple[int, bool]:
    """(number of concrete queries in the space, whether counting finished).

    ``demo`` is only used for candidate *ordering* (which does not change
    the count); pruning is never applied.  ``cap`` stops early for huge
    spaces — the returned flag says whether the count is exact.
    """
    from repro.engine.base import make_engine
    deadline = Deadline(timeout_s)
    engine = make_engine(config.backend)  # one cache for the whole count
    total = 0
    stack = list(construct_skeletons(env, config))
    while stack:
        if deadline.expired() or (cap is not None and total >= cap):
            return total, False
        query = stack.pop()
        position = first_hole(query)
        if position is None:
            total += 1
            continue
        for value in hole_domain(query, position, env, config, demo, engine):
            stack.append(fill(query, position, value))
    return total, True

"""Disambiguation of synthesized candidates (paper §3.2 *Remarks*, §7).

A demonstration is an incomplete specification, so several queries may be
consistent with it.  The paper envisions pairing the synthesizer "with
existing program disambiguation frameworks"; this package implements the
standard mechanism: find where candidate outputs *differ* and ask the user
(or pick more-representative inputs) to split the candidate set.
"""

from repro.interaction.disambiguate import (
    DistinguishingCell,
    disambiguate_interactively,
    distinguishing_cells,
    partition_candidates,
)

__all__ = [
    "DistinguishingCell",
    "distinguishing_cells",
    "partition_candidates",
    "disambiguate_interactively",
]

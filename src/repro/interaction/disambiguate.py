"""Candidate disambiguation by distinguishing outputs.

Given several demonstration-consistent queries, evaluate them all and find
*distinguishing cells*: output positions (keyed by the values of shared
identifying columns) where candidates disagree.  Each answer to "which of
these values is right?" partitions the candidate set; a greedy loop picks
the most-splitting question first, mirroring classic PBE disambiguation
(§6's interaction-model citations).

Everything works on concrete outputs, so the mechanism is independent of
how candidates were produced.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.lang.ast import Env, Query
from repro.semantics.concrete import evaluate
from repro.synthesis.equivalence import tables_equivalent
from repro.table.values import Value, canonical


@dataclass(frozen=True)
class DistinguishingCell:
    """One question to the user: which value belongs at this position?

    ``options`` maps each candidate value to the candidate queries that
    produce it; asking the question and getting value ``v`` keeps exactly
    ``options[v]``.
    """

    row: int                       # row index in the first candidate's output
    col: int                       # column index in the first candidate's output
    options: tuple[tuple[Value, tuple[int, ...]], ...]  # value -> candidate ids

    @property
    def split_sizes(self) -> tuple[int, ...]:
        return tuple(len(ids) for _, ids in self.options)


def _grids(queries: Sequence[Query], env: Env):
    # One shared cache: disambiguation candidates come from one synthesis
    # run and share all but their topmost operators, so each common
    # subtree is evaluated once across the whole candidate set.
    cache: dict = {}
    grids = []
    for q in queries:
        try:
            grids.append(evaluate(q, env, cache))
        except Exception:
            grids.append(None)
    return grids


def partition_candidates(queries: Sequence[Query], env: Env) -> list[list[int]]:
    """Group candidate indices by output equivalence.

    Queries in one class are observationally identical on ``env`` — no demo
    or question over this data can tell them apart.
    """
    grids = _grids(queries, env)
    classes: list[tuple[object, list[int]]] = []
    for i, out in enumerate(grids):
        for rep, members in classes:
            if out is not None and rep is not None \
                    and tables_equivalent(rep, out) \
                    and tables_equivalent(out, rep):
                members.append(i)
                break
        else:
            classes.append((out, [i]))
    return [members for _, members in classes]


def distinguishing_cells(queries: Sequence[Query], env: Env,
                         max_cells: int = 10) -> list[DistinguishingCell]:
    """Output positions on which candidates disagree, best splitters first.

    Positions are taken from the first candidate's output grid; other
    candidates are compared cell-wise where their shapes allow.  Cells are
    ranked by how evenly they split the candidate set (more balance = more
    information per question).
    """
    grids = _grids(queries, env)
    base = grids[0]
    if base is None:
        return []
    cells: list[DistinguishingCell] = []
    for i in range(base.n_rows):
        for j in range(base.n_cols):
            by_value: dict[object, list[int]] = defaultdict(list)
            for q_id, out in enumerate(grids):
                if out is None or i >= out.n_rows or j >= out.n_cols:
                    by_value[("<no cell>",)].append(q_id)
                else:
                    by_value[canonical(out.cell(i, j))].append(q_id)
            if len(by_value) < 2:
                continue
            options = tuple(sorted(
                ((value, tuple(ids)) for value, ids in by_value.items()),
                key=lambda item: (-len(item[1]), repr(item[0]))))
            cells.append(DistinguishingCell(i, j, options))
    # Most balanced splits first: minimize the size of the largest class.
    cells.sort(key=lambda c: (max(c.split_sizes), -len(c.options)))
    return cells[:max_cells]


def disambiguate_interactively(
        queries: Sequence[Query], env: Env,
        oracle: Callable[[DistinguishingCell], Value],
        max_rounds: int = 10) -> list[int]:
    """Run the greedy question loop against an answer oracle.

    ``oracle`` plays the user: given a distinguishing cell, it returns the
    correct value.  Returns the surviving candidate indices (all
    observationally equivalent once no distinguishing cell remains).
    """
    alive = list(range(len(queries)))
    for _ in range(max_rounds):
        subset = [queries[i] for i in alive]
        cells = distinguishing_cells(subset, env, max_cells=1)
        if not cells:
            break
        cell = cells[0]
        answer = canonical(oracle(cell))
        surviving: list[int] = []
        for value, ids in cell.options:
            matched = value == answer if not isinstance(value, tuple) \
                else False
            if matched:
                surviving = [alive[i] for i in ids]
                break
        if not surviving:
            break  # the oracle named a value no candidate produces
        alive = surviving
        if len(alive) == 1:
            break
    return alive

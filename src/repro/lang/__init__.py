"""The analytical SQL language L_SQL (paper Fig. 7).

Queries are immutable trees of operator nodes; partial queries contain
:class:`~repro.lang.holes.Hole` markers in parameter positions.  Function
registries define the aggregate (α), analytic (α′) and arithmetic (γ)
vocabularies shared by the evaluators and the synthesizer.
"""

from repro.lang.ast import (
    Arithmetic,
    Env,
    Filter,
    Group,
    Join,
    LeftJoin,
    Partition,
    Proj,
    Query,
    Sort,
    TableRef,
)
from repro.lang.functions import (
    AGGREGATE_FUNCTIONS,
    ANALYTIC_FUNCTIONS,
    ARITHMETIC_FUNCTIONS,
    FUNCTIONS,
    analytic_spec,
    apply_function,
    function_spec,
)
from repro.lang.holes import Hole, fill_first_hole, first_hole, holes_of, is_concrete
from repro.lang.predicates import (
    AndPred,
    ColCmp,
    ConstCmp,
    FalsePred,
    Predicate,
    TruePred,
)
from repro.lang.size import operator_count, query_depth
from repro.lang.sql_render import (
    DIALECTS,
    Dialect,
    ordinal_name,
    resolve_dialect,
    to_sql,
)
from repro.lang.instruction import to_instructions
from repro.lang.parser import ParseError, parse_instructions

__all__ = [
    "Query", "TableRef", "Filter", "Join", "LeftJoin", "Proj", "Sort",
    "Group", "Partition", "Arithmetic", "Env",
    "Hole", "holes_of", "first_hole", "fill_first_hole", "is_concrete",
    "Predicate", "TruePred", "FalsePred", "ColCmp", "ConstCmp", "AndPred",
    "FUNCTIONS", "AGGREGATE_FUNCTIONS", "ANALYTIC_FUNCTIONS",
    "ARITHMETIC_FUNCTIONS", "function_spec", "analytic_spec", "apply_function",
    "operator_count", "query_depth", "to_sql", "to_instructions",
    "Dialect", "DIALECTS", "resolve_dialect", "ordinal_name",
    "parse_instructions", "ParseError",
]

"""Query AST for the analytical SQL language L_SQL (paper Fig. 7).

    q ← T | filter(q, p) | join(q1, q2[, p]) | left_join(q1, q2, p)
      | proj(q, c̄) | sort(q, c̄, op) | group(q, c̄, α(c))
      | partition(q, c̄, α′(c)) | arithmetic(q, γ(c̄))

Nodes are frozen dataclasses: hashable (memoized evaluation keys) and shared
structurally by the enumerator.  Parameter fields may hold
:class:`~repro.lang.holes.Hole` values in partial queries; the declared
``param_fields`` order is the hole-instantiation order.

Columns are referenced by 0-based index into the child query's output (the
paper uses indexes too, 1-based).  ``Env`` carries the named input tables.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Iterable

from repro.errors import EvaluationError
from repro.lang.holes import Hole
from repro.lang.predicates import Predicate
from repro.table.table import Table


@dataclass(frozen=True, eq=True)
class Env:
    """The named input tables ¯T a query runs against."""

    tables: tuple[Table, ...]

    def __hash__(self) -> int:
        # Envs key every evaluation cache; hash the table tuple once.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash(self.tables)
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self):
        # Drop the process-local cached hash (seeded str hashing) so
        # pickled envs re-hash correctly in other processes.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    @staticmethod
    def of(*tables: Table) -> "Env":
        return Env(tuple(tables))

    def get(self, name: str) -> Table:
        for table in self.tables:
            if table.name == name:
                return table
        raise EvaluationError(
            f"no input table named {name!r}; have {[t.name for t in self.tables]}")

    def names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tables)


class Query:
    """Base class for operator nodes."""

    def child_queries(self) -> tuple["Query", ...]:
        return ()

    def param_fields(self) -> tuple[str, ...]:
        """Parameter fields that may hold holes, in instantiation order."""
        return ()

    def with_children(self, children: tuple["Query", ...]) -> "Query":
        if children:
            raise EvaluationError(f"{type(self).__name__} has no children")
        return self

    def with_params(self, **kwargs) -> "Query":
        return replace(self, **kwargs)  # type: ignore[arg-type]

    def operator_name(self) -> str:
        return type(self).__name__.lower()

    def walk(self) -> Iterable["Query"]:
        """All nodes, post-order."""
        for child in self.child_queries():
            yield from child.walk()
        yield self


@dataclass(frozen=True)
class TableRef(Query):
    """A reference to an input table by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Filter(Query):
    """Keep the rows satisfying ``pred``."""

    child: Query
    pred: Predicate | Hole

    def child_queries(self) -> tuple[Query, ...]:
        return (self.child,)

    def param_fields(self) -> tuple[str, ...]:
        return ("pred",)

    def with_children(self, children: tuple[Query, ...]) -> "Filter":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Join(Query):
    """Join of two subqueries.

    ``pred=None`` is a pure cross product (the paper's ``join(q1, q2)``);
    with a predicate it is an inner equi-join (§5.1 enumerates predicates
    from primary/foreign keys).  The predicate sees the concatenated row.
    """

    left: Query
    right: Query
    pred: Predicate | Hole | None = None

    def child_queries(self) -> tuple[Query, ...]:
        return (self.left, self.right)

    def param_fields(self) -> tuple[str, ...]:
        return () if self.pred is None else ("pred",)

    def with_children(self, children: tuple[Query, ...]) -> "Join":
        left, right = children
        return replace(self, left=left, right=right)


@dataclass(frozen=True)
class LeftJoin(Query):
    """Left outer join; unmatched left rows are padded with NULLs."""

    left: Query
    right: Query
    pred: Predicate | Hole

    def child_queries(self) -> tuple[Query, ...]:
        return (self.left, self.right)

    def param_fields(self) -> tuple[str, ...]:
        return ("pred",)

    def with_children(self, children: tuple[Query, ...]) -> "LeftJoin":
        left, right = children
        return replace(self, left=left, right=right)


@dataclass(frozen=True)
class Proj(Query):
    """Project (and reorder) columns."""

    child: Query
    cols: tuple[int, ...] | Hole

    def child_queries(self) -> tuple[Query, ...]:
        return (self.child,)

    def param_fields(self) -> tuple[str, ...]:
        return ("cols",)

    def with_children(self, children: tuple[Query, ...]) -> "Proj":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Sort(Query):
    """Stable sort by ``cols``; ascending or descending."""

    child: Query
    cols: tuple[int, ...] | Hole
    ascending: bool | Hole = True

    def child_queries(self) -> tuple[Query, ...]:
        return (self.child,)

    def param_fields(self) -> tuple[str, ...]:
        return ("cols", "ascending")

    def with_children(self, children: tuple[Query, ...]) -> "Sort":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Group(Query):
    """Group-aggregation: one output row per group.

    Output columns: the ``keys`` columns (group representatives) followed by
    one aggregated column ``agg_func(agg_col)``.
    """

    child: Query
    keys: tuple[int, ...] | Hole
    agg_func: str | Hole
    agg_col: int | Hole
    alias: str | None = None

    def child_queries(self) -> tuple[Query, ...]:
        return (self.child,)

    def param_fields(self) -> tuple[str, ...]:
        # Keys first (unlocks medium/strong abstraction), then the target
        # column (unlocks the target-column refinement), function last.
        return ("keys", "agg_col", "agg_func")

    def with_children(self, children: tuple[Query, ...]) -> "Group":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Partition(Query):
    """Partition-aggregation: all rows kept, one aggregated value per row."""

    child: Query
    keys: tuple[int, ...] | Hole
    agg_func: str | Hole
    agg_col: int | Hole
    alias: str | None = None

    def child_queries(self) -> tuple[Query, ...]:
        return (self.child,)

    def param_fields(self) -> tuple[str, ...]:
        return ("keys", "agg_col", "agg_func")

    def with_children(self, children: tuple[Query, ...]) -> "Partition":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Arithmetic(Query):
    """Row-wise arithmetic: appends ``func(row[cols])`` as a new column."""

    child: Query
    func: str | Hole
    cols: tuple[int, ...] | Hole
    alias: str | None = None

    def child_queries(self) -> tuple[Query, ...]:
        return (self.child,)

    def param_fields(self) -> tuple[str, ...]:
        return ("cols", "func")

    def with_children(self, children: tuple[Query, ...]) -> "Arithmetic":
        (child,) = children
        return replace(self, child=child)


def _install_cached_hash(cls) -> None:
    """Wrap a node class's generated hash with per-instance caching.

    Query trees are immutable and shared structurally; every evaluation
    cache keys on them, so each node's hash is requested many times while
    the dataclass-generated hash re-walks the whole subtree on every call.
    The cached value is process-local (str hashing is seeded) and is
    excluded from pickled state.
    """
    generated = cls.__hash__

    def __hash__(self, _generated=generated):
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = _generated(self)
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    cls.__hash__ = __hash__
    cls.__getstate__ = __getstate__


for _node in (TableRef, Filter, Join, LeftJoin, Proj, Sort, Group,
              Partition, Arithmetic):
    _install_cached_hash(_node)
del _node

"""Function registries: aggregates (α), analytic functions (α′), arithmetic (γ).

Paper Fig. 7 fixes the vocabularies::

    α  ← sum | avg | max | min | count
    α′ ← α | dense_rank | rank | cumsum
    op ← < | ≤ | == | > | ≥

We add descending rank variants and cumulative max/min as extension features
(disabled in the default synthesis domain, exercised by ablation benches).

Three facts about a function drive the rest of the system:

* ``arg_style`` — how demonstration arguments match tracked arguments in the
  ≺ judgment (Fig. 10): ``commutative`` (multiset matching), ``positional``
  (subsequence matching for partial expressions), or ``ranked`` (first
  argument positional — the ranked row — remaining arguments a multiset);
* ``flattenable`` — whether nested applications collapse
  (``f(f(a,b),c) → f(a,b,c)``, valid for sum/max/min, §3.1);
* ``apply`` — concrete evaluation, used by both evaluators.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.errors import ExpressionError
from repro.table.values import Value, value_eq, value_sort_key


def _mean(args: Sequence[Value]) -> Value:
    nums = [a for a in args if a is not None]
    if not nums:
        return None
    return sum(nums) / len(nums)


def _sum(args: Sequence[Value]) -> Value:
    nums = [a for a in args if a is not None]
    return sum(nums) if nums else 0


def _max(args: Sequence[Value]) -> Value:
    nums = [a for a in args if a is not None]
    return max(nums, key=value_sort_key) if nums else None


def _min(args: Sequence[Value]) -> Value:
    nums = [a for a in args if a is not None]
    return min(nums, key=value_sort_key) if nums else None


def _count(args: Sequence[Value]) -> Value:
    return sum(1 for a in args if a is not None)


def _rank(args: Sequence[Value], descending: bool, dense: bool) -> Value:
    """Competition / dense rank of ``args[0]`` among ``args[1:]``."""
    if not args:
        raise ExpressionError("rank needs at least the ranked value")
    own, pool = args[0], list(args[1:])
    if descending:
        better = [v for v in pool if v is not None and value_sort_key(v) > value_sort_key(own)]
    else:
        better = [v for v in pool if v is not None and value_sort_key(v) < value_sort_key(own)]
    if not dense:
        return 1 + len(better)
    distinct: list[Value] = []
    for v in better:
        if not any(value_eq(v, seen) for seen in distinct):
            distinct.append(v)
    return 1 + len(distinct)


def _safe_div(x: Value, y: Value) -> Value:
    if x is None or y is None or y == 0:
        return None
    return x / y


def _binary(fn: Callable[[Value, Value], Value]) -> Callable[[Sequence[Value]], Value]:
    def apply(args: Sequence[Value]) -> Value:
        if len(args) != 2:
            raise ExpressionError(f"expected 2 arguments, got {len(args)}")
        if args[0] is None or args[1] is None:
            return None
        return fn(args[0], args[1])
    return apply


@dataclass(frozen=True)
class FunctionSpec:
    """Everything the evaluators and matcher need to know about a function."""

    name: str
    kind: str                   # "aggregate" | "ranker" | "arithmetic"
    arg_style: str              # "commutative" | "positional" | "ranked"
    arity: int | None           # None = variadic
    flattenable: bool
    apply: Callable[[Sequence[Value]], Value]
    sql: str | None = None      # render template, {0}/{1} are argument slots

    @property
    def commutative(self) -> bool:
        return self.arg_style == "commutative"


_AGGREGATES = [
    FunctionSpec("sum", "aggregate", "commutative", None, True, _sum),
    FunctionSpec("avg", "aggregate", "commutative", None, False, _mean),
    FunctionSpec("max", "aggregate", "commutative", None, True, _max),
    FunctionSpec("min", "aggregate", "commutative", None, True, _min),
    FunctionSpec("count", "aggregate", "commutative", None, False, _count),
]

_RANKERS = [
    FunctionSpec("rank", "ranker", "ranked", None, False,
                 lambda a: _rank(a, descending=False, dense=False)),
    FunctionSpec("dense_rank", "ranker", "ranked", None, False,
                 lambda a: _rank(a, descending=False, dense=True)),
    FunctionSpec("rank_desc", "ranker", "ranked", None, False,
                 lambda a: _rank(a, descending=True, dense=False)),
    FunctionSpec("dense_rank_desc", "ranker", "ranked", None, False,
                 lambda a: _rank(a, descending=True, dense=True)),
]

_ARITHMETIC = [
    FunctionSpec("add", "arithmetic", "commutative", 2, False,
                 _binary(lambda x, y: x + y), sql="{0} + {1}"),
    FunctionSpec("sub", "arithmetic", "positional", 2, False,
                 _binary(lambda x, y: x - y), sql="{0} - {1}"),
    FunctionSpec("mul", "arithmetic", "commutative", 2, False,
                 _binary(lambda x, y: x * y), sql="{0} * {1}"),
    FunctionSpec("div", "arithmetic", "positional", 2, False,
                 _binary(_safe_div), sql="{0} / {1}"),
    FunctionSpec("percent", "arithmetic", "positional", 2, False,
                 _binary(lambda x, y: _safe_div(x, y) * 100
                         if _safe_div(x, y) is not None else None),
                 sql="{0} / {1} * 100"),
    FunctionSpec("pct_change", "arithmetic", "positional", 2, False,
                 _binary(lambda x, y: _safe_div(x - y, y) * 100
                         if _safe_div(x - y, y) is not None else None),
                 sql="({0} - {1}) / {1} * 100"),
]

FUNCTIONS: dict[str, FunctionSpec] = {
    spec.name: spec for spec in _AGGREGATES + _RANKERS + _ARITHMETIC}

AGGREGATE_FUNCTIONS: tuple[str, ...] = tuple(s.name for s in _AGGREGATES)
ARITHMETIC_FUNCTIONS: tuple[str, ...] = tuple(s.name for s in _ARITHMETIC)


def function_spec(name: str) -> FunctionSpec:
    try:
        return FUNCTIONS[name]
    except KeyError:
        raise ExpressionError(f"unknown function {name!r}") from None


def apply_function(name: str, args: Sequence[Value]) -> Value:
    return function_spec(name).apply(args)


# --------------------------------------------------------------------------
# Analytic (window) functions: how a partition-aggregation computes one value
# per row.  ``term_name`` is the FuncApp constructor used in provenance
# expressions; ``row_args(items, i)`` selects, from the group's items in table
# order, the arguments feeding row ``i``'s value.  The same selector is used
# with concrete values (evaluation) and provenance expressions (tracking).
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class AnalyticSpec:
    name: str
    term_name: str
    row_args: Callable[[Sequence, int], tuple]
    order_dependent: bool
    #: Argument shape: "all" (every row sees the whole group), "prefix"
    #: (rows see their prefix) or "ranked" (own value first, then the
    #: group).  Columnar kernels dispatch on this to evaluate a group in
    #: one pass instead of re-deriving per-row argument tuples.
    style: str = "all"


def _all_rows(items: Sequence, _i: int) -> tuple:
    return tuple(items)


def _prefix(items: Sequence, i: int) -> tuple:
    return tuple(items[: i + 1])


def _ranked(items: Sequence, i: int) -> tuple:
    return (items[i], *items)


_ANALYTICS = [
    # Plain aggregates used as window functions: every row sees the group total.
    *[AnalyticSpec(name, name, _all_rows, order_dependent=False, style="all")
      for name in AGGREGATE_FUNCTIONS],
    AnalyticSpec("cumsum", "sum", _prefix, order_dependent=True,
                 style="prefix"),
    AnalyticSpec("cummax", "max", _prefix, order_dependent=True,
                 style="prefix"),
    AnalyticSpec("cummin", "min", _prefix, order_dependent=True,
                 style="prefix"),
    AnalyticSpec("cumavg", "avg", _prefix, order_dependent=True,
                 style="prefix"),
    *[AnalyticSpec(name, name, _ranked, order_dependent=False, style="ranked")
      for name in ("rank", "dense_rank", "rank_desc", "dense_rank_desc")],
]

ANALYTIC_SPECS: dict[str, AnalyticSpec] = {spec.name: spec for spec in _ANALYTICS}

# The paper's α′ vocabulary (plus descending ranks, which several TPC-DS
# style tasks need); the cumulative max/min/avg extensions are opt-in.
ANALYTIC_FUNCTIONS: tuple[str, ...] = (
    *AGGREGATE_FUNCTIONS, "cumsum", "rank", "dense_rank",
    "rank_desc", "dense_rank_desc",
)
EXTENDED_ANALYTIC_FUNCTIONS: tuple[str, ...] = (
    *ANALYTIC_FUNCTIONS, "cummax", "cummin", "cumavg",
)


def analytic_spec(name: str) -> AnalyticSpec:
    try:
        return ANALYTIC_SPECS[name]
    except KeyError:
        raise ExpressionError(f"unknown analytic function {name!r}") from None

"""Holes — the unfilled parameters of partial queries.

A query skeleton (Alg. 1, line 4) is an operator tree whose parameters are
all holes; the enumerator repeatedly picks the *next* hole and branches on
its domain.  Holes are selected in post-order (deepest subquery first) so
that by the time a node's parameters are instantiated its child is concrete —
this is what lets the abstract analyzer climb the weak → medium → strong
precision ladder (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lang.ast import Query


@dataclass(frozen=True)
class Hole:
    """An unfilled parameter; ``kind`` names the parameter family."""

    kind: str

    def __str__(self) -> str:
        return f"□{self.kind}"


def is_hole(value: object) -> bool:
    return isinstance(value, Hole)


# A hole position: path of child indices from the root, then the field name.
HolePosition = tuple[tuple[int, ...], str]


def holes_of(query: "Query") -> list[HolePosition]:
    """All hole positions in post-order (children first, then own fields)."""
    found: list[HolePosition] = []

    def visit(node: "Query", path: tuple[int, ...]) -> None:
        for i, child in enumerate(node.child_queries()):
            visit(child, path + (i,))
        for field in node.param_fields():
            if is_hole(getattr(node, field)):
                found.append((path, field))

    visit(query, ())
    return found


def first_hole(query: "Query") -> HolePosition | None:
    """The next hole the enumerator should instantiate, or ``None``."""

    def visit(node: "Query", path: tuple[int, ...]) -> HolePosition | None:
        for i, child in enumerate(node.child_queries()):
            found = visit(child, path + (i,))
            if found is not None:
                return found
        for field in node.param_fields():
            if is_hole(getattr(node, field)):
                return (path, field)
        return None

    return visit(query, ())


def is_concrete(query: "Query") -> bool:
    """True when the query contains no holes (early-exit traversal)."""
    for field in query.param_fields():
        if is_hole(getattr(query, field)):
            return False
    return all(is_concrete(child) for child in query.child_queries())


def node_at(query: "Query", path: tuple[int, ...]) -> "Query":
    node = query
    for i in path:
        node = node.child_queries()[i]
    return node


def fill(query: "Query", position: HolePosition, value: object) -> "Query":
    """Return a copy of ``query`` with the hole at ``position`` filled."""
    path, field = position

    def rebuild(node: "Query", depth: int) -> "Query":
        if depth == len(path):
            return node.with_params(**{field: value})
        children = list(node.child_queries())
        idx = path[depth]
        children[idx] = rebuild(children[idx], depth + 1)
        return node.with_children(tuple(children))

    return rebuild(query, 0)


def fill_first_hole(query: "Query", value: object) -> "Query":
    position = first_hole(query)
    if position is None:
        raise ValueError("query has no holes")
    return fill(query, position, value)

"""Instruction-style rendering (paper §2.2).

The paper displays queries as straight-line instructions::

    t1 <- group(T, [City, Quarter, Population], sum, Enrolled)
    t2 <- partition(t1, [City], cumsum, C1)
    t3 <- arithmetic(t2, percent, [C2, Population])

Partial queries render with ``□`` for holes, matching the search-tree figures.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.holes import Hole
from repro.lang.naming import output_columns
from repro.lang.predicates import Predicate


def _fmt_cols(cols, names: list[str] | None) -> str:
    if isinstance(cols, Hole):
        return "□"
    if names is None:
        return "[" + ", ".join(f"c{c}" for c in cols) + "]"
    return "[" + ", ".join(names[c] for c in cols) + "]"


def _fmt_col(col, names: list[str] | None) -> str:
    if isinstance(col, Hole):
        return "□"
    if names is None:
        return f"c{col}"
    return names[col]


def _fmt(value) -> str:
    if isinstance(value, Hole):
        return "□"
    if isinstance(value, Predicate):
        return str(value)
    return str(value)


def to_instructions(query: ast.Query, env: ast.Env | None = None) -> str:
    """Render a (possibly partial) query as instruction lines."""
    lines: list[str] = []
    counter = [0]

    def names_for(node: ast.Query) -> list[str] | None:
        if env is None:
            return None
        try:
            return output_columns(node, env)
        except Exception:
            return None

    def visit(node: ast.Query) -> str:
        if isinstance(node, ast.TableRef):
            return node.name
        child_ids = [visit(c) for c in node.child_queries()]
        counter[0] += 1
        out = f"t{counter[0]}"
        child_names = names_for(node.child_queries()[0]) if node.child_queries() else None

        if isinstance(node, ast.Filter):
            body = f"filter({child_ids[0]}, {_fmt(node.pred)})"
        elif isinstance(node, ast.Join):
            pred = "" if node.pred is None else f", {_fmt(node.pred)}"
            body = f"join({child_ids[0]}, {child_ids[1]}{pred})"
        elif isinstance(node, ast.LeftJoin):
            body = f"left_join({child_ids[0]}, {child_ids[1]}, {_fmt(node.pred)})"
        elif isinstance(node, ast.Proj):
            body = f"proj({child_ids[0]}, {_fmt_cols(node.cols, child_names)})"
        elif isinstance(node, ast.Sort):
            direction = "□" if isinstance(node.ascending, Hole) else (
                "asc" if node.ascending else "desc")
            body = f"sort({child_ids[0]}, {_fmt_cols(node.cols, child_names)}, {direction})"
        elif isinstance(node, ast.Group):
            body = (f"group({child_ids[0]}, {_fmt_cols(node.keys, child_names)}, "
                    f"{_fmt(node.agg_func)}, {_fmt_col(node.agg_col, child_names)})")
        elif isinstance(node, ast.Partition):
            body = (f"partition({child_ids[0]}, {_fmt_cols(node.keys, child_names)}, "
                    f"{_fmt(node.agg_func)}, {_fmt_col(node.agg_col, child_names)})")
        elif isinstance(node, ast.Arithmetic):
            body = (f"arithmetic({child_ids[0]}, {_fmt(node.func)}, "
                    f"{_fmt_cols(node.cols, child_names)})")
        else:
            body = f"{node.operator_name()}({', '.join(child_ids)})"
        lines.append(f"{out} <- {body}")
        return out

    visit(query)
    return "\n".join(lines)

"""Output column naming, shared by the evaluators and the renderers.

Keeping the naming rules in one module guarantees that the SQL renderer, the
instruction renderer and the concrete evaluator agree on the schema of every
intermediate result.
"""

from __future__ import annotations

from collections.abc import MutableMapping

from repro.errors import EvaluationError, HoleError
from repro.lang import ast
from repro.lang.holes import Hole


def fresh_name(base: str, existing: list[str]) -> str:
    """``base``, suffixed with a counter if it clashes with ``existing``."""
    if base not in existing:
        return base
    k = 2
    while f"{base}_{k}" in existing:
        k += 1
    return f"{base}_{k}"


def joined_columns(left: list[str], right: list[str]) -> list[str]:
    """Column names of a join output; right-hand clashes get suffixed."""
    out = list(left)
    for name in right:
        out.append(fresh_name(name, out))
    return out


def output_columns(query: ast.Query, env: ast.Env,
                   cache: MutableMapping | None = None) -> list[str]:
    """Column names of a *concrete* query's output.

    ``cache`` (keyed by ``(query, env)``) memoizes every subtree's names —
    the columnar engine names thousands of sibling candidates that share
    all but their topmost operator.  Entries are returned by reference:
    callers must not mutate the lists they receive from a cached call.
    """
    if cache is None:
        return _output_columns(query, env, None)
    key = (query, env)
    hit = cache.get(key)
    if hit is None:
        hit = _output_columns(query, env, cache)
        cache[key] = hit
    return hit


def _output_columns(query: ast.Query, env: ast.Env,
                    cache: MutableMapping | None) -> list[str]:
    def recurse(child: ast.Query) -> list[str]:
        return output_columns(child, env, cache)

    if isinstance(query, ast.TableRef):
        return list(env.get(query.name).columns)
    if isinstance(query, (ast.Filter, ast.Sort)):
        return recurse(query.child)
    if isinstance(query, (ast.Join, ast.LeftJoin)):
        return joined_columns(recurse(query.left), recurse(query.right))
    if isinstance(query, ast.Proj):
        if isinstance(query.cols, Hole):
            raise HoleError("cannot name the output of a partial proj")
        child = recurse(query.child)
        names: list[str] = []
        for c in query.cols:
            names.append(fresh_name(child[c], names))
        return names
    if isinstance(query, ast.Group):
        if isinstance(query.keys, Hole) or isinstance(query.agg_col, Hole) \
                or isinstance(query.agg_func, Hole):
            raise HoleError("cannot name the output of a partial group")
        child = recurse(query.child)
        names = []
        for key_col in query.keys:
            names.append(fresh_name(child[key_col], names))
        base = query.alias or f"{query.agg_func}_{child[query.agg_col]}"
        names.append(fresh_name(base, names))
        return names
    if isinstance(query, ast.Partition):
        if isinstance(query.agg_col, Hole) or isinstance(query.agg_func, Hole):
            raise HoleError("cannot name the output of a partial partition")
        names = list(recurse(query.child))
        base = query.alias or f"{query.agg_func}_{names[query.agg_col]}"
        names.append(fresh_name(base, names))
        return names
    if isinstance(query, ast.Arithmetic):
        if isinstance(query.cols, Hole) or isinstance(query.func, Hole):
            raise HoleError("cannot name the output of a partial arithmetic")
        names = list(recurse(query.child))
        base = query.alias or f"{query.func}({', '.join(names[c] for c in query.cols)})"
        names.append(fresh_name(base, names))
        return names
    raise EvaluationError(f"unknown query node {type(query).__name__}")

"""Output column naming, shared by the evaluators and the renderers.

Keeping the naming rules in one module guarantees that the SQL renderer, the
instruction renderer and the concrete evaluator agree on the schema of every
intermediate result.
"""

from __future__ import annotations

from repro.errors import EvaluationError, HoleError
from repro.lang import ast
from repro.lang.holes import Hole


def fresh_name(base: str, existing: list[str]) -> str:
    """``base``, suffixed with a counter if it clashes with ``existing``."""
    if base not in existing:
        return base
    k = 2
    while f"{base}_{k}" in existing:
        k += 1
    return f"{base}_{k}"


def joined_columns(left: list[str], right: list[str]) -> list[str]:
    """Column names of a join output; right-hand clashes get suffixed."""
    out = list(left)
    for name in right:
        out.append(fresh_name(name, out))
    return out


def output_columns(query: ast.Query, env: ast.Env) -> list[str]:
    """Column names of a *concrete* query's output."""
    if isinstance(query, ast.TableRef):
        return list(env.get(query.name).columns)
    if isinstance(query, (ast.Filter, ast.Sort)):
        return output_columns(query.child, env)
    if isinstance(query, (ast.Join, ast.LeftJoin)):
        return joined_columns(output_columns(query.left, env),
                              output_columns(query.right, env))
    if isinstance(query, ast.Proj):
        if isinstance(query.cols, Hole):
            raise HoleError("cannot name the output of a partial proj")
        child = output_columns(query.child, env)
        names: list[str] = []
        for c in query.cols:
            names.append(fresh_name(child[c], names))
        return names
    if isinstance(query, ast.Group):
        if isinstance(query.keys, Hole) or isinstance(query.agg_col, Hole) \
                or isinstance(query.agg_func, Hole):
            raise HoleError("cannot name the output of a partial group")
        child = output_columns(query.child, env)
        names = []
        for key_col in query.keys:
            names.append(fresh_name(child[key_col], names))
        base = query.alias or f"{query.agg_func}_{child[query.agg_col]}"
        names.append(fresh_name(base, names))
        return names
    if isinstance(query, ast.Partition):
        if isinstance(query.agg_col, Hole) or isinstance(query.agg_func, Hole):
            raise HoleError("cannot name the output of a partial partition")
        names = list(output_columns(query.child, env))
        base = query.alias or f"{query.agg_func}_{names[query.agg_col]}"
        names.append(fresh_name(base, names))
        return names
    if isinstance(query, ast.Arithmetic):
        if isinstance(query.cols, Hole) or isinstance(query.func, Hole):
            raise HoleError("cannot name the output of a partial arithmetic")
        names = list(output_columns(query.child, env))
        base = query.alias or f"{query.func}({', '.join(names[c] for c in query.cols)})"
        names.append(fresh_name(base, names))
        return names
    raise EvaluationError(f"unknown query node {type(query).__name__}")

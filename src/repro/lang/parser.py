"""Parser for the instruction-style query syntax.

Round-trips with :func:`repro.lang.instruction.to_instructions` when column
indices are used, and also accepts column *names* resolved against an
environment — convenient for writing ground-truth queries and for tests::

    q = parse_instructions('''
        t1 <- group(T, [City, Quarter], sum, Enrolled)
        t2 <- partition(t1, [City], cumsum, c2)
        t3 <- arithmetic(t2, percent, [c3, c1])
    ''', env)

Grammar (one instruction per line)::

    line  ::= NAME "<-" op
    op    ::= "group"      "(" ref "," cols "," func "," col ")"
            | "partition"  "(" ref "," cols "," func "," col ")"
            | "arithmetic" "(" ref "," func "," cols ")"
            | "filter"     "(" ref "," pred ")"
            | "sort"       "(" ref "," cols "," ("asc"|"desc") ")"
            | "proj"       "(" ref "," cols ")"
            | "join"       "(" ref "," ref ["," pred] ")"
            | "left_join"  "(" ref "," ref "," pred ")"
    cols  ::= "[" col ("," col)* "]" | "[]"
    col   ::= "c" INT | NAME
    pred  ::= col OP col | col OP literal      (OP in < <= == > >= !=)
    ref   ::= NAME                              (a table or earlier t_i)
"""

from __future__ import annotations

import re

from repro.errors import ReproError
from repro.lang import ast
from repro.lang.functions import FUNCTIONS
from repro.lang.naming import output_columns
from repro.lang.predicates import ColCmp, ConstCmp, Predicate

_LINE = re.compile(r"^\s*(\w+)\s*<-\s*(\w+)\s*\((.*)\)\s*$")
_PRED = re.compile(r"^\s*(\S+)\s*(<=|>=|==|!=|<|>)\s*(\S+)\s*$")


class ParseError(ReproError):
    """Malformed instruction text."""


def _split_args(text: str) -> list[str]:
    """Split on top-level commas (brackets may nest)."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch in "[(":
            depth += 1
        elif ch in "])":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_literal(text: str):
    if text.startswith(("'", '"')) and text.endswith(text[0]) and len(text) >= 2:
        return text[1:-1]
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return None


class _Parser:
    def __init__(self, env: ast.Env | None) -> None:
        self.env = env
        self.defined: dict[str, ast.Query] = {}

    # ------------------------------------------------------------ resolution
    def _resolve_ref(self, name: str) -> ast.Query:
        if name in self.defined:
            return self.defined[name]
        if self.env is not None:
            try:
                self.env.get(name)
            except Exception:
                raise ParseError(f"unknown table or intermediate {name!r}")
        return ast.TableRef(name)

    def _columns_of(self, query: ast.Query) -> list[str] | None:
        if self.env is None:
            return None
        try:
            return output_columns(query, self.env)
        except Exception:
            return None

    def _resolve_col(self, token: str, child: ast.Query) -> int:
        token = token.strip()
        if re.fullmatch(r"c\d+", token):
            return int(token[1:])
        if token.isdigit():
            return int(token)
        names = self._columns_of(child)
        if names is None:
            raise ParseError(
                f"column name {token!r} needs an environment to resolve")
        try:
            return names.index(token)
        except ValueError:
            raise ParseError(
                f"no column named {token!r}; have {names}") from None

    def _resolve_cols(self, token: str, child: ast.Query) -> tuple[int, ...]:
        token = token.strip()
        if not (token.startswith("[") and token.endswith("]")):
            raise ParseError(f"expected a [col, ...] list, got {token!r}")
        inner = token[1:-1].strip()
        if not inner:
            return ()
        return tuple(self._resolve_col(part, child)
                     for part in _split_args(inner))

    def _resolve_pred(self, token: str, child: ast.Query) -> Predicate:
        match = _PRED.match(token)
        if not match:
            raise ParseError(f"cannot parse predicate {token!r}")
        left, op, right = match.groups()
        left_col = self._resolve_col(left, child)
        # Bare numbers / quoted strings are literals; ``c<i>`` or a known
        # column name is a column reference.
        if not re.fullmatch(r"-?\d+(\.\d+)?", right) \
                and not right.startswith(("'", '"')):
            try:
                return ColCmp(left_col, op, self._resolve_col(right, child))
            except ParseError:
                pass
        literal = _parse_literal(right)
        if literal is None:
            raise ParseError(f"cannot parse comparison operand {right!r}")
        return ConstCmp(left_col, op, literal)

    def _check_func(self, name: str) -> str:
        from repro.lang.functions import ANALYTIC_SPECS
        if name not in FUNCTIONS and name not in ANALYTIC_SPECS:
            raise ParseError(f"unknown function {name!r}")
        return name

    # --------------------------------------------------------------- parsing
    def parse(self, text: str) -> ast.Query:
        last: ast.Query | None = None
        for raw in text.strip().splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            match = _LINE.match(line)
            if not match:
                raise ParseError(f"cannot parse line {line!r}")
            name, op, arg_text = match.groups()
            args = _split_args(arg_text)
            query = self._build(op, args, line)
            self.defined[name] = query
            last = query
        if last is None:
            raise ParseError("no instructions found")
        return last

    def _build(self, op: str, args: list[str], line: str) -> ast.Query:
        def need(n: int) -> None:
            if len(args) != n:
                raise ParseError(
                    f"{op} expects {n} arguments, got {len(args)}: {line!r}")

        if op in ("group", "partition"):
            need(4)
            child = self._resolve_ref(args[0])
            keys = self._resolve_cols(args[1], child)
            func = self._check_func(args[2])
            col = self._resolve_col(args[3], child)
            node = ast.Group if op == "group" else ast.Partition
            return node(child, keys=keys, agg_func=func, agg_col=col)

        if op == "arithmetic":
            need(3)
            child = self._resolve_ref(args[0])
            func = self._check_func(args[1])
            cols = self._resolve_cols(args[2], child)
            return ast.Arithmetic(child, func=func, cols=cols)

        if op == "filter":
            need(2)
            child = self._resolve_ref(args[0])
            return ast.Filter(child, pred=self._resolve_pred(args[1], child))

        if op == "sort":
            need(3)
            child = self._resolve_ref(args[0])
            cols = self._resolve_cols(args[1], child)
            if args[2] not in ("asc", "desc"):
                raise ParseError(f"sort direction must be asc/desc: {line!r}")
            return ast.Sort(child, cols=cols, ascending=args[2] == "asc")

        if op == "proj":
            need(2)
            child = self._resolve_ref(args[0])
            return ast.Proj(child, cols=self._resolve_cols(args[1], child))

        if op == "join":
            if len(args) not in (2, 3):
                raise ParseError(f"join expects 2 or 3 arguments: {line!r}")
            left = self._resolve_ref(args[0])
            right = self._resolve_ref(args[1])
            joined = ast.Join(left, right)
            if len(args) == 3:
                pred = self._resolve_pred(args[2], joined)
                return ast.Join(left, right, pred=pred)
            return joined

        if op == "left_join":
            need(3)
            left = self._resolve_ref(args[0])
            right = self._resolve_ref(args[1])
            joined = ast.Join(left, right)  # for column resolution only
            return ast.LeftJoin(left, right,
                                pred=self._resolve_pred(args[2], joined))

        raise ParseError(f"unknown operator {op!r}")


def parse_instructions(text: str, env: ast.Env | None = None) -> ast.Query:
    """Parse instruction-style text into a query AST.

    With an ``env``, column *names* (resolved against each intermediate's
    schema) are accepted alongside ``c<i>`` indices.
    """
    return _Parser(env).parse(text)

"""Filter / join predicates (paper Fig. 7).

``p ← p1 and p2 | true | false | c1 op c2`` with ``op ∈ {<, ≤, ==, >, ≥}``.
We additionally support comparison against user-supplied constants (the paper
uses constants "provided by the user", §5.1) and ``!=`` as a convenience.

Predicates evaluate over a single (possibly joined) row of concrete values;
NULL comparisons are false, as in SQL's WHERE semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.errors import ExpressionError
from repro.table.values import Value, value_eq, value_sort_key

COMPARISON_OPS: tuple[str, ...] = ("<", "<=", "==", ">", ">=", "!=")


def _compare(op: str, a: Value, b: Value) -> bool:
    if a is None or b is None:
        return False
    if op == "==":
        return value_eq(a, b)
    if op == "!=":
        return not value_eq(a, b)
    ka, kb = value_sort_key(a), value_sort_key(b)
    if op == "<":
        return ka < kb
    if op == "<=":
        return ka <= kb
    if op == ">":
        return ka > kb
    if op == ">=":
        return ka >= kb
    raise ExpressionError(f"unknown comparison operator {op!r}")


def compare_values(op: str, a: Value, b: Value) -> bool:
    """Public comparison entry point (columnar kernels evaluate predicates
    column-wise and must agree cell-for-cell with ``Predicate.evaluate``)."""
    return _compare(op, a, b)


class Predicate:
    """Base class; subclasses are immutable and hashable."""

    def evaluate(self, row: Sequence[Value]) -> bool:
        raise NotImplementedError

    def columns_used(self) -> frozenset[int]:
        raise NotImplementedError


@dataclass(frozen=True)
class TruePred(Predicate):
    def evaluate(self, row: Sequence[Value]) -> bool:
        return True

    def columns_used(self) -> frozenset[int]:
        return frozenset()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalsePred(Predicate):
    def evaluate(self, row: Sequence[Value]) -> bool:
        return False

    def columns_used(self) -> frozenset[int]:
        return frozenset()

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class ColCmp(Predicate):
    """``row[left] op row[right]`` — column-to-column comparison."""

    left: int
    op: str
    right: int

    def evaluate(self, row: Sequence[Value]) -> bool:
        return _compare(self.op, row[self.left], row[self.right])

    def columns_used(self) -> frozenset[int]:
        return frozenset((self.left, self.right))

    def __str__(self) -> str:
        return f"c{self.left} {self.op} c{self.right}"


@dataclass(frozen=True)
class ConstCmp(Predicate):
    """``row[col] op const`` — comparison against a user-provided constant."""

    col: int
    op: str
    const: Value

    def evaluate(self, row: Sequence[Value]) -> bool:
        return _compare(self.op, row[self.col], self.const)

    def columns_used(self) -> frozenset[int]:
        return frozenset((self.col,))

    def __str__(self) -> str:
        return f"c{self.col} {self.op} {self.const!r}"


@dataclass(frozen=True)
class AndPred(Predicate):
    parts: tuple[Predicate, ...]

    def evaluate(self, row: Sequence[Value]) -> bool:
        return all(p.evaluate(row) for p in self.parts)

    def columns_used(self) -> frozenset[int]:
        out: frozenset[int] = frozenset()
        for p in self.parts:
            out |= p.columns_used()
        return out

    def __str__(self) -> str:
        return " and ".join(str(p) for p in self.parts)

"""Query size metrics.

The paper counts *operators* (table references are free): the running
example's solution has size 3 (group, partition, arithmetic); benchmark
difficulty is measured in required operators; and the ranker orders
consistent queries by size.
"""

from __future__ import annotations

from repro.lang.ast import Query, TableRef


def operator_count(query: Query) -> int:
    """Number of operator nodes (table references excluded)."""
    return sum(1 for node in query.walk() if not isinstance(node, TableRef))


def query_depth(query: Query) -> int:
    """Longest operator chain from the root to any leaf table."""
    children = query.child_queries()
    below = max((query_depth(c) for c in children), default=0)
    return below + (0 if isinstance(query, TableRef) else 1)

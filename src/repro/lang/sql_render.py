"""Render a concrete query as SQL text — paper-style or executable dialects.

Three dialects share one renderer:

* ``display`` mirrors the paper's presentation (Fig. 2): nested subqueries,
  bare identifiers, ``CUMSUM(...) OVER (PARTITION BY ...)`` shorthand.  It is
  for human consumption only — ``ORDER BY`` inside subqueries, for instance,
  is shown where the AST puts it even though real SQL drops subquery
  ordering (the executable dialects thread ordering to the outermost
  ``SELECT`` instead).
* ``sqlite`` / ``duckdb`` emit *executable* SQL: quoted identifiers, escaped
  literals, aliased subqueries with explicit projections matching
  :func:`~repro.lang.naming.joined_columns` / ``output_columns``, and
  standard window frames (``SUM(x) OVER (PARTITION BY k ORDER BY o ROWS
  BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW)`` instead of ``CUMSUM``).

The engine evaluates ordered bags, so executable SQL must reproduce row
*order*, not just row *content*.  Every subquery therefore threads a row
ordinal column (:func:`ordinal_name`): base tables supply it (the oracle
loader materializes insertion order), ``join`` / ``sort`` / ``group``
re-derive it (``ROW_NUMBER()`` over the nested-loop order, the stable sort
key, ``MIN(ord)`` per group), and the outermost ``SELECT`` orders by it.
Executable engine-semantics adaptations live here too, driven by the
:class:`Dialect` table: ``SUM`` coalesces to 0 on empty/all-NULL input the
way the engine's ``sum`` does, division guards against ``/0`` (NULL, like
the engine) and forces float division, ranks pin NULL placement to the
engine's sort-class order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HoleError, SqlRenderError
from repro.lang import ast
from repro.lang.functions import analytic_spec, function_spec
from repro.lang.holes import is_concrete
from repro.lang.naming import fresh_name, joined_columns, output_columns
from repro.lang.predicates import AndPred, ColCmp, ConstCmp, FalsePred, Predicate, TruePred

#: int64 bounds — executable dialects store integers as 8-byte values.
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


@dataclass(frozen=True)
class Dialect:
    """Per-dialect rendering quirks; everything else is shared.

    ``db`` names the driver the oracle uses (``None`` = display only).
    ``coalesce_empty_sum`` exists so tests can engineer a semantics bug
    (plain SQL ``SUM`` is NULL on all-NULL input where the engine says 0)
    and watch the differential oracle catch and minimize it.
    """

    name: str
    db: str | None = None          # "sqlite" | "duckdb" | None (display only)
    float_cast: str = "REAL"       # CAST target forcing float division
    int_type: str = "INTEGER"      # column declarations used by the oracle loader
    float_type: str = "REAL"
    text_type: str = "TEXT"
    bool_type: str = "INTEGER"
    bool_as_int: bool = True       # encode bools as 0/1 when loading
    coalesce_empty_sum: bool = True

    @property
    def executable(self) -> bool:
        return self.db is not None


DISPLAY = Dialect("display")
SQLITE = Dialect("sqlite", db="sqlite")
DUCKDB = Dialect("duckdb", db="duckdb", float_cast="DOUBLE", int_type="BIGINT",
                 float_type="DOUBLE", text_type="VARCHAR", bool_type="BOOLEAN",
                 bool_as_int=False)

DIALECTS: dict[str, Dialect] = {d.name: d for d in (DISPLAY, SQLITE, DUCKDB)}


def resolve_dialect(dialect: str | Dialect) -> Dialect:
    if isinstance(dialect, Dialect):
        return dialect
    try:
        return DIALECTS[dialect]
    except KeyError:
        raise SqlRenderError(
            f"unknown SQL dialect {dialect!r}; have {sorted(DIALECTS)}") from None


def ordinal_name(env: ast.Env) -> str:
    """The row-ordinal column name threaded through executable SQL.

    Deterministic per environment so the oracle loader (which sees only the
    env) and the renderer (which sees query + env) agree on it.
    """
    taken = [c for table in env.tables for c in table.columns]
    return fresh_name("__ord", taken)


# ------------------------------------------------------------------ literals

_SQL_OPS = {"==": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _sql_op(op: str) -> str:
    try:
        return _SQL_OPS[op]
    except KeyError:
        raise SqlRenderError(f"cannot render comparison operator {op!r}") from None


def _literal(value, dialect: Dialect) -> str:
    """A SQL literal for a constant; escaped, with SQL TRUE/FALSE/NULL."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, int):
        if dialect.executable and not _INT64_MIN <= value <= _INT64_MAX:
            raise SqlRenderError(f"integer constant {value} exceeds int64")
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise SqlRenderError(f"non-finite float constant {value!r}")
        return repr(value)
    if isinstance(value, str):
        if dialect.executable and "\x00" in value:
            raise SqlRenderError("NUL byte in string constant")
        return "'" + value.replace("'", "''") + "'"
    raise SqlRenderError(f"cannot render constant {value!r}")


def _qid(name: str) -> str:
    """A quoted identifier (executable dialects)."""
    if "\x00" in name:
        raise SqlRenderError(f"NUL byte in identifier {name!r}")
    return '"' + name.replace('"', '""') + '"'


def _render_pred(pred: Predicate, refs: list[str], dialect: Dialect) -> str:
    """Render a predicate over column references ``refs``."""
    if isinstance(pred, TruePred):
        return "TRUE"
    if isinstance(pred, FalsePred):
        return "FALSE"
    if isinstance(pred, ColCmp):
        return f"{refs[pred.left]} {_sql_op(pred.op)} {refs[pred.right]}"
    if isinstance(pred, ConstCmp):
        return (f"{refs[pred.col]} {_sql_op(pred.op)} "
                f"{_literal(pred.const, dialect)}")
    if isinstance(pred, AndPred):
        if not pred.parts:
            return "TRUE"
        return " AND ".join(_render_pred(p, refs, dialect) for p in pred.parts)
    raise HoleError(f"cannot render predicate {pred!r}")


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


# ------------------------------------------------- display (paper-style) SQL

_WINDOW_NAMES = {
    "cumsum": "CUMSUM", "cummax": "CUMMAX", "cummin": "CUMMIN",
    "cumavg": "CUMAVG", "rank": "RANK", "dense_rank": "DENSE_RANK",
    "rank_desc": "RANK_DESC", "dense_rank_desc": "DENSE_RANK_DESC",
}


def _render_display(query: ast.Query, env: ast.Env) -> str:
    if isinstance(query, ast.TableRef):
        return query.name

    if isinstance(query, ast.Filter):
        cols = output_columns(query.child, env)
        pred = _render_pred(query.pred, list(cols), DISPLAY)
        return (f"SELECT * FROM (\n{_indent(_render_display(query.child, env))}\n)"
                f" WHERE {pred}")

    if isinstance(query, (ast.Join, ast.LeftJoin)):
        left_cols = output_columns(query.left, env)
        right_cols = output_columns(query.right, env)
        out = joined_columns(left_cols, right_cols)
        # Alias each side and project the renamed columns explicitly: a bare
        # SELECT * would emit ambiguous duplicates whenever both sides share
        # a column name, while the engine renames via joined_columns.
        select = ", ".join(
            [f"a.{c}" for c in left_cols]
            + [f"b.{c}" if out[len(left_cols) + i] == c
               else f"b.{c} AS {out[len(left_cols) + i]}"
               for i, c in enumerate(right_cols)])
        refs = [f"a.{c}" for c in left_cols] + [f"b.{c}" for c in right_cols]
        kind = "LEFT JOIN" if isinstance(query, ast.LeftJoin) else "JOIN"
        pred = getattr(query, "pred", None)
        on = "" if pred is None else f" ON {_render_pred(pred, refs, DISPLAY)}"
        return (f"SELECT {select} FROM (\n"
                f"{_indent(_render_display(query.left, env))}\n) AS a {kind} (\n"
                f"{_indent(_render_display(query.right, env))}\n) AS b{on}")

    if isinstance(query, ast.Proj):
        child_cols = output_columns(query.child, env)
        select = ", ".join(child_cols[c] for c in query.cols)
        return f"SELECT {select} FROM (\n{_indent(_render_display(query.child, env))}\n)"

    if isinstance(query, ast.Sort):
        cols = output_columns(query.child, env)
        direction = "ASC" if query.ascending else "DESC"
        order = ", ".join(f"{cols[c]} {direction}" for c in query.cols)
        return (f"SELECT * FROM (\n{_indent(_render_display(query.child, env))}\n)"
                f" ORDER BY {order}")

    if isinstance(query, ast.Group):
        cols = output_columns(query.child, env)
        out_cols = output_columns(query, env)
        keys = ", ".join(cols[k] for k in query.keys)
        agg = f"{query.agg_func.upper()}({cols[query.agg_col]}) AS {out_cols[-1]}"
        if not query.keys:
            return (f"SELECT {agg} FROM (\n"
                    f"{_indent(_render_display(query.child, env))}\n)")
        return (f"SELECT {keys}, {agg} FROM (\n"
                f"{_indent(_render_display(query.child, env))}\n)"
                f" GROUP BY {keys}")

    if isinstance(query, ast.Partition):
        cols = output_columns(query.child, env)
        out_cols = output_columns(query, env)
        keys = ", ".join(cols[k] for k in query.keys)
        fname = _WINDOW_NAMES.get(query.agg_func, query.agg_func.upper())
        over = f"PARTITION BY {keys}" if query.keys else ""
        window = (f"{fname}({cols[query.agg_col]}) OVER ({over})"
                  f" AS {out_cols[-1]}")
        return (f"SELECT *, {window} FROM (\n"
                f"{_indent(_render_display(query.child, env))}\n)")

    if isinstance(query, ast.Arithmetic):
        cols = output_columns(query.child, env)
        out_cols = output_columns(query, env)
        spec = function_spec(query.func)
        if spec.sql is not None:
            expr = spec.sql.format(*[cols[c] for c in query.cols])
        else:
            expr = f"{query.func}({', '.join(cols[c] for c in query.cols)})"
        return (f"SELECT *, {expr} AS {out_cols[-1]} FROM (\n"
                f"{_indent(_render_display(query.child, env))}\n)")

    raise HoleError(f"cannot render {type(query).__name__}")


# ------------------------------------------------------------ executable SQL

#: Arithmetic templates with engine semantics: float (true) division, NULL
#: on division by zero, NULL propagation (native to SQL operators).
_ARITH_EXEC = {
    "add": "({0} + {1})",
    "sub": "({0} - {1})",
    "mul": "({0} * {1})",
    "div": "CASE WHEN {1} = 0 THEN NULL ELSE CAST({0} AS {flt}) / {1} END",
    "percent": ("CASE WHEN {1} = 0 THEN NULL"
                " ELSE CAST({0} AS {flt}) / {1} * 100 END"),
    "pct_change": ("CASE WHEN {1} = 0 THEN NULL"
                   " ELSE CAST({0} - {1} AS {flt}) / {1} * 100 END"),
}

_AGG_SQL = {"sum": "SUM", "avg": "AVG", "max": "MAX", "min": "MIN",
            "count": "COUNT"}


def _agg_sql(func: str, arg: str, over: str, dialect: Dialect) -> str:
    """An aggregate call (``over`` empty) or window aggregate."""
    try:
        sql_name = _AGG_SQL[func]
    except KeyError:
        raise SqlRenderError(f"cannot render aggregate {func!r}") from None
    expr = f"{sql_name}({arg}){over}"
    if func == "sum" and dialect.coalesce_empty_sum:
        # The engine's sum of an empty / all-NULL argument list is 0.
        expr = f"COALESCE({expr}, 0)"
    return expr


def _window_sql(func: str, arg: str, part_keys: list[str], ord_ref: str,
                dialect: Dialect) -> str:
    """A window expression with engine semantics for analytic ``func``."""
    spec = analytic_spec(func)
    part = f"PARTITION BY {', '.join(part_keys)}" if part_keys else ""
    if spec.style == "all":
        return _agg_sql(spec.term_name, arg, f" OVER ({part})", dialect)
    if spec.style == "prefix":
        frame = (f"ORDER BY {ord_ref}"
                 " ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW")
        over = f" OVER ({part} {frame})" if part else f" OVER ({frame})"
        return _agg_sql(spec.term_name, arg, over, dialect)
    if spec.style == "ranked":
        dense = func.startswith("dense")
        desc = func.endswith("_desc")
        fn = "DENSE_RANK()" if dense else "RANK()"
        direction = "DESC" if desc else "ASC"
        order = f"ORDER BY {arg} {direction} NULLS LAST"
        over = f" OVER ({part} {order})" if part else f" OVER ({order})"
        expr = f"{fn}{over}"
        if desc:
            # The engine ranks by sort class (NULL greatest), ignoring NULLs
            # in the comparison pool: descending, a NULL row ranks 1 while
            # non-NULL rows never count NULLs ahead of them.  No single
            # NULLS FIRST/LAST placement reproduces both, so rank with
            # NULLS LAST and pin the NULL rows to 1 explicitly.
            expr = f"CASE WHEN {arg} IS NULL THEN 1 ELSE {expr} END"
        return expr
    raise SqlRenderError(f"cannot render analytic {func!r}")


def _render_exec(query: ast.Query, env: ast.Env, dialect: Dialect,
                 ordq: str) -> str:
    """Render ``query``; output columns are ``output_columns(query) + ord``."""
    if isinstance(query, ast.TableRef):
        cols = env.get(query.name).columns
        select = ", ".join([_qid(c) for c in cols] + [ordq])
        return f"SELECT {select} FROM {_qid(query.name)}"

    if isinstance(query, ast.Filter):
        cols = output_columns(query.child, env)
        select = ", ".join([_qid(c) for c in cols] + [ordq])
        pred = _render_pred(query.pred, [_qid(c) for c in cols], dialect)
        return (f"SELECT {select} FROM (\n"
                f"{_indent(_render_exec(query.child, env, dialect, ordq))}\n"
                f') AS "t" WHERE {pred}')

    if isinstance(query, (ast.Join, ast.LeftJoin)):
        left_cols = output_columns(query.left, env)
        right_cols = output_columns(query.right, env)
        out = joined_columns(left_cols, right_cols)
        refs = ([f'"a".{_qid(c)}' for c in left_cols]
                + [f'"b".{_qid(c)}' for c in right_cols])
        select = ", ".join(
            [f"{ref} AS {_qid(name)}" for ref, name in zip(refs, out)]
            # The nested-loop order is left-major: re-derive a dense ordinal
            # from the (left, right) ordinal pair (right NULL on LEFT JOIN
            # pad rows is unique per left row, so placement cannot tie).
            + [f'ROW_NUMBER() OVER (ORDER BY "a".{ordq}, "b".{ordq})'
               f" AS {ordq}"])
        if isinstance(query, ast.LeftJoin):
            kind, pred = "LEFT JOIN", query.pred
        elif query.pred is None:
            kind, pred = "CROSS JOIN", None
        else:
            kind, pred = "JOIN", query.pred
        on = "" if pred is None else f" ON {_render_pred(pred, refs, dialect)}"
        return (f"SELECT {select} FROM (\n"
                f"{_indent(_render_exec(query.left, env, dialect, ordq))}\n"
                f') AS "a" {kind} (\n'
                f"{_indent(_render_exec(query.right, env, dialect, ordq))}\n"
                f') AS "b"{on}')

    if isinstance(query, ast.Proj):
        child_cols = output_columns(query.child, env)
        out = output_columns(query, env)
        select = ", ".join(
            [f"{_qid(child_cols[c])} AS {_qid(out[i])}"
             for i, c in enumerate(query.cols)] + [ordq])
        return (f"SELECT {select} FROM (\n"
                f"{_indent(_render_exec(query.child, env, dialect, ordq))}\n"
                f') AS "t"')

    if isinstance(query, ast.Sort):
        cols = output_columns(query.child, env)
        # The engine's stable sort orders by sort class (NULL greatest):
        # ascending puts NULLs last, descending (a full reversal) first;
        # ties keep their original order — the old ordinal breaks them.
        direction = "ASC NULLS LAST" if query.ascending else "DESC NULLS FIRST"
        terms = ", ".join([f"{_qid(cols[c])} {direction}" for c in query.cols]
                          + [f"{ordq} ASC"])
        select = ", ".join(
            [_qid(c) for c in cols]
            + [f"ROW_NUMBER() OVER (ORDER BY {terms}) AS {ordq}"])
        return (f"SELECT {select} FROM (\n"
                f"{_indent(_render_exec(query.child, env, dialect, ordq))}\n"
                f') AS "t"')

    if isinstance(query, ast.Group):
        cols = output_columns(query.child, env)
        out = output_columns(query, env)
        agg = _agg_sql(query.agg_func, _qid(cols[query.agg_col]), "", dialect)
        select = ", ".join(
            [f"{_qid(cols[k])} AS {_qid(out[i])}"
             for i, k in enumerate(query.keys)]
            + [f"{agg} AS {_qid(out[-1])}",
               # Groups surface in first-occurrence order.
               f"MIN({ordq}) AS {ordq}"])
        if query.keys:
            group_by = ", ".join(_qid(cols[k]) for k in query.keys)
        else:
            # Empty key set: one group over all rows, *no* group on empty
            # input (unlike a bare aggregate, which always yields one row).
            # A constant expression over a real column groups exactly so.
            group_by = f"{ordq} * 0"
        return (f"SELECT {select} FROM (\n"
                f"{_indent(_render_exec(query.child, env, dialect, ordq))}\n"
                f') AS "t" GROUP BY {group_by}')

    if isinstance(query, ast.Partition):
        cols = output_columns(query.child, env)
        out = output_columns(query, env)
        window = _window_sql(query.agg_func, _qid(cols[query.agg_col]),
                             [_qid(cols[k]) for k in query.keys], ordq,
                             dialect)
        select = ", ".join([_qid(c) for c in cols]
                           + [f"{window} AS {_qid(out[-1])}", ordq])
        return (f"SELECT {select} FROM (\n"
                f"{_indent(_render_exec(query.child, env, dialect, ordq))}\n"
                f') AS "t"')

    if isinstance(query, ast.Arithmetic):
        cols = output_columns(query.child, env)
        out = output_columns(query, env)
        template = _ARITH_EXEC.get(query.func)
        if template is None:
            raise SqlRenderError(f"cannot render arithmetic {query.func!r}")
        args = [_qid(cols[c]) for c in query.cols]
        expr = template.format(*args, flt=dialect.float_cast)
        select = ", ".join([_qid(c) for c in cols]
                           + [f"{expr} AS {_qid(out[-1])}", ordq])
        return (f"SELECT {select} FROM (\n"
                f"{_indent(_render_exec(query.child, env, dialect, ordq))}\n"
                f') AS "t"')

    raise HoleError(f"cannot render {type(query).__name__}")


def _render_executable(query: ast.Query, env: ast.Env,
                       dialect: Dialect) -> str:
    ord_name = ordinal_name(env)
    cache: dict = {}
    for node in query.walk():
        if isinstance(node, ast.TableRef):
            continue
        if ord_name in output_columns(node, env, cache):
            raise SqlRenderError(
                f"derived column name collides with ordinal {ord_name!r}")
    body = _render_exec(query, env, dialect, _qid(ord_name))
    select = ", ".join(_qid(c) for c in output_columns(query, env, cache))
    # The ordinal orders the outermost SELECT but is not projected: rendered
    # output columns are exactly the engine's.
    return (f"SELECT {select} FROM (\n{_indent(body)}\n"
            f') AS "q" ORDER BY "q".{_qid(ord_name)}')


def to_sql(query: ast.Query, env: ast.Env,
           dialect: str | Dialect = "display") -> str:
    """Render a concrete query as SQL text; raises on partial queries.

    ``dialect="display"`` keeps the paper's presentation.  ``"sqlite"`` /
    ``"duckdb"`` produce executable SQL whose result — rows *and* row
    order — matches engine evaluation when run against tables loaded by
    :class:`repro.oracle.Oracle` (which materializes the row-ordinal
    column executable rendering threads through every subquery).
    """
    if not is_concrete(query):
        raise HoleError("cannot render a partial query as SQL")
    resolved = resolve_dialect(dialect)
    if not resolved.executable:
        return _render_display(query, env) + ";"
    return _render_executable(query, env, resolved) + ";"

"""Render a concrete query as analytical SQL text.

The output mirrors the paper's presentation (Fig. 2): nested subqueries,
``GROUP BY`` for group-aggregation and ``... OVER (PARTITION BY ...)`` for
partition-aggregation.  Rendering is for human consumption — synthesized
queries are *presented* as SQL; evaluation happens on the AST.
"""

from __future__ import annotations

from repro.errors import HoleError
from repro.lang import ast
from repro.lang.functions import function_spec
from repro.lang.holes import Hole, is_concrete
from repro.lang.naming import joined_columns, output_columns
from repro.lang.predicates import AndPred, ColCmp, ConstCmp, FalsePred, Predicate, TruePred

_WINDOW_NAMES = {
    "cumsum": "CUMSUM", "cummax": "CUMMAX", "cummin": "CUMMIN",
    "cumavg": "CUMAVG", "rank": "RANK", "dense_rank": "DENSE_RANK",
    "rank_desc": "RANK_DESC", "dense_rank_desc": "DENSE_RANK_DESC",
}


def _render_pred(pred: Predicate, columns: list[str]) -> str:
    if isinstance(pred, TruePred):
        return "TRUE"
    if isinstance(pred, FalsePred):
        return "FALSE"
    if isinstance(pred, ColCmp):
        op = "=" if pred.op == "==" else pred.op
        return f"{columns[pred.left]} {op} {columns[pred.right]}"
    if isinstance(pred, ConstCmp):
        op = "=" if pred.op == "==" else pred.op
        const = f"'{pred.const}'" if isinstance(pred.const, str) else str(pred.const)
        return f"{columns[pred.col]} {op} {const}"
    if isinstance(pred, AndPred):
        return " AND ".join(_render_pred(p, columns) for p in pred.parts)
    raise HoleError(f"cannot render predicate {pred!r}")


def _indent(text: str, prefix: str = "  ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


def _render(query: ast.Query, env: ast.Env) -> str:
    if isinstance(query, ast.TableRef):
        return query.name

    if isinstance(query, ast.Filter):
        cols = output_columns(query.child, env)
        return (f"SELECT * FROM (\n{_indent(_render(query.child, env))}\n)"
                f" WHERE {_render_pred(query.pred, cols)}")

    if isinstance(query, (ast.Join, ast.LeftJoin)):
        left_cols = output_columns(query.left, env)
        right_cols = output_columns(query.right, env)
        cols = joined_columns(left_cols, right_cols)
        kind = "LEFT JOIN" if isinstance(query, ast.LeftJoin) else "JOIN"
        pred = getattr(query, "pred", None)
        on = "" if pred is None else f" ON {_render_pred(pred, cols)}"
        return (f"SELECT * FROM (\n{_indent(_render(query.left, env))}\n) {kind} (\n"
                f"{_indent(_render(query.right, env))}\n){on}")

    if isinstance(query, ast.Proj):
        child_cols = output_columns(query.child, env)
        select = ", ".join(child_cols[c] for c in query.cols)
        return f"SELECT {select} FROM (\n{_indent(_render(query.child, env))}\n)"

    if isinstance(query, ast.Sort):
        cols = output_columns(query.child, env)
        direction = "ASC" if query.ascending else "DESC"
        order = ", ".join(f"{cols[c]} {direction}" for c in query.cols)
        return (f"SELECT * FROM (\n{_indent(_render(query.child, env))}\n)"
                f" ORDER BY {order}")

    if isinstance(query, ast.Group):
        cols = output_columns(query.child, env)
        out_cols = output_columns(query, env)
        keys = ", ".join(cols[k] for k in query.keys)
        agg = f"{query.agg_func.upper()}({cols[query.agg_col]}) AS {out_cols[-1]}"
        return (f"SELECT {keys}, {agg} FROM (\n{_indent(_render(query.child, env))}\n)"
                f" GROUP BY {keys}")

    if isinstance(query, ast.Partition):
        cols = output_columns(query.child, env)
        out_cols = output_columns(query, env)
        keys = ", ".join(cols[k] for k in query.keys)
        fname = _WINDOW_NAMES.get(query.agg_func, query.agg_func.upper())
        window = (f"{fname}({cols[query.agg_col]}) OVER (PARTITION BY {keys})"
                  f" AS {out_cols[-1]}")
        return f"SELECT *, {window} FROM (\n{_indent(_render(query.child, env))}\n)"

    if isinstance(query, ast.Arithmetic):
        cols = output_columns(query.child, env)
        out_cols = output_columns(query, env)
        spec = function_spec(query.func)
        if spec.sql is not None:
            expr = spec.sql.format(*[cols[c] for c in query.cols])
        else:
            expr = f"{query.func}({', '.join(cols[c] for c in query.cols)})"
        return (f"SELECT *, {expr} AS {out_cols[-1]} FROM (\n"
                f"{_indent(_render(query.child, env))}\n)")

    raise HoleError(f"cannot render {type(query).__name__}")


def to_sql(query: ast.Query, env: ast.Env) -> str:
    """Render a concrete query as SQL text; raises on partial queries."""
    if not is_concrete(query):
        raise HoleError("cannot render a partial query as SQL")
    return _render(query, env) + ";"

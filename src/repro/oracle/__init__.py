"""Real-database differential oracle (ROADMAP: execution-backed verification).

The synthesizer's engine evaluates L_SQL on the AST; this package checks
that evaluation against something that is not us: rendered SQL executed on
a real database.  :class:`Oracle` loads an :class:`~repro.lang.Env` into
an in-memory SQLite or DuckDB connection (DuckDB optional —
``HAVE_DUCKDB``), executes queries rendered by
:func:`repro.lang.to_sql` in an executable dialect, and
:func:`check_query` compares the decoded result sets against
:class:`~repro.engine.EvalEngine` output under ``table.values`` semantics.
:func:`minimize` shrinks any disagreement to a small replayable plan.

``repro.oracle.fuzz`` hosts the seeded plan generators shared with the
cross-backend fuzz suite.
"""

from repro.oracle.core import Oracle, oracle_value_eq, rows_differ
from repro.oracle.db import HAVE_DUCKDB, connect
from repro.oracle.differential import (
    ENGINE_ERRORS,
    Mismatch,
    Outcome,
    check_query,
    minimize,
)

__all__ = [
    "Oracle", "oracle_value_eq", "rows_differ",
    "HAVE_DUCKDB", "connect",
    "ENGINE_ERRORS", "Mismatch", "Outcome", "check_query", "minimize",
]

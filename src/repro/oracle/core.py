"""The real-database oracle: load an :class:`Env`, execute rendered SQL,
compare against engine output.

The oracle closes the loop the renderer opens.  :func:`repro.lang.to_sql`
in an executable dialect promises that its SQL — run against tables loaded
*by this module* — reproduces engine evaluation exactly, rows and row
order.  The loader's half of that contract is the row-ordinal column
(:func:`repro.lang.ordinal_name`): every base table is materialized with
its insertion order as a physical column the rendered query threads to the
outermost ``ORDER BY``.

Value domain
------------
SQL databases type columns; the engine types cells.  The loader therefore
admits exactly the envs whose columns are single-typed (ints, floats, a
mix of the two, strings, or booleans — NULLs anywhere), and raises
:class:`OracleUnsupportedError` for the rest (mixed-type columns, NaN /
infinities, ints past int64, NUL bytes in strings).  That domain covers
every registry task and the SQL-safe fuzz profile; the fuzz harness's
adversarial mixed-dtype profile stays with the in-process backends, which
are the only evaluators that can represent it.

Decoded results are compared *positionally* under ``table.values``
semantics: :func:`oracle_value_eq` is :func:`~repro.table.values.value_eq`
(float tolerance, NULL == NULL only) extended with bool/int affinity,
because SQLite has no boolean storage class — ``True`` comes back as ``1``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.errors import OracleError, OracleUnsupportedError
from repro.lang import ast
from repro.lang.sql_render import (
    Dialect,
    _INT64_MAX,
    _INT64_MIN,
    _qid,
    ordinal_name,
    resolve_dialect,
    to_sql,
)
from repro.table.table import Table
from repro.table.values import Value, value_eq

from repro.oracle.db import connect


def _column_sql_type(values: list[Value], dialect: Dialect) -> str:
    """The declared SQL type for a column holding ``values``.

    Raises :class:`OracleUnsupportedError` when no single SQL type can
    represent the column faithfully.
    """
    present = [v for v in values if v is not None]
    if not present:
        return dialect.int_type          # all-NULL: any type will do
    if all(isinstance(v, bool) for v in present):
        return dialect.bool_type
    if all(isinstance(v, (int, float)) and not isinstance(v, bool)
           for v in present):
        for v in present:
            if isinstance(v, float) and not math.isfinite(v):
                raise OracleUnsupportedError(
                    f"non-finite float {v!r} has no portable SQL encoding")
            if isinstance(v, int) and not _INT64_MIN <= v <= _INT64_MAX:
                raise OracleUnsupportedError(
                    f"integer {v} exceeds the oracle's int64 domain")
        if any(isinstance(v, float) for v in present):
            return dialect.float_type
        return dialect.int_type
    if all(isinstance(v, str) for v in present):
        if any("\x00" in v for v in present):
            raise OracleUnsupportedError(
                "NUL byte in string cell (not portable across drivers)")
        return dialect.text_type
    raise OracleUnsupportedError(
        "mixed-type column cannot be loaded into a typed SQL column")


def _encode(value: Value, dialect: Dialect) -> Value:
    if isinstance(value, bool) and dialect.bool_as_int:
        return int(value)
    return value


def oracle_value_eq(engine_value: Value, db_value: Value) -> bool:
    """``value_eq`` extended with bool/int affinity.

    SQLite stores booleans as integers, so a boolean engine cell may come
    back as ``0`` / ``1``; accept the pair exactly when the integer is the
    boolean's encoding.
    """
    if isinstance(engine_value, bool) and isinstance(db_value, int) \
            and not isinstance(db_value, bool):
        return int(engine_value) == db_value
    if isinstance(db_value, bool) and isinstance(engine_value, int) \
            and not isinstance(engine_value, bool):
        return int(db_value) == engine_value
    return value_eq(engine_value, db_value)


def rows_differ(engine_rows: Sequence[Sequence[Value]],
                db_rows: Sequence[Sequence[Value]]) -> str | None:
    """The first positional difference between two result sets, or None."""
    if len(engine_rows) != len(db_rows):
        return (f"row count differs: engine {len(engine_rows)}, "
                f"database {len(db_rows)}")
    for i, (er, dr) in enumerate(zip(engine_rows, db_rows)):
        if len(er) != len(dr):
            return (f"row {i} arity differs: engine {len(er)}, "
                    f"database {len(dr)}")
        for j, (ev, dv) in enumerate(zip(er, dr)):
            if not oracle_value_eq(ev, dv):
                return (f"cell ({i}, {j}) differs: engine {ev!r}, "
                        f"database {dv!r}")
    return None


class Oracle:
    """An :class:`Env` loaded into a real database, ready to execute.

    ::

        with Oracle(env, "sqlite") as oracle:
            db_rows = oracle.execute(query)

    ``execute`` renders ``query`` in the oracle's dialect, runs it, and
    returns the decoded rows — in the engine's row order, without the
    internal ordinal column.
    """

    def __init__(self, env: ast.Env, dialect: str | Dialect = "sqlite"):
        self.dialect = resolve_dialect(dialect)
        if not self.dialect.executable:
            raise OracleError(
                f"dialect {self.dialect.name!r} is display-only; "
                "the oracle needs an executable dialect")
        self.env = env
        self.ordinal = ordinal_name(env)
        self._con = connect(self.dialect.db)
        try:
            for table in env.tables:
                self._load(table)
        except BaseException:
            self._con.close()
            raise

    # ------------------------------------------------------------- loading
    def _load(self, table: Table) -> None:
        if self.ordinal in table.columns:
            raise OracleUnsupportedError(
                f"table {table.name!r} already has a column named "
                f"{self.ordinal!r}")
        decls = [
            f"{_qid(col)} {_column_sql_type(table.column_values(j), self.dialect)}"
            for j, col in enumerate(table.columns)]
        decls.append(f"{_qid(self.ordinal)} {self.dialect.int_type}")
        self._con.run(
            f"CREATE TABLE {_qid(table.name)} ({', '.join(decls)})")
        if not table.rows:
            return
        placeholders = ", ".join("?" for _ in range(table.n_cols + 1))
        self._con.insert_many(
            f"INSERT INTO {_qid(table.name)} VALUES ({placeholders})",
            [tuple(_encode(v, self.dialect) for v in row) + (i,)
             for i, row in enumerate(table.rows)])

    # ----------------------------------------------------------- execution
    def execute(self, query: ast.Query) -> list[tuple[Value, ...]]:
        """Rendered-query results, decoded, in engine row order."""
        sql = to_sql(query, self.env, self.dialect)
        return self._con.fetch_all(sql)

    def execute_sql(self, sql: str) -> list[tuple[Value, ...]]:
        return self._con.fetch_all(sql)

    def close(self) -> None:
        self._con.close()

    def __enter__(self) -> "Oracle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Database connections the oracle executes against.

SQLite ships with the standard library and is always available.  DuckDB is
optional: when the module is not installed every DuckDB entry point skips
cleanly (``HAVE_DUCKDB`` mirrors the engine layer's ``HAVE_NUMPY`` gate),
and CI runs a leg with it installed so the dialect cannot rot.

Both adapters speak the same tiny surface — ``run`` (DDL / DML),
``insert_many`` (bulk parameterized insert) and ``fetch_all`` (query →
list of row tuples) — which is all :class:`repro.oracle.core.Oracle`
needs.  Driver exceptions are normalized to :class:`OracleError` so the
differential layer can treat "the database rejected our SQL" as a finding
rather than a crash.
"""

from __future__ import annotations

import sqlite3
from collections.abc import Sequence

from repro.errors import OracleError

try:  # pragma: no cover - exercised only where duckdb is installed
    import duckdb

    HAVE_DUCKDB = True
except ImportError:  # pragma: no cover
    duckdb = None
    HAVE_DUCKDB = False


class SqliteConnection:
    """An in-memory SQLite database."""

    db = "sqlite"

    def __init__(self) -> None:
        self._con = sqlite3.connect(":memory:")

    def run(self, sql: str, params: Sequence = ()) -> None:
        try:
            self._con.execute(sql, tuple(params))
        except sqlite3.Error as err:
            raise OracleError(f"sqlite: {err}") from err

    def insert_many(self, sql: str, rows: Sequence[Sequence]) -> None:
        try:
            self._con.executemany(sql, [tuple(r) for r in rows])
        except sqlite3.Error as err:
            raise OracleError(f"sqlite: {err}") from err

    def fetch_all(self, sql: str) -> list[tuple]:
        try:
            return [tuple(r) for r in self._con.execute(sql).fetchall()]
        except sqlite3.Error as err:
            raise OracleError(f"sqlite: {err}") from err

    def close(self) -> None:
        self._con.close()


class DuckdbConnection:
    """An in-memory DuckDB database (requires the ``duckdb`` module)."""

    db = "duckdb"

    def __init__(self) -> None:
        if not HAVE_DUCKDB:
            raise OracleError(
                "duckdb is not installed; install it or use the sqlite oracle")
        self._con = duckdb.connect(":memory:")

    def run(self, sql: str, params: Sequence = ()) -> None:
        try:
            self._con.execute(sql, tuple(params))
        except duckdb.Error as err:
            raise OracleError(f"duckdb: {err}") from err

    def insert_many(self, sql: str, rows: Sequence[Sequence]) -> None:
        try:
            self._con.executemany(sql, [tuple(r) for r in rows])
        except duckdb.Error as err:
            raise OracleError(f"duckdb: {err}") from err

    def fetch_all(self, sql: str) -> list[tuple]:
        try:
            return [tuple(r) for r in self._con.execute(sql).fetchall()]
        except duckdb.Error as err:
            raise OracleError(f"duckdb: {err}") from err

    def close(self) -> None:
        self._con.close()


def connect(db: str):
    """A fresh in-memory connection for dialect driver ``db``."""
    if db == "sqlite":
        return SqliteConnection()
    if db == "duckdb":
        return DuckdbConnection()
    raise OracleError(f"unknown oracle database {db!r}")

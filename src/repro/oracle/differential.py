"""Differential checking of the engine against a database, with shrinking.

:func:`check_query` runs one (query, env) through both sides and
classifies the result:

* ``ok`` — both sides produced a result and every cell matched under
  ``table.values`` semantics (positionally: the renderer's ordinal
  threading makes database row order the engine's row order);
* ``skipped`` — the case is outside the comparison's domain: the engine
  itself rejected the plan as ill-typed on the data (the same error set
  batched evaluation tolerates), or the env holds values SQL cannot
  represent (:class:`OracleUnsupportedError`);
* ``mismatch`` — everything was in-domain and the sides still disagreed:
  differing cells, a database error on an engine-accepted plan, or a
  renderer failure.  These are findings, never skips.

A mismatch on a deep fuzz plan over two 8-row tables is a poor bug
report, so :func:`minimize` shrinks it: greedy subtree splicing and
parameter simplification on the query, then ddmin-style row removal on
the input tables — re-checking against a fresh oracle at every step and
keeping any transformation that still mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import OracleError, OracleUnsupportedError, SqlRenderError
from repro.lang import ast
from repro.lang.predicates import AndPred, TruePred
from repro.lang.sql_render import Dialect, resolve_dialect, to_sql
from repro.table.table import Table
from repro.table.values import Value

from repro.oracle.core import Oracle, rows_differ

#: Engine-side errors that mark a plan ill-typed on the data rather than
#: wrong — the same set batched evaluation tolerates (``errors="none"``).
ENGINE_ERRORS = (TypeError, ValueError, ZeroDivisionError)


@dataclass
class Mismatch:
    """One engine-vs-database disagreement, with everything needed to replay."""

    query: ast.Query
    env: ast.Env
    dialect: Dialect
    sql: str | None
    reason: str
    engine_rows: tuple | None = None
    db_rows: tuple | None = None

    def describe(self) -> str:
        from repro.lang import to_instructions

        lines = [f"oracle mismatch on {self.dialect.name}: {self.reason}"]
        for table in self.env.tables:
            lines.append(f"input {table.name!r} "
                         f"({table.n_rows}x{table.n_cols}): "
                         f"{[list(r) for r in table.rows]}")
        lines.append("plan:")
        lines.extend("  " + line
                     for line in to_instructions(self.query,
                                                 self.env).splitlines())
        if self.sql is not None:
            lines.append("sql:")
            lines.extend("  " + line for line in self.sql.splitlines())
        if self.engine_rows is not None:
            lines.append(f"engine rows: {[list(r) for r in self.engine_rows]}")
        if self.db_rows is not None:
            lines.append(f"database rows: {[list(r) for r in self.db_rows]}")
        return "\n".join(lines)


@dataclass
class Outcome:
    status: str                   # "ok" | "skipped" | "mismatch"
    mismatch: Mismatch | None = None
    skip_reason: str | None = None

    @property
    def compared(self) -> bool:
        return self.status != "skipped"


def check_query(query: ast.Query, env: ast.Env,
                dialect: str | Dialect = "sqlite",
                oracle: Oracle | None = None,
                engine=None) -> Outcome:
    """Differential-check one plan; see the module docstring for statuses.

    Pass ``oracle`` to reuse a loaded database across many queries over
    the same env (the registry sweep); without it a fresh in-memory
    database is loaded and torn down per call (the fuzz sweep, where
    every case has its own env).
    """
    resolved = resolve_dialect(dialect)
    if engine is None:
        from repro.engine import RowEngine

        engine = RowEngine()
    try:
        expected = engine.evaluate(query, env)
    except ENGINE_ERRORS as err:
        return Outcome("skipped",
                       skip_reason=f"engine: {type(err).__name__}: {err}")

    own_oracle = oracle is None
    if own_oracle:
        try:
            oracle = Oracle(env, resolved)
        except OracleUnsupportedError as err:
            return Outcome("skipped", skip_reason=f"unsupported env: {err}")
    try:
        try:
            sql = to_sql(query, env, oracle.dialect)
        except SqlRenderError as err:
            mismatch = Mismatch(query, env, resolved, None,
                                f"render error: {err}",
                                engine_rows=expected.rows)
            return Outcome("mismatch", mismatch=mismatch)
        try:
            db_rows = oracle.execute_sql(sql)
        except OracleError as err:
            mismatch = Mismatch(query, env, resolved, sql,
                                f"database error: {err}",
                                engine_rows=expected.rows)
            return Outcome("mismatch", mismatch=mismatch)
        reason = rows_differ(expected.rows, db_rows)
        if reason is not None:
            mismatch = Mismatch(query, env, resolved, sql, reason,
                                engine_rows=expected.rows,
                                db_rows=tuple(db_rows))
            return Outcome("mismatch", mismatch=mismatch)
        return Outcome("ok")
    finally:
        if own_oracle:
            oracle.close()


# ------------------------------------------------------------- minimization

def _paths(query: ast.Query, path: tuple[int, ...] = ()):
    yield path, query
    for i, child in enumerate(query.child_queries()):
        yield from _paths(child, path + (i,))


def _replace_at(query: ast.Query, path: tuple[int, ...],
                node: ast.Query) -> ast.Query:
    if not path:
        return node
    children = list(query.child_queries())
    children[path[0]] = _replace_at(children[path[0]], path[1:], node)
    return query.with_children(tuple(children))


def _simplified_params(node: ast.Query) -> list[ast.Query]:
    """Cheaper variants of one node (children untouched)."""
    out: list[ast.Query] = []
    pred = getattr(node, "pred", None)
    if isinstance(pred, AndPred):
        out.extend(replace(node, pred=p) for p in pred.parts)
    if pred is not None and not isinstance(pred, TruePred):
        if isinstance(node, ast.Join):
            out.append(replace(node, pred=None))
        else:
            out.append(replace(node, pred=TruePred()))
    keys = getattr(node, "keys", None)
    if keys:
        out.append(replace(node, keys=()))
        if len(keys) > 1:
            out.extend(replace(node, keys=(k,)) for k in keys)
    if isinstance(node, (ast.Sort, ast.Proj)) and len(node.cols) > 1:
        out.extend(replace(node, cols=(c,)) for c in node.cols)
    if isinstance(node, ast.Sort) and not node.ascending:
        out.append(replace(node, ascending=True))
    return out


def _query_candidates(query: ast.Query) -> list[ast.Query]:
    """Strictly simpler plans to try, most aggressive first."""
    out: list[ast.Query] = []
    for path, node in _paths(query):
        for child in node.child_queries():
            out.append(_replace_at(query, path, child))
    for path, node in _paths(query):
        for simpler in _simplified_params(node):
            out.append(_replace_at(query, path, simpler))
    # A "simplification" that reproduces the current plan would loop the
    # greedy fixpoint forever.
    return [c for c in out if c != query]


def _with_rows(env: ast.Env, table_idx: int,
               rows: tuple[tuple[Value, ...], ...]) -> ast.Env:
    old = env.tables[table_idx]
    new = Table.from_rows(old.name, old.columns, rows,
                          primary_key=old.schema.primary_key,
                          foreign_keys=old.schema.foreign_keys)
    tables = list(env.tables)
    tables[table_idx] = new
    return ast.Env(tuple(tables))


def _shrink_rows(query: ast.Query, env: ast.Env, dialect, engine,
                 still_fails) -> ast.Env:
    """ddmin-lite: drop ever-smaller row chunks from each input table."""
    for idx in range(len(env.tables)):
        chunk = max(1, len(env.tables[idx].rows) // 2)
        while chunk >= 1:
            i = 0
            while i < len(env.tables[idx].rows):
                rows = env.tables[idx].rows
                candidate_rows = rows[:i] + rows[i + chunk:]
                candidate = _with_rows(env, idx, candidate_rows)
                if still_fails(query, candidate):
                    env = candidate
                else:
                    i += chunk
            chunk //= 2
    return env


def minimize(mismatch: Mismatch, engine=None) -> Mismatch:
    """A smaller plan/env still failing the differential check.

    Greedy fixpoint: try every subtree splice and parameter
    simplification, restart from the first that still mismatches; then
    shrink input rows.  Every candidate runs against a fresh in-memory
    database, so minimization is slow-ish but deterministic.
    """
    if engine is None:
        from repro.engine import RowEngine

        engine = RowEngine()
    dialect = mismatch.dialect

    best: Mismatch = mismatch

    def still_fails(query: ast.Query, env: ast.Env) -> bool:
        nonlocal best
        outcome = check_query(query, env, dialect, engine=engine)
        if outcome.status == "mismatch":
            best = outcome.mismatch
            return True
        return False

    query, env = mismatch.query, mismatch.env
    progress = True
    while progress:
        progress = False
        for candidate in _query_candidates(query):
            if still_fails(candidate, env):
                query = candidate
                progress = True
                break
    env = _shrink_rows(query, env, dialect, engine, still_fails)
    # One more query pass: smaller inputs can unlock further splices.
    progress = True
    while progress:
        progress = False
        for candidate in _query_candidates(query):
            if still_fails(candidate, env):
                query = candidate
                progress = True
                break
    still_fails(query, env)     # leave `best` describing the final state
    return best

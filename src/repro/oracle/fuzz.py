"""Seeded random plan generators for the differential harnesses.

Two profiles share one module because they share structure but not goals:

* The **backend profile** (``fuzz_case``) is the cross-backend harness's
  generator, moved here verbatim from ``tests/test_backend_fuzz.py`` so the
  oracle layer and the test suite draw from one source.  It is openly
  adversarial — mixed-dtype columns, NUL strings, ints past int64,
  tolerance-tripping floats — because the in-process backends must agree on
  *everything* representable.  Its RNG call order is load-bearing: seeded
  cases are reproduced from their printed seed alone, so any edit here
  invalidates recorded failures.

* The **SQL profile** (``sql_fuzz_case``) generates plans inside the
  oracle's portable domain: single-typed columns, type-matched predicates,
  kind-restricted aggregates, value pools that avoid the places where SQL
  and the engine legitimately diverge (storage affinity on mixed columns,
  int64 overflow — silent in SQLite — float tolerance trippers).  Plans
  are grown incrementally against the row engine so that every generated
  case actually evaluates, keeping the compared-case rate high instead of
  skipping half the corpus on type errors.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.naming import output_columns
from repro.lang.predicates import AndPred, ColCmp, ConstCmp, TruePred
from repro.table.table import Table
from repro.table.values import Value

AGG_FUNCS = ("sum", "avg", "max", "min", "count")
ANALYTIC_FUNCS = ("sum", "avg", "max", "min", "count", "cumsum", "cummax",
                  "cummin", "cumavg", "rank", "dense_rank", "rank_desc",
                  "dense_rank_desc")
ARITH_FUNCS = ("add", "sub", "mul", "div", "percent", "pct_change")
COMPARISON_OPS = ("==", "<", ">", "<=", ">=", "!=")

# ---------------------------------------------------------------------------
# Backend profile (cross-backend differential; adversarial value domain).
# ---------------------------------------------------------------------------

#: Value pools chosen to trip every classification and comparison edge:
#: int/float collisions (2 vs 2.0), float pairs inside and outside the
#: 1e-9 equality tolerance, ints beyond the int64-exactness bound, empty
#: strings, bools (same Python value as 0/1, different sort class).
INT_POOL = (0, 1, 2, 3, -1, -7, 10, 100, 10**12, 10**12 + 1, 2**53 + 1,
            -(2**53) - 3)
FLOAT_POOL = (0.0, -0.0, 1.0, 2.0, 2.5, -1.5, 0.1 + 0.2, 0.3, 1e-10,
              -1e-10, 1e12, 1e12 + 0.001, 3.0000000001, 3.0)
STR_POOL = ("a", "b", "cc", "d", "", "A", "ab", "a\x00", "\x00")
COLUMN_KINDS = ("int", "float", "str", "bool", "mixed")


def random_value(rng, kind: str, none_p: float = 0.2):
    if rng.random() < none_p:
        return None
    if kind == "mixed":
        kind = rng.choice(("int", "float", "str", "bool"))
    if kind == "int":
        return rng.choice(INT_POOL)
    if kind == "float":
        return rng.choice(FLOAT_POOL)
    if kind == "bool":
        return rng.random() < 0.5
    return rng.choice(STR_POOL)


def random_table(rng, name: str) -> Table:
    n_rows = rng.randrange(0, 9)       # 0 rows: empty-table edge case
    n_cols = rng.randrange(1, 5)
    kinds = [rng.choice(COLUMN_KINDS) for _ in range(n_cols)]
    # Low per-column None probability keeps most columns typed under the
    # NumPy backend while still exercising the object escape hatch.
    none_p = rng.choice((0.0, 0.0, 0.15, 0.5))
    rows = [tuple(random_value(rng, kinds[j], none_p) for j in range(n_cols))
            for _ in range(n_rows)]
    return Table.from_rows(name, [f"c{j}" for j in range(n_cols)], rows)


def random_pred(rng, n_cols: int):
    roll = rng.random()
    if roll < 0.4:
        return ConstCmp(rng.randrange(n_cols), rng.choice(COMPARISON_OPS),
                        random_value(rng, "mixed", none_p=0.1))
    if roll < 0.75:
        return ColCmp(rng.randrange(n_cols), rng.choice(COMPARISON_OPS),
                      rng.randrange(n_cols))
    if roll < 0.9:
        return AndPred((ConstCmp(rng.randrange(n_cols),
                                 rng.choice(COMPARISON_OPS),
                                 random_value(rng, "mixed", none_p=0.1)),
                        ColCmp(rng.randrange(n_cols),
                               rng.choice(COMPARISON_OPS),
                               rng.randrange(n_cols))))
    return TruePred()


def _width(query: ast.Query, env: ast.Env) -> int:
    return len(output_columns(query, env))


def random_plan(rng, env: ast.Env, depth: int) -> ast.Query:
    query: ast.Query = ast.TableRef(rng.choice(env.names()))
    for _ in range(depth):
        n_cols = _width(query, env)
        op = rng.choice(("filter", "sort", "proj", "group", "group",
                         "partition", "partition", "arith", "join",
                         "leftjoin"))
        if op == "filter":
            query = ast.Filter(query, random_pred(rng, n_cols))
        elif op == "sort":
            width = rng.randrange(1, min(n_cols, 3) + 1)
            query = ast.Sort(query,
                             tuple(rng.sample(range(n_cols), width)),
                             rng.random() < 0.5)
        elif op == "proj":
            width = rng.randrange(1, n_cols + 1)
            query = ast.Proj(query,
                             tuple(rng.sample(range(n_cols), width)))
        elif op == "group":
            keys = tuple(sorted(rng.sample(range(n_cols),
                                           rng.randrange(0, n_cols))))
            query = ast.Group(query, keys, rng.choice(AGG_FUNCS),
                              rng.randrange(n_cols))
        elif op == "partition":
            keys = tuple(sorted(rng.sample(range(n_cols),
                                           rng.randrange(0, n_cols))))
            query = ast.Partition(query, keys, rng.choice(ANALYTIC_FUNCS),
                                  rng.randrange(n_cols))
        elif op == "arith":
            query = ast.Arithmetic(query, rng.choice(ARITH_FUNCS),
                                   (rng.randrange(n_cols),
                                    rng.randrange(n_cols)))
        elif op in ("join", "leftjoin"):
            other = ast.TableRef(rng.choice(env.names()))
            total = n_cols + _width(other, env)
            if op == "join":
                pred = None if rng.random() < 0.3 else random_pred(rng, total)
                query = ast.Join(query, other, pred)
            else:
                query = ast.LeftJoin(query, other, random_pred(rng, total))
    return query


def fuzz_case(label: str, seed: int):
    """(rng, env, query) of one seeded backend-profile case."""
    from repro.util.rng import stable_rng

    rng = stable_rng(label, seed)
    tables = [random_table(rng, "T"), random_table(rng, "S")]
    env = ast.Env(tuple(tables))
    return rng, env, random_plan(rng, env, rng.randrange(1, 6))


# ---------------------------------------------------------------------------
# SQL profile (database differential; portable value domain).
# ---------------------------------------------------------------------------

#: Moderate magnitudes: op chains square values repeatedly (``mul`` on a
#: derived column), and SQLite *silently wraps* int64 overflow where the
#: engine promotes to bigint — that divergence is real but unfixable, so
#: the profile stays far from the cliff and the growth loop rejects any
#: step whose intermediate ints leave the safe band.
SQL_INT_POOL = (0, 1, 2, 3, -1, -7, 10, 100, 1000, 12345)
#: Dyadic / short-decimal floats: exactly representable arithmetic, no
#: pairs engineered to straddle the 1e-9 equality tolerance.
SQL_FLOAT_POOL = (0.0, 1.0, 2.0, 2.5, -1.5, 0.25, 3.5, 100.0, -0.5)
#: No NUL bytes, nothing numeric-looking (TEXT-affinity coercion); quote
#: characters on purpose — literal escaping is under test.
SQL_STR_POOL = ("a", "b", "cc", "d", "A", "ab", "O'Brien", 'say "hi"',
                "x y", "")
#: Booleans rare: one kind slot among many (they survive the round trip
#: only through bool/int affinity on SQLite, so a little goes a long way).
SQL_COLUMN_KINDS = ("int", "float", "str", "int", "float", "str", "bool")

#: Intermediate-int safety band, comfortably inside int64.
_SAFE_INT = 2**62

_NUMERIC = ("int", "float")
#: Aggregate / analytic argument kinds the engine and SQL agree on.
_AGG_KINDS = {"sum": _NUMERIC, "avg": _NUMERIC,
              "max": _NUMERIC + ("str",), "min": _NUMERIC + ("str",),
              "count": _NUMERIC + ("str", "bool")}
_ANALYTIC_KINDS = {**_AGG_KINDS,
                   "cumsum": _NUMERIC, "cumavg": _NUMERIC,
                   "cummax": _NUMERIC + ("str",),
                   "cummin": _NUMERIC + ("str",),
                   "rank": _NUMERIC + ("str",),
                   "dense_rank": _NUMERIC + ("str",),
                   "rank_desc": _NUMERIC + ("str",),
                   "dense_rank_desc": _NUMERIC + ("str",)}


def sql_value(rng, kind: str, none_p: float = 0.15):
    if rng.random() < none_p:
        return None
    if kind == "int":
        return rng.choice(SQL_INT_POOL)
    if kind == "float":
        return rng.choice(SQL_FLOAT_POOL)
    if kind == "bool":
        return rng.random() < 0.5
    return rng.choice(SQL_STR_POOL)


def sql_table(rng, name: str) -> tuple[Table, list[str]]:
    """A single-typed-column table and its per-column kinds."""
    n_rows = rng.randrange(0, 9)
    n_cols = rng.randrange(1, 5)
    kinds = [rng.choice(SQL_COLUMN_KINDS) for _ in range(n_cols)]
    none_p = rng.choice((0.0, 0.0, 0.1, 0.3))
    rows = [tuple(sql_value(rng, kinds[j], none_p) for j in range(n_cols))
            for _ in range(n_rows)]
    return Table.from_rows(name, [f"c{j}" for j in range(n_cols)],
                           rows), kinds


def _compatible(a: str, b: str) -> bool:
    if a in _NUMERIC and b in _NUMERIC:
        return True
    return a == b


def sql_pred(rng, kinds: list[str]):
    """A type-matched predicate over columns with the given kinds."""
    roll = rng.random()
    if roll < 0.9:
        col = rng.randrange(len(kinds))
        kind = kinds[col]
        partners = [j for j in range(len(kinds))
                    if j != col and _compatible(kind, kinds[j])]
        use_colcmp = partners and roll > 0.45
        if use_colcmp:
            first = ColCmp(col, rng.choice(COMPARISON_OPS),
                           rng.choice(partners))
        else:
            const_kind = rng.choice(_NUMERIC) if kind in _NUMERIC else kind
            first = ConstCmp(col, rng.choice(COMPARISON_OPS),
                             sql_value(rng, const_kind, none_p=0.05))
        if roll < 0.2:
            return AndPred((first, sql_pred(rng, kinds)))
        return first
    return TruePred()


def _result_kind(func: str, arg_kind: str) -> str:
    if func in ("count", "rank", "dense_rank", "rank_desc",
                "dense_rank_desc"):
        return "int"
    if func in ("avg", "cumavg"):
        return "float"
    return arg_kind        # sum / min / max / cum{sum,max,min}


def _values_in_band(table: Table) -> bool:
    for row in table.rows:
        for v in row:
            if isinstance(v, bool) or v is None:
                continue
            if isinstance(v, int) and not -_SAFE_INT <= v <= _SAFE_INT:
                return False
            if isinstance(v, float) and (v != v or abs(v) == float("inf")):
                return False
    return True


def _grow(rng, env: ast.Env, query: ast.Query,
          kinds: list[str], table_kinds: dict[str, list[str]]):
    """One more operator on ``query``, or None when the step is rejected."""
    n_cols = len(kinds)
    op = rng.choice(("filter", "sort", "proj", "group", "group",
                     "partition", "partition", "arith", "arith", "join",
                     "leftjoin"))
    if op == "filter":
        return ast.Filter(query, sql_pred(rng, kinds)), kinds
    if op == "sort":
        width = rng.randrange(1, min(n_cols, 3) + 1)
        return ast.Sort(query, tuple(rng.sample(range(n_cols), width)),
                        rng.random() < 0.5), kinds
    if op == "proj":
        width = rng.randrange(1, n_cols + 1)
        picked = rng.sample(range(n_cols), width)
        return ast.Proj(query, tuple(picked)), [kinds[c] for c in picked]
    if op == "group":
        func = rng.choice(AGG_FUNCS)
        targets = [j for j in range(n_cols) if kinds[j] in _AGG_KINDS[func]]
        if not targets:
            return None
        col = rng.choice(targets)
        keys = tuple(sorted(rng.sample(range(n_cols),
                                       rng.randrange(0, n_cols))))
        return (ast.Group(query, keys, func, col),
                [kinds[k] for k in keys] + [_result_kind(func, kinds[col])])
    if op == "partition":
        func = rng.choice(ANALYTIC_FUNCS)
        targets = [j for j in range(n_cols)
                   if kinds[j] in _ANALYTIC_KINDS[func]]
        if not targets:
            return None
        col = rng.choice(targets)
        keys = tuple(sorted(rng.sample(range(n_cols),
                                       rng.randrange(0, n_cols))))
        return (ast.Partition(query, keys, func, col),
                kinds + [_result_kind(func, kinds[col])])
    if op == "arith":
        numeric = [j for j in range(n_cols) if kinds[j] in _NUMERIC]
        if not numeric:
            return None
        func = rng.choice(ARITH_FUNCS)
        a, b = rng.choice(numeric), rng.choice(numeric)
        if func in ("div", "percent", "pct_change"):
            out = "float"
        else:
            out = "float" if "float" in (kinds[a], kinds[b]) else "int"
        return ast.Arithmetic(query, func, (a, b)), kinds + [out]
    # join / leftjoin against a base table
    name = rng.choice(env.names())
    other_kinds = table_kinds[name]
    total_kinds = kinds + other_kinds
    if op == "join":
        pred = (None if rng.random() < 0.3
                else sql_pred(rng, total_kinds))
        return ast.Join(query, ast.TableRef(name), pred), total_kinds
    return (ast.LeftJoin(query, ast.TableRef(name),
                         sql_pred(rng, total_kinds)), total_kinds)


def sql_fuzz_case(label: str, seed: int):
    """(env, query) of one seeded SQL-profile case.

    The plan is grown operator by operator; a step is kept only when the
    row engine evaluates the extended plan without error and every
    intermediate value stays in the oracle's portable band.  Each growth
    step gets a couple of retries, so nearly every case reaches useful
    depth and nearly none is skipped downstream.
    """
    from repro.engine import RowEngine
    from repro.util.rng import stable_rng

    rng = stable_rng(label, seed)
    tables, table_kinds = [], {}
    for name in ("T", "S"):
        table, kinds = sql_table(rng, name)
        tables.append(table)
        table_kinds[name] = kinds
    env = ast.Env(tuple(tables))
    engine = RowEngine()

    root = rng.choice(env.names())
    query: ast.Query = ast.TableRef(root)
    kinds = list(table_kinds[root])
    depth = rng.randrange(1, 6)
    for _ in range(depth):
        for _attempt in range(3):
            grown = _grow(rng, env, query, kinds, table_kinds)
            if grown is None:
                continue
            candidate, candidate_kinds = grown
            try:
                result = engine.evaluate(candidate, env)
            except (TypeError, ValueError, ZeroDivisionError):
                continue
            if not _values_in_band(result):
                continue
            query, kinds = candidate, candidate_kinds
            break
    return env, query

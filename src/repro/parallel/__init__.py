"""Sharded parallel synthesis (``SynthesisConfig.workers > 1``).

The skeleton worklist is partitioned by a :class:`ShardPlanner`, each shard
is searched by a worker owning its own evaluation engine
(:mod:`repro.parallel.worker`), and the per-lane event traces are replayed
into the exact serial search order (:mod:`repro.parallel.merge`) — ranked
output and search counters are byte-identical to the serial run regardless
of worker count, shard strategy or completion order.

Layering: this package sits beside ``repro.experiments``, *above*
``repro.synthesis`` — it orchestrates the serial building blocks
(skeleton construction, hole domains, consistency checks) and never
reaches around them.

::

                     ┌────────────── ShardPlanner ──────────────┐
      skeletons ──►  │ shard 0        shard 1      …    shard N │
                     └────┬──────────────┬──────────────────┬───┘
                          ▼              ▼                  ▼
                     worker 0        worker 1     …     worker N
                    (own engine)    (own engine)       (own engine)
                          │              │                  │
                          └── per-lane event traces + stats ┘
                                         ▼
                            replay merge (serial order)
                                         ▼
                      ranked queries + SearchStats.merge telemetry
"""

from repro.parallel.coordinator import parallel_enumerate, parallel_resume
from repro.parallel.executor import CancelToken, NO_LIMIT, resolve_shm, \
    run_payloads, run_shards
from repro.parallel.merge import replay_merge
from repro.parallel.plan_cache import LocalPlanCache, ProcessPlanCache
from repro.parallel.planner import ShardPlan, ShardPlanner, estimated_lane_cost
from repro.parallel.worker import LaneTrace, ShardOutcome, run_shard

__all__ = [
    "parallel_enumerate", "parallel_resume",
    "ShardPlanner", "ShardPlan", "estimated_lane_cost",
    "run_shards", "run_payloads", "run_shard", "CancelToken", "NO_LIMIT",
    "LaneTrace", "ShardOutcome", "replay_merge",
    "resolve_shm", "LocalPlanCache", "ProcessPlanCache",
]

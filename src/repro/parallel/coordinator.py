"""The sharded-search entry point: plan → workers → deterministic merge."""

from __future__ import annotations

from repro.engine.base import EngineStats
from repro.lang import ast
from repro.parallel.executor import run_payloads, run_shards
from repro.parallel.merge import replay_merge
from repro.parallel.planner import ShardPlanner, estimated_lane_cost
from repro.provenance.demo import Demonstration
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.enumerator import SearchStats, SynthesisResult
from repro.synthesis.skeletons import construct_skeletons
from repro.synthesis.stop import StopSpec
from repro.util.timer import Stopwatch


def parallel_enumerate(env: ast.Env, demo: Demonstration,
                       config: SynthesisConfig, abstraction_spec: str,
                       stop_spec: StopSpec | None = None,
                       cancel_export=None,
                       ) -> SynthesisResult:
    """Run Algorithm 1 sharded across ``config.workers`` workers.

    Queries are returned in serial discovery order (the caller ranks them,
    exactly as after ``enumerate_queries``); ``result.stats`` carries the
    serial-equivalent counters, ``result.raw_stats`` the total work the
    shards actually performed, and ``result.engine_stats`` the summed
    cache traffic of every worker's engine.  ``cancel_export`` receives
    the run's shared cancel token (a live session's cancellation hook).
    """
    if config.strategy != "sized_dfs":
        raise ValueError("sharded search requires strategy='sized_dfs'")
    watch = Stopwatch()
    skeletons = construct_skeletons(env, config)
    plan = ShardPlanner(config.workers, config.shard_strategy).plan(skeletons)
    outcomes, dispatch = run_shards(plan, skeletons, env, demo, config,
                                    abstraction_spec, stop_spec,
                                    executor=config.parallel_executor,
                                    cancel_export=cancel_export)
    result = replay_merge(outcomes, config, has_stop=stop_spec is not None)
    result.workers = config.workers
    result.raw_stats = SearchStats.merge(*(o.stats for o in outcomes))
    result.engine_stats = EngineStats.merge(*(o.engine_stats for o in outcomes))
    # Coordinator-side dispatch telemetry (the env layout segments) folds
    # into the same counters the workers' publishes advanced.
    result.engine_stats.shm_segments += dispatch.shm_segments
    result.engine_stats.shm_bytes_shipped += dispatch.shm_bytes_shipped
    result.stats.elapsed_s = watch.elapsed()
    return result


def parallel_resume(lanes, env: ast.Env, demo: Demonstration,
                    config: SynthesisConfig, run_config: SynthesisConfig,
                    abstraction_spec: str, stop_spec: StopSpec | None,
                    base: SynthesisResult, cancel_export=None,
                    ) -> SynthesisResult:
    """Continue a partially consumed serial search on shard workers.

    ``lanes`` is a session worklist exported at a round boundary
    (``(lane_id, stack)`` pairs, seed order); ``base`` carries the prefix
    already searched serially — its queries and counters.  The live stacks
    are sharded by their *remaining* estimated cost (a half-drained lane is
    cheaper than its skeleton suggests), searched seeded, and the replay
    merge extends ``base`` to exactly the state the uninterrupted serial
    run would have reached.

    ``config`` is the original run's config (merge cutoffs are run-wide);
    ``run_config`` is what the workers execute under — the caller shrinks
    its budgets to the unconsumed remainder, since worker-local counters
    restart at zero.
    """
    if config.strategy != "sized_dfs":
        raise ValueError("sharded search requires strategy='sized_dfs'")
    watch = Stopwatch()
    costs = [sum(estimated_lane_cost(query) for query in stack)
             for _, stack in lanes]
    plan = ShardPlanner(config.workers, config.shard_strategy).plan_weighted(
        costs, [lane_id for lane_id, _ in lanes])
    payloads = [tuple(lanes[idx] for idx in shard) for shard in plan.shards]
    outcomes, dispatch = run_payloads(payloads, env, demo, run_config,
                                      abstraction_spec, stop_spec,
                                      executor=run_config.parallel_executor,
                                      seeded=True,
                                      cancel_export=cancel_export)
    result = replay_merge(outcomes, config, has_stop=stop_spec is not None,
                          base=base)
    result.workers = config.workers
    result.raw_stats = SearchStats.merge(*(o.stats for o in outcomes))
    result.engine_stats = EngineStats.merge(*(o.engine_stats for o in outcomes))
    result.engine_stats.shm_segments += dispatch.shm_segments
    result.engine_stats.shm_bytes_shipped += dispatch.shm_bytes_shipped
    result.stats.elapsed_s = watch.elapsed()
    return result

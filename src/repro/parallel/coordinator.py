"""The sharded-search entry point: plan → workers → deterministic merge."""

from __future__ import annotations

from repro.engine.base import EngineStats
from repro.lang import ast
from repro.parallel.executor import run_shards
from repro.parallel.merge import replay_merge
from repro.parallel.planner import ShardPlanner
from repro.provenance.demo import Demonstration
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.enumerator import SearchStats, SynthesisResult
from repro.synthesis.skeletons import construct_skeletons
from repro.synthesis.stop import StopSpec
from repro.util.timer import Stopwatch


def parallel_enumerate(env: ast.Env, demo: Demonstration,
                       config: SynthesisConfig, abstraction_spec: str,
                       stop_spec: StopSpec | None = None,
                       ) -> SynthesisResult:
    """Run Algorithm 1 sharded across ``config.workers`` workers.

    Queries are returned in serial discovery order (the caller ranks them,
    exactly as after ``enumerate_queries``); ``result.stats`` carries the
    serial-equivalent counters, ``result.raw_stats`` the total work the
    shards actually performed, and ``result.engine_stats`` the summed
    cache traffic of every worker's engine.
    """
    if config.strategy != "sized_dfs":
        raise ValueError("sharded search requires strategy='sized_dfs'")
    watch = Stopwatch()
    skeletons = construct_skeletons(env, config)
    plan = ShardPlanner(config.workers, config.shard_strategy).plan(skeletons)
    outcomes, dispatch = run_shards(plan, skeletons, env, demo, config,
                                    abstraction_spec, stop_spec,
                                    executor=config.parallel_executor)
    result = replay_merge(outcomes, config, has_stop=stop_spec is not None)
    result.workers = config.workers
    result.raw_stats = SearchStats.merge(*(o.stats for o in outcomes))
    result.engine_stats = EngineStats.merge(*(o.engine_stats for o in outcomes))
    # Coordinator-side dispatch telemetry (the env layout segments) folds
    # into the same counters the workers' publishes advanced.
    result.engine_stats.shm_segments += dispatch.shm_segments
    result.engine_stats.shm_bytes_shipped += dispatch.shm_bytes_shipped
    result.stats.elapsed_s = watch.elapsed()
    return result

"""Run shard workers: one OS process per shard, threads, or in-process.

The three vehicles share the worker function and the cancel-token protocol,
so they are semantically interchangeable — ``serial`` is the reference the
other two must match (and the differential tests hold them to it):

* ``process`` — true parallelism; workers are forked where available
  (payloads inherited, no pickling) and spawned otherwise (payloads must
  pickle — use :class:`~repro.synthesis.stop.StopSpec` rather than bare
  closures).  Results always travel back pickled through a queue.
* ``thread`` — GIL-bound (no wall-clock win for this CPU-bound loop) but
  cheap and portable; the fallback for platforms without ``fork`` and the
  workhorse for the determinism test suite.
* ``serial`` — shards run one after another in the calling thread.

Cancellation is a single shared *round limit*: when a worker's stop
predicate fires in round ``r`` it proposes ``r``; the limit is the minimum
of all proposals and every worker stops once it has completed that round —
the earliest point at which the merge provably needs no further events.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import traceback

from repro.parallel.planner import ShardPlan
from repro.parallel.worker import ShardOutcome, run_shard
from repro.util.timer import Deadline

#: "No limit yet" sentinel — far beyond any reachable round count.
NO_LIMIT = 2 ** 62


class CancelToken:
    """In-process shared round limit (serial and thread executors)."""

    def __init__(self) -> None:
        self._limit = NO_LIMIT
        self._lock = threading.Lock()

    def limit(self) -> int:
        return self._limit

    def propose(self, round_no: int) -> None:
        with self._lock:
            if round_no < self._limit:
                self._limit = round_no


class ProcessCancelToken:
    """Cross-process shared round limit backed by a synchronized Value."""

    def __init__(self, ctx) -> None:
        self._value = ctx.Value("q", NO_LIMIT)

    def limit(self) -> int:
        # Locked read: a torn 64-bit load (32-bit platforms) racing a
        # propose() could mix NO_LIMIT's and a proposal's halves into a
        # bogus tiny limit and stop a worker before it covered anything.
        with self._value.get_lock():
            return self._value.value

    def propose(self, round_no: int) -> None:
        with self._value.get_lock():
            if round_no < self._value.value:
                self._value.value = round_no


def _guarded_run_shard(shard_id, lanes, env, demo, config, abstraction_spec,
                       stop_spec, cancel, deadline) -> ShardOutcome:
    """run_shard that reports failures instead of raising (or vanishing)."""
    try:
        return run_shard(shard_id, lanes, env, demo, config,
                         abstraction_spec, stop_spec, cancel, deadline)
    except Exception:
        return ShardOutcome(shard_id, error=traceback.format_exc())


def _process_main(shard_id, lanes, env, demo, config, abstraction_spec,
                  stop_spec, cancel, deadline, queue) -> None:
    queue.put(_guarded_run_shard(shard_id, lanes, env, demo, config,
                                 abstraction_spec, stop_spec, cancel,
                                 deadline))


def run_shards(plan: ShardPlan, skeletons, env, demo, config,
               abstraction_spec: str, stop_spec,
               executor: str | None = None) -> list[ShardOutcome]:
    """Execute every shard in ``plan``; outcomes ordered by shard id.

    ``skeletons`` is the canonical ``construct_skeletons`` list the plan
    indexes into; each shard receives its own ``(lane_id, skeleton)``
    payload so workers never recompute the enumeration.
    """
    executor = executor or config.parallel_executor
    payloads = [tuple((lane, skeletons[lane]) for lane in shard)
                for shard in plan.shards]
    # One wall-clock budget for the whole run: the serial executor's shards
    # run one after another and must share it, not each start afresh.
    # time.monotonic is system-wide on the platforms with fork, so the
    # absolute expiry crosses process boundaries intact.
    deadline = Deadline(config.timeout_s)
    if executor == "process":
        outcomes = _run_processes(payloads, env, demo, config,
                                  abstraction_spec, stop_spec, deadline)
    elif executor == "thread":
        outcomes = _run_threads(payloads, env, demo, config,
                                abstraction_spec, stop_spec, deadline)
    elif executor == "serial":
        cancel = CancelToken()
        outcomes = [_guarded_run_shard(i, lanes, env, demo, config,
                                       abstraction_spec, stop_spec, cancel,
                                       deadline)
                    for i, lanes in enumerate(payloads)]
    else:
        raise ValueError(f"unknown parallel_executor {executor!r}")

    outcomes.sort(key=lambda o: o.shard_id)
    errors = [o.error for o in outcomes if o.error]
    if errors:
        raise RuntimeError(
            f"{len(errors)} shard worker(s) failed; first failure:\n"
            + errors[0])
    return outcomes


def _run_threads(payloads, env, demo, config, abstraction_spec,
                 stop_spec, deadline) -> list[ShardOutcome]:
    cancel = CancelToken()
    outcomes: list[ShardOutcome | None] = [None] * len(payloads)

    def job(i: int, lanes) -> None:
        outcomes[i] = _guarded_run_shard(i, lanes, env, demo, config,
                                         abstraction_spec, stop_spec, cancel,
                                         deadline)

    threads = [threading.Thread(target=job, args=(i, lanes), daemon=True)
               for i, lanes in enumerate(payloads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [o for o in outcomes if o is not None]


def _run_processes(payloads, env, demo, config, abstraction_spec,
                   stop_spec, deadline) -> list[ShardOutcome]:
    # fork inherits the payload (tables, demo, closures) for free; spawn is
    # the portable fallback and needs every argument picklable.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    cancel = ProcessCancelToken(ctx)
    queue = ctx.SimpleQueue()
    procs = [ctx.Process(target=_process_main,
                         args=(i, lanes, env, demo, config, abstraction_spec,
                               stop_spec, cancel, deadline, queue),
                         daemon=True)
             for i, lanes in enumerate(payloads)]
    for proc in procs:
        proc.start()
    # Drain results before joining: a worker blocked on a full queue never
    # exits, so join-first would deadlock on large traces.  A worker that
    # dies without reporting (OOM kill, segfault, spawn unpickling failure)
    # never enqueues anything — _guarded_run_shard cannot catch those — so
    # poll liveness instead of blocking forever on the queue.
    outcomes: list[ShardOutcome] = []
    while len(outcomes) < len(procs):
        if not queue.empty():
            outcomes.append(queue.get())
            continue
        if all(not p.is_alive() for p in procs) and queue.empty():
            missing = len(procs) - len(outcomes)
            codes = sorted({p.exitcode for p in procs
                            if p.exitcode not in (0, None)})
            raise RuntimeError(
                f"{missing} shard worker(s) died without reporting a "
                f"result (exit codes: {codes or 'unknown'})")
        time.sleep(0.005)
    for proc in procs:
        proc.join()
    return outcomes

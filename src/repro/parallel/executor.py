"""Run shard workers: one OS process per shard, threads, or in-process.

The three vehicles share the worker function and the cancel-token protocol,
so they are semantically interchangeable — ``serial`` is the reference the
other two must match (and the differential tests hold them to it):

* ``process`` — true parallelism; workers are forked where available
  (payloads inherited, no pickling) and spawned otherwise (payloads must
  pickle — use :class:`~repro.synthesis.stop.StopSpec` rather than bare
  closures).  Results always travel back pickled through a queue.
* ``thread`` — GIL-bound (no wall-clock win for this CPU-bound loop) but
  cheap and portable; the fallback for platforms without ``fork`` and the
  workhorse for the determinism test suite.
* ``serial`` — shards run one after another in the calling thread.

With shared memory enabled (:func:`resolve_shm`), the process executor
ships each worker an :class:`~repro.engine.shm.EnvHandle` — segment name,
schemas, row masks; a few hundred bytes — instead of the pickled input
tables, and stands up the cross-shard sub-plan cache
(:mod:`repro.parallel.plan_cache`).  ``REPRO_START_METHOD`` forces the
process start method (the CI spawn job); ``REPRO_SHM`` overrides the
``config.shm`` knob.

Cancellation is a single shared *round limit*: when a worker's stop
predicate fires in round ``r`` it proposes ``r``; the limit is the minimum
of all proposals and every worker stops once it has completed that round —
the earliest point at which the merge provably needs no further events.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback

from repro.engine import shm
from repro.parallel.plan_cache import LocalPlanCache, ProcessPlanCache
from repro.parallel.planner import ShardPlan
from repro.parallel.worker import ShardOutcome, run_shard
from repro.util.timer import Deadline

#: "No limit yet" sentinel — far beyond any reachable round count.
NO_LIMIT = 2 ** 62


def resolve_shm(config, executor: str) -> bool:
    """Whether this run uses shared-memory dispatch / sub-plan caching.

    The ``REPRO_SHM`` environment variable (``on`` / ``off`` / ``auto``)
    overrides ``config.shm``; ``auto`` enables shm exactly where it pays —
    the process executor, whose workers would otherwise receive pickled
    tables.  Thread and serial workers share the coordinator's address
    space, so under ``on`` they get the in-process sub-plan cache only.
    """
    mode = os.environ.get("REPRO_SHM", "").strip().lower() or config.shm
    if mode == "on":
        return True
    if mode == "off":
        return False
    return executor == "process"


class CancelToken:
    """In-process shared round limit (serial and thread executors)."""

    def __init__(self) -> None:
        self._limit = NO_LIMIT
        self._lock = threading.Lock()

    def limit(self) -> int:
        return self._limit

    def propose(self, round_no: int) -> None:
        with self._lock:
            if round_no < self._limit:
                self._limit = round_no


class ProcessCancelToken:
    """Cross-process shared round limit backed by a synchronized Value."""

    def __init__(self, ctx) -> None:
        self._value = ctx.Value("q", NO_LIMIT)

    def limit(self) -> int:
        # Locked read: a torn 64-bit load (32-bit platforms) racing a
        # propose() could mix NO_LIMIT's and a proposal's halves into a
        # bogus tiny limit and stop a worker before it covered anything.
        with self._value.get_lock():
            return self._value.value

    def propose(self, round_no: int) -> None:
        with self._value.get_lock():
            if round_no < self._value.value:
                self._value.value = round_no


def _guarded_run_shard(shard_id, lanes, env, demo, config, abstraction_spec,
                       stop_spec, cancel, deadline,
                       plan_cache=None, seeded=False) -> ShardOutcome:
    """run_shard that reports failures instead of raising (or vanishing)."""
    try:
        return run_shard(shard_id, lanes, env, demo, config,
                         abstraction_spec, stop_spec, cancel, deadline,
                         plan_cache=plan_cache, seeded=seeded)
    except Exception:
        return ShardOutcome(shard_id, error=traceback.format_exc())


def _process_main(shard_id, lanes, env, demo, config, abstraction_spec,
                  stop_spec, cancel, deadline, plan_cache, seeded,
                  queue) -> None:
    queue.put(_guarded_run_shard(shard_id, lanes, env, demo, config,
                                 abstraction_spec, stop_spec, cancel,
                                 deadline, plan_cache, seeded))


def run_shards(plan: ShardPlan, skeletons, env, demo, config,
               abstraction_spec: str, stop_spec, executor: str | None = None,
               cancel_export=None,
               ) -> tuple[list[ShardOutcome], shm.ShmDispatchStats]:
    """Execute every shard in ``plan``; outcomes ordered by shard id.

    ``skeletons`` is the canonical ``construct_skeletons`` list the plan
    indexes into; each shard receives its own ``(lane_id, skeleton)``
    payload so workers never recompute the enumeration.  The second
    return value is the coordinator-side shared-memory dispatch telemetry
    (zeros when shm is off for this executor).
    """
    payloads = [tuple((lane, skeletons[lane]) for lane in shard)
                for shard in plan.shards]
    return run_payloads(payloads, env, demo, config, abstraction_spec,
                        stop_spec, executor=executor,
                        cancel_export=cancel_export)


def run_payloads(payloads, env, demo, config, abstraction_spec: str,
                 stop_spec, executor: str | None = None, seeded: bool = False,
                 cancel_export=None,
                 ) -> tuple[list[ShardOutcome], shm.ShmDispatchStats]:
    """Execute pre-built shard payloads; outcomes ordered by shard id.

    ``payloads[i]`` is shard ``i``'s lane tuple — ``(lane_id, skeleton)``
    pairs normally, ``(lane_id, stack)`` pairs under ``seeded=True`` (a
    resumed session's exported worklist; see
    :func:`repro.parallel.worker.run_shard`).  ``cancel_export``, when
    given, receives the run's shared cancel token as soon as it exists —
    the hook a live :class:`~repro.synthesis.session.SynthesisSession`
    uses to propagate ``cancel()`` into in-flight workers.
    """
    executor = executor or config.parallel_executor
    # One wall-clock budget for the whole run: the serial executor's shards
    # run one after another and must share it, not each start afresh.
    # time.monotonic is system-wide on the platforms with fork, so the
    # absolute expiry crosses process boundaries intact.
    deadline = Deadline(config.timeout_s)
    use_shm = resolve_shm(config, executor)
    dispatch = shm.ShmDispatchStats()
    if executor == "process":
        outcomes = _run_processes(payloads, env, demo, config,
                                  abstraction_spec, stop_spec, deadline,
                                  use_shm, dispatch, seeded, cancel_export)
    elif executor == "thread":
        outcomes = _run_threads(payloads, env, demo, config,
                                abstraction_spec, stop_spec, deadline,
                                LocalPlanCache() if use_shm else None,
                                seeded, cancel_export)
    elif executor == "serial":
        cancel = CancelToken()
        if cancel_export is not None:
            cancel_export(cancel)
        cache = LocalPlanCache() if use_shm else None
        outcomes = [_guarded_run_shard(i, lanes, env, demo, config,
                                       abstraction_spec, stop_spec, cancel,
                                       deadline, cache, seeded)
                    for i, lanes in enumerate(payloads)]
    else:
        raise ValueError(f"unknown parallel_executor {executor!r}")

    outcomes.sort(key=lambda o: o.shard_id)
    errors = [o.error for o in outcomes if o.error]
    if errors:
        raise RuntimeError(
            f"{len(errors)} shard worker(s) failed; first failure:\n"
            + errors[0])
    return outcomes, dispatch


def _run_threads(payloads, env, demo, config, abstraction_spec,
                 stop_spec, deadline, plan_cache, seeded,
                 cancel_export) -> list[ShardOutcome]:
    cancel = CancelToken()
    if cancel_export is not None:
        cancel_export(cancel)
    outcomes: list[ShardOutcome | None] = [None] * len(payloads)

    def job(i: int, lanes) -> None:
        outcomes[i] = _guarded_run_shard(i, lanes, env, demo, config,
                                         abstraction_spec, stop_spec, cancel,
                                         deadline, plan_cache, seeded)

    threads = [threading.Thread(target=job, args=(i, lanes), daemon=True)
               for i, lanes in enumerate(payloads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return [o for o in outcomes if o is not None]


def pick_context(methods=None, start_method: str | None = None):
    """The multiprocessing context for worker processes.

    fork inherits the payload (tables, demo, closures) for free; spawn is
    the portable fallback and needs every argument picklable.  An explicit
    ``start_method`` wins (the serving pool's differential tests
    parametrize it); otherwise ``REPRO_START_METHOD`` forces a method (the
    CI spawn job runs the differential suite under it) when the platform
    supports it.  Shared by the shard executor and the serving pool's
    process backend so both tiers resolve the method identically.
    """
    if methods is None:
        methods = multiprocessing.get_all_start_methods()
    if start_method is not None:
        if start_method not in methods:
            raise ValueError(f"start method {start_method!r} not supported "
                             f"here (have {sorted(methods)})")
        return multiprocessing.get_context(start_method)
    forced = os.environ.get("REPRO_START_METHOD", "").strip().lower()
    if forced in methods:
        return multiprocessing.get_context(forced)
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


_pick_context = pick_context


def _run_processes(payloads, env, demo, config, abstraction_spec,
                   stop_spec, deadline, use_shm, dispatch, seeded,
                   cancel_export) -> list[ShardOutcome]:
    ctx = _pick_context(multiprocessing.get_all_start_methods())
    cancel = ProcessCancelToken(ctx)
    if cancel_export is not None:
        cancel_export(cancel)
    queue = ctx.SimpleQueue()
    store = cache = None
    env_payload = env
    clients: list = [None] * len(payloads)
    try:
        if use_shm:
            # Lay the input tables out once; every worker gets the same
            # few-hundred-byte handle and attaches read-only.  The sub-plan
            # cache index rides on a manager process; worker publishes nest
            # under the store's run prefix for one end-of-run sweep.
            store = shm.ShmStore()
            env_payload = store.publish_env(env)
            cache = ProcessPlanCache(ctx, store.prefix)
            clients = [cache.client(i) for i in range(len(payloads))]

        def spawn(i: int):
            proc = ctx.Process(
                target=_process_main,
                args=(i, payloads[i], env_payload, demo, config,
                      abstraction_spec, stop_spec, cancel, deadline,
                      clients[i], seeded, queue),
                daemon=True)
            proc.start()
            return proc

        procs = [spawn(i) for i in range(len(payloads))]
        # Drain results before joining: a worker blocked on a full queue
        # never exits, so join-first would deadlock on large traces.  A
        # worker that dies without reporting (OOM kill, segfault, spawn
        # unpickling failure) never enqueues anything — _guarded_run_shard
        # cannot catch those — so poll liveness instead of blocking forever
        # on the queue, and give each crashed shard one re-dispatch.
        outcomes: list[ShardOutcome] = []
        done: set[int] = set()
        retried: set[int] = set()
        while len(done) < len(procs):
            if not queue.empty():
                outcome = queue.get()
                if outcome.shard_id not in done:
                    done.add(outcome.shard_id)
                    outcomes.append(outcome)
                continue
            crashed = [i for i, proc in enumerate(procs)
                       if i not in done and not proc.is_alive()
                       and proc.exitcode not in (0, None)]
            if crashed:
                if not queue.empty():
                    continue    # its result raced in during the scan
                for i in crashed:
                    if i in retried:
                        raise RuntimeError(
                            f"shard worker {i} died twice without reporting "
                            f"a result (exit code {procs[i].exitcode})")
                    # Reclaim the dead worker's published cache segments
                    # (and their index entries) before re-running it.
                    if cache is not None:
                        cache.drop_shard(i)
                    retried.add(i)
                    procs[i] = spawn(i)
                continue
            if all(not proc.is_alive() for proc in procs) and queue.empty():
                missing = len(procs) - len(done)
                codes = sorted({proc.exitcode for proc in procs
                                if proc.exitcode not in (0, None)})
                raise RuntimeError(
                    f"{missing} shard worker(s) died without reporting a "
                    f"result (exit codes: {codes or 'unknown'})")
            time.sleep(0.005)
        for proc in procs:
            proc.join()
        return outcomes
    finally:
        if cache is not None:
            cache.close()
        if store is not None:
            dispatch.absorb(store.stats)
            store.close()
            # Worker-published cache segments were disowned to this sweep.
            shm.sweep_prefix(store.prefix)

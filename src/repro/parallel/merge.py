"""Deterministic merge: replay shard traces into the serial search.

Why this works.  The serial ``sized_dfs`` worklist pops round-robin over
lanes in canonical (size) order, and a lane's own pop sequence is fully
determined by the lane alone — expansions push back onto the same lane, so
interleaving with other lanes never changes what the lane yields.  Every
lane is therefore popped exactly once per *round* until it drains, and the
serial visit order is precisely::

    round 1: lane 0, lane 1, ... (every live lane, ascending)
    round 2: lane 0, lane 1, ...           (drained lanes drop out)
    ...

Each worker records its lanes' per-pop outcomes (events) in exactly that
lane-local order.  Replaying rounds over the union of all traces — lanes
ascending within a round, applying the serial loop's stopping rules
(``top_n`` / stop-predicate hit / visited budget) event by event — thus
reconstructs the serial run's visit sequence, consistent-query discovery
order and counters *byte-for-byte*, no matter how many shards produced the
traces or in which order they finished.

Workers overshoot the serial stopping point (each shard keeps searching
until its own stopping rule fires); the replay simply never consumes the
excess.  The one non-deterministic escape is a wall-clock expiry inside a
worker: its truncated lanes may not cover the serial prefix, in which case
the replay reports a timeout — exactly what the serial run does when the
clock, rather than the search, decides the outcome.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.synthesis.config import SynthesisConfig
from repro.synthesis.enumerator import SynthesisResult
from repro.parallel.worker import (
    EV_EXPANDED,
    EV_INCONSISTENT,
    EV_PRUNED,
    LaneTrace,
    ShardOutcome,
)


def replay_merge(outcomes: Sequence[ShardOutcome], config: SynthesisConfig,
                 has_stop: bool,
                 base: SynthesisResult | None = None) -> SynthesisResult:
    """Fold shard outcomes into the serial-equivalent SynthesisResult.

    ``base`` resumes the replay from a partially consumed serial search
    (a stepped :class:`~repro.synthesis.session.SynthesisSession` that was
    re-dispatched at a round boundary): its queries and counters are the
    prefix the replayed continuation extends, so the budget and ``top_n``
    cutoffs below fire against the *cumulative* state — exactly where the
    uninterrupted serial loop would have stopped.  ``config`` is always the
    original run's config (a resumed dispatch hands its workers a
    remaining-budget variant, but the cutoffs here are run-wide).
    """
    if base is not None:
        result = base
        stats = result.stats
    else:
        result = SynthesisResult()
        stats = result.stats
        stats.skeletons = sum(o.stats.skeletons for o in outcomes)
        stats.max_skeleton_size = max(
            (o.stats.max_skeleton_size for o in outcomes), default=0)
        # Shape-prechecked skeletons are counted before the serial loop
        # starts, so all shards' precheck rejections land up front here too.
        shape_pruned = sum(o.shape_pruned for o in outcomes)
        stats.visited += shape_pruned
        stats.pruned += shape_pruned

    lanes: list[LaneTrace] = sorted(
        (t for o in outcomes for t in o.traces), key=lambda t: t.lane)
    cursor = [0] * len(lanes)
    live = list(range(len(lanes)))

    stop = False
    while live and not stop:
        survivors: list[int] = []
        for idx in live:
            trace = lanes[idx]
            if cursor[idx] >= len(trace.events):
                if trace.exhausted:
                    continue        # lane drained — drop, like the worklist
                # Truncated trace: a worker's wall clock expired before it
                # covered the serial prefix.  Serial would still be running;
                # all we can faithfully report is a timeout here.
                stats.timed_out = True
                stop = True
                break
            if config.max_visited is not None \
                    and stats.visited >= config.max_visited:
                stats.timed_out = True
                stop = True
                break
            event = trace.events[cursor[idx]]
            cursor[idx] += 1
            stats.visited += 1
            if isinstance(event, tuple):            # consistent query
                query, hit = event
                stats.concrete_checked += 1
                stats.consistent_found += 1
                result.queries.append(query)
                if has_stop and hit:
                    result.target = query
                    result.target_rank = len(result.queries)
                    stop = True
                    break
                if not has_stop and stats.consistent_found >= config.top_n:
                    stop = True
                    break
            elif event == EV_PRUNED:
                stats.pruned += 1
            elif event == EV_EXPANDED:
                stats.expanded += 1
            elif event == EV_INCONSISTENT:
                stats.concrete_checked += 1
            else:                                   # pragma: no cover
                raise ValueError(f"unknown trace event {event!r}")
            survivors.append(idx)
        if not stop:
            live = survivors
    return result

"""Cross-shard evaluated-sub-plan caching.

Sibling shards enumerate disjoint skeleton lanes, but the candidates they
instantiate share deep concrete prefixes — the same ``Group(Join(...))``
sub-plan is evaluated once per *worker* even though its result is a pure
function of ``(query, env)``.  This module lets the first worker that
evaluates a shared sub-plan publish the result block so its siblings get a
cache hit instead of re-evaluating.

Two variants behind one client protocol (``eligible`` / ``fetch`` /
``publish``), selected by the executor:

* :class:`LocalPlanCache` — shards in one address space (thread and serial
  executors, and any longer-lived host that wants cross-*run* reuse for
  repeated-schema traffic): blocks are shared by object reference under a
  lock, keyed by the engine's exact structural key ``(query, env)``.
* :class:`ProcessPlanCache` — process executor: a manager-hosted index maps
  a structural digest to a :class:`~repro.engine.shm.BlockHandle`; the
  block's columns live in a shared-memory segment the publishing worker
  laid out (see :mod:`repro.engine.shm`), so siblings attach and decode
  instead of re-evaluating.  Publishes are *disowned*: the coordinator
  sweeps the run prefix when the run ends, so cache segments survive their
  publisher and a crashed worker can never strand (or tear down) entries
  its siblings still use.

Determinism: a fetch returns exactly the values ``_compute_block`` would
have produced (the shm codecs are exact, the local variant shares the very
objects), and evaluation is pure — so the cache changes where bytes come
from, never what any shard computes.  The replay merge is therefore
untouched by any interleaving of publishes and fetches.
"""

from __future__ import annotations

import hashlib
import threading

from repro.engine import shm
from repro.lang.size import operator_count

#: Sub-plans below this operator count are never shared: table refs and
#: single-operator blocks are cheaper to recompute than to round-trip
#: through the index, and they would dominate the entry count.
MIN_SHARED_OPERATORS = 2

#: Cap on cross-shard index entries per run — bounds shared-memory use
#: under adversarial enumeration; beyond it workers keep evaluating
#: locally (their own block caches still apply).
MAX_SHARED_ENTRIES = 4096


def plan_digest(query) -> str:
    """Stable structural digest of a sub-plan.

    ``repr`` of the frozen-dataclass AST is structural and unambiguous,
    and — unlike ``hash`` — identical across interpreter processes
    (seeded string hashing) and across equal trees that differ in object
    sharing (unlike pickle's memo-dependent byte stream).  The index
    lives for one run against one environment, so the environment needs
    no representation in the key.
    """
    return hashlib.blake2b(repr(query).encode(), digest_size=16).hexdigest()


class LocalPlanCache:
    """Same-address-space variant: share column lists by reference.

    One instance is handed to every worker of a thread (or serial) run;
    it is its own client.  Keys are the engine's exact ``(query, env)``
    structural keys, so entries from different environments (cross-run
    reuse) can never collide.
    """

    def __init__(self, max_entries: int = MAX_SHARED_ENTRIES) -> None:
        self._entries: dict = {}
        self._lock = threading.Lock()
        self._max = max_entries

    def client(self, shard_id: int) -> "LocalPlanCache":
        return self

    def eligible(self, query) -> bool:
        return operator_count(query) >= MIN_SHARED_OPERATORS

    def fetch(self, query, env):
        with self._lock:
            return self._entries.get((query, env))

    def publish(self, query, env, columns, n_rows) -> int:
        # Shared by reference — nothing is shipped, so no bytes reported
        # (the shm telemetry counts segment traffic, and there is none).
        with self._lock:
            if len(self._entries) < self._max:
                self._entries.setdefault((query, env), (columns, n_rows))
        return 0

    def close(self) -> None:
        pass


class ProcessPlanClient:
    """Worker-side endpoint of the cross-process cache.

    Constructed in the coordinator but inert until used: the shm store
    and attachment are created lazily in the worker process (after
    fork/spawn), so the client itself pickles as two small fields.
    """

    def __init__(self, index, prefix: str, max_entries: int) -> None:
        self._index = index             # manager DictProxy: digest -> handle
        self._prefix = prefix
        self._max = max_entries
        self._store: shm.ShmStore | None = None
        self._attachment: shm.Attachment | None = None

    def __getstate__(self):
        return (self._index, self._prefix, self._max)

    def __setstate__(self, state):
        self._index, self._prefix, self._max = state
        self._store = None
        self._attachment = None

    def eligible(self, query) -> bool:
        return operator_count(query) >= MIN_SHARED_OPERATORS

    def fetch(self, query, env):
        try:
            handle = self._index.get(plan_digest(query))
        except (EOFError, BrokenPipeError, ConnectionError):
            return None             # coordinator tearing down — run as local
        if handle is None:
            return None
        if self._attachment is None:
            self._attachment = shm.Attachment()
        try:
            columns = shm.decode_block(handle, self._attachment)
        except FileNotFoundError:
            # Publisher's segment was swept (dead-worker cleanup) — a miss.
            return None
        return columns, shm.block_rows(handle, self._attachment)

    def publish(self, query, env, columns, n_rows) -> int:
        try:
            if len(self._index) >= self._max:
                return 0
        except (EOFError, BrokenPipeError, ConnectionError):
            return 0
        if self._store is None:
            self._store = shm.ShmStore(prefix=self._prefix)
        # Disowned: the segment must outlive this worker (siblings read it
        # until the run ends); the coordinator's prefix sweep reclaims it.
        handle = self._store.publish_block(columns, n_rows, disown=True)
        try:
            existing = self._index.setdefault(plan_digest(query), handle)
        except (EOFError, BrokenPipeError, ConnectionError):
            existing = None
        if existing is None or existing.segment != handle.segment:
            # Lost the publish race (or the index is gone): nobody will
            # ever reference our segment, reclaim it now.
            shm.unlink_segment(handle.segment)
            return 0
        return handle.nbytes

    def close(self) -> None:
        """Detach (publishes stay — the coordinator owns their unlink)."""
        if self._attachment is not None:
            self._attachment.close()
        if self._store is not None:
            self._store.close(unlink=False)


class ProcessPlanCache:
    """Coordinator-side lifecycle owner of the cross-process cache.

    Hosts the digest → handle index on a manager process and hands each
    worker a :class:`ProcessPlanClient` whose publish prefix nests under
    the run prefix — one end-of-run sweep of the run prefix reclaims
    every cache segment however its publisher exited.
    """

    def __init__(self, ctx, run_prefix: str,
                 max_entries: int = MAX_SHARED_ENTRIES) -> None:
        self._manager = ctx.Manager()
        self._index = self._manager.dict()
        self.run_prefix = run_prefix
        self._max = max_entries

    def client(self, shard_id: int) -> ProcessPlanClient:
        return ProcessPlanClient(self._index,
                                 f"{self.run_prefix}c{shard_id}", self._max)

    def drop_shard(self, shard_id: int) -> int:
        """Dead-worker cleanup: unlink one shard's published segments and
        drop the index entries that referenced them (future fetches would
        only FileNotFoundError their way to a miss, but stale entries
        block the digest from ever being re-published)."""
        prefix = f"{self.run_prefix}c{shard_id}_"
        try:
            stale = [digest for digest, handle in self._index.items()
                     if handle.segment.startswith(prefix)]
            for digest in stale:
                self._index.pop(digest, None)
        except (EOFError, BrokenPipeError, ConnectionError):
            pass
        return shm.sweep_prefix(prefix)

    def close(self) -> None:
        self._manager.shutdown()

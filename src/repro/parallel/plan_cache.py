"""Cross-shard evaluated-sub-plan caching.

Sibling shards enumerate disjoint skeleton lanes, but the candidates they
instantiate share deep concrete prefixes — the same ``Group(Join(...))``
sub-plan is evaluated once per *worker* even though its result is a pure
function of ``(query, env)``.  This module lets the first worker that
evaluates a shared sub-plan publish the result block so its siblings get a
cache hit instead of re-evaluating.

Two variants behind one client protocol (``eligible`` / ``fetch`` /
``publish``), selected by the executor:

* :class:`LocalPlanCache` — shards in one address space (thread and serial
  executors, and any longer-lived host that wants cross-*run* reuse for
  repeated-schema traffic): blocks are shared by object reference under a
  lock, keyed by the engine's exact structural key ``(query, env)``.
* :class:`ProcessPlanCache` — process executor: a manager-hosted index maps
  a structural digest to a :class:`~repro.engine.shm.BlockHandle`; the
  block's columns live in a shared-memory segment the publishing worker
  laid out (see :mod:`repro.engine.shm`), so siblings attach and decode
  instead of re-evaluating.  Publishes are *disowned*: the coordinator
  sweeps the run prefix when the run ends, so cache segments survive their
  publisher and a crashed worker can never strand (or tear down) entries
  its siblings still use.

Determinism: a fetch returns exactly the values ``_compute_block`` would
have produced (the shm codecs are exact, the local variant shares the very
objects), and evaluation is pure — so the cache changes where bytes come
from, never what any shard computes.  The replay merge is therefore
untouched by any interleaving of publishes and fetches.
"""

from __future__ import annotations

import hashlib
import threading

from repro.engine import shm
from repro.lang.size import operator_count

#: Sub-plans below this operator count are never shared: table refs and
#: single-operator blocks are cheaper to recompute than to round-trip
#: through the index, and they would dominate the entry count.
MIN_SHARED_OPERATORS = 2

#: Cap on cross-shard index entries per run — bounds shared-memory use
#: under adversarial enumeration; beyond it workers keep evaluating
#: locally (their own block caches still apply).
MAX_SHARED_ENTRIES = 4096


def plan_digest(query) -> str:
    """Stable structural digest of a sub-plan.

    ``repr`` of the frozen-dataclass AST is structural and unambiguous,
    and — unlike ``hash`` — identical across interpreter processes
    (seeded string hashing) and across equal trees that differ in object
    sharing (unlike pickle's memo-dependent byte stream).  A one-run index
    against a single environment needs no environment in the key; the
    long-lived serving tier pairs this with :func:`env_digest`.
    """
    return hashlib.blake2b(repr(query).encode(), digest_size=16).hexdigest()


def env_digest(env) -> str:
    """Stable content digest of an environment's tables.

    Two ``Env`` objects with equal tables digest identically whatever
    process built them — the property that lets a serving pool's shared
    index key entries by ``(env digest, plan digest)`` so repeated-schema
    requests hit each other's published blocks while distinct-data
    requests can never collide.  ``repr`` covers names, schemas and every
    cell exactly (the same argument as :func:`plan_digest`).
    """
    return hashlib.blake2b(repr(env).encode(), digest_size=16).hexdigest()


class LocalPlanCache:
    """Same-address-space variant: share column lists by reference.

    One instance is handed to every worker of a thread (or serial) run;
    it is its own client.  Keys are the engine's exact ``(query, env)``
    structural keys, so entries from different environments (cross-run
    reuse) can never collide.

    ``backing``, when given, is a second, slower tier behind the local
    dict — a :class:`ProcessPlanClient` over the shm-digest index.  A
    local miss consults the backing (memoizing any hit locally, so the
    digest round-trip is paid once per entry per process) and a publish
    feeds both tiers.  This is how the thread and process serving tiers
    hit *the same* cache: every engine talks to a ``LocalPlanCache``, and
    the shm index behind it is shared pool-wide across processes.
    """

    def __init__(self, max_entries: int = MAX_SHARED_ENTRIES,
                 backing=None) -> None:
        self._entries: dict = {}
        self._lock = threading.Lock()
        self._max = max_entries
        self._backing = backing

    def client(self, shard_id: int) -> "LocalPlanCache":
        return self

    def eligible(self, query) -> bool:
        return operator_count(query) >= MIN_SHARED_OPERATORS

    def fetch(self, query, env):
        with self._lock:
            hit = self._entries.get((query, env))
        if hit is not None:
            return hit
        if self._backing is None:
            return None
        fetched = self._backing.fetch(query, env)
        if fetched is not None:
            with self._lock:
                if len(self._entries) < self._max:
                    self._entries.setdefault((query, env), fetched)
        return fetched

    def publish(self, query, env, columns, n_rows) -> int:
        # Shared by reference — nothing is shipped locally, so only the
        # backing tier (when present) reports segment bytes.
        with self._lock:
            if len(self._entries) < self._max:
                self._entries.setdefault((query, env), (columns, n_rows))
        if self._backing is not None:
            return self._backing.publish(query, env, columns, n_rows)
        return 0

    def close(self) -> None:
        if self._backing is not None:
            self._backing.close()


class ProcessPlanClient:
    """Worker-side endpoint of the cross-process cache.

    Constructed in the coordinator but inert until used: the shm store
    and attachment are created lazily in the worker process (after
    fork/spawn), so the client itself pickles as three small fields.

    ``env_keyed=True`` (the serving pool) prefixes every index key with
    the :func:`env_digest` of the environment, so a pool that lives
    across many requests with many environments never confuses their
    sub-plans; one-run executor caches skip the env digest entirely.
    Digests are memoized per environment object — the ``repr`` walk is
    paid once per env per worker, not per fetch.
    """

    def __init__(self, index, prefix: str, max_entries: int,
                 env_keyed: bool = False) -> None:
        self._index = index             # manager DictProxy: key -> handle
        self._prefix = prefix
        self._max = max_entries
        self._env_keyed = env_keyed
        self._store: shm.ShmStore | None = None
        self._attachment: shm.Attachment | None = None
        self._env_digests: dict = {}    # id(env) -> (env, digest)

    def __getstate__(self):
        return (self._index, self._prefix, self._max, self._env_keyed)

    def __setstate__(self, state):
        self._index, self._prefix, self._max, self._env_keyed = state
        self._store = None
        self._attachment = None
        self._env_digests = {}

    def _key(self, query, env):
        if not self._env_keyed:
            return plan_digest(query)
        entry = self._env_digests.get(id(env))
        # The entry pins the env alive, so its id cannot be recycled
        # while the entry exists; the identity check guards stale slots.
        if entry is None or entry[0] is not env:
            entry = (env, env_digest(env))
            self._env_digests[id(env)] = entry
        return (entry[1], plan_digest(query))

    def eligible(self, query) -> bool:
        return operator_count(query) >= MIN_SHARED_OPERATORS

    def fetch(self, query, env):
        try:
            handle = self._index.get(self._key(query, env))
        except (EOFError, BrokenPipeError, ConnectionError):
            return None             # coordinator tearing down — run as local
        if handle is None:
            return None
        if self._attachment is None:
            self._attachment = shm.Attachment()
        try:
            columns = shm.decode_block(handle, self._attachment)
        except FileNotFoundError:
            # Publisher's segment was swept (dead-worker cleanup) — a miss.
            return None
        return columns, shm.block_rows(handle, self._attachment)

    def publish(self, query, env, columns, n_rows) -> int:
        try:
            if len(self._index) >= self._max:
                return 0
        except (EOFError, BrokenPipeError, ConnectionError):
            return 0
        if self._store is None:
            self._store = shm.ShmStore(prefix=self._prefix)
        try:
            # Disowned: the segment must outlive this worker (siblings
            # read it until the run ends); the coordinator's prefix sweep
            # reclaims it.
            handle = self._store.publish_block(columns, n_rows, disown=True)
        except OSError:
            # /dev/shm exhausted (or otherwise unwritable): a sub-plan
            # that simply doesn't get shared, never a failed request.
            return 0
        try:
            existing = self._index.setdefault(self._key(query, env), handle)
        except (EOFError, BrokenPipeError, ConnectionError):
            existing = None
        if existing is None or existing.segment != handle.segment:
            # Lost the publish race (or the index is gone): nobody will
            # ever reference our segment, reclaim it now.
            shm.unlink_segment(handle.segment)
            return 0
        return handle.nbytes

    def close(self) -> None:
        """Detach (publishes stay — the coordinator owns their unlink)."""
        if self._attachment is not None:
            self._attachment.close()
        if self._store is not None:
            self._store.close(unlink=False)


class ProcessPlanCache:
    """Coordinator-side lifecycle owner of the cross-process cache.

    Hosts the digest → handle index on a manager process and hands each
    worker a :class:`ProcessPlanClient` whose publish prefix nests under
    the run prefix — one end-of-run sweep of the run prefix reclaims
    every cache segment however its publisher exited.
    """

    def __init__(self, ctx, run_prefix: str,
                 max_entries: int = MAX_SHARED_ENTRIES,
                 env_keyed: bool = False) -> None:
        self._manager = ctx.Manager()
        self._index = self._manager.dict()
        self.run_prefix = run_prefix
        self._max = max_entries
        self._env_keyed = env_keyed

    def client(self, shard_id: int) -> ProcessPlanClient:
        return ProcessPlanClient(self._index,
                                 f"{self.run_prefix}c{shard_id}", self._max,
                                 env_keyed=self._env_keyed)

    def drop_shard(self, shard_id: int) -> int:
        """Dead-worker cleanup: unlink one shard's published segments and
        drop the index entries that referenced them (future fetches would
        only FileNotFoundError their way to a miss, but stale entries
        block the digest from ever being re-published)."""
        prefix = f"{self.run_prefix}c{shard_id}_"
        try:
            stale = [digest for digest, handle in self._index.items()
                     if handle.segment.startswith(prefix)]
            for digest in stale:
                self._index.pop(digest, None)
        except (EOFError, BrokenPipeError, ConnectionError):
            pass
        return shm.sweep_prefix(prefix)

    def close(self) -> None:
        self._manager.shutdown()

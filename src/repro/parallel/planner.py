"""Partitioning the skeleton worklist into worker shards.

A shard is a subset of skeleton *lanes* (identified by their index in the
canonical ``construct_skeletons`` order).  The planner only decides
*membership* — every shard executes its lanes in ascending canonical order,
which is what makes the per-lane event traces replayable into the exact
serial visit order (see :mod:`repro.parallel.merge`).

Lane cost is unknowable exactly (it is the size of the lane's hole-
instantiation subspace, which the search itself prunes), so the planner
balances an *estimate*: holes multiply a lane's subspace, operators add
evaluation weight.  The default ``cost_rr`` strategy deals lanes to shards
in descending-cost round-robin — the classic longest-processing-time
heuristic's cheap cousin — and is insensitive to the input order of the
skeleton list (assignment is keyed on the skeleton itself, not its
position).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.lang import ast
from repro.lang.holes import holes_of
from repro.lang.size import operator_count

#: Branching weight of one hole in the cost estimate.  The exact value only
#: shapes load balance, never results — any positive constant is correct.
_HOLE_WEIGHT = 4


def estimated_lane_cost(skeleton: ast.Query) -> int:
    """A monotone proxy for the size of a skeleton's instantiation lane."""
    return operator_count(skeleton) + _HOLE_WEIGHT * len(holes_of(skeleton))


@dataclass(frozen=True)
class ShardPlan:
    """The planner's output: per-shard lane index tuples (ascending)."""

    shards: tuple[tuple[int, ...], ...]
    costs: tuple[int, ...]          # estimated total cost per shard

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_lanes(self) -> int:
        return sum(len(s) for s in self.shards)

    def membership(self, skeletons: Sequence[ast.Query]) -> dict[str, int]:
        """skeleton repr -> shard id (for plan-equality across orderings)."""
        return {repr(skeletons[lane]): shard_id
                for shard_id, lanes in enumerate(self.shards)
                for lane in lanes}

    @staticmethod
    def load_imbalance(loads) -> float:
        """max/mean of per-shard loads; 1.0 is a perfectly even split.

        Applied to ``plan.costs`` it scores what the planner *believes* it
        achieved; applied to measured per-shard work (visited counts,
        wall times) it scores what static planning actually delivered —
        the gap between the two is the skewed-lane benchmark's subject.
        """
        loads = list(loads)
        mean = sum(loads) / len(loads) if loads else 0.0
        return max(loads) / mean if mean else 1.0


class ShardPlanner:
    """Deterministically partition skeletons into at most ``workers`` shards.

    Strategies (``SynthesisConfig.shard_strategy``):

    * ``cost_rr`` (default) — sort lanes by (estimated cost descending,
      canonical skeleton key) and deal them round-robin.  Balanced and
      stable under permutation of the input list.
    * ``round_robin`` — deal lanes in enumeration order.
    * ``chunk`` — contiguous slices of the enumeration order.

    Every strategy yields the same merged search result — the replay merge
    is plan-agnostic — so the knob trades only load balance.
    """

    def __init__(self, workers: int, strategy: str = "cost_rr") -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if strategy not in ("cost_rr", "round_robin", "chunk"):
            raise ValueError(f"unknown shard_strategy {strategy!r}")
        self.workers = workers
        self.strategy = strategy

    def plan(self, skeletons: Sequence[ast.Query]) -> ShardPlan:
        return self.plan_weighted(
            [estimated_lane_cost(sk) for sk in skeletons],
            [repr(sk) for sk in skeletons])

    def plan_weighted(self, costs: Sequence[int],
                      keys: Sequence | None = None) -> ShardPlan:
        """Partition abstract items by per-item cost estimates.

        The generalization :meth:`plan` is built on: items are whatever the
        caller indexes — fresh skeletons there, a resumed session's live
        lane *stacks* (whose cost is the summed estimate of their queued
        queries) in :func:`~repro.parallel.coordinator.parallel_resume`.
        ``keys`` breaks cost ties deterministically under ``cost_rr``;
        item index is the fallback (stable, but position-sensitive).
        """
        n = len(costs)
        if n == 0:
            return ShardPlan((), ())
        n_shards = min(self.workers, n)
        buckets: list[list[int]] = [[] for _ in range(n_shards)]

        if self.strategy == "chunk":
            base, extra = divmod(n, n_shards)
            start = 0
            for shard_id in range(n_shards):
                width = base + (1 if shard_id < extra else 0)
                buckets[shard_id] = list(range(start, start + width))
                start += width
        elif self.strategy == "round_robin":
            for lane in range(n):
                buckets[lane % n_shards].append(lane)
        else:  # cost_rr
            if keys is None:
                order = sorted(range(n), key=lambda i: (-costs[i], i))
            else:
                order = sorted(range(n), key=lambda i: (-costs[i], keys[i]))
            for deal, lane in enumerate(order):
                buckets[deal % n_shards].append(lane)

        shards = tuple(tuple(sorted(bucket)) for bucket in buckets)
        shard_costs = tuple(sum(costs[lane] for lane in bucket)
                            for bucket in shards)
        return ShardPlan(shards, shard_costs)

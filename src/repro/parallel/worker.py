"""One shard's search: an independent worklist over a subset of lanes.

Each worker owns its own :class:`~repro.engine.base.EvalEngine` and
abstraction instance (rebuilt from the technique name), so no evaluation
state crosses worker boundaries — the property the engine layer was built
to guarantee.  That ownership extends to the engine's incremental
consistency checker (``engine.consistency``): each worker gets its own
verdict cache and column match-state memo, and the checker's counters ride
in the worker's :class:`~repro.engine.base.EngineStats`, which the
coordinator folds with ``EngineStats.merge`` like any other cache traffic.

The loop is the ``sized_dfs`` strategy of ``enumerate_queries`` made
*round-explicit*: lanes are swept in ascending canonical order, each live
lane popped exactly once per round, depth-first within a lane.  That is
byte-for-byte the order the serial worklist visits these lanes in (the
serial round-robin restricted to any lane subset is the subset's own
round-robin), which is what lets the coordinator replay the recorded
per-lane event traces into the exact serial search (see
:mod:`repro.parallel.merge`).

A worker stops on its own when

* it has found ``top_n`` consistent queries among its lanes (no shard needs
  more: the global run stops at ``top_n`` *total*, so any subset's
  contribution to the serial prefix is at most ``top_n``),
* its ``stop_predicate`` fires,
* its lanes exhaust, or its visited/wall-clock budget expires.

On both the ``top_n`` and predicate stops the worker proposes its stopping
round to the shared :mod:`~repro.parallel.executor` cancel token: the
global cutoff provably lands at or before that round, so sibling shards
stop as soon as they have covered it instead of searching to their own
stopping points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import shm
from repro.engine.base import EngineStats, make_engine
from repro.lang import ast
from repro.provenance.demo import Demonstration
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.enumerator import (
    POP_CONSISTENT,
    POP_EXPANDED,
    POP_PRUNED,
    SearchStats,
    admit_skeleton,
    process_pop,
)
from repro.synthesis.stop import StopSpec
from repro.synthesis.synthesizer import build_abstraction
from repro.util.timer import Deadline, Stopwatch

# Per-pop trace events.  Non-consistent outcomes are bare ints (compact to
# pickle); a consistent query is a (query, predicate_hit) tuple.
EV_PRUNED = 0           # rejected by the abstraction
EV_EXPANDED = 1         # holes branched
EV_INCONSISTENT = 2     # concrete, failed the ≺ check


@dataclass
class LaneTrace:
    """Everything the merge needs to replay one lane's visits in order."""

    lane: int                       # canonical skeleton index
    events: list = field(default_factory=list)
    exhausted: bool = False         # lane fully drained (vs worker stopped)


@dataclass
class ShardOutcome:
    """One worker's full report back to the coordinator."""

    shard_id: int
    traces: list[LaneTrace] = field(default_factory=list)
    shape_pruned: int = 0           # skeletons rejected by the shape precheck
    stats: SearchStats = field(default_factory=SearchStats)
    engine_stats: EngineStats = field(default_factory=EngineStats)
    error: str | None = None        # traceback text when the worker failed


def run_shard(shard_id: int, lanes, env, demo: Demonstration,
              config: SynthesisConfig, abstraction_spec: str,
              stop_spec: StopSpec | None, cancel,
              deadline: Deadline | None = None,
              plan_cache=None, seeded: bool = False) -> ShardOutcome:
    """Search ``lanes`` — ``(lane_id, skeleton)`` pairs in ascending
    canonical order — to the shard-local stopping point.

    With ``seeded=True`` the lanes arrive as ``(lane_id, stack)`` pairs —
    live worklist stacks exported from a partially stepped
    :class:`~repro.synthesis.session.SynthesisSession` at a round
    boundary.  Seeded lanes skip skeleton admission (they were admitted,
    and counted, when the session first seeded them) and resume exactly
    where the serial loop paused.

    ``cancel`` is the executor's shared cancel token (``limit()`` /
    ``propose(round)``); pass an unlimited token for independent runs.
    ``deadline`` is the *run-wide* wall-clock budget shared by every shard
    (one ``timeout_s`` for the whole run, however shards are scheduled);
    each worker starts its own when none is given.

    ``env`` is the input :class:`~repro.lang.ast.Env` — or, under
    shared-memory dispatch, an :class:`~repro.engine.shm.EnvHandle` this
    worker attaches read-only and rebuilds an ``==``-identical ``Env``
    from (the engine additionally adopts the decoded columns, so its leaf
    blocks alias the coordinator's layout work).  ``plan_cache`` is this
    shard's cross-shard sub-plan cache client
    (:mod:`repro.parallel.plan_cache`), or ``None`` to keep the engine on
    its private caches.
    """
    watch = Stopwatch()
    if deadline is None:
        deadline = Deadline(config.timeout_s)
    engine = make_engine(config.backend)
    attachment = None
    if isinstance(env, shm.EnvHandle):
        attachment = shm.Attachment()
        # Zero-copy views only pay (and only stay referenced) on the NumPy
        # backend; for the others they would just pin the mapping open.
        env, adopted = shm.adopt_env(env, attachment,
                                     want_views=engine.name == "numpy")
        engine.adopt_env(env, adopted)
        del adopted
    if plan_cache is not None:
        engine.shared_plans = plan_cache
    abstraction = build_abstraction(abstraction_spec, config)
    abstraction.bind_engine(engine)
    stop = None if stop_spec is None else stop_spec.build(engine, env)

    outcome = ShardOutcome(shard_id)
    stats = outcome.stats

    # Seed this shard's lanes (ascending canonical order).
    active: list[tuple[LaneTrace, list[ast.Query]]] = []
    if seeded:
        # Resumed stacks: admission (and the skeleton count) happened when
        # the session originally seeded these lanes; the merge's cumulative
        # base already carries it.
        for lane_id, stack in lanes:
            trace = LaneTrace(lane_id)
            outcome.traces.append(trace)
            active.append((trace, list(stack)))
    else:
        stats.skeletons = len(lanes)
        for lane_id, skeleton in lanes:
            if admit_skeleton(skeleton, demo, config, stats) is None:
                outcome.shape_pruned += 1
                continue
            trace = LaneTrace(lane_id)
            outcome.traces.append(trace)
            active.append((trace, [skeleton]))

    round_no = 0
    stopping = False
    while active and not stopping:
        round_no += 1
        if round_no > cancel.limit():
            # A sibling shard found its target at or before this round and
            # the merge will never consume events beyond it.  Lanes keep
            # exhausted=False: their traces are (sufficient) prefixes.
            break
        survivors: list[tuple[LaneTrace, list[ast.Query]]] = []
        for trace, stack in active:
            if deadline.expired():
                stats.timed_out = True
                stopping = True
                break
            if config.max_visited is not None \
                    and stats.visited >= config.max_visited:
                stats.timed_out = True
                stopping = True
                break
            query = stack.pop()
            pop_outcome, expansions = process_pop(query, env, demo, config,
                                                  abstraction, engine, stats)
            if pop_outcome is POP_CONSISTENT:
                hit = stop is not None and stop(query)
                trace.events.append((query, hit))
                if hit:
                    cancel.propose(round_no)
                    if not stack:
                        trace.exhausted = True
                    stopping = True
                    break
                if stop is None and stats.consistent_found >= config.top_n:
                    # Same coverage argument as the predicate hit: the
                    # global top_n cutoff lands at or before this shard's —
                    # its own top_n consistents are all consumed by then —
                    # so siblings need not search past this round either.
                    cancel.propose(round_no)
                    if not stack:
                        trace.exhausted = True
                    stopping = True
                    break
            elif pop_outcome is POP_EXPANDED:
                trace.events.append(EV_EXPANDED)
                # Reversed for the LIFO stack: domain order is preserved.
                for expansion in reversed(expansions):
                    stack.append(expansion)
            elif pop_outcome is POP_PRUNED:
                trace.events.append(EV_PRUNED)
            else:
                trace.events.append(EV_INCONSISTENT)

            if stack:
                survivors.append((trace, stack))
            else:
                trace.exhausted = True
        active = survivors if not stopping else []

    stats.elapsed_s = watch.elapsed()
    outcome.engine_stats = engine.stats
    if plan_cache is not None:
        plan_cache.close()      # detach only; publishes outlive the worker
    if attachment is not None:
        # Drop the engine's zero-copy views (outcome already holds the
        # stats object) so the mappings detach cleanly rather than riding
        # the BufferError escape hatch at interpreter exit.
        engine.reset()
        attachment.close()
    return outcome

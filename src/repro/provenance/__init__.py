"""Provenance expressions and computation demonstrations (paper Fig. 8).

Two term languages share one representation:

* ``e★`` — cells of provenance-embedded tables produced by the tracking
  semantics: constants, input-cell references, function applications and
  ``group{...}`` sets;
* ``e`` — cells of user demonstrations: the same minus ``group{...}``, plus
  *partial* applications ``f♦(...)`` whose omitted arguments (♦) stand for
  any number of values.

:mod:`repro.provenance.consistency` implements the ≺ judgment (Fig. 10) and
the table-level provenance consistency of Definition 1 (the reference
oracle); :mod:`repro.provenance.incremental` is the engine-owned
incremental checker the synthesis hot path runs — match matrices memoized
per (tracked column, demonstration) across sibling candidates, bitset
embedding, batched verdicts.
"""

from repro.provenance.expr import (
    CellRef,
    Const,
    Expr,
    FuncApp,
    GroupSet,
    cell,
    const,
    func,
    group,
    partial_func,
)
from repro.provenance.demo import Demonstration
from repro.provenance.refs import refs_of
from repro.provenance.simplify import simplify
from repro.provenance.consistency import (
    demo_consistent,
    generalizes,
    generalizes_simplified,
)
from repro.provenance.incremental import ConsistencyChecker

__all__ = [
    "Expr", "Const", "CellRef", "FuncApp", "GroupSet",
    "const", "cell", "func", "partial_func", "group",
    "Demonstration", "refs_of", "simplify",
    "generalizes", "generalizes_simplified", "demo_consistent",
    "ConsistencyChecker",
]

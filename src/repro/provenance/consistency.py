"""The consistency judgment ``e ≺ e★`` (Fig. 10) and Definition 1.

``e ≺ e★`` — "the tracked term e★ generalizes the demonstrated term e":

* identical constants / cell references match;
* ``e ≺ group{ē★}`` when some member generalizes ``e`` (all cells of a group
  share one value, so the user may reference any of them — footnote 1);
* ``f♦(ē) ≺ f(ē★)`` — commutative ``f``: each demo argument matches a
  *distinct* tracked argument (injective matching); positional ``f``: the
  demo arguments embed as a subsequence (omissions may be anywhere, §3.2);
  ranked functions match the ranked (first) argument positionally and the
  rest as a multiset;
* complete ``f(ē)`` additionally requires the match to cover *all* tracked
  arguments (bijection / equal length).

Table-level consistency (Definition 1): the demonstration embeds into the
tracked output via injective row and column assignments under ≺.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.lang.functions import function_spec
from repro.provenance.expr import CellRef, Const, Expr, FuncApp, GroupSet
from repro.provenance.simplify import simplify
from repro.table.values import value_eq
from repro.util.matching import embedding_exists, multiset_match, subsequence_match


def generalizes(tracked: Expr, demo: Expr) -> bool:
    """``demo ≺ tracked`` (both sides are simplified first)."""
    return _gen(simplify(tracked), simplify(demo))


def generalizes_simplified(tracked: Expr, demo: Expr) -> bool:
    """``demo ≺ tracked`` for terms already in simplified form.

    The tracking engines only ever emit simplified terms (simplification is
    idempotent and every term constructor preserves it), and demonstration
    cells are simplified once on construction — so hot-path callers like
    the incremental checker skip the per-call re-walk of every subtree.
    """
    return _gen(tracked, demo)


def _gen(tracked: Expr, demo: Expr) -> bool:
    # e ≺ group{...}: any member may witness the match.
    if isinstance(tracked, GroupSet):
        return any(_gen(member, demo) for member in tracked.members)

    if isinstance(demo, Const):
        return isinstance(tracked, Const) and value_eq(tracked.value, demo.value)

    if isinstance(demo, CellRef):
        return tracked == demo

    if isinstance(demo, FuncApp):
        if not isinstance(tracked, FuncApp) or tracked.func != demo.func:
            return False
        return _match_args(demo, tracked)

    return False


def _match_args(demo: FuncApp, tracked: FuncApp) -> bool:
    spec = function_spec(demo.func)
    d_args, t_args = demo.args, tracked.args

    if spec.arg_style == "commutative":
        return multiset_match(d_args, t_args, lambda d, t: _gen(t, d),
                              exact=not demo.partial)

    if spec.arg_style == "ranked":
        # First argument is the ranked row itself — positional; the remaining
        # arguments are the group pool — a multiset.
        if not d_args or not t_args or not _gen(t_args[0], d_args[0]):
            return False
        return multiset_match(d_args[1:], t_args[1:], lambda d, t: _gen(t, d),
                              exact=not demo.partial)

    # Positional: complete expressions match pairwise; partial ones embed as
    # a subsequence (omitted values may be at the beginning, middle or end).
    if not demo.partial:
        if len(d_args) != len(t_args):
            return False
        return all(_gen(t, d) for d, t in zip(d_args, t_args))
    return subsequence_match(d_args, t_args, lambda d, t: _gen(t, d))


# ---------------------------------------------------------------- Definition 1

def demo_consistent(tracked_cells: Sequence[Sequence[Expr]],
                    demo_cells: Sequence[Sequence[Expr]],
                    pre_simplified: bool = False) -> bool:
    """Definition 1: E embeds into T★ by injective row/column assignments.

    ``tracked_cells`` is the grid of a provenance-embedded table; both grids
    are rectangular.  ``pre_simplified=True`` asserts both grids are already
    in simplified form (true for every engine-produced tracked table and
    every ``Demonstration.of`` cell grid) and skips the re-walk; the default
    simplifies defensively, which is what makes this the reference oracle
    for the incremental checker's differential suite.
    """
    n_demo_rows = len(demo_cells)
    n_demo_cols = len(demo_cells[0]) if demo_cells else 0
    n_rows = len(tracked_cells)
    n_cols = len(tracked_cells[0]) if tracked_cells else 0

    if pre_simplified:
        tracked_simple, demo_simple = tracked_cells, demo_cells
    else:
        tracked_simple = [[simplify(e) for e in row] for row in tracked_cells]
        demo_simple = [[simplify(e) for e in row] for row in demo_cells]

    def cell_ok(i: int, j: int, r: int, c: int) -> bool:
        return _gen(tracked_simple[r][c], demo_simple[i][j])

    return embedding_exists(n_demo_rows, n_demo_cols, n_rows, n_cols, cell_ok)

"""User demonstrations E (paper Fig. 3, Fig. 8 right).

A demonstration is a small table of expressions showing how output cells are
computed from input cells — e.g. the running example's

    c1        c2        c3
    T[1,1]    T[1,2]    percent(sum(T[1,4], T[2,4]), T[1,5])
    T[7,1]    T[7,2]    percent(sum♦(T[1,4], T[2,4], T[8,4]), T[7,5])

where the ``sum♦`` marks omitted values (♦).  Cells are simplified on
construction so that matching never worries about nested flattenable
aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.errors import ExpressionError
from repro.lang.ast import Env
from repro.provenance.expr import CellRef, Expr, FuncApp
from repro.provenance.refs import refs_of
from repro.provenance.simplify import simplify
from repro.table.values import Value


@dataclass(frozen=True)
class Demonstration:
    """An ``n_rows × n_cols`` grid of demonstration expressions."""

    cells: tuple[tuple[Expr, ...], ...]

    def __post_init__(self) -> None:
        if not self.cells:
            raise ExpressionError("empty demonstration")
        width = len(self.cells[0])
        if width == 0:
            raise ExpressionError("demonstration rows must have cells")
        for row in self.cells:
            if len(row) != width:
                raise ExpressionError("ragged demonstration rows")

    @staticmethod
    def of(rows: Sequence[Sequence[Expr]]) -> "Demonstration":
        return Demonstration(
            tuple(tuple(simplify(e) for e in row) for row in rows))

    @property
    def n_rows(self) -> int:
        return len(self.cells)

    @property
    def n_cols(self) -> int:
        return len(self.cells[0])

    @property
    def size(self) -> int:
        """Number of demonstrated cells (the paper's 'demonstration size')."""
        return self.n_rows * self.n_cols

    def cell(self, i: int, j: int) -> Expr:
        return self.cells[i][j]

    def refs(self) -> frozenset[CellRef]:
        out: frozenset[CellRef] = frozenset()
        for row in self.cells:
            for expr in row:
                out |= refs_of(expr)
        return out

    def column_refs(self, j: int) -> frozenset[CellRef]:
        out: frozenset[CellRef] = frozenset()
        for row in self.cells:
            out |= refs_of(row[j])
        return out

    def is_partial(self) -> bool:
        """True when any cell contains an ``f♦`` application."""

        def has_partial(e: Expr) -> bool:
            if isinstance(e, FuncApp) and e.partial:
                return True
            return any(has_partial(c) for c in e.children())

        return any(has_partial(e) for row in self.cells for e in row)

    def evaluate(self, env: Env) -> list[list[Value | None]]:
        """Concrete values of the demo cells; ``None`` where partial.

        Used by the value-abstraction baseline, which can only check cells
        whose final value is computable from the demonstration.
        """
        out: list[list[Value | None]] = []
        for row in self.cells:
            vals: list[Value | None] = []
            for expr in row:
                try:
                    vals.append(expr.evaluate(env))
                except ExpressionError:
                    vals.append(None)
            out.append(vals)
        return out

    def __repr__(self) -> str:
        body = "; ".join(
            "[" + ", ".join(map(repr, row)) + "]" for row in self.cells)
        return f"Demonstration({body})"

"""Provenance / demonstration expression terms (paper Fig. 8).

    e★ ← const | T_k[i, j] | f(e★, ...) | group{e★, ...}
    e  ← const | T_k[i, j] | f(e, ...)  | f♦(e, ...)

Terms are immutable, hashable dataclasses.  ``FuncApp.partial`` encodes the
``f♦`` form — the user omitted some arguments (♦); the omitted values may sit
anywhere in the argument list (§3.2), which the matcher honours.

Cell references are 0-based internally; ``repr`` renders them 1-based to
match the paper's ``T[1,1]`` notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.errors import ExpressionError
from repro.lang.functions import apply_function, function_spec
from repro.table.values import Value


class Expr:
    """Base class for provenance / demonstration terms."""

    def evaluate(self, env) -> Value:
        """Concrete value of this term given input tables ``env``."""
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Const(Expr):
    value: Value

    def evaluate(self, env) -> Value:
        return self.value

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class CellRef(Expr):
    """Reference to cell ``[row, col]`` of input table ``table``."""

    table: str
    row: int
    col: int

    def evaluate(self, env) -> Value:
        return env.get(self.table).cell(self.row, self.col)

    def __repr__(self) -> str:
        return f"{self.table}[{self.row + 1},{self.col + 1}]"


@dataclass(frozen=True)
class FuncApp(Expr):
    """``f(args...)`` — or ``f♦(args...)`` when ``partial`` is set."""

    func: str
    args: tuple[Expr, ...]
    partial: bool = False

    def __post_init__(self) -> None:
        function_spec(self.func)  # validate the name eagerly
        if not self.args:
            raise ExpressionError(f"{self.func} applied to no arguments")

    def evaluate(self, env) -> Value:
        if self.partial:
            raise ExpressionError(
                f"cannot evaluate partial expression {self!r}")
        return apply_function(self.func, [a.evaluate(env) for a in self.args])

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __repr__(self) -> str:
        marker = "♦" if self.partial else ""
        return f"{self.func}{marker}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class GroupSet(Expr):
    """``group{members}`` — cells collapsed by a group-by key column.

    All members carry the same value by construction, so evaluation uses the
    first one.
    """

    members: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ExpressionError("empty group{} term")

    def evaluate(self, env) -> Value:
        return self.members[0].evaluate(env)

    def children(self) -> tuple[Expr, ...]:
        return self.members

    def __repr__(self) -> str:
        return "group{" + ", ".join(map(repr, self.members)) + "}"


# ------------------------------------------------------------- constructors

def const(value: Value) -> Const:
    return Const(value)


def cell(table: str, row: int, col: int) -> CellRef:
    """0-based cell reference (the paper's ``T[row+1, col+1]``)."""
    return CellRef(table, row, col)


def func(name: str, *args: Expr | Value) -> FuncApp:
    return FuncApp(name, tuple(_lift(a) for a in args))


def partial_func(name: str, *args: Expr | Value) -> FuncApp:
    """``f♦(args...)`` — a demonstration expression with omitted values."""
    return FuncApp(name, tuple(_lift(a) for a in args), partial=True)


def group(members: Iterable[Expr]) -> GroupSet:
    return GroupSet(tuple(members))


def _lift(value: Expr | Value) -> Expr:
    return value if isinstance(value, Expr) else Const(value)

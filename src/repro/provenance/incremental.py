"""Incremental demonstration-consistency checking (Definition 1, Fig. 10).

The naive judgment re-simplifies and re-matches the whole demonstration
grid against every candidate's tracked output, even though sibling
candidates of one instantiation family share all but one output column.
:class:`ConsistencyChecker` is the engine-owned incremental replacement
(PATSQL's lever — quick incremental inference of projected columns against
the example table — applied to provenance terms):

* **Match-matrix memo.**  For each (tracked column, demonstration) pair the
  checker computes one *match matrix*: per demonstration column, a bitmask
  over output rows for every demo row ``i`` — bit ``r`` set iff
  ``E[i,j] ≺ T★[r,c]``.  Matrices are keyed by column object identity (the
  structural key the columnar kernels already maintain: sibling candidates
  share columns by reference, see :mod:`repro.engine.tracked_columns`), so
  checking a sibling that shares k−1 columns only matches the one new
  column.  Within a column, identity-distinct terms are judged once and
  broadcast over their row bitmask.

* **Column-level pruning.**  A candidate whose columns cannot cover the
  demonstration — some demo column has no compatible output column, or no
  injective column assignment exists — is rejected before any row
  embedding runs (``consistency_col_pruned`` in the engine stats).

* **Bitset embedding.**  Surviving candidates run the backtracking search
  of :func:`repro.util.matching.bitset_embedding_exists`: column
  assignments AND row bitmasks incrementally and close with a bitset row
  matching — no per-call ``(i, j, r, c)`` memo dict, no recursive
  callback evaluation.

* **One batched pipeline.**  :meth:`demo_consistent_many` threads a whole
  sibling family through the engine's batched tracking evaluation
  (``tracked_columns_many``) and verdict computation in one call; the
  enumerator's sibling-family prefetch uses it so each subsequent pop is a
  verdict-cache hit.

Both grids are matched in *pre-simplified* form: the tracking engines only
emit simplified terms (PR-3 invariant, idempotent ``simplify``), and demo
cells are simplified once per demonstration when its state is built — not
once per check.

Ownership mirrors the engine layer's session-isolation invariant: each
:class:`~repro.engine.base.EvalEngine` lazily owns one checker
(``engine.consistency``), parallel workers therefore get per-worker
checker instances, and the counters ride in the engine's mergeable
:class:`~repro.engine.base.EngineStats`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.engine.cache import BoundedCache
from repro.engine.tracked_columns import distinct_exprs
from repro.lang import ast
from repro.provenance.consistency import generalizes_simplified
from repro.provenance.demo import Demonstration
from repro.provenance.simplify import simplify
from repro.util.matching import MaskOption, bitset_embedding_exists, bitset_match

DEFAULT_VERDICT_CACHE = 100_000
DEFAULT_MATCH_CACHE = 50_000

#: Retained per-demonstration states.  A synthesis session checks one
#: demonstration thousands of times; a handful of states covers direct-API
#: interleavings, and past the cap everything (including verdicts, whose
#: keys pin demo identities through the states) is dropped together.
MAX_DEMO_STATES = 8


class _DemoState:
    """Per-demonstration match state, pinned by demonstration identity."""

    __slots__ = ("demo", "demo_columns", "n_rows", "n_cols", "matches")

    def __init__(self, demo: Demonstration,
                 match_cache_size: int | None) -> None:
        self.demo = demo
        # Simplified once per demonstration (Demonstration.of already
        # simplifies on construction; idempotence makes this a no-op walk
        # then) and stored column-major for the mask loops.
        cells = [[simplify(e) for e in row] for row in demo.cells]
        self.demo_columns = [tuple(row[j] for row in cells)
                             for j in range(demo.n_cols)]
        self.n_rows = demo.n_rows
        self.n_cols = demo.n_cols
        # id(column) -> (column, match matrix).  The entry pins the column
        # object alive, so its id cannot be recycled while the entry
        # exists; identity is re-checked on every hit regardless.
        self.matches: BoundedCache = BoundedCache(match_cache_size)

    def column_masks(self, column, stats) -> tuple[tuple[int, ...] | None, ...]:
        """The column's match matrix against this demonstration.

        One entry per demo column ``j``: a tuple of per-demo-row bitmasks
        over the candidate's output rows, or ``None`` when some demo row
        has no matching output row in this column (the column cannot
        realize demo column ``j`` at all).
        """
        key = id(column)
        entry = self.matches.get(key)
        if entry is not None and entry[0] is column:
            stats.col_match_hits += 1
            return entry[1]
        stats.col_match_evals += 1
        matrix = self._compute_masks(column)
        self.matches[key] = (column, matrix)
        return matrix

    def _compute_masks(self, column) -> tuple[tuple[int, ...] | None, ...]:
        grids = [[0] * self.n_rows for _ in range(self.n_cols)]
        for expr, row_bits in distinct_exprs(column):
            for j, demo_col in enumerate(self.demo_columns):
                grid = grids[j]
                for i, demo_cell in enumerate(demo_col):
                    if generalizes_simplified(expr, demo_cell):
                        grid[i] |= row_bits
        return tuple(None if 0 in grid else tuple(grid) for grid in grids)


class ConsistencyChecker:
    """Engine-owned incremental ``E ≺ [[q(T̄)]]★`` (Definition 1) checker.

    Obtain through ``engine.consistency`` — never share one checker across
    engines: match matrices cache judgments over *that* engine's column
    objects, and the counters ride in that engine's stats.
    """

    def __init__(self, engine,
                 verdict_cache_size: int | None = DEFAULT_VERDICT_CACHE,
                 match_cache_size: int | None = DEFAULT_MATCH_CACHE,
                 max_demo_states: int = MAX_DEMO_STATES) -> None:
        self.engine = engine
        self._match_cache_size = match_cache_size
        self._max_demo_states = max_demo_states
        self._verdicts: BoundedCache = BoundedCache(verdict_cache_size)
        self._demos: dict[int, _DemoState] = {}

    def clear(self) -> None:
        """Drop verdicts, match matrices and demo states (engine reset)."""
        self._verdicts.clear()
        self._demos.clear()

    def _state(self, demo: Demonstration) -> _DemoState:
        key = id(demo)
        state = self._demos.get(key)
        if state is not None and state.demo is demo:
            return state
        if len(self._demos) >= self._max_demo_states:
            # Verdict keys embed demo identities that the evicted states
            # were pinning — they must go together, or a recycled id could
            # surface another demonstration's verdicts.
            self.clear()
        state = _DemoState(demo, self._match_cache_size)
        self._demos[key] = state
        return state

    # ------------------------------------------------------------- checking
    def demo_consistent(self, query: ast.Query, env: ast.Env,
                        demo: Demonstration) -> bool:
        """Definition 1 for one concrete candidate (cached verdict)."""
        return self.demo_consistent_many((query,), env, demo)[0]

    def demo_consistent_many(self, queries: Sequence[ast.Query],
                             env: ast.Env,
                             demo: Demonstration) -> list[bool]:
        """Batched Definition 1 over a sibling family.

        Verdicts come back in input order.  Tracking evaluation and
        consistency checking share one batched pipeline: cache misses are
        evaluated through the engine's ``tracked_columns_many`` (column
        grids shared by identity across the family) and judged against the
        memoized match state.  A candidate that is ill-typed on the data
        (the engine's ``errors="none"`` exception set) is simply not a
        solution — verdict ``False``, exactly as the enumerator's historical
        per-candidate guard treated it.
        """
        state = self._state(demo)
        stats = self.engine.stats
        demo_key = id(demo)
        verdicts = self._verdicts
        out = [False] * len(queries)
        missing: list[int] = []
        for idx, query in enumerate(queries):
            cached = verdicts.get((query, env, demo_key))
            if cached is not None:
                stats.consistency_hits += 1
                out[idx] = cached[0]
            else:
                missing.append(idx)
        if not missing:
            return out
        grids = self.engine.tracked_columns_many(
            [queries[idx] for idx in missing], env, errors="none")
        for idx, columns in zip(missing, grids):
            stats.consistency_checks += 1
            verdict = columns is not None and self._check(columns, state,
                                                          stats)
            # Wrapped so a cached False is distinguishable from a miss.
            verdicts[(queries[idx], env, demo_key)] = (verdict,)
            out[idx] = verdict
        return out

    def _check(self, columns, state: _DemoState, stats) -> bool:
        n_cols = len(columns)
        n_rows = len(columns[0]) if n_cols else 0
        if state.n_rows > n_rows or state.n_cols > n_cols:
            stats.consistency_col_pruned += 1
            return False
        matrices = [state.column_masks(col, stats) for col in columns]
        options: list[list[MaskOption]] = []
        col_adj: list[int] = []
        for j in range(state.n_cols):
            opts = [(c, matrices[c][j]) for c in range(n_cols)
                    if matrices[c][j] is not None]
            if not opts:
                stats.consistency_col_pruned += 1
                return False
            options.append(opts)
            col_adj.append(sum(1 << c for c, _ in opts))
        # Injective column-assignment feasibility: refuted candidates never
        # reach a row search (the column-level prune of the fast path).
        if bitset_match(col_adj, n_cols) is None:
            stats.consistency_col_pruned += 1
            return False
        return bitset_embedding_exists(options, state.n_rows, n_rows)

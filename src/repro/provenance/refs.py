"""The ``ref`` function (paper §4): input-cell references used by a term.

``ref`` drives the abstract consistency check (Definition 3): a demonstration
cell can only be realized by an abstract output cell whose over-approximated
provenance is a superset of the demonstration cell's references.
"""

from __future__ import annotations

from repro.provenance.expr import CellRef, Const, Expr, FuncApp, GroupSet


def refs_of(expr: Expr) -> frozenset[CellRef]:
    """All :class:`CellRef` leaves of a term."""
    if isinstance(expr, CellRef):
        return frozenset((expr,))
    if isinstance(expr, Const):
        return frozenset()
    if isinstance(expr, (FuncApp, GroupSet)):
        out: frozenset[CellRef] = frozenset()
        for child in expr.children():
            out |= refs_of(child)
        return out
    raise TypeError(f"not a provenance term: {expr!r}")

"""Term simplification (paper §3.1).

The tracking semantics simplifies consecutive applications of flattenable
aggregates — ``f(f(a, b), c) → f(a, b, c)`` for ``f ∈ {sum, max, min}`` — so
that semantically equivalent aggregations compare equal under ≺ (a cumulative
sum over group sums flattens to one big sum, exactly as in Fig. 4).

``group{group{...}, ...}`` sets are flattened for the same reason: regrouping
an already-grouped key column nests sets that denote the same collapsed
cells.
"""

from __future__ import annotations

from repro.lang.functions import function_spec
from repro.provenance.expr import CellRef, Const, Expr, FuncApp, GroupSet


def simplify(expr: Expr) -> Expr:
    """Bottom-up flattening; returns a new term (inputs are immutable)."""
    if isinstance(expr, (Const, CellRef)):
        return expr

    if isinstance(expr, GroupSet):
        members: list[Expr] = []
        for member in expr.members:
            member = simplify(member)
            if isinstance(member, GroupSet):
                members.extend(member.members)
            else:
                members.append(member)
        return GroupSet(_dedup(members))

    if isinstance(expr, FuncApp):
        args = [simplify(a) for a in expr.args]
        spec = function_spec(expr.func)
        if spec.flattenable:
            flat: list[Expr] = []
            partial = expr.partial
            for arg in args:
                if isinstance(arg, FuncApp) and arg.func == expr.func:
                    flat.extend(arg.args)
                    partial = partial or arg.partial
                else:
                    flat.append(arg)
            return FuncApp(expr.func, tuple(flat), partial=partial)
        return FuncApp(expr.func, tuple(args), partial=expr.partial)

    return expr


def _dedup(members: list[Expr]) -> tuple[Expr, ...]:
    seen: set[Expr] = set()
    out: list[Expr] = []
    for m in members:
        if m not in seen:
            seen.add(m)
            out.append(m)
    return tuple(out)

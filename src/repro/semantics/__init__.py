"""Evaluation semantics for L_SQL.

* :mod:`repro.semantics.concrete` — standard evaluation ``[[q(T̄)]]``;
* :mod:`repro.semantics.tracking` — provenance-tracking evaluation
  ``[[q(T̄)]]★`` (paper Fig. 9), whose outputs carry a provenance expression
  *and* a concrete value per cell (the concrete grid is needed to drive
  grouping, filtering and sorting decisions during tracking).
"""

from repro.semantics.concrete import evaluate
from repro.semantics.groups import extract_groups
from repro.semantics.tracking import TrackedTable, evaluate_tracking

__all__ = ["evaluate", "evaluate_tracking", "TrackedTable", "extract_groups"]

"""Standard (concrete) evaluation of L_SQL queries.

``evaluate(q, env)`` returns an ordered-bag :class:`~repro.table.Table`.
Evaluation is memoized on the (query, env) pair — the synthesizer evaluates
thousands of structurally-shared partial queries' concrete subtrees, and the
tables involved are tiny, so caching is a large win.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import EvaluationError, HoleError
from repro.lang import ast
from repro.lang.functions import analytic_spec, apply_function
from repro.lang.holes import Hole, is_concrete
from repro.lang.naming import output_columns
from repro.semantics.groups import extract_groups, group_of
from repro.table.table import Table
from repro.table.values import value_sort_key


def evaluate(query: ast.Query, env: ast.Env) -> Table:
    """Evaluate a concrete query; raises :class:`HoleError` on holes."""
    if not is_concrete(query):
        raise HoleError(f"cannot concretely evaluate a partial query: {query}")
    return _evaluate_cached(query, env)


@lru_cache(maxsize=100_000)
def _evaluate_cached(query: ast.Query, env: ast.Env) -> Table:
    rows = _rows(query, env)
    columns = output_columns(query, env)
    return Table.from_rows("t", columns, rows)


def _rows(query: ast.Query, env: ast.Env) -> list[tuple]:
    if isinstance(query, ast.TableRef):
        return list(env.get(query.name).rows)

    if isinstance(query, ast.Filter):
        child = _evaluate_cached(query.child, env)
        return [row for row in child.rows if query.pred.evaluate(row)]

    if isinstance(query, ast.Join):
        left = _evaluate_cached(query.left, env)
        right = _evaluate_cached(query.right, env)
        combined = [l + r for l in left.rows for r in right.rows]
        if query.pred is None:
            return combined
        return [row for row in combined if query.pred.evaluate(row)]

    if isinstance(query, ast.LeftJoin):
        left = _evaluate_cached(query.left, env)
        right = _evaluate_cached(query.right, env)
        pad = (None,) * right.n_cols
        out = []
        for l in left.rows:
            matches = [l + r for r in right.rows if query.pred.evaluate(l + r)]
            out.extend(matches if matches else [l + pad])
        return out

    if isinstance(query, ast.Proj):
        child = _evaluate_cached(query.child, env)
        return [tuple(row[c] for c in query.cols) for row in child.rows]

    if isinstance(query, ast.Sort):
        child = _evaluate_cached(query.child, env)
        keyed = sorted(
            child.rows,
            key=lambda row: tuple(value_sort_key(row[c]) for c in query.cols),
            reverse=not query.ascending)
        return list(keyed)

    if isinstance(query, ast.Group):
        child = _evaluate_cached(query.child, env)
        key_rows = [[row[k] for k in query.keys] for row in child.rows]
        groups = extract_groups(key_rows)
        out = []
        for g in groups:
            rep = child.rows[g[0]]
            agg_values = [child.rows[i][query.agg_col] for i in g]
            out.append(tuple(rep[k] for k in query.keys)
                       + (apply_function(query.agg_func, agg_values),))
        return out

    if isinstance(query, ast.Partition):
        child = _evaluate_cached(query.child, env)
        key_rows = [[row[k] for k in query.keys] for row in child.rows]
        groups = extract_groups(key_rows)
        spec = analytic_spec(query.agg_func)
        out = []
        for i, row in enumerate(child.rows):
            g = group_of(groups, i)
            group_values = [child.rows[k][query.agg_col] for k in g]
            args = spec.row_args(group_values, g.index(i))
            out.append(row + (apply_function(spec.term_name, args),))
        return out

    if isinstance(query, ast.Arithmetic):
        child = _evaluate_cached(query.child, env)
        return [row + (apply_function(query.func, [row[c] for c in query.cols]),)
                for row in child.rows]

    raise EvaluationError(f"unknown query node {type(query).__name__}")


def clear_cache() -> None:
    """Drop the memoized evaluation results (used between experiment runs)."""
    _evaluate_cached.cache_clear()

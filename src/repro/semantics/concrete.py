"""Standard (concrete) evaluation of L_SQL queries.

``evaluate(q, env)`` returns an ordered-bag :class:`~repro.table.Table`.
Evaluation is memoized on the (query, env) pair *through a caller-supplied
cache*: the synthesizer evaluates thousands of structurally-shared partial
queries' concrete subtrees, and sharing a cache across those calls is a
large win.  The cache is an ordinary mapping owned by whoever passes it in
(normally an :class:`~repro.engine.base.EvalEngine`) — this module holds no
global mutable state, so independent synthesis sessions never interfere.
"""

from __future__ import annotations

from collections.abc import MutableMapping

from repro.errors import EvaluationError, HoleError
from repro.lang import ast
from repro.lang.functions import analytic_spec, apply_function
from repro.lang.holes import is_concrete
from repro.lang.naming import output_columns
from repro.semantics.groups import extract_groups, group_position_map
from repro.table.table import Table
from repro.table.values import value_sort_key


def evaluate(query: ast.Query, env: ast.Env,
             cache: MutableMapping | None = None) -> Table:
    """Evaluate a concrete query; raises :class:`HoleError` on holes.

    ``cache`` maps ``(query, env)`` to evaluated tables and is consulted for
    every subtree.  When omitted, a scratch cache local to this call is used
    (subtrees shared *within* the query are still evaluated once).
    """
    if not is_concrete(query):
        raise HoleError(f"cannot concretely evaluate a partial query: {query}")
    if cache is None:
        cache = {}
    return _evaluate(query, env, cache)


def evaluate_missing(query: ast.Query, env: ast.Env,
                     cache: MutableMapping) -> Table:
    """Compute (and cache) a query the caller already probed ``cache`` for.

    The engine's hot path probes its cache before dispatching here; this
    entry point skips the redundant second probe of the top-level key.
    """
    if not is_concrete(query):
        raise HoleError(f"cannot concretely evaluate a partial query: {query}")
    return _compute(query, env, cache)


def _evaluate(query: ast.Query, env: ast.Env,
              cache: MutableMapping) -> Table:
    hit = cache.get((query, env))
    if hit is not None:
        return hit
    return _compute(query, env, cache)


def _compute(query: ast.Query, env: ast.Env,
             cache: MutableMapping) -> Table:
    rows = _rows(query, env, cache)
    columns = output_columns(query, env)
    table = Table.from_rows("t", columns, rows)
    cache[(query, env)] = table
    return table


def _rows(query: ast.Query, env: ast.Env, cache: MutableMapping) -> list[tuple]:
    if isinstance(query, ast.TableRef):
        return list(env.get(query.name).rows)

    if isinstance(query, ast.Filter):
        child = _evaluate(query.child, env, cache)
        return [row for row in child.rows if query.pred.evaluate(row)]

    if isinstance(query, ast.Join):
        left = _evaluate(query.left, env, cache)
        right = _evaluate(query.right, env, cache)
        combined = [l + r for l in left.rows for r in right.rows]
        if query.pred is None:
            return combined
        return [row for row in combined if query.pred.evaluate(row)]

    if isinstance(query, ast.LeftJoin):
        left = _evaluate(query.left, env, cache)
        right = _evaluate(query.right, env, cache)
        pad = (None,) * right.n_cols
        out = []
        for l in left.rows:
            matches = [l + r for r in right.rows if query.pred.evaluate(l + r)]
            out.extend(matches if matches else [l + pad])
        return out

    if isinstance(query, ast.Proj):
        child = _evaluate(query.child, env, cache)
        return [tuple(row[c] for c in query.cols) for row in child.rows]

    if isinstance(query, ast.Sort):
        child = _evaluate(query.child, env, cache)
        keyed = sorted(
            child.rows,
            key=lambda row: tuple(value_sort_key(row[c]) for c in query.cols),
            reverse=not query.ascending)
        return list(keyed)

    if isinstance(query, ast.Group):
        child = _evaluate(query.child, env, cache)
        key_rows = [[row[k] for k in query.keys] for row in child.rows]
        groups = extract_groups(key_rows)
        out = []
        for g in groups:
            rep = child.rows[g[0]]
            agg_values = [child.rows[i][query.agg_col] for i in g]
            out.append(tuple(rep[k] for k in query.keys)
                       + (apply_function(query.agg_func, agg_values),))
        return out

    if isinstance(query, ast.Partition):
        child = _evaluate(query.child, env, cache)
        key_rows = [[row[k] for k in query.keys] for row in child.rows]
        groups = extract_groups(key_rows)
        spec = analytic_spec(query.agg_func)
        # One row→(group, position) index for the whole partition (probing
        # group membership per row would be quadratic in row count), and one
        # member-value list per group shared by all of its rows.
        positions = group_position_map(groups)
        member_vals = [[child.rows[k][query.agg_col] for k in g]
                       for g in groups]
        out = []
        for i, row in enumerate(child.rows):
            gi, pos = positions[i]
            args = spec.row_args(member_vals[gi], pos)
            out.append(row + (apply_function(spec.term_name, args),))
        return out

    if isinstance(query, ast.Arithmetic):
        child = _evaluate(query.child, env, cache)
        return [row + (apply_function(query.func, [row[c] for c in query.cols]),)
                for row in child.rows]

    raise EvaluationError(f"unknown query node {type(query).__name__}")

"""``extractGroups`` (paper Fig. 9, bottom).

Partitions row indexes into maximal equivalence classes of rows whose key
columns hold equal values.  Groups are emitted in first-occurrence order so
every consumer (concrete evaluation, tracking, strong abstraction) sees the
same deterministic grouping.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.table.values import Value, canonical


def extract_groups(key_rows: Sequence[Sequence[Value]]) -> list[list[int]]:
    """Group row indexes by equality of their key tuples."""
    order: list[tuple] = []
    buckets: dict[tuple, list[int]] = {}
    for i, key_row in enumerate(key_rows):
        key = tuple(canonical(v) for v in key_row)
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(i)
    return [buckets[key] for key in order]


def group_of(groups: list[list[int]], row: int) -> list[int]:
    """The group containing ``row`` (rows belong to exactly one group).

    Linear in the number of groups — fine for a single probe.  Callers that
    look up every row of a partition must build :func:`group_index_map`
    (or :func:`group_position_map`) once instead, or partition evaluation
    goes quadratic in row count.
    """
    for g in groups:
        if row in g:
            return g
    raise ValueError(f"row {row} not in any group")


def group_index_map(groups: Sequence[Sequence[int]]) -> dict[int, int]:
    """Row index → index of its group in ``groups``, built in one pass."""
    out: dict[int, int] = {}
    for gi, g in enumerate(groups):
        for i in g:
            out[i] = gi
    return out


def group_position_map(
        groups: Sequence[Sequence[int]]) -> dict[int, tuple[int, int]]:
    """Row index → ``(group index, position within the group)``.

    The position is what ``g.index(i)`` would return — the row's rank in
    its group's table order — precomputed for all rows at once.
    """
    out: dict[int, tuple[int, int]] = {}
    for gi, g in enumerate(groups):
        for pos, i in enumerate(g):
            out[i] = (gi, pos)
    return out

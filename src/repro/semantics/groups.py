"""``extractGroups`` (paper Fig. 9, bottom).

Partitions row indexes into maximal equivalence classes of rows whose key
columns hold equal values.  Groups are emitted in first-occurrence order so
every consumer (concrete evaluation, tracking, strong abstraction) sees the
same deterministic grouping.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.table.values import Value, canonical


def extract_groups(key_rows: Sequence[Sequence[Value]]) -> list[list[int]]:
    """Group row indexes by equality of their key tuples."""
    order: list[tuple] = []
    buckets: dict[tuple, list[int]] = {}
    for i, key_row in enumerate(key_rows):
        key = tuple(canonical(v) for v in key_row)
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(i)
    return [buckets[key] for key in order]


def group_of(groups: list[list[int]], row: int) -> list[int]:
    """The group containing ``row`` (rows belong to exactly one group)."""
    for g in groups:
        if row in g:
            return g
    raise ValueError(f"row {row} not in any group")

"""Provenance-tracking evaluation ``[[q(T̄)]]★`` (paper Fig. 9).

Every operator is a term rewriter: the output is a *provenance-embedded
table* whose cells are :class:`~repro.provenance.expr.Expr` terms recording
how each value was derived from input cells.  A parallel grid of concrete
values is maintained because grouping, filtering and sorting decisions are
driven by concrete data (``extractGroups([[T★[c̄]]])`` in the figure).

Aggregation terms are simplified on construction (``sum`` flattening, group
flattening), matching §3.1's discussion of semantically equivalent
aggregations — e.g. a ``cumsum`` over per-group ``sum``s becomes one flat
``sum`` whose arguments are the underlying input cells (Fig. 4, row 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import MutableMapping

from repro.errors import EvaluationError, HoleError
from repro.lang import ast
from repro.lang.functions import analytic_spec, apply_function
from repro.lang.holes import is_concrete
from repro.lang.naming import output_columns
from repro.provenance.expr import CellRef, Const, Expr, FuncApp, GroupSet
from repro.provenance.simplify import simplify
from repro.semantics.groups import extract_groups, group_position_map
from repro.table.table import Table
from repro.table.values import Value, value_sort_key


@dataclass(frozen=True)
class TrackedTable:
    """A provenance-embedded table T★ with its concrete shadow.

    ``exprs[i][j]`` records the provenance of cell ``(i, j)``;
    ``values[i][j]`` is its concrete value ``[[exprs[i][j]]]``.
    """

    columns: tuple[str, ...]
    exprs: tuple[tuple[Expr, ...], ...]
    values: tuple[tuple[Value, ...], ...]

    @property
    def n_rows(self) -> int:
        return len(self.exprs)

    @property
    def n_cols(self) -> int:
        return len(self.columns)

    def to_table(self, name: str = "t") -> Table:
        """``[[T★]]`` — evaluate every cell (paper §3.1)."""
        return Table.from_rows(name, self.columns, self.values)

    def expr_rows(self) -> tuple[tuple[Expr, ...], ...]:
        return self.exprs


def evaluate_tracking(query: ast.Query, env: ast.Env,
                      cache: MutableMapping | None = None) -> TrackedTable:
    """Provenance-tracking evaluation; raises :class:`HoleError` on holes.

    ``cache`` maps ``(query, env)`` to tracked tables and is consulted for
    every subtree; it is owned by the caller (normally an
    :class:`~repro.engine.base.EvalEngine`).  When omitted, a scratch cache
    local to this call is used.
    """
    if not is_concrete(query):
        raise HoleError(f"cannot track a partial query: {query}")
    if cache is None:
        cache = {}
    return _track(query, env, cache)


def track_missing(query: ast.Query, env: ast.Env,
                  cache: MutableMapping) -> TrackedTable:
    """Compute (and cache) a query the caller already probed ``cache`` for
    (the engines' hot path — skips the redundant top-level probe)."""
    if not is_concrete(query):
        raise HoleError(f"cannot track a partial query: {query}")
    return _compute(query, env, cache)


def _track(query: ast.Query, env: ast.Env,
           cache: MutableMapping) -> TrackedTable:
    hit = cache.get((query, env))
    if hit is not None:
        return hit
    return _compute(query, env, cache)


def _compute(query: ast.Query, env: ast.Env,
             cache: MutableMapping) -> TrackedTable:
    columns = tuple(output_columns(query, env))
    exprs, values = _grids(query, env, cache)
    tracked = TrackedTable(columns, exprs, values)
    cache[(query, env)] = tracked
    return tracked


def _grids(query: ast.Query, env: ast.Env, cache: MutableMapping):
    if isinstance(query, ast.TableRef):
        table = env.get(query.name)
        exprs = tuple(
            tuple(CellRef(query.name, i, j) for j in range(table.n_cols))
            for i in range(table.n_rows))
        return exprs, table.rows

    if isinstance(query, ast.Filter):
        child = _track(query.child, env, cache)
        keep = [i for i, row in enumerate(child.values)
                if query.pred.evaluate(row)]
        return (tuple(child.exprs[i] for i in keep),
                tuple(child.values[i] for i in keep))

    if isinstance(query, ast.Join):
        left = _track(query.left, env, cache)
        right = _track(query.right, env, cache)
        exprs, values = [], []
        for i in range(left.n_rows):
            for j in range(right.n_rows):
                combined = left.values[i] + right.values[j]
                if query.pred is None or query.pred.evaluate(combined):
                    exprs.append(left.exprs[i] + right.exprs[j])
                    values.append(combined)
        return tuple(exprs), tuple(values)

    if isinstance(query, ast.LeftJoin):
        left = _track(query.left, env, cache)
        right = _track(query.right, env, cache)
        pad_exprs = tuple(Const(None) for _ in range(right.n_cols))
        pad_values = (None,) * right.n_cols
        exprs, values = [], []
        for i in range(left.n_rows):
            matched = False
            for j in range(right.n_rows):
                combined = left.values[i] + right.values[j]
                if query.pred.evaluate(combined):
                    matched = True
                    exprs.append(left.exprs[i] + right.exprs[j])
                    values.append(combined)
            if not matched:
                exprs.append(left.exprs[i] + pad_exprs)
                values.append(left.values[i] + pad_values)
        return tuple(exprs), tuple(values)

    if isinstance(query, ast.Proj):
        child = _track(query.child, env, cache)
        return (tuple(tuple(row[c] for c in query.cols) for row in child.exprs),
                tuple(tuple(row[c] for c in query.cols) for row in child.values))

    if isinstance(query, ast.Sort):
        child = _track(query.child, env, cache)
        order = sorted(
            range(child.n_rows),
            key=lambda i: tuple(value_sort_key(child.values[i][c])
                                for c in query.cols),
            reverse=not query.ascending)
        return (tuple(child.exprs[i] for i in order),
                tuple(child.values[i] for i in order))

    if isinstance(query, ast.Group):
        child = _track(query.child, env, cache)
        key_rows = [[row[k] for k in query.keys] for row in child.values]
        groups = extract_groups(key_rows)
        exprs, values = [], []
        for g in groups:
            # Key columns collapse to group{...} terms (Fig. 9): the user may
            # reference any member in the demonstration.
            key_exprs = tuple(
                simplify(GroupSet(tuple(child.exprs[i][k] for i in g)))
                for k in query.keys)
            agg_expr = simplify(FuncApp(
                query.agg_func, tuple(child.exprs[i][query.agg_col] for i in g)))
            agg_vals = [child.values[i][query.agg_col] for i in g]
            exprs.append(key_exprs + (agg_expr,))
            values.append(tuple(child.values[g[0]][k] for k in query.keys)
                          + (apply_function(query.agg_func, agg_vals),))
        return tuple(exprs), tuple(values)

    if isinstance(query, ast.Partition):
        child = _track(query.child, env, cache)
        key_rows = [[row[k] for k in query.keys] for row in child.values]
        groups = extract_groups(key_rows)
        spec = analytic_spec(query.agg_func)
        # One row→(group, position) index for the whole partition (probing
        # group membership per row would be quadratic in row count), and one
        # member list per group shared by all of its rows.
        positions = group_position_map(groups)
        member_exprs = [[child.exprs[k][query.agg_col] for k in g]
                        for g in groups]
        member_vals = [[child.values[k][query.agg_col] for k in g]
                       for g in groups]
        exprs, values = [], []
        for i in range(child.n_rows):
            gi, pos = positions[i]
            arg_exprs = spec.row_args(member_exprs[gi], pos)
            arg_vals = spec.row_args(member_vals[gi], pos)
            new_expr = simplify(FuncApp(spec.term_name, tuple(arg_exprs)))
            exprs.append(child.exprs[i] + (new_expr,))
            values.append(child.values[i]
                          + (apply_function(spec.term_name, arg_vals),))
        return tuple(exprs), tuple(values)

    if isinstance(query, ast.Arithmetic):
        child = _track(query.child, env, cache)
        exprs, values = [], []
        for i in range(child.n_rows):
            arg_exprs = tuple(child.exprs[i][c] for c in query.cols)
            arg_vals = [child.values[i][c] for c in query.cols]
            exprs.append(child.exprs[i] + (simplify(FuncApp(query.func, arg_exprs)),))
            values.append(child.values[i] + (apply_function(query.func, arg_vals),))
        return tuple(exprs), tuple(values)

    raise EvaluationError(f"unknown query node {type(query).__name__}")

"""Synthesis-as-a-service: a persistent warm worker pool
(:mod:`repro.serve.pool`) under an asyncio front-end
(:mod:`repro.serve.service`).

The pool is backend-pluggable (:data:`~repro.serve.pool.POOL_BACKENDS`):
GIL-sharing worker threads, or long-lived worker processes fed
checkpoint blobs over the shared-memory column store — the default
whenever the pool is larger than one worker.  Both tiers share one
sub-plan cache stack and produce byte-identical results.

Fault tolerance: the pool supervises its workers (restart with backoff,
degrade to threads as a last resort) and the service replays a dead
worker's requests from their latest slice-boundary checkpoints —
transparently, because results are deterministic.  Deterministic chaos
for testing all of it lives in :mod:`repro.serve.faults`
(:class:`~repro.serve.faults.FaultPlan` / ``REPRO_FAULTS``).

Layering: sits beside :mod:`repro.experiments`, above
:mod:`repro.synthesis` — requests are
:class:`~repro.synthesis.session.SynthesisSession` objects, and the pool
reuses the cross-shard sub-plan cache and shm column store from
:mod:`repro.parallel` / :mod:`repro.engine.shm`.
"""

from repro.serve.faults import (
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    parse_faults,
)
from repro.serve.pool import (
    POOL_BACKENDS,
    WORKER_DIED,
    PoolBackend,
    ProcessBackend,
    RecoveryTelemetry,
    SliceOutcome,
    ThreadBackend,
    WorkerPool,
    WorkerTelemetry,
    resolve_pool_backend,
    warm_key,
)
from repro.serve.service import (
    RequestHandle,
    ServiceConfig,
    ServiceOverloaded,
    SynthesisService,
)

__all__ = [
    "WorkerPool", "PoolBackend", "ThreadBackend", "ProcessBackend",
    "POOL_BACKENDS", "resolve_pool_backend", "warm_key",
    "SliceOutcome", "WorkerTelemetry", "RecoveryTelemetry", "WORKER_DIED",
    "FaultPlan", "FaultInjector", "InjectedCrash", "parse_faults",
    "SynthesisService", "ServiceConfig", "ServiceOverloaded",
    "RequestHandle",
]

"""Synthesis-as-a-service: a persistent warm worker pool
(:mod:`repro.serve.pool`) under an asyncio front-end
(:mod:`repro.serve.service`).

Layering: sits beside :mod:`repro.experiments`, above
:mod:`repro.synthesis` — requests are
:class:`~repro.synthesis.session.SynthesisSession` objects, and the pool
reuses the cross-shard sub-plan cache from :mod:`repro.parallel`.
"""

from repro.serve.pool import PoolWorker, WorkerPool, warm_key
from repro.serve.service import (
    RequestHandle,
    ServiceConfig,
    ServiceOverloaded,
    SynthesisService,
)

__all__ = [
    "WorkerPool", "PoolWorker", "warm_key",
    "SynthesisService", "ServiceConfig", "ServiceOverloaded",
    "RequestHandle",
]

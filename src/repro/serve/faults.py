"""Deterministic fault injection for the serving stack.

Chaos testing is only useful when a failing run can be replayed: a
:class:`FaultPlan` is a pure, seeded description of *which* faults to
inject, and a :class:`FaultInjector` turns it into per-site decisions
that depend only on ``(seed, worker_id, incarnation, site, draw index)``
— no RNG state, no wall clock.  The same plan against the same request
stream injects the same faults, under fork and spawn alike (the plan is
a frozen dataclass and ships to worker processes by value).

Injection sites (all rates are probabilities in ``[0, 1]``):

``crash_before`` / ``crash_after``
    The worker dies immediately before / after executing one slice —
    before any work, or after the work but *before the outcome ships*,
    the two windows a checkpoint-replay recovery must cover.
``crash_mid`` / ``hang``
    Fired from inside the session's step loop via the pop hook
    (:meth:`~repro.synthesis.session.SynthesisSession.set_pop_hook`):
    the worker dies, or sleeps ``hang_s``, a few pops into a slice —
    mid-slice work that must be replayed from the last checkpoint.
``publish_fail``
    The coordinator's shm env publish raises, exercising the degrade to
    pickled-env dispatch.
``spawn_fail``
    Restarting a dead worker fails, exercising restart backoff and — if
    every attempt fails — the pool's degrade to the thread backend.
``crash_on_cancel``
    The worker dies exactly while applying a cancel op — the
    cancel-vs-crash race: recovery must still end the request
    ``cancelled``, never ``failed`` or ``done``.

Arming: an injector is *armed* only while ``incarnation <
max_incarnation``.  Restarted workers get ``incarnation + 1``, so with
the default ``max_incarnation=1`` a deterministic plan like
``crash_before=1.0`` kills every worker exactly once and their
replacements run clean — the pattern every recovery test wants, without
crash loops.

Crashes are :class:`InjectedCrash`, a ``BaseException`` subclass on
purpose: the worker op loop converts *exceptions* into error outcomes
(that is the request-failure path), while an injected crash must escape
that net and kill the worker itself (``os._exit`` on the process tier, a
dead thread on the thread tier) so supervision — not error handling —
is what the test exercises.

``REPRO_FAULTS`` configures a plan from the environment as
comma-separated ``key=value`` pairs, e.g.
``REPRO_FAULTS="seed=7,crash_before=0.2,hang=0.05,hang_s=0.5"``.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, fields

#: Exit code a process worker dies with on an injected crash — distinct
#: from clean exit (0) and signal deaths (negative), so supervision
#: reports legibly which deaths were injected.
FAULT_EXITCODE = 57


class InjectedCrash(BaseException):
    """An injected worker death.  Deliberately *not* an ``Exception``:
    it must pass through the op loop's error-to-outcome net and kill the
    worker, so the supervision/recovery path is what gets tested."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative chaos schedule (see the module doc)."""

    seed: int = 0
    crash_before: float = 0.0   # worker dies before running a slice
    crash_mid: float = 0.0      # worker dies a few pops into a slice
    crash_after: float = 0.0    # worker dies after the slice, outcome lost
    hang: float = 0.0           # worker sleeps hang_s mid-slice
    hang_s: float = 0.2
    publish_fail: float = 0.0   # shm env publish raises
    spawn_fail: float = 0.0     # worker restart fails
    crash_on_cancel: float = 0.0  # worker dies while applying a cancel
    max_incarnation: int = 1    # incarnations < this are armed

    def __post_init__(self) -> None:
        for name in ("crash_before", "crash_mid", "crash_after", "hang",
                     "publish_fail", "spawn_fail", "crash_on_cancel"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.hang_s < 0:
            raise ValueError(f"hang_s must be >= 0, got {self.hang_s!r}")
        if self.max_incarnation < 0:
            raise ValueError("max_incarnation must be >= 0")

    @property
    def any_pop_faults(self) -> bool:
        return self.crash_mid > 0 or self.hang > 0


_FLOAT_FIELDS = frozenset(
    f.name for f in fields(FaultPlan) if f.type == "float")
_INT_FIELDS = frozenset(f.name for f in fields(FaultPlan) if f.type == "int")


def parse_faults(spec: str | None) -> FaultPlan | None:
    """``"seed=7,crash_before=0.2"`` → :class:`FaultPlan` (None when the
    spec is empty/None — no injection)."""
    if spec is None or not spec.strip():
        return None
    kwargs: dict = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep:
            raise ValueError(f"fault spec item {item!r} is not key=value")
        if key in _INT_FIELDS:
            kwargs[key] = int(value)
        elif key in _FLOAT_FIELDS:
            kwargs[key] = float(value)
        else:
            known = sorted(_INT_FIELDS | _FLOAT_FIELDS)
            raise ValueError(f"unknown fault knob {key!r} (known: {known})")
    return FaultPlan(**kwargs)


def plan_from_env() -> FaultPlan | None:
    """The ``REPRO_FAULTS`` plan, or None when unset."""
    return parse_faults(os.environ.get("REPRO_FAULTS"))


class FaultInjector:
    """One worker incarnation's view of a :class:`FaultPlan`.

    Every decision is a pure function of ``(seed, worker_id,
    incarnation, site, n)`` where ``n`` counts draws at that site — so a
    replayed run (same plan, same op order per worker) injects the same
    faults, and a restarted worker (next incarnation) draws a fresh,
    equally deterministic stream instead of replaying its predecessor's
    crashes.
    """

    def __init__(self, plan: FaultPlan, worker_id: int,
                 incarnation: int = 0) -> None:
        self.plan = plan
        self.worker_id = worker_id
        self.incarnation = incarnation
        self.armed = incarnation < plan.max_incarnation
        self._counts: dict[str, int] = {}
        self._pop_mode: str | None = None
        self._pop_target = 0
        self._pop_count = 0

    # ------------------------------------------------------------- decisions
    def draw(self, site: str) -> float:
        """The next uniform [0, 1) draw for ``site`` (advances it)."""
        n = self._counts.get(site, 0) + 1
        self._counts[site] = n
        key = (f"{self.plan.seed}:{self.worker_id}:{self.incarnation}"
               f":{site}:{n}")
        digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    def fires(self, site: str, rate: float) -> bool:
        if not self.armed or rate <= 0.0:
            return False
        return self.draw(site) < rate

    # ------------------------------------------------------- injection sites
    def slice_begin(self, session) -> None:
        """Called by the session host right before a slice executes."""
        if self.fires("crash_before", self.plan.crash_before):
            raise InjectedCrash(
                f"injected crash before slice (worker {self.worker_id}, "
                f"incarnation {self.incarnation})")
        self._pop_mode = None
        if self.armed and self.plan.any_pop_faults:
            if self.fires("hang", self.plan.hang):
                self._pop_mode = "hang"
            elif self.fires("crash_mid", self.plan.crash_mid):
                self._pop_mode = "crash"
        if self._pop_mode is not None:
            # A few pops in (1-4): genuinely mid-slice, so the replay
            # actually re-does lost work, yet always inside even the
            # smallest slice budget the tests use.
            self._pop_target = 1 + int(self.draw("pop_target") * 4)
            self._pop_count = 0
            session.set_pop_hook(self._on_pop)
        else:
            session.set_pop_hook(None)

    def slice_end(self) -> None:
        """Called after the slice ran, before its outcome ships."""
        if self.fires("crash_after", self.plan.crash_after):
            raise InjectedCrash(
                f"injected crash after slice (worker {self.worker_id}, "
                f"incarnation {self.incarnation})")

    def on_cancel(self) -> None:
        """Called while the worker applies a queued cancel op."""
        if self.fires("crash_on_cancel", self.plan.crash_on_cancel):
            raise InjectedCrash(
                f"injected crash during cancel (worker {self.worker_id}, "
                f"incarnation {self.incarnation})")

    def check_spawn(self) -> None:
        """Called by the coordinator before (re)spawning this worker."""
        if self.fires("spawn", self.plan.spawn_fail):
            raise OSError(
                f"injected spawn failure (worker {self.worker_id}, "
                f"incarnation {self.incarnation})")

    def publish_fails(self) -> bool:
        """Whether this env publish should fail (coordinator side)."""
        return self.fires("publish", self.plan.publish_fail)

    def _on_pop(self) -> None:
        if self._pop_mode is None:
            return
        self._pop_count += 1
        if self._pop_count < self._pop_target:
            return
        mode, self._pop_mode = self._pop_mode, None
        if mode == "crash":
            raise InjectedCrash(
                f"injected crash mid-slice (worker {self.worker_id}, "
                f"incarnation {self.incarnation}, pop {self._pop_count})")
        time.sleep(self.plan.hang_s)


def make_injector(plan: FaultPlan | None, worker_id: int,
                  incarnation: int) -> FaultInjector | None:
    """Injector for one worker incarnation, or None without a plan."""
    if plan is None:
        return None
    return FaultInjector(plan, worker_id, incarnation)

"""The persistent warm worker pool behind :class:`repro.serve.service`.

One :class:`WorkerPool` outlives every request, and since PR 8 the worker
tier is *executor-agnostic*: the pool facade speaks a small op protocol
(open / step / run / cancel / close) to a :class:`PoolBackend`, and two
backends implement it —

* :class:`ThreadBackend` — daemon threads in the service process, the
  PR 7 tier.  Sessions are shared by reference, dispatch is free, and the
  GIL serializes CPU-bound slices; right for latency-sensitive light
  traffic and for callers who want to poll the live session object.
* :class:`ProcessBackend` — long-lived non-daemon worker *processes*
  (non-daemon so a hosted session may itself fan out to shard workers).
  Requests ship as env-stripped ``checkpoint()`` blobs plus an
  :class:`~repro.engine.shm.EnvHandle` laid out once in the shared-memory
  column store; concurrent CPU-bound searches then scale with cores
  instead of contending for one GIL.

Both backends drive the same :class:`_SessionHost` per worker: a cache of
warm ``(engine, abstraction)`` pairs keyed by :func:`warm_key`, the
``(warm key, env digest)`` pairs already served (the warm-hit metric that
schema-affinity routing optimizes), and the sessions currently hosted.
Because the host is shared code, a request's slices execute identically
on either tier — the determinism pledge below.

Cross-request sub-plan sharing spans both tiers through one cache stack:
every warm engine talks to a :class:`~repro.parallel.plan_cache.
LocalPlanCache`; on the process tier that local cache is *backed* by the
shm-digest index (:class:`~repro.parallel.plan_cache.ProcessPlanCache`
with env-keyed digests), so the first worker process that evaluates a
shared sub-plan publishes its block and every sibling — and the
coordinator's own engines — fetch it instead of re-evaluating.

Why warm reuse is safe: engine caches are keyed on exact structural
``(query, env)`` state — and the incremental consistency checker's
verdicts additionally on demonstration identity — so traffic from one
request can never change another's *results*, only its latency.  The shm
codecs are exact and an attached environment compares equal to the
original, so a process-hosted session's ranked queries and
``SearchStats`` are byte-identical to the same session sliced on a
thread worker (or never sliced at all), under fork and spawn alike.

Fault tolerance (PR 9).  A supervisor thread in the facade watches for
dead workers (process exitcode, crashed thread) and hung slices (no
per-worker progress within ``slice_timeout_s``), and on failure: marks
the worker down, bumps its *incarnation* (stale outcomes and ops from
the dead incarnation are dropped by tag), fails its hosted requests over
to the caller as ``status="worker_died"`` outcomes, and restarts the
worker with exponential backoff.  A restarted process worker gets a
fresh job queue, a swept plan-cache shard (``drop_shard``), and cold
warm/affinity state.  When every restart attempt fails the pool degrades
to the thread backend with a logged warning rather than dying.  Every
non-terminal :class:`SliceOutcome` carries the session's latest
slice-boundary checkpoint, which is what lets the service above replay a
request on a healthy worker with byte-identical results — crashes cost
latency, never correctness.  Deterministic chaos for all of this comes
from :mod:`repro.serve.faults`.
"""

from __future__ import annotations

import atexit
import gc
import logging
import os
import queue
import threading
import time
import traceback
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.abstraction.base import Abstraction
from repro.engine import shm
from repro.engine.base import EvalEngine, make_engine, resolve_backend
from repro.parallel.executor import pick_context
from repro.parallel.plan_cache import LocalPlanCache, ProcessPlanCache
from repro.serve.faults import (
    FAULT_EXITCODE,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    make_injector,
    plan_from_env,
)
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.enumerator import SearchStats, SynthesisResult
from repro.synthesis.session import SynthesisSession
from repro.synthesis.synthesizer import build_abstraction
from repro.util.timer import Deadline

_LOG = logging.getLogger("repro.serve")

#: Stop sentinel for thread-worker queues (``None`` would shadow a job).
_SHUTDOWN = object()

POOL_BACKENDS = ("threads", "processes")

#: Outcome status for a request whose worker died under it — the signal
#: the service's checkpoint-replay recovery keys on.
WORKER_DIED = "worker_died"

#: Bound on close()'s drain-and-join; workers still alive after it are
#: terminated and reported, never waited on forever.
POOL_CLOSE_TIMEOUT_S = 10.0

#: Supervisor sweep cadence (seconds) — bounds failure-detection latency.
SUPERVISE_INTERVAL_S = 0.1

#: First restart backoff; doubles per failed spawn attempt.
RESTART_BACKOFF_S = 0.05

#: Spawn attempts per worker failure before the pool degrades to the
#: thread backend.
MAX_SPAWN_ATTEMPTS = 3

#: Shared cancel-flag slots per process pool.  Live requests are bounded
#: by service admission (default 8), so exhaustion is theoretical; a
#: request that misses a slot still cancels at its next slice boundary
#: via the queued cancel op.
_CANCEL_SLOTS = 256

#: Attached environments memoized per worker process (one per shm
#: segment); beyond this, idle entries are detached oldest-first.
_ENV_MEMO_LIMIT = 32


def resolve_pool_backend(backend: str | None = None, size: int = 1) -> str:
    """Resolve a backend request to ``"threads"`` or ``"processes"``.

    An explicit ``backend`` wins; otherwise ``REPRO_POOL_BACKEND``
    (the CI matrix hook), and finally ``"auto"``: processes whenever the
    pool actually has parallelism to exploit (size > 1), threads for a
    single worker where process dispatch would be pure overhead.
    """
    mode = backend if backend not in (None, "", "auto") else \
        (os.environ.get("REPRO_POOL_BACKEND", "").strip().lower() or "auto")
    if mode == "auto":
        return "processes" if size > 1 else "threads"
    if mode not in POOL_BACKENDS:
        raise ValueError(f"unknown pool backend {mode!r}: expected "
                         f"'threads', 'processes' or 'auto'")
    return mode


def warm_key(config: SynthesisConfig, technique: str) -> tuple:
    """The identity of one warm engine+abstraction pair.

    Exactly the configuration fields that select or parameterize
    evaluation state: the *resolved* backend (a ``numpy`` request degraded
    to the columnar fallback shares the columnar warm engine), the
    technique name, and the abstraction knobs ``build_abstraction``
    consumes.  Everything else (budgets, search-space knobs) rides in the
    session and never fragments the warm cache.
    """
    return (resolve_backend(config.backend), technique,
            config.target_refinement, config.value_shadow,
            config.head_typing)


@dataclass
class WorkerTelemetry:
    """One worker's warm-state counters (snapshot, cheap to ship)."""

    worker_id: int = 0
    warm_hits: int = 0      # requests whose (warm key, env) was already hot
    warm_misses: int = 0    # requests that warmed a new (warm key, env)
    cold_builds: int = 0    # engines actually constructed
    warm_keys: int = 0      # distinct engine+abstraction pairs held
    slices: int = 0         # ops executed (open/step/run)


@dataclass
class RecoveryTelemetry:
    """Pool-wide fault-tolerance counters (facade-owned)."""

    worker_deaths: int = 0       # dead workers detected (exitcode/thread)
    hangs: int = 0               # hung slices detected (progress timeout)
    restarts: int = 0            # successful worker restarts
    spawn_failures: int = 0      # failed restart attempts
    backend_degradations: int = 0  # process pool fell back to threads
    shm_degradations: int = 0    # env publishes that fell back to pickling

    def as_dict(self) -> dict:
        return {
            "worker_deaths": self.worker_deaths, "hangs": self.hangs,
            "restarts": self.restarts,
            "spawn_failures": self.spawn_failures,
            "backend_degradations": self.backend_degradations,
            "shm_degradations": self.shm_degradations,
        }


@dataclass
class SliceOutcome:
    """What one op produced — the only thing a backend ships back.

    ``stats`` is a snapshot for observability (the process tier has no
    live session object to poll); ``result`` is set exactly once, on the
    terminal outcome.  ``telemetry`` piggybacks the worker's counters so
    the coordinator needs no side channel.  ``checkpoint`` carries the
    session's slice-boundary state on every non-terminal outcome — the
    replay point should the worker die before the next one.
    ``incarnation`` tags which life of the worker produced this; the
    facade drops outcomes from dead incarnations.
    """

    request_id: int
    worker_id: int
    pops: int = 0
    new_queries: list = field(default_factory=list)
    stats: SearchStats | None = None
    done: bool = False
    status: str = "active"
    timed_out: bool = False
    result: SynthesisResult | None = None
    error: str | None = None
    telemetry: WorkerTelemetry | None = None
    checkpoint: bytes | None = None
    incarnation: int = 0


class _Hosted:
    """One session resident on a worker, with its slicing parameters."""

    __slots__ = ("session", "slice_pops", "deadline", "adopted")

    def __init__(self, session, slice_pops, deadline, adopted) -> None:
        self.session = session
        self.slice_pops = slice_pops
        self.deadline = deadline
        self.adopted = adopted


class _SessionHost:
    """Per-worker state both backends share; confined to one worker.

    Owns the warm engine cache, the warm-hit accounting, and the hosted
    sessions — a thread worker runs it in the service process, a process
    worker in its own interpreter, and the op semantics are identical.
    ``injector`` is the fault-injection hook (chaos tests); ``None``
    means no faults.
    """

    def __init__(self, worker_id: int, plan_cache, incarnation: int = 0,
                 injector: FaultInjector | None = None,
                 checkpoints: bool = True) -> None:
        self.worker_id = worker_id
        self.plan_cache = plan_cache
        self.incarnation = incarnation
        self.injector = injector
        self.checkpoints = checkpoints
        self._warm: dict[tuple, tuple[EvalEngine, Abstraction]] = {}
        self._served: set[tuple] = set()    # (warm key, env digest) pairs
        self._sessions: dict[int, _Hosted] = {}
        self._counts = WorkerTelemetry(worker_id=worker_id)

    def engine_for(self, config: SynthesisConfig,
                   technique: str) -> tuple[EvalEngine, Abstraction]:
        """The warm engine+abstraction for this request shape (built on
        first use, wired to the worker's sub-plan cache stack)."""
        key = warm_key(config, technique)
        pair = self._warm.get(key)
        if pair is None:
            engine = make_engine(config.backend)
            engine.shared_plans = self.plan_cache.client(self.worker_id)
            abstraction = build_abstraction(technique, config)
            abstraction.bind_engine(engine)
            pair = (engine, abstraction)
            self._warm[key] = pair
            self._counts.cold_builds += 1
        return pair

    def open_session(self, request_id: int, session: SynthesisSession,
                     slice_pops: int, deadline: Deadline, env_key: str,
                     adopted=None) -> SliceOutcome:
        """Admit a session and run its first slice.

        The warm hit/miss is scored here, per request, at ``(warm key,
        env digest)`` granularity: a hit means this worker has already
        evaluated this request shape *on these tables* — hot engine
        subtree/block/verdict caches, not merely a constructed engine.
        This is the rate schema-affinity routing exists to raise.
        """
        key = (warm_key(session.config, session.abstraction_spec), env_key)
        if key in self._served:
            self._counts.warm_hits += 1
        else:
            self._counts.warm_misses += 1
            self._served.add(key)
        self._sessions[request_id] = _Hosted(session, slice_pops, deadline,
                                             adopted)
        return self.step_session(request_id)

    def step_session(self, request_id: int) -> SliceOutcome:
        """One bounded slice; terminal when the session (or budget) ends."""
        hosted = self._sessions[request_id]
        session = hosted.session
        if hosted.deadline.expired() and not session.done:
            # The request's wall-clock budget (queueing included) expired:
            # report the partial result with the same timed_out marker the
            # config budget uses, without spending a single pop.
            session.stats.timed_out = True
            return self._complete(request_id, [], timed_out=True)
        self._attach(hosted)
        injector = self.injector
        if injector is not None:
            injector.slice_begin(session)
        report = session.step(max_pops=hosted.slice_pops)
        self._counts.slices += 1
        if injector is not None:
            # After the work, before the outcome ships: a crash here
            # loses a fully executed slice — the replay window recovery
            # must cover (the checkpoint below never leaves the worker).
            injector.slice_end()
        if session.done:
            return self._complete(request_id, report.new_queries,
                                  timed_out=False)
        return SliceOutcome(
            request_id=request_id, worker_id=self.worker_id,
            pops=report.pops, new_queries=list(report.new_queries),
            stats=SearchStats(**session.stats.as_dict()), done=False,
            status=session.status, telemetry=self.telemetry(),
            checkpoint=self._slice_checkpoint(session),
            incarnation=self.incarnation)

    def run_session(self, request_id: int) -> SliceOutcome:
        """Drive a hosted session to completion in one op.

        With ``config.workers > 1`` the session re-dispatches its
        remaining work onto shard workers at the next round boundary —
        the intra-request fan-out path, byte-identical to slicing.
        """
        hosted = self._sessions[request_id]
        session = hosted.session
        if hosted.deadline.expired() and not session.done:
            session.stats.timed_out = True
            return self._complete(request_id, [], timed_out=True)
        self._attach(hosted)
        injector = self.injector
        if injector is not None:
            injector.slice_begin(session)
        found_before = len(session.result(ranked=False).queries)
        session.run()
        self._counts.slices += 1
        if injector is not None:
            injector.slice_end()
        new = session.result(ranked=False).queries[found_before:]
        return self._complete(request_id, new, timed_out=False)

    def cancel_session(self, request_id: int) -> None:
        if self.injector is not None:
            # The cancel-vs-crash race site: the worker dies exactly
            # while applying a cancel — recovery must still end the
            # request "cancelled".
            self.injector.on_cancel()
        hosted = self._sessions.get(request_id)
        if hosted is not None:
            hosted.session.cancel()

    def drop(self, request_id: int) -> None:
        self._sessions.pop(request_id, None)

    def env_in_use(self, env) -> bool:
        return any(h.session.env is env for h in self._sessions.values())

    def telemetry(self) -> WorkerTelemetry:
        counts = self._counts
        return WorkerTelemetry(
            worker_id=self.worker_id, warm_hits=counts.warm_hits,
            warm_misses=counts.warm_misses, cold_builds=counts.cold_builds,
            warm_keys=len(self._warm), slices=counts.slices)

    def _attach(self, hosted: _Hosted) -> None:
        session = hosted.session
        engine, abstraction = self.engine_for(session.config,
                                              session.abstraction_spec)
        session.attach_engine(engine, abstraction)
        if hosted.adopted is not None:
            # Re-seed the shm-backed column blocks (idempotent): a warm
            # engine that last served a different env gets this env's
            # zero-copy blocks back without re-decoding.
            engine.adopt_env(session.env, hosted.adopted)

    def _slice_checkpoint(self, session: SynthesisSession) -> bytes | None:
        if not self.checkpoints:
            return None
        try:
            return session.checkpoint(strip_env=True)
        except Exception:
            # Unpicklable session (pre-built Abstraction object): no
            # replay point, but the request itself still runs fine.
            return None

    def _complete(self, request_id: int, new_queries,
                  timed_out: bool) -> SliceOutcome:
        hosted = self._sessions.pop(request_id)
        session = hosted.session
        result = session.result()
        return SliceOutcome(
            request_id=request_id, worker_id=self.worker_id,
            new_queries=list(new_queries), stats=result.stats, done=True,
            status=session.status, timed_out=timed_out, result=result,
            telemetry=self.telemetry(), incarnation=self.incarnation)


def _error_outcome(host: _SessionHost, request_id: int) -> SliceOutcome:
    host.drop(request_id)
    return SliceOutcome(
        request_id=request_id, worker_id=host.worker_id, done=True,
        status="error", error=traceback.format_exc(),
        telemetry=host.telemetry(), incarnation=host.incarnation)


def _apply_op(host: _SessionHost, kind: str, request_id: int,
              open_session: Callable[[], SliceOutcome]) -> SliceOutcome:
    """Shared op dispatch: every op but cancel/close yields one outcome.

    Catches ``Exception`` only — an :class:`InjectedCrash` (a
    ``BaseException``) deliberately escapes and kills the worker, so
    chaos exercises supervision rather than this error net.
    """
    try:
        if kind == "open":
            return open_session()
        if kind == "step":
            return host.step_session(request_id)
        return host.run_session(request_id)
    except Exception:
        return _error_outcome(host, request_id)


# ------------------------------------------------------------------ backends

class PoolBackend:
    """The executor-agnostic worker-tier interface the pool facade drives.

    One method per op; ops targeting one worker execute strictly in
    submission order, and every open/step/run eventually produces exactly
    one :class:`SliceOutcome` delivered to the dispatch callback (from a
    backend-owned thread — never the caller's) *while the producing
    worker stays alive*; supervision synthesizes the outcome otherwise.
    """

    name: str

    def open(self, worker_id: int, request_id: int,
             session: SynthesisSession, slice_pops: int, deadline: Deadline,
             env_key: str) -> None:
        raise NotImplementedError

    def step(self, worker_id: int, request_id: int) -> None:
        raise NotImplementedError

    def run(self, worker_id: int, request_id: int) -> None:
        raise NotImplementedError

    def cancel(self, worker_id: int, request_id: int) -> None:
        raise NotImplementedError

    def telemetry(self, worker_id: int) -> WorkerTelemetry:
        raise NotImplementedError

    # ------------------------------------------------------- supervision
    def dead_workers(self) -> list[tuple[int, str]]:
        """(worker_id, reason) for workers that died since last asked."""
        return []

    def restart_worker(self, worker_id: int, incarnation: int) -> None:
        """Replace a dead/hung worker with a fresh incarnation.  Raises
        (e.g. ``OSError``) when the replacement cannot be spawned."""
        raise NotImplementedError

    def forget(self, request_id: int) -> None:
        """Release per-request backend resources after a failover."""

    def close(self, timeout_s: float) -> list[int]:
        """Drain and join; returns ids of workers that had to be killed."""
        raise NotImplementedError

    def destroy(self) -> None:
        """Immediate teardown (no drain) — the degrade path.  Must not
        raise."""
        self.close(timeout_s=0.1)


class _ThreadWorker:
    """One warm thread worker: a queue, a thread, a session host."""

    def __init__(self, worker_id: int, plan_cache,
                 dispatch: Callable[[SliceOutcome], None],
                 incarnation: int = 0,
                 injector: FaultInjector | None = None,
                 checkpoints: bool = True) -> None:
        self.host = _SessionHost(worker_id, plan_cache,
                                 incarnation=incarnation, injector=injector,
                                 checkpoints=checkpoints)
        self.crashed = False
        self._dispatch = dispatch
        self._jobs: queue.Queue = queue.Queue()
        self._thread = threading.Thread(
            target=self._loop, name=f"repro-serve-worker-{worker_id}",
            daemon=True)
        self._thread.start()

    def submit(self, op) -> None:
        self._jobs.put(op)

    def alive(self) -> bool:
        return self._thread.is_alive() and not self.crashed

    def _loop(self) -> None:
        host = self.host
        while True:
            op = self._jobs.get()
            if op is _SHUTDOWN:
                return
            kind, request_id, payload = op
            try:
                if kind == "cancel":
                    host.cancel_session(request_id)
                    continue
                outcome = _apply_op(
                    host, kind, request_id,
                    lambda: host.open_session(request_id, *payload))
            except InjectedCrash:
                # The thread-tier realization of a worker death: the
                # loop ends without delivering an outcome, exactly like
                # a process worker's os._exit — supervision takes over.
                self.crashed = True
                return
            self._dispatch(outcome)

    def close(self, deadline: Deadline) -> bool:
        """Request shutdown and join; True when the worker drained."""
        self._jobs.put(_SHUTDOWN)
        remaining = deadline.remaining()
        self._thread.join(remaining if remaining is not None else None)
        return not self._thread.is_alive()


class ThreadBackend(PoolBackend):
    """Daemon threads in the calling process; sessions stay shared
    objects, so the service's handle can poll live search state."""

    name = "threads"

    def __init__(self, size: int, plan_cache,
                 dispatch: Callable[[SliceOutcome], None],
                 faults: FaultPlan | None = None,
                 checkpoints: bool = True,
                 incarnations: list[int] | None = None) -> None:
        self._plan_cache = plan_cache
        self._dispatch = dispatch
        self._faults = faults
        self._checkpoints = checkpoints
        self._closing = False
        incarnations = incarnations or [0] * size
        self._workers = [
            _ThreadWorker(i, plan_cache, dispatch,
                          incarnation=incarnations[i],
                          injector=make_injector(faults, i, incarnations[i]),
                          checkpoints=checkpoints)
            for i in range(size)]

    def open(self, worker_id, request_id, session, slice_pops, deadline,
             env_key) -> None:
        self._workers[worker_id].submit(
            ("open", request_id, (session, slice_pops, deadline, env_key)))

    def step(self, worker_id, request_id) -> None:
        self._workers[worker_id].submit(("step", request_id, None))

    def run(self, worker_id, request_id) -> None:
        self._workers[worker_id].submit(("run", request_id, None))

    def cancel(self, worker_id, request_id) -> None:
        # Direct call, not an op: the session object is shared, and the
        # flag must be visible mid-slice, not behind queued work.
        self._workers[worker_id].host.cancel_session(request_id)

    def telemetry(self, worker_id) -> WorkerTelemetry:
        return self._workers[worker_id].host.telemetry()

    def dead_workers(self) -> list[tuple[int, str]]:
        if self._closing:
            return []
        return [(i, "worker thread crashed")
                for i, worker in enumerate(self._workers)
                if not worker.alive()]

    def restart_worker(self, worker_id: int, incarnation: int) -> None:
        old = self._workers[worker_id]
        # A hung (not crashed) thread eventually drains its queue and
        # exits on the sentinel; its outcomes carry the old incarnation
        # and are dropped by the facade.
        old.submit(_SHUTDOWN)
        self._workers[worker_id] = _ThreadWorker(
            worker_id, self._plan_cache, self._dispatch,
            incarnation=incarnation,
            injector=make_injector(self._faults, worker_id, incarnation),
            checkpoints=self._checkpoints)

    def close(self, timeout_s: float) -> list[int]:
        self._closing = True
        deadline = Deadline(timeout_s)
        return [i for i, worker in enumerate(self._workers)
                if not worker.close(deadline) and not worker.crashed]

    def destroy(self) -> None:
        self._closing = True
        for worker in self._workers:
            worker.submit(_SHUTDOWN)


class _SlotProbe:
    """Picklable-by-construction cancel probe over one shared-flag slot
    (built worker-side; a closure would do, a class documents better)."""

    __slots__ = ("flags", "slot")

    def __init__(self, flags, slot: int) -> None:
        self.flags = flags
        self.slot = slot

    def __call__(self) -> bool:
        return self.flags[self.slot] != 0


def _process_worker_main(worker_id: int, jobs, results, plan_client,
                         cancel_flags, faults: FaultPlan | None,
                         incarnation: int, checkpoints: bool) -> None:
    """Body of one long-lived worker process.

    Environments are memoized per shm segment — attached and decoded
    once, then shared by every hosted session that ships the same
    handle — and the plan cache is the two-tier stack: a local dict in
    front of the pool-wide shm-digest index.  An :class:`InjectedCrash`
    ends the process via ``os._exit`` — no cleanup, no unwinding —
    because that is what a real worker death looks like to the
    supervisor.
    """
    plan_cache = LocalPlanCache(backing=plan_client)
    host = _SessionHost(worker_id, plan_cache, incarnation=incarnation,
                        injector=make_injector(faults, worker_id,
                                               incarnation),
                        checkpoints=checkpoints)
    attachment = shm.Attachment()
    envs: dict[str, tuple] = {}         # segment -> (env, adopted payload)

    def open_session(request_id: int, payload) -> SliceOutcome:
        blob, handle, slice_pops, deadline, env_key, slot = payload
        if handle is None:
            # Degraded dispatch: the coordinator could not publish the
            # env to shm, so the blob carries the pickled tables.
            session = SynthesisSession.resume(blob)
            adopted = None
        else:
            entry = envs.get(handle.segment)
            if entry is None:
                entry = shm.adopt_env(handle, attachment)
                envs[handle.segment] = entry
                while len(envs) > _ENV_MEMO_LIMIT:
                    stale = next((seg for seg, (env, _) in envs.items()
                                  if not host.env_in_use(env)), None)
                    if stale is None:
                        break
                    del envs[stale]
                    attachment.discard(stale)
            env, adopted = entry
            session = SynthesisSession.resume(blob, env=env)
        if slot >= 0:
            session.set_cancel_probe(_SlotProbe(cancel_flags, slot))
        return host.open_session(request_id, session, slice_pops, deadline,
                                 env_key, adopted=adopted)

    try:
        while True:
            op = jobs.get()
            kind, request_id, payload = op
            if kind == "close":
                break
            if kind == "cancel":
                # Slice-boundary fallback; the shared flag already covers
                # mid-slice (the session polls it every pop).
                host.cancel_session(request_id)
                continue
            results.put(_apply_op(host, kind, request_id,
                                  lambda: open_session(request_id, payload)))
    except InjectedCrash:
        os._exit(FAULT_EXITCODE)
    plan_cache.close()
    # Release every zero-copy view (warm engines, env memo) before
    # detaching, so segment mappings close cleanly instead of deferring
    # to interpreter-exit GC with exported pointers still alive.
    host = None
    envs.clear()
    gc.collect()
    attachment.close()


class ProcessBackend(PoolBackend):
    """Long-lived worker processes fed over per-worker job queues.

    Dispatch path: the coordinator checkpoints the session (env
    stripped), publishes its environment once into the shm column store,
    and ships ``(blob, EnvHandle)``; one reader thread fans every
    worker's outcomes back into the dispatch callback.  Workers are
    non-daemon so a hosted session may fan out to its own shard
    processes (daemons cannot have children).

    Restart support: each worker carries an incarnation; replacing one
    terminates the process if needed, sweeps its plan-cache shard, swaps
    in a fresh job queue, and spawns the next incarnation.  An env
    publish that raises ``OSError`` (or is injected to) degrades that
    request to pickled-env dispatch instead of failing it.
    """

    name = "processes"

    def __init__(self, size: int, dispatch: Callable[[SliceOutcome], None],
                 start_method: str | None = None,
                 faults: FaultPlan | None = None,
                 checkpoints: bool = True,
                 recovery: RecoveryTelemetry | None = None) -> None:
        self._dispatch = dispatch
        self._faults = faults
        self._checkpoints = checkpoints
        self._recovery = recovery if recovery is not None \
            else RecoveryTelemetry()
        self._ctx = pick_context(start_method=start_method)
        # Env segments and worker plan publishes both nest under the
        # store's prefix: one end-of-life sweep reclaims everything
        # however a publisher exited.
        self._store = shm.ShmStore()
        self.prefix = self._store.prefix
        self._plan_tier = ProcessPlanCache(self._ctx, self.prefix,
                                           env_keyed=True)
        self._cancel_flags = self._ctx.Array("b", _CANCEL_SLOTS, lock=False)
        self._results = self._ctx.SimpleQueue()
        self._jobs = [self._ctx.SimpleQueue() for _ in range(size)]
        self._incarnations = [0] * size
        self._spawn_injectors: dict[int, FaultInjector] = {}
        self._pub_injectors: dict[int, FaultInjector] = {}
        self._procs: list = [None] * size
        for i in range(size):
            self._spawn(i, 0)
        self._lock = threading.Lock()
        self._env_handles: dict = {}            # env -> EnvHandle
        self._slots: dict[int, int] = {}        # request_id -> flag slot
        self._free_slots = list(range(_CANCEL_SLOTS))
        self._telemetry = [WorkerTelemetry(worker_id=i) for i in range(size)]
        self._reader = threading.Thread(target=self._read_outcomes,
                                        name="repro-serve-pool-reader",
                                        daemon=True)
        self._reader.start()

    def _spawn(self, worker_id: int, incarnation: int) -> None:
        proc = self._ctx.Process(
            target=_process_worker_main,
            args=(worker_id, self._jobs[worker_id], self._results,
                  self._plan_tier.client(worker_id), self._cancel_flags,
                  self._faults, incarnation, self._checkpoints),
            name=f"repro-serve-proc-{worker_id}", daemon=False)
        proc.start()
        self._procs[worker_id] = proc

    def plan_client(self):
        """A coordinator-side client of the pool's shm-digest index (the
        backing tier for the facade's ``plan_cache``)."""
        return self._plan_tier.client(len(self._procs))

    def open(self, worker_id, request_id, session, slice_pops, deadline,
             env_key) -> None:
        with self._lock:
            handle = self._env_handles.get(session.env)
            if handle is None:
                try:
                    if self._publish_fails(worker_id):
                        raise OSError("injected shm publish failure")
                    handle = self._store.publish_env(session.env)
                    self._env_handles[session.env] = handle
                except OSError as exc:
                    # /dev/shm full, injected, or otherwise — ship the
                    # tables pickled inside the blob instead of failing
                    # the request; slower dispatch, same results.
                    _LOG.warning(
                        "shm env publish failed for request %d (%s); "
                        "degrading to pickled-env dispatch", request_id, exc)
                    self._recovery.shm_degradations += 1
                    handle = None
            slot = self._free_slots.pop() if self._free_slots else -1
            if slot >= 0:
                self._cancel_flags[slot] = 0
                self._slots[request_id] = slot
            blob = session.checkpoint(strip_env=handle is not None)
            self._jobs[worker_id].put(
                ("open", request_id,
                 (blob, handle, slice_pops, deadline, env_key, slot)))

    def step(self, worker_id, request_id) -> None:
        with self._lock:
            self._jobs[worker_id].put(("step", request_id, None))

    def run(self, worker_id, request_id) -> None:
        with self._lock:
            self._jobs[worker_id].put(("run", request_id, None))

    def cancel(self, worker_id, request_id) -> None:
        with self._lock:
            slot = self._slots.get(request_id)
            if slot is not None:
                self._cancel_flags[slot] = 1  # visible mid-slice, next pop
            self._jobs[worker_id].put(("cancel", request_id, None))

    def telemetry(self, worker_id) -> WorkerTelemetry:
        with self._lock:
            return self._telemetry[worker_id]

    def dead_workers(self) -> list[tuple[int, str]]:
        dead = []
        for i, proc in enumerate(self._procs):
            code = proc.exitcode
            if code is None:
                continue
            reason = "injected crash" if code == FAULT_EXITCODE else \
                f"exitcode {code}"
            dead.append((i, f"worker process {i} died ({reason})"))
        return dead

    def restart_worker(self, worker_id: int, incarnation: int) -> None:
        proc = self._procs[worker_id]
        if proc.is_alive():
            # Hung, not dead: terminate (possibly mid-slice — the
            # request replays from its checkpoint, so nothing is lost
            # but time).
            proc.terminate()
            proc.join(timeout=2.0)
            if proc.is_alive():     # pragma: no cover - defensive
                proc.kill()
                proc.join(timeout=2.0)
        # The dead incarnation's disowned plan publishes and stale index
        # entries: swept now, so the next incarnation (same shard
        # prefix) starts clean and nothing leaks if the pool dies later.
        self._plan_tier.drop_shard(worker_id)
        self._spawn_check(worker_id, incarnation)
        with self._lock:
            self._jobs[worker_id] = self._ctx.SimpleQueue()
            self._incarnations[worker_id] = incarnation
            self._spawn_injectors.pop(worker_id, None)
            self._pub_injectors.pop(worker_id, None)
        self._spawn(worker_id, incarnation)

    def _publish_fails(self, worker_id: int) -> bool:
        """Coordinator-side publish-failure injection (caller holds the
        lock); the injector is cached per incarnation so its draw stream
        advances across requests instead of resetting."""
        if self._faults is None:
            return False
        injector = self._pub_injectors.get(worker_id)
        if injector is None or \
                injector.incarnation != self._incarnations[worker_id]:
            injector = FaultInjector(self._faults, worker_id,
                                     self._incarnations[worker_id])
            self._pub_injectors[worker_id] = injector
        return injector.publish_fails()

    def _spawn_check(self, worker_id: int, incarnation: int) -> None:
        """Fault-injection site for restart failures.  The spawn stream
        is salted with the *dead* incarnation: replacing an armed
        incarnation is what may fail, so ``max_incarnation=1`` plans can
        express 'the first restart fails' without crash-looping."""
        if self._faults is None:
            return
        injector = self._spawn_injectors.get(worker_id)
        if injector is None or injector.incarnation != incarnation - 1:
            injector = FaultInjector(self._faults, worker_id,
                                     incarnation - 1)
            self._spawn_injectors[worker_id] = injector
        injector.check_spawn()

    def forget(self, request_id: int) -> None:
        with self._lock:
            slot = self._slots.pop(request_id, None)
            if slot is not None:
                self._cancel_flags[slot] = 0
                self._free_slots.append(slot)

    def _read_outcomes(self) -> None:
        while True:
            try:
                outcome = self._results.get()
            except (EOFError, OSError):     # pragma: no cover - teardown
                return
            if outcome is None:             # close() sentinel
                return
            with self._lock:
                if outcome.telemetry is not None:
                    self._telemetry[outcome.worker_id] = outcome.telemetry
                if outcome.done:
                    slot = self._slots.pop(outcome.request_id, None)
                    if slot is not None:
                        self._cancel_flags[slot] = 0
                        self._free_slots.append(slot)
            self._dispatch(outcome)

    def close(self, timeout_s: float) -> list[int]:
        with self._lock:
            for jobs in self._jobs:
                jobs.put(("close", -1, None))
        deadline = Deadline(timeout_s)
        stuck = []
        for i, proc in enumerate(self._procs):
            proc.join(timeout=max(0.1, deadline.remaining()))
            if proc.is_alive():
                stuck.append(i)
                proc.terminate()
                proc.join(timeout=1.0)
                if proc.is_alive():         # pragma: no cover - defensive
                    proc.kill()
                    proc.join(timeout=1.0)
        self._results.put(None)
        self._reader.join(timeout=2.0)
        self._plan_tier.close()
        self._store.close()
        shm.sweep_prefix(self.prefix)       # workers' disowned publishes
        return stuck

    def destroy(self) -> None:
        """Terminate everything now — the degrade-to-threads path."""
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=1.0)
            if proc.is_alive():             # pragma: no cover - defensive
                proc.kill()
                proc.join(timeout=1.0)
        try:
            self._results.put(None)
            self._reader.join(timeout=1.0)
        except Exception:                   # pragma: no cover - teardown
            pass
        try:
            self._plan_tier.close()
        except Exception:                   # pragma: no cover - teardown
            pass
        try:
            self._store.close()
        except Exception:                   # pragma: no cover - teardown
            pass
        shm.sweep_prefix(self.prefix)


# ------------------------------------------------------------------- facade

class WorkerPool:
    """A fixed-size pool of warm workers behind a pluggable backend.

    Lives across requests (and across services, if the caller passes its
    own pool around).  ``backend`` is ``"threads"``, ``"processes"`` or
    ``None``/``"auto"`` (``REPRO_POOL_BACKEND``, else processes when
    ``size > 1`` — the tier that actually uses the cores).

    The facade owns request-id allocation, per-request outcome routing,
    per-worker queue-depth accounting (incremented per submitted op,
    decremented per outcome) — the load signal least-loaded routing
    uses — and, since PR 9, supervision: a watchdog thread detects dead
    workers and hung slices, restarts them with exponential backoff
    (degrading the whole pool to the thread backend when restarts keep
    failing), and fails the dead worker's requests over to their
    ``on_slice`` callbacks as ``status="worker_died"`` outcomes carrying
    the error — the service above replays them from checkpoints.

    ``faults`` (or ``REPRO_FAULTS``) arms deterministic fault injection;
    ``slice_timeout_s`` enables hang detection (off by default — only
    the caller knows how long a legitimate slice may run).
    """

    def __init__(self, size: int = 2, backend: str | None = None,
                 plan_cache: LocalPlanCache | None = None,
                 start_method: str | None = None,
                 faults: FaultPlan | None = None,
                 slice_timeout_s: float | None = None,
                 supervise_interval_s: float | None = SUPERVISE_INTERVAL_S,
                 restart_backoff_s: float = RESTART_BACKOFF_S,
                 max_spawn_attempts: int = MAX_SPAWN_ATTEMPTS,
                 checkpoints: bool = True) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.backend_name = resolve_pool_backend(backend, size)
        self.faults = faults if faults is not None else plan_from_env()
        self._size = size
        self._slice_timeout_s = slice_timeout_s
        self._restart_backoff_s = restart_backoff_s
        self._max_spawn_attempts = max(1, max_spawn_attempts)
        self._checkpoints = checkpoints
        self._lock = threading.Lock()
        self._handlers: dict[int, tuple[Callable, int]] = {}
        self._depths = [0] * size
        self._next_request = 0
        self._closed = False
        self._degraded = False
        self._down: set[int] = set()
        self._pending: dict[int, list] = {i: [] for i in range(size)}
        self._incarnations = [0] * size
        self._last_progress = [time.monotonic()] * size
        self._restart_listeners: list[Callable[[int | None], None]] = []
        self.recovery = RecoveryTelemetry()
        if self.backend_name == "threads":
            self.plan_cache = plan_cache if plan_cache is not None \
                else LocalPlanCache()
            self._backend: PoolBackend = ThreadBackend(
                size, self.plan_cache, self._on_outcome, faults=self.faults,
                checkpoints=checkpoints)
        else:
            process_backend = ProcessBackend(
                size, self._on_outcome, start_method, faults=self.faults,
                checkpoints=checkpoints, recovery=self.recovery)
            self._backend = process_backend
            # The coordinator-side cache rides on the same shm index the
            # workers publish to — thread-tier callers of pool.plan_cache
            # and the process workers hit one shared tier.
            self.plan_cache = plan_cache if plan_cache is not None \
                else LocalPlanCache(backing=process_backend.plan_client())
        self._stop_supervisor = threading.Event()
        self._supervisor: threading.Thread | None = None
        if supervise_interval_s is not None and supervise_interval_s > 0:
            self._supervisor = threading.Thread(
                target=self._supervise, args=(supervise_interval_s,),
                name="repro-serve-supervisor", daemon=True)
            self._supervisor.start()
        atexit.register(self._atexit_close)

    @property
    def size(self) -> int:
        return self._size

    @property
    def degraded(self) -> bool:
        return self._degraded

    # ------------------------------------------------------------- requests
    def submit_request(self, session: SynthesisSession, *, worker_id: int,
                       slice_pops: int, deadline: Deadline, env_key: str,
                       on_slice: Callable[[SliceOutcome], None]) -> int:
        """Open a session on a worker; every slice lands on ``on_slice``
        (from a pool-owned thread) until a terminal outcome.  Returns the
        pool-wide request id used by :meth:`step`/:meth:`run`/
        :meth:`cancel`.  A submission to a worker mid-restart is
        buffered and dispatched when its replacement is up."""
        if not 0 <= worker_id < self._size:
            raise ValueError(f"worker {worker_id} out of range "
                             f"[0, {self._size})")
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            request_id = self._next_request
            self._next_request += 1
            self._handlers[request_id] = (on_slice, worker_id)
            self._depths[worker_id] += 1
            self._last_progress[worker_id] = time.monotonic()
            if worker_id in self._down:
                self._pending[worker_id].append(
                    lambda: self._backend.open(worker_id, request_id,
                                               session, slice_pops, deadline,
                                               env_key))
                return request_id
        self._backend.open(worker_id, request_id, session, slice_pops,
                           deadline, env_key)
        return request_id

    def step(self, request_id: int) -> None:
        """Queue the next slice (behind the worker's other requests —
        cooperative round-robin)."""
        self._resubmit(request_id, lambda w, r: self._backend.step(w, r))

    def run(self, request_id: int) -> None:
        """Queue a run-to-completion op (the intra-request fan-out path
        when the session's config asks for workers > 1)."""
        self._resubmit(request_id, lambda w, r: self._backend.run(w, r))

    def _resubmit(self, request_id: int, op) -> None:
        with self._lock:
            entry = self._handlers.get(request_id)
            if entry is None:
                # Finished — or failed over by supervision between the
                # caller seeing its last outcome and asking for the next
                # slice.  Either way there is nothing to advance.
                return
            worker_id = entry[1]
            self._depths[worker_id] += 1
            self._last_progress[worker_id] = time.monotonic()
            if worker_id in self._down:
                self._pending[worker_id].append(
                    lambda: op(worker_id, request_id))
                return
        op(worker_id, request_id)

    def cancel(self, request_id: int) -> None:
        """Flag a request's session; it stops at its next pop whichever
        tier hosts it (no-op once the request finished)."""
        with self._lock:
            entry = self._handlers.get(request_id)
            down = entry is not None and entry[1] in self._down
        if entry is not None and not down:
            self._backend.cancel(entry[1], request_id)

    def _on_outcome(self, outcome: SliceOutcome) -> None:
        with self._lock:
            if outcome.incarnation != self._incarnations[outcome.worker_id]:
                # A replaced worker's ghost (a hung thread that woke up,
                # a queued result from before a restart): its request
                # was already failed over — drop it.
                return
            entry = self._handlers.get(outcome.request_id)
            depth = self._depths[outcome.worker_id] - 1
            self._depths[outcome.worker_id] = max(0, depth)
            self._last_progress[outcome.worker_id] = time.monotonic()
            if outcome.done:
                self._handlers.pop(outcome.request_id, None)
        if entry is not None:
            entry[0](outcome)

    # ---------------------------------------------------------- supervision
    def add_restart_listener(self, fn: Callable[[int | None], None]) -> None:
        """Call ``fn(worker_id)`` after a worker restarts (its warm and
        affinity state is cold), ``fn(None)`` after a backend degrade
        (every worker is cold).  Runs on the supervisor thread."""
        self._restart_listeners.append(fn)

    def remove_restart_listener(self, fn) -> None:
        try:
            self._restart_listeners.remove(fn)
        except ValueError:
            pass

    def down_workers(self) -> set[int]:
        with self._lock:
            return set(self._down)

    def _supervise(self, interval_s: float) -> None:
        while not self._stop_supervisor.wait(interval_s):
            try:
                self._sweep_failures()
            except Exception:       # pragma: no cover - supervisor guard
                _LOG.exception("pool supervisor sweep failed")

    def _sweep_failures(self) -> None:
        with self._lock:
            if self._closed:
                return
        for worker_id, reason in self._backend.dead_workers():
            self._handle_worker_failure(worker_id, reason, hang=False)
        for worker_id in self._hung_workers():
            self._handle_worker_failure(
                worker_id,
                f"worker {worker_id} hung: no progress within "
                f"{self._slice_timeout_s}s", hang=True)

    def _hung_workers(self) -> list[int]:
        if self._slice_timeout_s is None:
            return []
        now = time.monotonic()
        with self._lock:
            return [i for i in range(self._size)
                    if i not in self._down and self._depths[i] > 0
                    and now - self._last_progress[i] > self._slice_timeout_s]

    def _handle_worker_failure(self, worker_id: int, reason: str,
                               hang: bool) -> None:
        with self._lock:
            if self._closed or worker_id in self._down:
                return
            self._down.add(worker_id)
            self._incarnations[worker_id] += 1
            incarnation = self._incarnations[worker_id]
            affected = [(rid, entry[0])
                        for rid, entry in self._handlers.items()
                        if entry[1] == worker_id]
            for rid, _ in affected:
                self._handlers.pop(rid, None)
            self._depths[worker_id] = 0
            if hang:
                self.recovery.hangs += 1
            else:
                self.recovery.worker_deaths += 1
        _LOG.warning("pool worker %d failed (%s): restarting (%d request%s "
                     "affected)", worker_id, reason, len(affected),
                     "" if len(affected) == 1 else "s")
        for rid, _ in affected:
            self._backend.forget(rid)
        if self._restart_with_backoff(worker_id, incarnation):
            with self._lock:
                self._down.discard(worker_id)
                self._last_progress[worker_id] = time.monotonic()
                pending = self._pending[worker_id]
                self._pending[worker_id] = []
            self._notify_restart(worker_id)
            for dispatch in pending:
                dispatch()
        # (On the degrade path _degrade_to_threads already failed over
        # every other live request and flushed nothing — the service
        # re-dispatches them all onto the thread tier.)
        for rid, on_slice in affected:
            outcome = SliceOutcome(
                request_id=rid, worker_id=worker_id, done=True,
                status=WORKER_DIED, error=reason, incarnation=incarnation)
            try:
                on_slice(outcome)
            except Exception:       # pragma: no cover - callback guard
                _LOG.exception("on_slice callback failed during failover")

    def _restart_with_backoff(self, worker_id: int,
                              incarnation: int) -> bool:
        for attempt in range(self._max_spawn_attempts):
            try:
                self._backend.restart_worker(worker_id, incarnation)
            except Exception as exc:
                with self._lock:
                    self.recovery.spawn_failures += 1
                _LOG.warning("restart of pool worker %d failed "
                             "(attempt %d/%d): %s", worker_id, attempt + 1,
                             self._max_spawn_attempts, exc)
                if attempt + 1 < self._max_spawn_attempts:
                    time.sleep(min(2.0,
                                   self._restart_backoff_s * 2 ** attempt))
                continue
            with self._lock:
                self.recovery.restarts += 1
            return True
        self._degrade_to_threads()
        return False

    def _degrade_to_threads(self) -> None:
        """Last resort when a worker cannot be respawned: fail every
        live request over and swap the whole pool onto the thread
        backend — degraded service beats no service."""
        _LOG.warning(
            "pool degrading to the thread backend after %d failed spawn "
            "attempts; live requests will be replayed on threads",
            self._max_spawn_attempts)
        with self._lock:
            survivors = [(rid, entry[0], entry[1])
                         for rid, entry in self._handlers.items()]
            self._handlers.clear()
            for i in range(self._size):
                self._depths[i] = 0
                self._incarnations[i] += 1
                self._down.discard(i)
                self._pending[i] = []   # openers were failed over too
            incarnations = list(self._incarnations)
            self.recovery.backend_degradations += 1
            old_backend = self._backend
            # Chaos plans target the tier they were configured for; the
            # degraded tier must be stable, so it runs fault-free.
            self.plan_cache = LocalPlanCache()
            self._backend = ThreadBackend(
                self._size, self.plan_cache, self._on_outcome, faults=None,
                checkpoints=self._checkpoints, incarnations=incarnations)
            self.backend_name = "threads"
            self._degraded = True
        try:
            old_backend.destroy()
        except Exception:           # pragma: no cover - teardown guard
            _LOG.exception("process backend teardown failed during degrade")
        self._notify_restart(None)
        for rid, on_slice, worker_id in survivors:
            outcome = SliceOutcome(
                request_id=rid, worker_id=worker_id, done=True,
                status=WORKER_DIED,
                error="pool degraded to the thread backend after repeated "
                      "spawn failures",
                incarnation=incarnations[worker_id])
            try:
                on_slice(outcome)
            except Exception:       # pragma: no cover - callback guard
                _LOG.exception("on_slice callback failed during degrade")

    def _notify_restart(self, worker_id: int | None) -> None:
        for fn in list(self._restart_listeners):
            try:
                fn(worker_id)
            except Exception:       # pragma: no cover - listener guard
                _LOG.exception("pool restart listener failed")

    # ------------------------------------------------------------ telemetry
    def queue_depth(self, worker_id: int) -> int:
        with self._lock:
            return self._depths[worker_id]

    def queue_depths(self) -> list[int]:
        with self._lock:
            return list(self._depths)

    def idle_workers(self, exclude: int | None = None) -> int:
        """Workers with no queued or running op (optionally not counting
        one — a request asking 'is there capacity besides me?')."""
        with self._lock:
            return sum(1 for i, depth in enumerate(self._depths)
                       if depth == 0 and i != exclude)

    def telemetry(self) -> dict:
        """Pool-wide counters plus per-worker breakdown (benchmarks,
        tests, and the perf snapshot's ``pool`` section)."""
        workers = [self._backend.telemetry(i) for i in range(self._size)]
        depths = self.queue_depths()
        counters = {
            "backend": self.backend_name,
            "warm_hits": sum(w.warm_hits for w in workers),
            "warm_misses": sum(w.warm_misses for w in workers),
            "cold_builds": sum(w.cold_builds for w in workers),
            "warm_keys": sum(w.warm_keys for w in workers),
            "slices": sum(w.slices for w in workers),
            "per_worker": [
                {"worker_id": w.worker_id, "queue_depth": depths[i],
                 "warm_hits": w.warm_hits, "warm_misses": w.warm_misses,
                 "cold_builds": w.cold_builds, "warm_keys": w.warm_keys,
                 "slices": w.slices}
                for i, w in enumerate(workers)],
        }
        counters.update(self.recovery.as_dict())
        return counters

    def health(self) -> dict:
        """Liveness snapshot: per-worker state plus recovery counters —
        what an operator (or the CLI ``serve`` command) looks at first."""
        now = time.monotonic()
        with self._lock:
            workers = [
                {"worker_id": i,
                 "alive": i not in self._down,
                 "queue_depth": self._depths[i],
                 "incarnation": self._incarnations[i],
                 "last_progress_age_s": round(
                     now - self._last_progress[i], 3)}
                for i in range(self._size)]
            return {
                "backend": self.backend_name,
                "degraded": self._degraded,
                "closed": self._closed,
                "workers": workers,
                "recovery": self.recovery.as_dict(),
            }

    # ------------------------------------------------------------ lifecycle
    def close(self, timeout_s: float = POOL_CLOSE_TIMEOUT_S) -> None:
        """Drain queued work and join every worker, bounded.

        Waits at most ``timeout_s`` for workers to finish their queues;
        a worker still running past that is terminated (threads: left as
        daemons) and reported in a ``RuntimeError`` — shutdown never
        hangs, and a stuck worker is loud instead of silent.  Idempotent;
        backend resources (shm segments, manager process) are reclaimed
        before the error is raised.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop_supervisor.set()
        if self._supervisor is not None:
            # Joined before backend teardown so a restart in flight
            # cannot spawn a worker into a closing pool.
            self._supervisor.join(timeout=timeout_s)
        atexit.unregister(self._atexit_close)
        stuck = self._backend.close(timeout_s)
        if stuck:
            raise RuntimeError(
                f"pool workers {stuck} did not drain within {timeout_s:.1f}s "
                f"({self.backend_name} backend); their work was abandoned")

    def _atexit_close(self) -> None:    # pragma: no cover - interpreter exit
        try:
            self.close(timeout_s=5.0)
        except Exception:
            pass

"""The persistent warm worker pool behind :class:`repro.serve.service`.

One :class:`WorkerPool` outlives every request: each worker is a daemon
thread draining its own FIFO of work closures, and owns a cache of warm
``(engine, abstraction)`` pairs keyed by the request configuration fields
that shape evaluation state.  A repeated-schema request landing on a warm
worker therefore starts with hot subtree/block/verdict caches instead of
an empty engine — the latency side of the paper's interactive loop.

Cross-request sharing goes one level further: every warm engine is wired
to one pool-wide :class:`~repro.parallel.plan_cache.LocalPlanCache`, the
same cross-shard sub-plan tier the thread executor uses, whose keys are
exact ``(query, env)`` pairs.  The first request that evaluates a shared
sub-plan publishes its block; *any* other worker's engine — even a
freshly built one — gets a ``cross_shard_hits`` fetch instead of a
re-evaluation when the same tables come around again.

Why warm reuse is safe: engine caches are keyed on exact structural
``(query, env)`` state — and the incremental consistency checker's
verdicts additionally on demonstration identity — so traffic from one
request can never change another's *results*, only its latency (the same
argument that makes the cross-shard cache deterministic).  Per-session
accounting stays exact because :class:`~repro.synthesis.session.
SynthesisSession` snapshots the engine's counters at attach time and
reports deltas.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Callable

from repro.abstraction.base import Abstraction
from repro.engine.base import EvalEngine, make_engine, resolve_backend
from repro.parallel.plan_cache import LocalPlanCache
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.synthesizer import build_abstraction

#: Stop sentinel for worker queues (``None`` would shadow a missing job).
_SHUTDOWN = object()


def warm_key(config: SynthesisConfig, technique: str) -> tuple:
    """The identity of one warm engine+abstraction pair.

    Exactly the configuration fields that select or parameterize
    evaluation state: the *resolved* backend (a ``numpy`` request degraded
    to the columnar fallback shares the columnar warm engine), the
    technique name, and the abstraction knobs ``build_abstraction``
    consumes.  Everything else (budgets, search-space knobs) rides in the
    session and never fragments the warm cache.
    """
    return (resolve_backend(config.backend), technique,
            config.target_refinement, config.value_shadow,
            config.head_typing)


class PoolWorker:
    """One warm worker: a thread, a job queue, and an engine cache."""

    def __init__(self, worker_id: int, plan_cache: LocalPlanCache) -> None:
        self.worker_id = worker_id
        self.plan_cache = plan_cache
        self.warm_hits = 0          # requests served by an existing engine
        self.cold_builds = 0        # engines built on first use of a key
        self._warm: dict[tuple, tuple[EvalEngine, Abstraction]] = {}
        self._jobs: queue.Queue = queue.Queue()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-serve-worker-{worker_id}",
            daemon=True)
        self._thread.start()

    def submit(self, job: Callable[[], None]) -> None:
        """Enqueue a closure; jobs on one worker run strictly in order."""
        self._jobs.put(job)

    def engine_for(self, config: SynthesisConfig,
                   technique: str) -> tuple[EvalEngine, Abstraction]:
        """The warm engine+abstraction for this request shape (built on
        first use, wired to the pool-wide sub-plan cache).  Must be called
        from this worker's thread: the warm cache is thread-confined."""
        key = warm_key(config, technique)
        pair = self._warm.get(key)
        if pair is None:
            engine = make_engine(config.backend)
            engine.shared_plans = self.plan_cache.client(self.worker_id)
            abstraction = build_abstraction(technique, config)
            abstraction.bind_engine(engine)
            pair = (engine, abstraction)
            self._warm[key] = pair
            self.cold_builds += 1
        else:
            self.warm_hits += 1
        return pair

    @property
    def warm_keys(self) -> int:
        return len(self._warm)

    def _run(self) -> None:
        while True:
            job = self._jobs.get()
            if job is _SHUTDOWN:
                return
            # A job must not raise — the service wraps every slice — but a
            # worker thread dying silently would strand its whole queue,
            # so swallow the impossible rather than risk it.
            try:
                job()
            except Exception:       # pragma: no cover - defensive
                pass

    def close(self) -> None:
        self._jobs.put(_SHUTDOWN)
        self._thread.join()


class WorkerPool:
    """A fixed-size pool of :class:`PoolWorker` threads with one shared
    sub-plan cache; lives across requests (and across services, if the
    caller passes its own pool around)."""

    def __init__(self, size: int = 2,
                 plan_cache: LocalPlanCache | None = None) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.plan_cache = plan_cache if plan_cache is not None \
            else LocalPlanCache()
        self.workers = [PoolWorker(i, self.plan_cache) for i in range(size)]
        self._closed = False

    @property
    def size(self) -> int:
        return len(self.workers)

    def worker(self, worker_id: int) -> PoolWorker:
        return self.workers[worker_id]

    def submit(self, worker_id: int, job: Callable[[], None]) -> None:
        if self._closed:
            raise RuntimeError("pool is closed")
        self.workers[worker_id].submit(job)

    def telemetry(self) -> dict:
        """Pool-wide warm-state counters (for benchmarks and tests)."""
        return {
            "warm_hits": sum(w.warm_hits for w in self.workers),
            "cold_builds": sum(w.cold_builds for w in self.workers),
            "warm_keys": sum(w.warm_keys for w in self.workers),
        }

    def close(self) -> None:
        """Drain and join every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            worker.close()

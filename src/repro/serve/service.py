"""Asyncio synthesis-as-a-service front-end over the warm worker pool.

The paper's interaction model is a service loop: a user supplies a partial
computation demonstration, gets ranked analytical SQL back, refines, and
asks again.  :class:`SynthesisService` makes that loop first-class:

* every request becomes a :class:`~repro.synthesis.session.
  SynthesisSession` pinned to one pool worker and advanced in bounded
  *slices* (``slice_pops`` pops per turn, re-enqueued behind the worker's
  other requests — cooperative round-robin, so one giant search cannot
  monopolize a worker);
* consistent queries stream to the caller the moment a slice surfaces
  them (:meth:`RequestHandle.stream`), with the full ranked result at
  :meth:`RequestHandle.result`;
* admission control bounds the number of live requests
  (:class:`ServiceOverloaded` instead of an unbounded backlog);
* each request carries its own wall-clock budget, and
  :meth:`RequestHandle.cancel` stops the session at its next pop — the
  same flag that, were the session re-dispatched onto shard workers,
  propagates through the executor's shared cancel token.

Determinism: slicing is pure preemption — a request's ranked queries and
``SearchStats`` are byte-identical to an uninterrupted serial run of the
same session (the session's pledge), whichever worker it lands on and
however its slices interleave with other requests.  What the pool's warm
state changes is *latency only*; the per-request ``engine_stats`` deltas
stay exact.

Thread topology: the event loop owns admission, futures and streams;
pool worker threads own every synthesis step and talk back only through
``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
from collections.abc import Sequence
from dataclasses import dataclass

from repro.lang import ast
from repro.provenance.demo import Demonstration
from repro.serve.pool import WorkerPool
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.enumerator import SynthesisResult
from repro.synthesis.session import SynthesisSession
from repro.synthesis.stop import StopSpec, as_stop_spec
from repro.table.table import Table
from repro.util.timer import Deadline

#: End-of-stream marker on a request's query stream.
_EOS = object()

# Request lifecycle states (RequestHandle.status).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"
TIMED_OUT = "timed_out"


class ServiceOverloaded(RuntimeError):
    """Admission rejected: the service is at its live-request bound."""


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (request-level knobs ride in SynthesisConfig)."""

    pool_size: int = 2          # warm workers
    max_requests: int = 8       # live (admitted, unfinished) request bound
    slice_pops: int = 500       # preemption granularity, pops per slice
    default_timeout_s: float | None = None   # per-request budget fallback

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if self.max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        if self.slice_pops < 1:
            raise ValueError("slice_pops must be >= 1")


class _Request:
    """Loop-side bookkeeping for one admitted request."""

    def __init__(self, session: SynthesisSession, worker_id: int,
                 deadline: Deadline,
                 loop: asyncio.AbstractEventLoop) -> None:
        self.session = session
        self.worker_id = worker_id
        self.deadline = deadline
        self.future: asyncio.Future = loop.create_future()
        self.stream_queue: asyncio.Queue = asyncio.Queue()
        self.state = QUEUED


class RequestHandle:
    """The caller's view of one in-flight synthesis request."""

    def __init__(self, request: _Request) -> None:
        self._request = request

    @property
    def status(self) -> str:
        return self._request.state

    @property
    def worker_id(self) -> int:
        return self._request.worker_id

    @property
    def session(self) -> SynthesisSession:
        return self._request.session

    async def result(self) -> SynthesisResult:
        """The ranked result; resolves when the session ends (found its
        queries, exhausted, budget expired, or cancelled — the result's
        stats say which)."""
        return await asyncio.shield(self._request.future)

    async def stream(self):
        """Async-iterate consistent queries in discovery order, ending
        when the request does.  First hit arrives mid-search — the
        stream-first-refine-later interaction the session API exists for.
        """
        while True:
            item = await self._request.stream_queue.get()
            if item is _EOS:
                return
            yield item

    def cancel(self) -> None:
        """Stop the session at its next pop; the (partial, ranked) result
        still resolves."""
        self._request.session.cancel()


class SynthesisService:
    """The asyncio front-end; use as an async context manager.

    ``async with SynthesisService() as svc:`` then ``svc.submit(...)``
    from coroutines running on the same event loop.  A caller-supplied
    ``pool`` survives the service (warm state persists across service
    restarts); an owned pool is closed with it.
    """

    def __init__(self, config: ServiceConfig | None = None,
                 pool: WorkerPool | None = None) -> None:
        self.config = config or ServiceConfig()
        self.pool = pool if pool is not None \
            else WorkerPool(self.config.pool_size)
        self._own_pool = pool is None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._live: set[_Request] = set()
        self._next_worker = 0
        self._closed = False

    # --------------------------------------------------------- lifecycle
    async def __aenter__(self) -> "SynthesisService":
        self._loop = asyncio.get_running_loop()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self) -> None:
        """Stop admitting, cancel live requests, drain the pool."""
        self._closed = True
        for request in list(self._live):
            request.session.cancel()
        if self._live:
            await asyncio.gather(
                *(request.future for request in self._live),
                return_exceptions=True)
        if self._own_pool:
            self.pool.close()

    # --------------------------------------------------------- admission
    def submit(self, tables: Sequence[Table] | ast.Env, demo: Demonstration,
               config: SynthesisConfig | None = None,
               stop: StopSpec | None = None,
               timeout_s: float | None = None,
               worker: int | None = None,
               technique: str = "provenance") -> RequestHandle:
        """Admit one synthesis request; returns immediately.

        ``worker`` pins the request to a pool worker (tests and
        schema-affinity routing); default assignment is round-robin.
        ``timeout_s`` (or the service default) is the request's wall-clock
        budget from admission — covering queueing, unlike the config's
        ``timeout_s``, which meters active search time only.  Requests run
        serial slices on their worker: ``config.workers`` is forced to 1
        (cross-request parallelism is the service's axis; drive a
        session yourself for intra-request sharding).

        Raises :class:`ServiceOverloaded` when ``max_requests`` requests
        are already live — callers retry with backoff, the paper's
        interactive loop degrading gracefully instead of queueing without
        bound.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        if len(self._live) >= self.config.max_requests:
            raise ServiceOverloaded(
                f"{len(self._live)} live requests (bound "
                f"{self.config.max_requests}); retry later")
        cfg = config or SynthesisConfig()
        if cfg.workers != 1:
            cfg = cfg.replace(workers=1)
        session = SynthesisSession(tables, demo, cfg, abstraction=technique,
                                   stop=as_stop_spec(stop))
        if worker is None:
            worker = self._next_worker % self.pool.size
            self._next_worker += 1
        elif not 0 <= worker < self.pool.size:
            raise ValueError(f"worker {worker} out of range "
                             f"[0, {self.pool.size})")
        budget = timeout_s if timeout_s is not None \
            else self.config.default_timeout_s
        request = _Request(session, worker, Deadline(budget), self._loop)
        self._live.add(request)
        self.pool.submit(worker, lambda: self._advance(request))
        return RequestHandle(request)

    # ------------------------------------------------------- worker side
    def _advance(self, request: _Request) -> None:
        """One slice of one request, on its pool worker's thread."""
        session = request.session
        loop = self._loop
        if request.state == QUEUED:
            request.state = RUNNING
        timed_out = request.deadline.expired() and not session.done
        if timed_out:
            # The request's wall-clock budget (queueing included) is the
            # service-level analogue of the config timeout: report the
            # partial result with the same timed_out marker.
            session.stats.timed_out = True
        else:
            worker = self.pool.worker(request.worker_id)
            engine, abstraction = worker.engine_for(
                session.config, session.abstraction_spec)
            session.attach_engine(engine, abstraction)
            report = session.step(max_pops=self.config.slice_pops)
            for query in report.new_queries:
                loop.call_soon_threadsafe(
                    request.stream_queue.put_nowait, query)
        if session.done or timed_out:
            result = session.result()
            state = TIMED_OUT if timed_out else (
                CANCELLED if session.status == "cancelled" else DONE)
            loop.call_soon_threadsafe(self._finalize, request, result, state)
        else:
            # Back of this worker's queue: other live requests pinned here
            # get their slice before our next one.
            self.pool.submit(request.worker_id,
                             lambda: self._advance(request))

    def _finalize(self, request: _Request, result: SynthesisResult,
                  state: str) -> None:
        request.state = state
        self._live.discard(request)
        if not request.future.done():
            request.future.set_result(result)
        request.stream_queue.put_nowait(_EOS)

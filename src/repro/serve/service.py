"""Asyncio synthesis-as-a-service front-end over the warm worker pool.

The paper's interaction model is a service loop: a user supplies a partial
computation demonstration, gets ranked analytical SQL back, refines, and
asks again.  :class:`SynthesisService` makes that loop first-class:

* every request becomes a :class:`~repro.synthesis.session.
  SynthesisSession` pinned to one pool worker and advanced in bounded
  *slices* (``slice_pops`` pops per turn, re-enqueued behind the worker's
  other requests — cooperative round-robin, so one giant search cannot
  monopolize a worker);
* the worker tier is pluggable (:class:`~repro.serve.pool.WorkerPool`
  backends): GIL-sharing threads, or — the default for pools larger than
  one — long-lived worker processes that scale CPU-bound searches with
  cores;
* placement is *schema-affine*: requests route by ``(warm key, env
  digest)`` to the worker that already served that shape on those tables
  (hot engine caches), falling back to the least-loaded worker for new
  shapes; ``routing="round_robin"`` restores blind rotation for
  comparison;
* a request whose config asks for ``workers > 1`` fans out: when the
  pool has idle capacity its next turn runs the session to completion,
  re-dispatching remaining lanes onto shard workers at the round
  boundary (the session's own parallel path) instead of another slice;
* consistent queries stream to the caller the moment a slice surfaces
  them (:meth:`RequestHandle.stream`), with the full ranked result at
  :meth:`RequestHandle.result`;
* admission control bounds the number of live requests
  (:class:`ServiceOverloaded`, carrying a ``retry_after_s`` hint derived
  from the backlog, instead of an unbounded queue);
* each request carries its own wall-clock budget (checked worker-side
  before every slice, so it covers queueing on either tier), and
  :meth:`RequestHandle.cancel` stops the session at its next pop — on
  the process tier via a shared-memory flag the session polls, plus the
  executor's shared cancel token if it fanned out.

Fault tolerance (PR 9): the service retains each request's latest
slice-boundary checkpoint blob.  When the pool's supervisor reports a
worker death (``status="worker_died"``) the request enters ``RETRYING``:
the checkpoint is resumed into a fresh session and re-dispatched onto a
healthy worker, under ``max_retries`` replays per request; only when the
budget is exhausted does the request become ``FAILED``, carrying every
accumulated worker error.  The recovery state machine::

    QUEUED ──▶ RUNNING ──▶ DONE | CANCELLED | TIMED_OUT
                 │  ▲
       worker    ▼  │ re-dispatched from checkpoint
       died    RETRYING ──▶ FAILED   (retry budget exhausted,
                                      or no checkpoint to replay)

Terminal states are sticky: a late outcome from a dying worker can never
flip a request out of DONE/CANCELLED/TIMED_OUT/FAILED.

Determinism: slicing is pure preemption and the shm codecs are exact —
a request's ranked queries and ``SearchStats`` are byte-identical to an
uninterrupted serial run of the same session, whichever worker and
whichever tier (threads or processes, fork or spawn) it lands on, and
however its slices interleave with other requests.  That same pledge is
what makes recovery *transparent*: a replayed checkpoint re-executes the
lost pops and lands on the identical result — crashes cost latency,
never correctness.  What the pool's warm state changes is latency only;
the per-request ``engine_stats`` deltas stay exact.

Thread topology: the event loop owns admission, futures, streams and
recovery; pool-owned threads (worker threads on the thread tier, the
outcome reader on the process tier, the supervisor) deliver slice
outcomes and talk back only through ``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
from collections.abc import Sequence
from dataclasses import dataclass

from repro.lang import ast
from repro.parallel.plan_cache import env_digest
from repro.provenance.demo import Demonstration
from repro.serve.faults import FaultPlan
from repro.serve.pool import (
    SUPERVISE_INTERVAL_S,
    WORKER_DIED,
    SliceOutcome,
    WorkerPool,
    warm_key,
)
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.enumerator import SynthesisResult
from repro.synthesis.session import SynthesisSession
from repro.synthesis.stop import StopSpec, as_stop_spec
from repro.table.table import Table
from repro.util.timer import Deadline

#: End-of-stream marker on a request's query stream.
_EOS = object()

# Request lifecycle states (RequestHandle.status).
QUEUED = "queued"
RUNNING = "running"
RETRYING = "retrying"           # worker died; replaying from checkpoint
DONE = "done"
CANCELLED = "cancelled"
TIMED_OUT = "timed_out"
FAILED = "failed"

#: Once here, a request never leaves (the _fail/_finalize guard).
TERMINAL_STATES = frozenset({DONE, CANCELLED, TIMED_OUT, FAILED})

ROUTING_MODES = ("affinity", "round_robin")

#: Bound on the routing/env-digest memos — they key on request shapes,
#: which are few in steady state; a pathological shape churn resets the
#: maps rather than growing them without bound.
_ROUTE_MEMO_LIMIT = 4096


class ServiceOverloaded(RuntimeError):
    """Admission rejected: the service is at its live-request bound.

    ``retry_after_s`` is the service's backoff hint, scaled with the
    current backlog (live requests + queued slices) — clients honor it
    with jitter rather than hammering a saturated service.
    """

    def __init__(self, message: str, retry_after_s: float = 0.1) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (request-level knobs ride in SynthesisConfig)."""

    pool_size: int = 2          # warm workers
    max_requests: int = 8       # live (admitted, unfinished) request bound
    slice_pops: int = 500       # preemption granularity, pops per slice
    default_timeout_s: float | None = None   # per-request budget fallback
    pool_backend: str | None = None  # threads|processes|None ("auto")
    routing: str = "affinity"   # schema-affine placement | "round_robin"
    max_retries: int = 2        # checkpoint replays per request
    slice_timeout_s: float | None = None  # hang detection (off by default)
    supervise_interval_s: float | None = SUPERVISE_INTERVAL_S
    faults: FaultPlan | None = None       # deterministic chaos (tests)

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if self.max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        if self.slice_pops < 1:
            raise ValueError("slice_pops must be >= 1")
        if self.routing not in ROUTING_MODES:
            raise ValueError(f"routing must be one of {ROUTING_MODES}, "
                             f"got {self.routing!r}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.slice_timeout_s is not None and self.slice_timeout_s <= 0:
            raise ValueError("slice_timeout_s must be positive or None")


class _Request:
    """Loop-side bookkeeping for one admitted request."""

    def __init__(self, session: SynthesisSession, worker_id: int,
                 loop: asyncio.AbstractEventLoop) -> None:
        self.session = session
        self.worker_id = worker_id
        self.request_id: int | None = None      # assigned by the pool
        self.future: asyncio.Future = loop.create_future()
        self.stream_queue: asyncio.Queue = asyncio.Queue()
        self.state = QUEUED
        # ----------------------------------------------- recovery state
        self.deadline: Deadline | None = None   # absolute; survives replay
        self.env_key: str = ""
        self.checkpoint: bytes | None = None    # latest slice-boundary blob
        self.checkpoint_visited = 0             # pops folded into it
        self.last_visited = 0                   # pops last reported live
        self.retries = 0
        self.errors: list[str] = []             # one per worker death
        self.cancel_requested = False


class RequestHandle:
    """The caller's view of one in-flight synthesis request."""

    def __init__(self, request: _Request, service: "SynthesisService") -> None:
        self._request = request
        self._service = service

    @property
    def status(self) -> str:
        return self._request.state

    @property
    def worker_id(self) -> int:
        return self._request.worker_id

    @property
    def retries(self) -> int:
        """Checkpoint replays this request needed (0 on a clean run)."""
        return self._request.retries

    @property
    def session(self) -> SynthesisSession:
        """The submitted session object.

        On the thread tier this is the live search (pollable mid-flight);
        on the process tier it is the loop-side shell whose ``stats`` the
        service refreshes from each slice outcome — same fields, one
        slice of staleness.  After a recovery it is the replayed session.
        """
        return self._request.session

    async def result(self) -> SynthesisResult:
        """The ranked result; resolves when the session ends (found its
        queries, exhausted, budget expired, or cancelled — the result's
        stats say which)."""
        return await asyncio.shield(self._request.future)

    async def stream(self):
        """Async-iterate consistent queries in discovery order, ending
        when the request does.  First hit arrives mid-search — the
        stream-first-refine-later interaction the session API exists for.
        """
        while True:
            item = await self._request.stream_queue.get()
            if item is _EOS:
                return
            yield item

    def cancel(self) -> None:
        """Stop the session at its next pop; the (partial, ranked) result
        still resolves.  Sticky across recovery: a request cancelled
        while its worker was being replaced still ends ``cancelled``."""
        self._service._cancel(self._request)


class SynthesisService:
    """The asyncio front-end; use as an async context manager.

    ``async with SynthesisService() as svc:`` then ``svc.submit(...)``
    from coroutines running on the same event loop.  A caller-supplied
    ``pool`` survives the service (warm state persists across service
    restarts — and two services may share one pool); an owned pool is
    closed with it.
    """

    def __init__(self, config: ServiceConfig | None = None,
                 pool: WorkerPool | None = None) -> None:
        self.config = config or ServiceConfig()
        self.pool = pool if pool is not None \
            else WorkerPool(self.config.pool_size,
                            backend=self.config.pool_backend,
                            faults=self.config.faults,
                            slice_timeout_s=self.config.slice_timeout_s,
                            supervise_interval_s=self.config
                            .supervise_interval_s)
        self._own_pool = pool is None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._live: set[_Request] = set()
        self._next_worker = 0
        self._affinity: dict[tuple, int] = {}   # (warm key, env key) -> wid
        self._env_keys: dict = {}               # env -> digest memo
        self._closed = False
        self._retries_total = 0
        self._recovered = 0         # requests that finished after replays
        self._replayed_pops = 0     # pops re-executed across recoveries
        self.pool.add_restart_listener(self._on_worker_restart)

    # --------------------------------------------------------- lifecycle
    async def __aenter__(self) -> "SynthesisService":
        self._loop = asyncio.get_running_loop()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self) -> None:
        """Stop admitting, cancel live requests, drain the pool."""
        self._closed = True
        self.pool.remove_restart_listener(self._on_worker_restart)
        for request in list(self._live):
            self._cancel(request)
        if self._live:
            await asyncio.gather(
                *(request.future for request in self._live),
                return_exceptions=True)
        if self._own_pool:
            self.pool.close()

    # --------------------------------------------------------- admission
    def submit(self, tables: Sequence[Table] | ast.Env, demo: Demonstration,
               config: SynthesisConfig | None = None,
               stop: StopSpec | None = None,
               timeout_s: float | None = None,
               worker: int | None = None,
               technique: str = "provenance") -> RequestHandle:
        """Admit one synthesis request; returns immediately.

        ``worker`` pins the request to a pool worker (tests and manual
        placement); by default the service routes by schema affinity —
        the ``(warm key, env digest)`` of the request goes to the worker
        that has served it before, or to the least-loaded worker on first
        sight.  ``timeout_s`` (or the service default) is the request's
        wall-clock budget from admission — covering queueing, unlike the
        config's ``timeout_s``, which meters active search time only.

        ``config.workers > 1`` is honored: when the pool has idle
        capacity the request's next turn runs to completion with the
        remaining lanes re-dispatched onto shard workers (byte-identical
        to slicing serially); under load it degrades to ordinary slices.

        Raises :class:`ServiceOverloaded` when ``max_requests`` requests
        are already live — its ``retry_after_s`` tells the caller how
        long to back off (with jitter), the paper's interactive loop
        degrading gracefully instead of queueing without bound.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        if len(self._live) >= self.config.max_requests:
            backlog = sum(self.pool.queue_depths()) + len(self._live)
            raise ServiceOverloaded(
                f"{len(self._live)} live requests (bound "
                f"{self.config.max_requests}); retry later",
                retry_after_s=round(min(5.0, 0.05 + 0.02 * backlog), 3))
        cfg = config or SynthesisConfig()
        session = SynthesisSession(tables, demo, cfg, abstraction=technique,
                                   stop=as_stop_spec(stop))
        env_key = self._env_key(session.env)
        if worker is None:
            worker = self._route(warm_key(cfg, technique), env_key)
        elif not 0 <= worker < self.pool.size:
            raise ValueError(f"worker {worker} out of range "
                             f"[0, {self.pool.size})")
        budget = timeout_s if timeout_s is not None \
            else self.config.default_timeout_s
        request = _Request(session, worker, self._loop)
        request.deadline = Deadline(budget)
        request.env_key = env_key
        try:
            # The replay point should the worker die before shipping its
            # first slice checkpoint (crash-before-first-slice window).
            request.checkpoint = session.checkpoint(strip_env=True)
        except Exception:
            request.checkpoint = None   # unpicklable: no recovery for it
        self._live.add(request)
        request.request_id = self.pool.submit_request(
            session, worker_id=worker, slice_pops=self.config.slice_pops,
            deadline=request.deadline, env_key=env_key,
            on_slice=lambda outcome: self._on_slice(request, outcome))
        return RequestHandle(request, self)

    # ----------------------------------------------------------- routing
    def _env_key(self, env: ast.Env) -> str:
        key = self._env_keys.get(env)
        if key is None:
            if len(self._env_keys) >= _ROUTE_MEMO_LIMIT:
                self._env_keys.clear()
            key = env_digest(env)
            self._env_keys[env] = key
        return key

    def _route(self, key: tuple, env_key: str) -> int:
        """Pick a worker: sticky by request shape, least-loaded on first
        sight (ties to the lowest id, so light load behaves like the old
        round-robin no worse).  Workers currently down — mid-restart —
        are avoided for new placements."""
        if self.config.routing == "round_robin":
            worker = self._next_worker % self.pool.size
            self._next_worker += 1
            return worker
        route = (key, env_key)
        down = self.pool.down_workers()
        worker = self._affinity.get(route)
        if worker is None or worker in down:
            worker = self._healthy_worker(down)
            if len(self._affinity) >= _ROUTE_MEMO_LIMIT:
                self._affinity.clear()
            self._affinity[route] = worker
        return worker

    def _healthy_worker(self, down: set[int] | None = None) -> int:
        """The least-loaded worker that is not mid-restart (every worker
        down is a transient — fall back to least-loaded regardless; the
        pool buffers submissions to a restarting worker)."""
        if down is None:
            down = self.pool.down_workers()
        depths = self.pool.queue_depths()
        candidates = [i for i in range(self.pool.size) if i not in down] \
            or list(range(self.pool.size))
        return min(candidates, key=lambda i: (depths[i], i))

    def _on_worker_restart(self, worker_id: int | None) -> None:
        """Pool restart listener (supervisor thread): a restarted worker
        is cold, so its affinity pins are void — new placements go
        least-loaded and re-pin.  ``None`` means a backend degrade
        replaced every worker."""
        def purge() -> None:
            if worker_id is None:
                self._affinity.clear()
                return
            for route in [r for r, w in self._affinity.items()
                          if w == worker_id]:
                del self._affinity[route]
        loop = self._loop
        if loop is None or loop.is_closed():
            purge()
            return
        try:
            loop.call_soon_threadsafe(purge)
        except RuntimeError:        # pragma: no cover - loop shut down
            purge()

    # ------------------------------------------------------- worker side
    def _on_slice(self, request: _Request, outcome: SliceOutcome) -> None:
        """One slice outcome, on a pool-owned thread."""
        loop = self._loop
        if request.state in TERMINAL_STATES:
            return
        if outcome.status == WORKER_DIED:
            # Supervision-synthesized: the worker hosting this request
            # died (outcome.error says how).  Recovery runs on the loop.
            loop.call_soon_threadsafe(self._recover, request, outcome.error)
            return
        if request.state in (QUEUED, RETRYING):
            request.state = RUNNING
        if outcome.error is not None:
            loop.call_soon_threadsafe(self._fail, request, outcome.error)
            return
        if outcome.checkpoint is not None:
            # The newest replay point; anything before it never needs
            # re-executing.
            request.checkpoint = outcome.checkpoint
            request.checkpoint_visited = \
                outcome.stats.visited if outcome.stats is not None else 0
        if outcome.stats is not None:
            request.last_visited = outcome.stats.visited
            if self.pool.backend_name == "processes":
                # Refresh the loop-side shell so handle.session.stats
                # tracks the search living in the worker process.  (On
                # the thread tier the hosted session *is* the shell —
                # don't replace the stats object under the running step
                # loop.)
                request.session.stats = outcome.stats
        for query in outcome.new_queries:
            loop.call_soon_threadsafe(
                request.stream_queue.put_nowait, query)
        if outcome.done:
            state = TIMED_OUT if outcome.timed_out else (
                CANCELLED if outcome.status == "cancelled" else DONE)
            loop.call_soon_threadsafe(self._finalize, request,
                                      outcome.result, state)
        elif request.session.config.workers > 1 \
                and self.pool.idle_workers(exclude=request.worker_id) > 0:
            # Idle capacity and the request asked for parallelism: next
            # turn re-dispatches the remaining lanes at a round boundary.
            self.pool.run(outcome.request_id)
        else:
            # Back of this worker's queue: other live requests pinned
            # here get their slice before our next one.
            self.pool.step(outcome.request_id)

    # ---------------------------------------------------------- recovery
    def _recover(self, request: _Request, error: str | None) -> None:
        """Replay a request whose worker died, from its latest checkpoint
        (loop thread).  Determinism makes this transparent: the replayed
        session re-executes the lost pops and produces the byte-identical
        ranked result the dead worker would have."""
        if request.state in TERMINAL_STATES:
            return
        request.errors.append(error or "worker died")
        if request.checkpoint is None:
            self._fail(request,
                       "worker died and the session has no checkpoint to "
                       "replay:\n" + "\n---\n".join(request.errors))
            return
        if request.retries >= self.config.max_retries:
            self._fail(request,
                       f"retry budget exhausted "
                       f"({self.config.max_retries} replay"
                       f"{'' if self.config.max_retries == 1 else 's'}); "
                       f"worker errors were:\n"
                       + "\n---\n".join(request.errors))
            return
        request.retries += 1
        self._retries_total += 1
        self._replayed_pops += max(
            0, request.last_visited - request.checkpoint_visited)
        request.state = RETRYING
        try:
            resumed = SynthesisSession.resume(request.checkpoint,
                                              env=request.session.env)
        except Exception as exc:
            self._fail(request, f"checkpoint replay failed: {exc!r}; "
                       "worker errors were:\n"
                       + "\n---\n".join(request.errors))
            return
        if request.cancel_requested:
            # Cancel-during-recovery: the intent survives the crash.
            resumed.cancel()
        request.session = resumed
        request.last_visited = request.checkpoint_visited
        worker = self._healthy_worker()
        request.worker_id = worker
        # Re-pin this shape's affinity: the old pin pointed at state
        # that died with the worker.
        route = (warm_key(resumed.config, resumed.abstraction_spec),
                 request.env_key)
        if resumed.abstraction_spec is not None:
            self._affinity[route] = worker
        try:
            request.request_id = self.pool.submit_request(
                resumed, worker_id=worker,
                slice_pops=self.config.slice_pops,
                deadline=request.deadline, env_key=request.env_key,
                on_slice=lambda outcome: self._on_slice(request, outcome))
        except Exception as exc:
            self._fail(request, f"re-dispatch after worker death failed: "
                       f"{exc!r}")

    def _cancel(self, request: _Request) -> None:
        # Flag the shell session (covers the thread tier, where it is
        # the live search, and keeps handle.status honest) and the pool
        # side (covers a process-hosted copy mid-slice).  The sticky
        # flag covers recovery: a replayed session is re-cancelled
        # before re-dispatch.
        request.cancel_requested = True
        request.session.cancel()
        if request.request_id is not None:
            self.pool.cancel(request.request_id)

    def _finalize(self, request: _Request, result: SynthesisResult,
                  state: str) -> None:
        if request.state in TERMINAL_STATES:
            return      # terminal states are sticky (late-outcome race)
        request.state = state
        self._live.discard(request)
        if request.retries > 0:
            self._recovered += 1
        if not request.future.done():
            request.future.set_result(result)
        request.stream_queue.put_nowait(_EOS)

    def _fail(self, request: _Request, error: str) -> None:
        if request.state in TERMINAL_STATES:
            return      # terminal states are sticky (late-outcome race)
        request.state = FAILED
        self._live.discard(request)
        if not request.future.done():
            request.future.set_exception(
                RuntimeError(f"request failed on worker "
                             f"{request.worker_id}:\n{error}"))
        request.stream_queue.put_nowait(_EOS)

    # --------------------------------------------------------- telemetry
    def health(self) -> dict:
        """Operator snapshot: live-request states, recovery counters, and
        the pool's per-worker liveness (the CLI ``serve`` surface)."""
        states: dict[str, int] = {}
        for request in list(self._live):
            states[request.state] = states.get(request.state, 0) + 1
        return {
            "live_requests": len(self._live),
            "states": states,
            "retries": self._retries_total,
            "recovered_requests": self._recovered,
            "replayed_pops": self._replayed_pops,
            "pool": self.pool.health(),
        }

"""Programmatic demonstration generation (paper §5.1).

Benchmarks pair input tables with a ground-truth query; the generator
produces the small, partially-omitted computation demonstrations the paper
uses to drive its systematic evaluation.
"""

from repro.spec.demo_gen import DemoGenConfig, generate_demonstration
from repro.spec.sampling import sample_table

__all__ = ["generate_demonstration", "DemoGenConfig", "sample_table"]

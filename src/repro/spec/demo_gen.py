"""Generate computation demonstrations from ground-truth queries (§5.1).

The paper's procedure, reproduced step by step:

1. evaluate ``T★ = [[q_gt(T̄)]]★`` under the tracking semantics;
2. randomly sample 2 rows of ``T★`` as the partial output;
3. permute the argument order of commutative functions (users do not list
   values in any canonical order);
4. replace expressions with more than four values by an incomplete
   expression containing at most four values plus ♦ (omitted parameters);
5. collapse ``group{...}`` terms to a single member (any member of a group
   carries the group's value — footnote 1 — so users reference just one).

Everything is deterministic in the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.lang.ast import Env, Query
from repro.lang.functions import function_spec
from repro.provenance.demo import Demonstration
from repro.provenance.expr import CellRef, Const, Expr, FuncApp, GroupSet
from repro.semantics.tracking import evaluate_tracking
from repro.util.rng import stable_rng


@dataclass(frozen=True)
class DemoGenConfig:
    """Knobs of the §5.1 generation procedure."""

    n_rows: int = 2            # demonstrated output rows
    max_expr_values: int = 4   # values kept before ♦-truncation
    seed: int = 0
    columns: tuple[int, ...] | None = None  # restrict to these output columns


def generate_demonstration(query: Query, env: Env,
                           config: DemoGenConfig | None = None,
                           label: str = "") -> Demonstration:
    """Build the demonstration E for ``query`` evaluated on ``env``."""
    config = config or DemoGenConfig()
    tracked = evaluate_tracking(query, env)
    rng = stable_rng(f"demo:{label}", config.seed)

    n_rows = min(config.n_rows, tracked.n_rows)
    if n_rows == 0:
        raise ValueError("ground-truth output is empty; cannot demonstrate")
    row_ids = sorted(rng.sample(range(tracked.n_rows), n_rows))
    col_ids = list(config.columns) if config.columns is not None \
        else list(range(tracked.n_cols))

    rows = []
    for i in row_ids:
        rows.append([_demonstrate(tracked.exprs[i][j], rng,
                                  config.max_expr_values)
                     for j in col_ids])
    return Demonstration.of(rows)


def _demonstrate(expr: Expr, rng: random.Random, max_values: int) -> Expr:
    """Turn one tracked cell ``e★`` into a user-style demo cell ``e``."""
    if isinstance(expr, (Const, CellRef)):
        return expr
    if isinstance(expr, GroupSet):
        # The user references any one member of the group.
        return _demonstrate(rng.choice(expr.members), rng, max_values)
    if isinstance(expr, FuncApp):
        args = [_demonstrate(a, rng, max_values) for a in expr.args]
        spec = function_spec(expr.func)
        if spec.arg_style == "commutative":
            rng.shuffle(args)
            if len(args) > max_values:
                args = args[:max_values]
                return FuncApp(expr.func, tuple(args), partial=True)
            return FuncApp(expr.func, tuple(args))
        if spec.arg_style == "ranked":
            own, pool = args[0], args[1:]
            rng.shuffle(pool)
            if len(pool) > max_values - 1:
                pool = pool[: max_values - 1]
                return FuncApp(expr.func, (own, *pool), partial=True)
            return FuncApp(expr.func, (own, *pool),
                           partial=len(pool) < len(args) - 1)
        # Positional: keep a subsequence when truncating.
        if len(args) > max_values:
            keep = sorted(rng.sample(range(len(args)), max_values))
            return FuncApp(expr.func, tuple(args[k] for k in keep),
                           partial=True)
        return FuncApp(expr.func, tuple(args))
    raise TypeError(f"unexpected tracked term {expr!r}")

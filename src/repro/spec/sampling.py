"""Input-table sampling (paper §5.1, step 1).

"For input with > 20 rows, we sample 20 rows from the input table and use
the sampled data as the synthesis task input."  Sampling preserves the
original relative row order — order feeds the order-dependent analytic
functions — and is deterministic in the (table name, seed) pair.
"""

from __future__ import annotations

from repro.table.table import Table
from repro.util.rng import stable_rng


def sample_table(table: Table, max_rows: int = 20, seed: int = 0) -> Table:
    """At most ``max_rows`` rows, original order preserved."""
    if table.n_rows <= max_rows:
        return table
    rng = stable_rng(f"sample:{table.name}", seed)
    keep = sorted(rng.sample(range(table.n_rows), max_rows))
    return table.take_rows(keep)

"""The abstraction-based enumerative synthesizer (paper Alg. 1).

:func:`~repro.synthesis.synthesizer.synthesize` is the public entry point;
it enumerates query skeletons, instantiates holes breadth-first, prunes
partial queries through a pluggable abstraction and collects queries whose
provenance-tracking output is consistent with the user demonstration.
"""

from repro.synthesis.config import SynthesisConfig
from repro.synthesis.enumerator import SearchStats, SynthesisResult, enumerate_queries
from repro.synthesis.equivalence import same_output
from repro.synthesis.ranking import rank_queries
from repro.synthesis.session import CHECKPOINT_VERSION, StepReport, SynthesisSession
from repro.synthesis.skeletons import construct_skeletons
from repro.synthesis.stop import (
    CallableStop,
    GroundTruthStop,
    StopSpec,
    as_stop_spec,
)
from repro.synthesis.synthesizer import Synthesizer, build_abstraction, synthesize

__all__ = [
    "SynthesisConfig", "Synthesizer", "synthesize", "build_abstraction",
    "SynthesisSession", "StepReport", "CHECKPOINT_VERSION",
    "SearchStats", "SynthesisResult", "enumerate_queries",
    "construct_skeletons", "rank_queries", "same_output",
    "StopSpec", "GroundTruthStop", "CallableStop", "as_stop_spec",
]

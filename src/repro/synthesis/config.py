"""Synthesizer configuration.

Mirrors the knobs the paper describes: search depth, the N-consistent-query
cutoff (Sickle uses N = 10), user-provided filter constants (§5.1), and the
operator pool the skeleton enumerator composes.  Benchmarks carry their own
pool — all abstraction techniques share it, so the search space and order
are identical across techniques (§5.1, "Baselines").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.functions import (
    AGGREGATE_FUNCTIONS,
    ANALYTIC_FUNCTIONS,
    ARITHMETIC_FUNCTIONS,
)
from repro.table.values import Value

#: Operators the skeleton enumerator may compose (joins are added
#: automatically when the task has multiple input tables).
DEFAULT_OPERATOR_POOL: tuple[str, ...] = ("group", "partition", "arithmetic")

ALL_OPERATORS: tuple[str, ...] = (
    "group", "partition", "arithmetic", "filter", "sort", "proj")


@dataclass(frozen=True)
class SynthesisConfig:
    """All search-space and budget knobs in one immutable bundle."""

    # --- search budget -----------------------------------------------------
    max_operators: int = 3          # skeleton size limit ("depth" in Alg. 1)
    top_n: int = 10                 # stop after N consistent queries
    timeout_s: float | None = None  # wall-clock budget (None = unbounded)
    max_visited: int | None = None  # visited-query budget (None = unbounded)

    # Evaluation backend (repro.engine): "columnar" (default) evaluates over
    # column-major blocks with structural-key subtree caching; "row" is the
    # row-at-a-time tree interpreter; "numpy" layers vectorized NumPy
    # kernels over the columnar engine (falling back to "columnar" with a
    # logged warning when NumPy is not installed).  All backends produce
    # identical results — the knob trades evaluation strategy, never
    # search behavior.
    backend: str = "columnar"

    # --- parallel search ---------------------------------------------------
    # Number of skeleton shards searched concurrently (repro.parallel).
    # 1 (default) runs the classic in-process loop; N > 1 partitions the
    # skeleton worklist into up to N shards, each searched by a worker that
    # owns its own EvalEngine, and merges the results deterministically —
    # ranked output and search counters are byte-identical to workers=1.
    workers: int = 1
    # How the ShardPlanner partitions skeletons across workers:
    #   "cost_rr"     — size-ordered round-robin by estimated lane cost
    #                   (default; balances load, permutation-insensitive)
    #   "round_robin" — deal skeletons to shards in enumeration order
    #   "chunk"       — contiguous slices of the skeleton list
    shard_strategy: str = "cost_rr"
    # Worker execution vehicle: "process" (default; one OS process per
    # shard, true parallelism), "thread" (GIL-bound, useful for tests and
    # platforms without fork), or "serial" (run shards one after another
    # in-process — the reference semantics the other two must match).
    parallel_executor: str = "process"
    # Shared-memory dispatch and cross-shard sub-plan caching
    # (repro.engine.shm / repro.parallel.plan_cache):
    #   "auto" — enabled for the process executor (where tables would
    #            otherwise pickle into every worker), off for thread/serial
    #   "on"   — force-enable (thread/serial get the in-process sub-plan
    #            cache; process additionally ships env handles over shm)
    #   "off"  — force-disable
    # The REPRO_SHM environment variable, when set, overrides this knob.
    # Results are identical either way — shm trades dispatch bytes and
    # redundant evaluation, never search behavior.
    shm: str = "auto"

    # Worklist strategy.  "sized_dfs" (default) explores skeleton sizes
    # smallest-first and completes hole instantiation depth-first within a
    # size class — small consistent queries are still found first (the
    # paper's size ranking), but concrete candidates are reached without
    # materializing the full breadth-first frontier, which is impractical at
    # pure-Python speeds.  "bfs" is the paper-literal breadth-first order.
    # The strategy is shared by all abstraction techniques, so their search
    # order is identical (§5.1).
    strategy: str = "sized_dfs"     # "sized_dfs" | "bfs" | "dfs"

    # --- search space ------------------------------------------------------
    operator_pool: tuple[str, ...] = DEFAULT_OPERATOR_POOL
    aggregate_functions: tuple[str, ...] = AGGREGATE_FUNCTIONS
    analytic_functions: tuple[str, ...] = ANALYTIC_FUNCTIONS
    arithmetic_functions: tuple[str, ...] = ARITHMETIC_FUNCTIONS
    max_key_cols: int = 3           # grouping/partition key subset size cap
    allow_empty_keys: bool = True   # global aggregates / whole-table windows
    max_sort_cols: int = 1
    constants: tuple[Value, ...] = ()        # user-provided filter constants
    comparison_ops: tuple[str, ...] = ("==", "<", ">", "<=", ">=")
    # Filter predicates default to comparisons against user constants (§5.1:
    # constants are never invented).  Column-column filter predicates are
    # rare in analytical tasks and quadratically inflate the domain on wide
    # joins; enable them explicitly when a task needs one.
    filter_col_pairs: bool = False

    # --- abstraction knobs (ablations) --------------------------------------
    target_refinement: bool = True  # agg-column-aware provenance abstraction
    shape_precheck: bool = True     # demo-structure skeleton precheck
    value_shadow: bool = True       # value check on complete demo cells
    head_typing: bool = True        # producer-kind check on demo cells

    def __post_init__(self) -> None:
        unknown = set(self.operator_pool) - set(ALL_OPERATORS)
        if unknown:
            raise ValueError(f"unknown operators in pool: {sorted(unknown)}")
        if self.max_operators < 1:
            raise ValueError("max_operators must be >= 1")
        if self.top_n < 1:
            raise ValueError("top_n must be >= 1")
        if self.strategy not in ("sized_dfs", "bfs", "dfs"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        from repro.engine.base import BACKENDS

        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.shard_strategy not in ("cost_rr", "round_robin", "chunk"):
            raise ValueError(f"unknown shard_strategy {self.shard_strategy!r}")
        if self.parallel_executor not in ("process", "thread", "serial"):
            raise ValueError(
                f"unknown parallel_executor {self.parallel_executor!r}")
        if self.shm not in ("auto", "on", "off"):
            raise ValueError(f"unknown shm mode {self.shm!r}")
        if self.workers > 1 and self.strategy != "sized_dfs":
            # Sharded search relies on the lane-per-cycle structure of the
            # sized_dfs worklist; the FIFO strategies share one global queue
            # and cannot be partitioned without changing the search order.
            raise ValueError("workers > 1 requires strategy='sized_dfs'")

    def replace(self, **kwargs) -> "SynthesisConfig":
        from dataclasses import replace as dc_replace
        return dc_replace(self, **kwargs)

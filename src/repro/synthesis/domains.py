"""Hole-domain inference (Alg. 1, line 16).

Given a partial query and the position of its next hole, enumerate the
candidate values.  Holes are filled post-order, so the node's child is
always concrete by the time its parameters are inferred — the child's
concrete output supplies the column count and coarse column types.

Paper-faithful restrictions (§5.1):

* join predicates come only from declared primary/foreign keys (with a
  same-name-and-type fallback when a task declares no keys);
* filter constants are only those provided by the user (``config.constants``);
* aggregation functions must be type-compatible with their column
  (``count`` accepts anything, the numeric aggregates need numbers).

Demonstration-guided candidate ordering
---------------------------------------
Domains are *ordered*, and depth-first lanes explore candidates in domain
order, so informative orderings shorten the path to the solution without
changing the search space.  The demonstration pins down likely parameters:

* a demo column whose cells are plain input references is a group-key
  column the user demonstrated (footnote 1: any member of a collapsed
  group), so key subsets covering those columns are tried first;
* a demo cell headed by an aggregate points at the columns its references
  live in — those columns are tried first as aggregation targets.

The ordering is deterministic and identical for every abstraction technique
(the paper's same-search-order requirement, §5.1).
"""

from __future__ import annotations

from itertools import combinations, permutations

from repro.errors import SynthesisError
from repro.lang import ast
from repro.lang.functions import analytic_spec, function_spec
from repro.lang.holes import HolePosition, node_at
from repro.lang.predicates import ColCmp, ConstCmp
from repro.provenance.demo import Demonstration
from repro.provenance.expr import CellRef, FuncApp
from repro.provenance.refs import refs_of
from repro.synthesis.config import SynthesisConfig
from repro.table.table import Table
from repro.table.values import value_type


def hole_domain(query: ast.Query, position: HolePosition, env: ast.Env,
                config: SynthesisConfig,
                demo: Demonstration | None = None,
                engine=None) -> list:
    """Candidate values for the hole at ``position``.

    Concrete children are evaluated through ``engine`` (the synthesis
    session's engine, so the enumerator's subtree caches are reused); a
    transient engine is created when none is supplied.
    """
    if engine is None:
        from repro.engine.row import RowEngine
        engine = RowEngine()
    path, field = position
    node = node_at(query, path)

    if isinstance(node, (ast.Group, ast.Partition)):
        child = node.child_queries()[0]
        child_out = engine.evaluate(child, env)
        if field == "keys":
            domain = _key_domains(child_out, config)
            return _order_keys(domain, child, env, demo, engine)
        if field == "agg_col":
            domain = _agg_col_domain(node, child_out)
            return _order_agg_cols(domain, child, env, demo, engine)
        if field == "agg_func":
            return _agg_func_domain(node, child_out, config)

    if isinstance(node, ast.Arithmetic):
        child_out = engine.evaluate(node.child_queries()[0], env)
        if field == "cols":
            return _arith_cols_domain(child_out)
        if field == "func":
            return _arith_func_domain(node, config)

    if isinstance(node, ast.Filter) and field == "pred":
        child_out = engine.evaluate(node.child_queries()[0], env)
        return _filter_pred_domain(child_out, config)

    if isinstance(node, (ast.Join, ast.LeftJoin)) and field == "pred":
        return _join_pred_domain(node, env)

    if isinstance(node, ast.Sort):
        child_out = engine.evaluate(node.child_queries()[0], env)
        if field == "cols":
            return _sort_cols_domain(child_out, config)
        if field == "ascending":
            return [True, False]

    if isinstance(node, ast.Proj) and field == "cols":
        child_out = engine.evaluate(node.child_queries()[0], env)
        return [tuple(c) for size in range(1, child_out.n_cols + 1)
                for c in combinations(range(child_out.n_cols), size)]

    raise SynthesisError(
        f"no domain rule for hole {field!r} of {type(node).__name__}")


def _numeric_cols(table: Table) -> list[int]:
    return [j for j in range(table.n_cols)
            if table.schema.types[j] == "number"]


def _child_column_refs(child: ast.Query, env: ast.Env, engine):
    """Per-column input-cell reference sets of a concrete child's output."""
    tracked = engine.evaluate_tracking(child, env)
    return [frozenset().union(*(refs_of(tracked.exprs[i][c])
                                for i in range(tracked.n_rows)))
            if tracked.n_rows else frozenset()
            for c in range(tracked.n_cols)]


def _suggested_key_cols(child: ast.Query, env: ast.Env,
                        demo: Demonstration, engine) -> frozenset[int]:
    """Child columns that plain-reference demo columns point at."""
    col_refs = _child_column_refs(child, env, engine)
    suggested = set()
    for j in range(demo.n_cols):
        cells = [demo.cell(i, j) for i in range(demo.n_rows)]
        if not all(isinstance(c, CellRef) for c in cells):
            continue
        needed = frozenset(cells)
        for c, refs in enumerate(col_refs):
            if needed <= refs:
                suggested.add(c)
    return frozenset(suggested)


def _order_keys(domain: list[tuple[int, ...]], child: ast.Query,
                env: ast.Env, demo: Demonstration | None, engine) -> list:
    if demo is None:
        return domain
    suggested = _suggested_key_cols(child, env, demo, engine)
    if not suggested:
        return domain
    return sorted(domain, key=lambda keys: (-len(suggested & set(keys)),
                                            len(keys)))


def _suggested_agg_cols(child: ast.Query, env: ast.Env,
                        demo: Demonstration, engine) -> frozenset[int]:
    """Child columns whose refs cover an aggregate-headed demo cell."""
    col_refs = _child_column_refs(child, env, engine)
    suggested = set()
    for row in demo.cells:
        for cell in row:
            if not isinstance(cell, FuncApp):
                continue
            needed = refs_of(cell)
            for c, refs in enumerate(col_refs):
                if needed and needed <= refs:
                    suggested.add(c)
    return frozenset(suggested)


def _order_agg_cols(domain: list[int], child: ast.Query, env: ast.Env,
                    demo: Demonstration | None, engine) -> list[int]:
    if demo is None:
        return domain
    suggested = _suggested_agg_cols(child, env, demo, engine)
    if not suggested:
        return domain
    return sorted(domain, key=lambda c: (c not in suggested, c))


def _key_domains(child: Table, config: SynthesisConfig) -> list[tuple[int, ...]]:
    domains: list[tuple[int, ...]] = []
    if config.allow_empty_keys:
        domains.append(())
    # Keep at least one non-key column: the aggregate needs a target.
    max_keys = min(config.max_key_cols, max(child.n_cols - 1, 0))
    for size in range(1, max_keys + 1):
        domains.extend(combinations(range(child.n_cols), size))
    return domains


def _agg_col_domain(node, child: Table) -> list[int]:
    keys = node.keys if isinstance(node.keys, tuple) else ()
    return [c for c in range(child.n_cols) if c not in keys]


def _agg_func_domain(node, child: Table, config: SynthesisConfig) -> list[str]:
    numeric = isinstance(node.agg_col, int) and \
        child.schema.types[node.agg_col] == "number"
    if isinstance(node, ast.Partition):
        pool = config.analytic_functions
        return [f for f in pool
                if f == "count" or (numeric and _analytic_known(f))]
    pool = config.aggregate_functions
    return [f for f in pool if f == "count" or numeric]


def _analytic_known(name: str) -> bool:
    try:
        analytic_spec(name)
        return True
    except Exception:
        return False


def _arith_cols_domain(child: Table) -> list[tuple[int, ...]]:
    numeric = _numeric_cols(child)
    return [pair for pair in permutations(numeric, 2)]


def _arith_func_domain(node, config: SynthesisConfig) -> list[str]:
    cols = node.cols
    if not isinstance(cols, tuple) or len(cols) != 2:
        return list(config.arithmetic_functions)
    # (j, i) with j > i would re-create the commutative results of (i, j);
    # only non-commutative functions get the swapped pair.
    if cols[0] > cols[1]:
        return [f for f in config.arithmetic_functions
                if not function_spec(f).commutative]
    return list(config.arithmetic_functions)


def _filter_pred_domain(child: Table, config: SynthesisConfig) -> list:
    preds: list = []
    types = child.schema.types
    if config.filter_col_pairs:
        for i, j in combinations(range(child.n_cols), 2):
            if types[i] != types[j] or types[i] not in ("number", "string"):
                continue
            ops = config.comparison_ops if types[i] == "number" else ("==",)
            preds.extend(ColCmp(i, op, j) for op in ops)
    for c in range(child.n_cols):
        for const in config.constants:
            if value_type(const) != types[c]:
                continue
            ops = config.comparison_ops if types[c] == "number" else ("==",)
            preds.extend(ConstCmp(c, op, const) for op in ops)
    return preds


def _column_origins(query: ast.Query, env: ast.Env) -> list[tuple[str, str]]:
    """(table name, column name) of every output column of a join tree."""
    if isinstance(query, ast.TableRef):
        table = env.get(query.name)
        return [(query.name, c) for c in table.columns]
    if isinstance(query, (ast.Join, ast.LeftJoin)):
        return (_column_origins(query.left, env)
                + _column_origins(query.right, env))
    raise SynthesisError(
        "join predicates are only inferred over join trees of base tables")


def _join_pred_domain(node, env: ast.Env) -> list:
    left_origins = _column_origins(node.left, env)
    right_origins = _column_origins(node.right, env)
    offset = len(left_origins)

    def fk_links(table_a: str, col_a: str, table_b: str, col_b: str) -> bool:
        for fk in env.get(table_a).schema.foreign_keys:
            if fk.column == col_a and fk.ref_table == table_b \
                    and fk.ref_column == col_b:
                return True
        return False

    preds: list = []
    for li, (lt, lc) in enumerate(left_origins):
        for ri, (rt, rc) in enumerate(right_origins):
            if fk_links(lt, lc, rt, rc) or fk_links(rt, rc, lt, lc):
                preds.append(ColCmp(li, "==", offset + ri))
    if preds:
        return preds
    # Fallback: same column name and type (tasks without key metadata).
    for li, (lt, lc) in enumerate(left_origins):
        for ri, (rt, rc) in enumerate(right_origins):
            if lc != rc:
                continue
            lt_type = env.get(lt).schema.type_of(lc)
            rt_type = env.get(rt).schema.type_of(rc)
            if lt_type == rt_type:
                preds.append(ColCmp(li, "==", offset + ri))
    return preds


def _sort_cols_domain(child: Table, config: SynthesisConfig) -> list[tuple[int, ...]]:
    sortable = [c for c in range(child.n_cols)
                if child.schema.types[c] in ("number", "string")]
    domains: list[tuple[int, ...]] = [(c,) for c in sortable]
    if config.max_sort_cols >= 2:
        domains.extend(permutations(sortable, 2))
    return domains

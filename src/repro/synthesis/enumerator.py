"""The enumerative search loop (paper Algorithm 1).

Breadth-first over a worklist seeded with skeletons: concrete queries are
checked against the demonstration under the provenance-tracking semantics
(``E ≺ [[q(T̄)]]★``); partial queries are screened by the pluggable
abstraction and pruned when no instantiation can realize the demonstration.

The loop exposes the counters the paper's evaluation reports: queries
visited (partial + concrete), queries pruned, concrete consistency checks,
and wall-clock time.  An optional ``stop_predicate`` reproduces the
experiment mode ("the synthesizer runs until the correct query q_gt is
found").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, fields
from collections.abc import Callable

from repro.abstraction.base import Abstraction
from repro.engine.base import EvalEngine
from repro.lang import ast
from repro.lang.holes import fill, first_hole, is_concrete
from repro.lang.size import operator_count
from repro.provenance.demo import Demonstration
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.domains import hole_domain
from repro.synthesis.shape import shape_feasible


class _Worklist:
    """The search frontier under one of three exploration strategies.

    Filling a hole never changes a query's operator count, so every item
    keeps the size computed for its skeleton.

    ``sized_dfs`` (default) gives each skeleton its own *lane* (a stack) and
    pops round-robin across all live lanes, with lanes kept in skeleton-size
    order inside each cycle.  Every skeleton makes progress concurrently —
    a sibling skeleton's huge subspace can never starve the one containing
    the solution — small skeletons (which exhaust or die quickly) still
    dominate early, and within a lane the search is depth-first, reaching
    concrete candidates without materializing the breadth-first frontier,
    which is impractical at pure-Python speeds.
    """

    def __init__(self, strategy: str) -> None:
        self.strategy = strategy
        self._fifo: deque[tuple[int, int, ast.Query]] = deque()
        self._stacks: dict[int, list[ast.Query]] = {}  # lane id -> stack
        self._order: list[int] = []                    # live lanes, size order
        self._rr = 0
        self._count = 0
        self._next_lane = 0

    def add_lane(self, query: ast.Query, size: int) -> int:
        """Seed a new lane (one per skeleton); returns the lane id.

        Lanes must be added in skeleton-size order (construct_skeletons
        already emits smallest-first), which keeps each round-robin cycle
        visiting small skeletons before large ones.
        """
        lane_id = self._next_lane
        self._next_lane += 1
        if self.strategy in ("bfs", "dfs"):
            self._fifo.append((size, lane_id, query))
        else:
            self._stacks[lane_id] = [query]
            self._order.append(lane_id)
            self._count += 1
        return lane_id

    def push(self, query: ast.Query, size: int, lane_id: int) -> None:
        """Push an expansion onto its parent's lane."""
        if self.strategy == "bfs":
            self._fifo.append((size, lane_id, query))
        elif self.strategy == "dfs":
            self._fifo.appendleft((size, lane_id, query))
        else:
            self._stacks[lane_id].append(query)
            self._count += 1

    def pop(self) -> tuple[int, int, ast.Query]:
        if self.strategy in ("bfs", "dfs"):
            try:
                return self._fifo.popleft()
            except IndexError:
                raise IndexError("pop from an empty worklist") from None
        if not self._order:
            raise IndexError("pop from an empty worklist")
        idx = self._rr % len(self._order)
        # Drop exhausted lanes as they are encountered.  The last live lane
        # can drain mid-scan (e.g. after pushes rescinded by a caller), so
        # every shrink of ``_order`` must re-check before re-indexing —
        # otherwise this loop dies with ZeroDivisionError/KeyError instead
        # of reporting exhaustion.
        while not self._stacks[self._order[idx]]:
            del self._stacks[self._order[idx]]
            self._order.pop(idx)
            if not self._order:
                self._count = 0
                raise IndexError("pop from an empty worklist")
            idx %= len(self._order)
        lane_id = self._order[idx]
        query = self._stacks[lane_id].pop()
        self._count -= 1
        self._rr = (idx + 1) % len(self._order)
        return 0, lane_id, query

    def __bool__(self) -> bool:
        if self.strategy in ("bfs", "dfs"):
            return bool(self._fifo)
        return self._count > 0

    # ---------------------------------------------- checkpoint/resume hooks
    # The methods below exist for :class:`~repro.synthesis.session.
    # SynthesisSession`: a checkpointed search must be serializable and a
    # preempted one re-dispatchable onto sharded workers, which requires
    # aligning the round-robin cursor to a *round boundary* (the worker /
    # replay-merge machinery is round-based; see repro.parallel.merge).

    def purge_drained(self) -> None:
        """Eagerly drop drained ``sized_dfs`` lanes.

        The serial ``pop`` drops a drained lane lazily, on next encounter;
        dropping it early is invisible to the pop sequence (a dead lane
        yields nothing either way), but the cursor must be re-based onto
        the surviving lanes so the next pop lands where it would have.
        """
        if self.strategy != "sized_dfs":
            return
        kept: list[int] = []
        removed_before = 0
        for pos, lane in enumerate(self._order):
            if self._stacks[lane]:
                kept.append(lane)
            else:
                del self._stacks[lane]
                if pos < self._rr:
                    removed_before += 1
        self._order = kept
        self._rr = (self._rr - removed_before) % len(kept) if kept else 0

    def at_round_boundary(self) -> bool:
        """True when the next pop starts a fresh round-robin cycle.

        From a round boundary, the remaining serial visit order is exactly
        "every live lane once per round, lanes in seed order" — the
        premise the sharded workers' round-explicit loop and the replay
        merge are built on, and therefore the only state a partially
        consumed worklist may be dispatched to shard workers from.
        """
        if self.strategy != "sized_dfs":
            return True
        self.purge_drained()
        return self._rr == 0

    def export_lanes(self) -> list[tuple[int, list[ast.Query]]]:
        """Snapshot the live lanes as ``(lane_id, stack)`` pairs, seed order.

        Stacks are copies: the worklist keeps working after a checkpoint,
        and an exported payload crossing a process boundary must not alias
        live state.
        """
        self.purge_drained()
        return [(lane, list(self._stacks[lane])) for lane in self._order]


@dataclass
class SearchStats:
    """Counters mirroring the paper's reported metrics."""

    visited: int = 0             # queries popped (partial + concrete)
    pruned: int = 0              # partial queries rejected by the abstraction
    expanded: int = 0            # partial queries whose holes were branched
    concrete_checked: int = 0    # concrete queries checked under ≺
    consistent_found: int = 0
    elapsed_s: float = 0.0
    timed_out: bool = False
    skeletons: int = 0
    max_skeleton_size: int = 0   # largest skeleton admitted to the worklist

    #: Fields :meth:`merge` combines with max / or instead of summing.
    #: Every other field is a counter — derived from the dataclass fields
    #: below, so a newly added counter can never be dropped from merges.
    MERGE_MAX = ("elapsed_s", "max_skeleton_size")
    MERGE_OR = ("timed_out",)

    def as_dict(self) -> dict:
        return dict(self.__dict__)

    @staticmethod
    def merge(*parts: "SearchStats") -> "SearchStats":
        """Combine shard-local stats: counters sum, depths take the max.

        ``elapsed_s`` is the max because shards run concurrently;
        ``timed_out`` is true when any shard expired.  ``merge()`` of no
        parts is the zero element.
        """
        merged = SearchStats()
        for part in parts:
            for counter in SearchStats.COUNTERS:
                setattr(merged, counter,
                        getattr(merged, counter) + getattr(part, counter))
            for name in SearchStats.MERGE_MAX:
                setattr(merged, name,
                        max(getattr(merged, name), getattr(part, name)))
            for name in SearchStats.MERGE_OR:
                setattr(merged, name,
                        getattr(merged, name) or getattr(part, name))
        return merged


#: Counters = every stats field without explicit max/or merge semantics.
SearchStats.COUNTERS = tuple(
    f.name for f in fields(SearchStats)
    if f.name not in SearchStats.MERGE_MAX + SearchStats.MERGE_OR)


@dataclass
class SynthesisResult:
    """Outcome of one search run."""

    queries: list[ast.Query] = field(default_factory=list)  # discovery order
    stats: SearchStats = field(default_factory=SearchStats)
    target: ast.Query | None = None      # query that fired stop_predicate
    target_rank: int | None = None       # 1-based discovery rank of target
    workers: int = 1                     # shards searched concurrently
    engine_stats: object | None = None   # EngineStats (merged across workers)
    # Total work actually performed across shards (parallel runs only):
    # ``SearchStats.merge`` of the per-shard raw stats.  Shards overshoot
    # the serial stopping point, so this is >= ``stats``; the difference is
    # the price paid for the wall-clock win.
    raw_stats: SearchStats | None = None

    @property
    def solved(self) -> bool:
        return self.target is not None


# Per-pop outcomes of :func:`process_pop` — shared by the serial loop below
# and the shard workers (:mod:`repro.parallel.worker`), so Algorithm 1's pop
# semantics (classification order, counter increments, the ≺ check's
# exception set, hole-domain order) live in exactly one place and the
# sharded search cannot drift from the serial one.
POP_PRUNED = "pruned"              # rejected by the abstraction
POP_EXPANDED = "expanded"          # partial; holes branched
POP_INCONSISTENT = "inconsistent"  # concrete; failed the ≺ check
POP_CONSISTENT = "consistent"      # concrete; a solution candidate

#: Largest fully-instantiated sibling family batch-warmed through
#: ``evaluate_tracking_many`` at expansion time.  Covers the common
#: aggregation/arithmetic/predicate families while keeping the eager work
#: per pop bounded (an early stop may never pop an oversized family).
TRACKING_WARM_LIMIT = 64


def admit_skeleton(skeleton: ast.Query, demo: Demonstration,
                   config: SynthesisConfig, stats: SearchStats) -> int | None:
    """Shape-precheck one skeleton before it seeds a lane.

    Returns the skeleton's operator count when admitted (updating the
    max-depth stat), or ``None`` when the precheck rejects it (counted as a
    visited-and-pruned query, exactly as the serial loop always has).
    Shared with the shard workers so seeding semantics cannot drift.
    """
    if config.shape_precheck and not shape_feasible(skeleton, demo):
        stats.visited += 1
        stats.pruned += 1
        return None
    size = operator_count(skeleton)
    if size > stats.max_skeleton_size:
        stats.max_skeleton_size = size
    return size


def process_pop(query: ast.Query, env: ast.Env, demo: Demonstration,
                config: SynthesisConfig, abstraction: Abstraction,
                engine: EvalEngine, stats: SearchStats):
    """Process one popped query: classify it and update the counters.

    Returns ``(outcome, expansions)``; ``expansions`` holds the hole
    instantiations in canonical domain order when the query was expanded
    (the caller owns push order — LIFO lanes push them reversed), and is
    empty otherwise.
    """
    stats.visited += 1
    if is_concrete(query):
        stats.concrete_checked += 1
        # ``E ≺ [[q(T̄)]]★`` through the engine-owned incremental checker:
        # ill-typed candidates (domain inference cannot see e.g. NULL-
        # producing division statically) evaluate to errors and are simply
        # not solutions; the checker maps them to False.
        if engine.consistency.demo_consistent(query, env, demo):
            stats.consistent_found += 1
            return POP_CONSISTENT, ()
        return POP_INCONSISTENT, ()
    if not abstraction.feasible(query, env, demo):
        stats.pruned += 1
        return POP_PRUNED, ()
    position = first_hole(query)
    assert position is not None  # query is partial here
    stats.expanded += 1
    domain = hole_domain(query, position, env, config, demo, engine)
    expansions = tuple(fill(query, position, value) for value in domain)
    if expansions and len(expansions) <= TRACKING_WARM_LIMIT \
            and is_concrete(expansions[0]):
        # The filled hole was the last one, so *every* sibling is concrete
        # (they differ only in the filled value) and each will face the ≺
        # check when popped.  Run the whole family through the batched
        # tracking + consistency pipeline now: dispatch, hole checks, the
        # shared evaluation prefix AND the shared column match state are
        # paid once (siblings share all but one output column, so each
        # additional sibling matches exactly one new column); every later
        # pop is then a verdict-cache hit.  Ill-typed siblings get a False
        # verdict exactly as the per-pop check would give them.  Oversized
        # families (e.g. the exponential proj-columns domain) are left to
        # per-pop checking: an early stop or budget expiry may never pop
        # most of them, and the batch runs between deadline checks.
        engine.consistency.demo_consistent_many(expansions, env, demo)
    return POP_EXPANDED, expansions


def enumerate_queries(
        env: ast.Env,
        demo: Demonstration,
        config: SynthesisConfig,
        abstraction: Abstraction,
        stop_predicate: Callable[[ast.Query], bool] | None = None,
        engine: EvalEngine | None = None,
) -> SynthesisResult:
    """Run Algorithm 1 (one uninterrupted session).

    Without ``stop_predicate``, the search stops after ``config.top_n``
    consistent queries (the tool's interactive mode).  With it, the search
    runs until a consistent query satisfies the predicate (the experiment
    mode) or the budget expires.

    All evaluation goes through ``engine`` (built from ``config.backend``
    when not supplied); the abstraction is bound to the same engine so the
    whole run shares one set of subtree caches.

    The loop itself lives in :class:`~repro.synthesis.session.
    SynthesisSession`; this wrapper drives a session to completion in one
    unbounded ``step`` — the anchor of the determinism pledge (a stepped /
    checkpointed / resumed session must match this, byte for byte).
    Queries come back in discovery order, exactly as the classic loop
    yielded them; recorded ``engine_stats`` cover this run's traffic only
    (a snapshot: later runs on a shared engine must not make it drift).
    """
    from repro.synthesis.session import SynthesisSession

    session = SynthesisSession(env, demo, config, abstraction=abstraction,
                               stop=stop_predicate)
    if engine is not None:
        session.attach_engine(engine, abstraction)
    session.step()
    return session.result(ranked=False)

"""Output equivalence between a candidate and the ground-truth query.

The experiment runner needs to decide when "the correct query q_gt is found"
(§5.2).  Literal AST equality is too strict — key order, benign extra
columns and column order all vary between equivalent formulations — so we
compare *outputs*: the candidate is accepted when there is an injective
mapping of the ground truth's output columns into the candidate's under
which the row bags coincide.  This is the same subtable view that the
consistency criteria take of demonstrations.
"""

from __future__ import annotations

from collections import Counter

from repro.lang.ast import Env, Query
from repro.semantics import concrete
from repro.table.table import Table
from repro.table.values import canonical


def tables_equivalent(reference: Table, candidate: Table) -> bool:
    """Injective column embedding of ``reference`` preserving row bags."""
    if candidate.n_rows != reference.n_rows:
        return False
    if candidate.n_cols < reference.n_cols:
        return False

    ref_cols = [Counter(canonical(v) for v in reference.column_values(j))
                for j in range(reference.n_cols)]
    cand_cols = [Counter(canonical(v) for v in candidate.column_values(j))
                 for j in range(candidate.n_cols)]
    candidates = [[c for c, counter in enumerate(cand_cols)
                   if counter == ref_cols[j]]
                  for j in range(reference.n_cols)]
    if any(not options for options in candidates):
        return False

    assignment: list[int] = []

    def bags_equal() -> bool:
        ref_bag = Counter(tuple(canonical(v) for v in row)
                          for row in reference.rows)
        cand_bag = Counter(tuple(canonical(row[c]) for c in assignment)
                           for row in candidate.rows)
        return ref_bag == cand_bag

    def assign(j: int) -> bool:
        if j == reference.n_cols:
            return bags_equal()
        for c in candidates[j]:
            if c in assignment:
                continue
            assignment.append(c)
            if assign(j + 1):
                return True
            assignment.pop()
        return False

    return assign(0)


def same_output(candidate: Query, ground_truth: Query, env: Env,
                engine=None) -> bool:
    """True when the candidate reproduces the ground truth's output.

    Pass the synthesis session's engine to reuse its subtree caches (the
    experiment runner checks every consistent query against q_gt).
    """
    evaluate = concrete.evaluate if engine is None else engine.evaluate
    try:
        cand_out = evaluate(candidate, env)
    except (TypeError, ValueError, ZeroDivisionError):
        return False
    gt_out = evaluate(ground_truth, env)
    return tables_equivalent(gt_out, cand_out)

"""Ranking of consistent queries (paper §5.1–5.2).

Sickle ranks by query size; within a size class, discovery order is kept
(breadth-first search already finds smaller queries first, so the two
criteria agree — the stable sort below preserves that).
"""

from __future__ import annotations

from repro.lang.ast import Query
from repro.lang.size import operator_count


def rank_queries(queries: list[Query]) -> list[Query]:
    """Discovery-ordered queries → rank order (size, then discovery)."""
    return sorted(queries, key=operator_count)


def rank_of(queries: list[Query], target: Query) -> int | None:
    """1-based rank of ``target`` among the ranked queries."""
    ranked = rank_queries(queries)
    for i, q in enumerate(ranked, start=1):
        if q == target:
            return i
    return None

"""Resumable synthesis sessions: first-class, picklable search state.

A :class:`SynthesisSession` turns Algorithm 1 from a closure over the
runner into an object owning the whole search state — the ``sized_dfs``
worklist lanes, :class:`~repro.synthesis.enumerator.SearchStats`, the
consistent queries found so far and the engine/abstraction handles — with
a small lifecycle API:

``start()``
    Seed the skeleton lanes (idempotent; ``step`` auto-starts).
``step(max_pops=..., timeout_s=...)``
    Advance the serial search loop by a bounded slice and report the
    consistent queries it surfaced.  A session driven to completion in one
    unbounded ``step()`` visits byte-for-byte the sequence the classic
    serial loop visits — same ranked queries, same ``SearchStats``.
``checkpoint() / resume(blob)``
    Snapshot the session to bytes / rebuild it anywhere.  Checkpointing is
    side-effect free: the live session keeps stepping and its counters are
    not perturbed (see the engine-stats accounting below).  Evaluation
    caches are deliberately *not* part of a checkpoint — they trade time,
    never results, so a resumed session recomputes them and still produces
    byte-identical ranked queries and search counters.
``run()``
    Drive to completion.  With ``config.workers > 1`` the remaining work
    is dispatched to the sharded search (:mod:`repro.parallel`): a fresh
    session takes the classic shard-plan path, a partially stepped one is
    first aligned to a worklist *round boundary* (the round-based replay
    merge's precondition) and its live lanes are re-dispatched with their
    current stacks.  Either way the result is byte-identical to the serial
    run — the determinism pledge survives preemption.
``cancel()``
    Stop at the next pop; propagated to in-flight shard workers through
    the executor's shared cancel token.

Engine accounting.  A session evaluates through whatever engine is
attached (:meth:`attach_engine`) — its own fresh one by default, or a
*warm* engine handed over by a :mod:`repro.serve` pool worker.  Because a
warm engine's lifetime counters include other sessions' traffic, the
session records a baseline snapshot at attach time and reports only the
delta, folding it into an accumulated base whenever the engine is swapped
(re-dispatch onto another worker) or the session is checkpointed.  The
fold at checkpoint time happens in the *blob*, never in the live session —
taking a checkpoint twice, or continuing after one, can therefore never
double-count ``EngineStats`` counters such as ``consistency_checks``.
"""

from __future__ import annotations

import pickle
from collections.abc import Sequence

from dataclasses import dataclass, field

from repro.abstraction.base import Abstraction
from repro.engine.base import EngineStats, EvalEngine, make_engine
from repro.lang import ast
from repro.provenance.demo import Demonstration
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.enumerator import (
    POP_CONSISTENT,
    POP_EXPANDED,
    SearchStats,
    SynthesisResult,
    _Worklist,
    admit_skeleton,
    process_pop,
)
from repro.synthesis.ranking import rank_queries
from repro.synthesis.skeletons import construct_skeletons
from repro.synthesis.stop import StopSpec, as_stop_spec
from repro.table.table import Table
from repro.util.timer import Deadline, Stopwatch

#: Checkpoint format version; bumped whenever the pickled state layout
#: changes so a stale blob fails loudly instead of resuming garbage.
CHECKPOINT_VERSION = 1

#: Session lifecycle phases.
NEW = "new"          # constructed; lanes not seeded yet
ACTIVE = "active"    # lanes seeded, work remaining
DONE = "done"        # search ended (target / top_n / exhausted / budget)


@dataclass
class StepReport:
    """What one ``step`` slice accomplished."""

    pops: int                        # queries popped during this slice
    new_queries: list = field(default_factory=list)  # consistent, this slice
    done: bool = False               # no further stepping possible
    status: str = ACTIVE             # "new" | "active" | "done" | "cancelled"


class SynthesisSession:
    """One synthesis request as a resumable object; see the module doc."""

    def __init__(self, tables: Sequence[Table] | ast.Env,
                 demo: Demonstration,
                 config: SynthesisConfig | None = None,
                 abstraction: str | Abstraction = "provenance",
                 stop: StopSpec | None = None) -> None:
        self.env = tables if isinstance(tables, ast.Env) \
            else ast.Env(tuple(tables))
        self.demo = demo
        self.config = config or SynthesisConfig()
        #: Technique name when known — required for checkpoint/resume and
        #: for sharded dispatch (workers rebuild the abstraction from it).
        self.abstraction_spec = abstraction \
            if isinstance(abstraction, str) else None
        self.stop_spec = as_stop_spec(stop)
        self.stats = SearchStats()
        self._phase = NEW
        self._cancelled = False
        self._queries: list[ast.Query] = []      # discovery order
        self._target: ast.Query | None = None
        self._target_rank: int | None = None
        self._worklist: _Worklist | None = None
        self._elapsed = 0.0                      # accumulated across slices
        self._engine_base = EngineStats()        # folded ex-engine traffic
        self._raw_stats: SearchStats | None = None   # sharded-dispatch raw
        self._workers_used = 1
        # Runtime handles — rebuilt on demand, never pickled.
        self._engine: EvalEngine | None = None
        self._engine_mark = EngineStats()        # baseline at attach time
        self._abstraction: Abstraction | None = None \
            if isinstance(abstraction, str) else abstraction
        self._stop_built = None
        self._live_cancel = None                 # shard cancel token, if any
        self._cancel_probe = None                # external cancel flag, if any
        self._pop_hook = None                    # per-pop callback, if any

    # ------------------------------------------------------------ lifecycle
    @property
    def status(self) -> str:
        return "cancelled" if self._cancelled else self._phase

    @property
    def done(self) -> bool:
        return self._cancelled or self._phase == DONE

    def start(self) -> None:
        """Seed the skeleton lanes (idempotent)."""
        if self._phase != NEW:
            return
        watch = Stopwatch()
        self._worklist = _Worklist(self.config.strategy)
        skeletons = construct_skeletons(self.env, self.config)
        self.stats.skeletons = len(skeletons)
        for skeleton in skeletons:
            size = admit_skeleton(skeleton, self.demo, self.config,
                                  self.stats)
            if size is not None:
                self._worklist.add_lane(skeleton, size)
        self._phase = ACTIVE if self._worklist else DONE
        if self._phase == DONE:
            self._worklist = None
        self._elapsed += watch.elapsed()

    def step(self, max_pops: int | None = None,
             timeout_s: float | None = None) -> StepReport:
        """Advance the serial loop by at most ``max_pops`` pops.

        ``timeout_s`` bounds this slice's wall clock (preemption — the
        session stays resumable); the *run-wide* ``config.timeout_s`` and
        ``config.max_visited`` budgets keep their classic semantics and
        end the search with ``timed_out`` exactly as the one-shot loop
        does.  With neither bound, one call drives the session to
        completion — byte-identical to the classic serial run.
        """
        if self._cancelled:
            return StepReport(0, [], True, self.status)
        if self._phase == NEW:
            self.start()
        if self._phase == DONE:
            return StepReport(0, [], True, self.status)
        watch = Stopwatch()
        cfg = self.config
        budget = self._remaining_deadline()
        slice_deadline = Deadline(timeout_s)
        self._ensure_runtime()
        engine, abstraction = self._engine, self._abstraction
        stop = self._stop_built
        worklist, stats = self._worklist, self.stats
        probe = self._cancel_probe
        hook = self._pop_hook
        new_queries: list[ast.Query] = []
        pops = 0
        try:
            while worklist:
                # Run-ending checks first, in the serial loop's exact
                # order; the preemption checks below them are invisible to
                # an uninterrupted run.
                if budget.expired():
                    stats.timed_out = True
                    self._finish()
                    break
                if cfg.max_visited is not None \
                        and stats.visited >= cfg.max_visited:
                    stats.timed_out = True
                    self._finish()
                    break
                if probe is not None and probe() and not self._cancelled:
                    self.cancel()
                if self._cancelled:
                    break
                if max_pops is not None and pops >= max_pops:
                    break
                if slice_deadline.expired():
                    break
                size, lane_id, query = worklist.pop()
                pops += 1
                if hook is not None:
                    hook()
                outcome, expansions = process_pop(
                    query, self.env, self.demo, cfg, abstraction, engine,
                    stats)
                if outcome is POP_CONSISTENT:
                    self._queries.append(query)
                    new_queries.append(query)
                    if stop is not None and stop(query):
                        self._target = query
                        self._target_rank = len(self._queries)
                        self._finish()
                        break
                    if stop is None and \
                            stats.consistent_found >= cfg.top_n:
                        self._finish()
                        break
                elif outcome is POP_EXPANDED:
                    # Reversed for LIFO lanes: explored in domain order.
                    if cfg.strategy == "bfs":
                        for expansion in expansions:
                            worklist.push(expansion, size, lane_id)
                    else:
                        for expansion in reversed(expansions):
                            worklist.push(expansion, size, lane_id)
            else:
                self._finish()          # worklist drained
        finally:
            self._elapsed += watch.elapsed()
        return StepReport(pops, new_queries, self.done, self.status)

    def run(self) -> SynthesisResult:
        """Drive the session to completion and return the ranked result.

        ``config.workers > 1`` dispatches the remaining work to the
        sharded search; results are byte-identical to serial whichever
        path executes (and however much of the session was already
        consumed by ``step``).
        """
        if self.done:
            return self.result()
        if self.config.workers > 1:
            if self.abstraction_spec is None:
                raise ValueError(
                    "workers > 1 requires the abstraction to be given by "
                    "name (workers rebuild it per shard); pass e.g. "
                    "'provenance' instead of a pre-built Abstraction "
                    "object")
            if self._phase == NEW:
                self._run_sharded_fresh()
            else:
                self._run_sharded_resume()
        else:
            self.step()
        return self.result()

    def cancel(self) -> None:
        """Stop at the next pop; in-flight shard workers stop with us."""
        self._cancelled = True
        live = self._live_cancel
        if live is not None:
            live.propose(0)

    def set_cancel_probe(self, probe) -> None:
        """Watch an external cancellation flag from inside the step loop.

        ``probe`` is a zero-argument callable polled once per pop; the
        first truthy return behaves exactly like :meth:`cancel`.  This is
        how a process-backed serving worker honors a cancel issued in the
        service process mid-slice: the flag is a shared-memory value the
        service flips, no queue round-trip involved.  Runtime-only state —
        never checkpointed."""
        self._cancel_probe = probe

    def set_pop_hook(self, hook) -> None:
        """Run a zero-argument callable once per pop inside ``step``.

        The hook observes, delays or aborts the loop — it must not touch
        search state (the determinism pledge is not its to spend).  The
        serving tier's fault injector uses it to realize mid-slice
        crashes and hangs at an exact, replayable pop.  Runtime-only
        state — never checkpointed; ``None`` clears it."""
        self._pop_hook = hook

    def _finish(self) -> None:
        self._phase = DONE
        self._worklist = None

    # ------------------------------------------------------------- results
    def result(self, ranked: bool = True) -> SynthesisResult:
        """Snapshot the session outcome (partial while still active)."""
        queries = list(self._queries)
        if ranked:
            queries = rank_queries(queries)
        stats = SearchStats(**self.stats.as_dict())
        stats.elapsed_s = self._elapsed
        raw = self._raw_stats
        return SynthesisResult(
            queries=queries, stats=stats, target=self._target,
            target_rank=self._target_rank, workers=self._workers_used,
            engine_stats=self.engine_stats(),
            raw_stats=SearchStats(**raw.as_dict()) if raw else None)

    def engine_stats(self) -> EngineStats:
        """This session's evaluation traffic: folded base + live delta.

        The live engine's counters are never folded into the base while
        the engine stays attached, so calling this (or ``checkpoint``)
        any number of times cannot double-count.
        """
        if self._engine is None:
            return self._engine_base.snapshot()
        return EngineStats.merge(
            self._engine_base,
            EngineStats.delta(self._engine.stats, self._engine_mark))

    # ------------------------------------------------------------- runtime
    def attach_engine(self, engine: EvalEngine,
                      abstraction: Abstraction | None = None) -> None:
        """Adopt an engine (possibly warm) for subsequent evaluation.

        The outgoing engine's stats delta is folded into the session base
        first, and a baseline snapshot of the incoming engine pins where
        this session's accounting starts — a pool worker can hand the same
        warm engine to many sessions and each reports only its own slice.
        ``abstraction`` supplies a matching pre-built technique instance;
        without one the session builds (or keeps) its own and rebinds it.
        """
        self._fold_engine()
        self._engine = engine
        self._engine_mark = engine.stats.snapshot()
        if abstraction is not None:
            self._abstraction = abstraction
        elif self._abstraction is None:
            from repro.synthesis.synthesizer import build_abstraction
            self._abstraction = build_abstraction(self.abstraction_spec,
                                                  self.config)
        self._abstraction.bind_engine(engine)
        self._stop_built = None

    def _fold_engine(self) -> None:
        if self._engine is not None:
            self._engine_base = EngineStats.merge(
                self._engine_base,
                EngineStats.delta(self._engine.stats, self._engine_mark))
            self._engine = None
            self._engine_mark = EngineStats()
            self._stop_built = None

    def _ensure_runtime(self) -> None:
        if self._engine is None:
            self.attach_engine(make_engine(self.config.backend))
        if self._stop_built is None and self.stop_spec is not None:
            self._stop_built = self.stop_spec.build(self._engine, self.env)

    def _remaining_deadline(self) -> Deadline:
        if self.config.timeout_s is None:
            return Deadline(None)
        return Deadline(max(0.0, self.config.timeout_s - self._elapsed))

    # ------------------------------------------------------------- sharded
    def _export_cancel(self, token) -> None:
        self._live_cancel = token
        if self._cancelled:             # cancel() raced the dispatch
            token.propose(0)

    def _run_sharded_fresh(self) -> None:
        from repro.parallel import parallel_enumerate

        watch = Stopwatch()
        try:
            result = parallel_enumerate(
                self.env, self.demo, self.config, self.abstraction_spec,
                self.stop_spec, cancel_export=self._export_cancel)
        finally:
            self._live_cancel = None
            self._elapsed += watch.elapsed()
        self._adopt_sharded(result, result.raw_stats)

    def _run_sharded_resume(self) -> None:
        """Re-dispatch a partially stepped session onto shard workers.

        The replay merge is round-based, so the worklist is first driven
        (serially) to a round boundary; the live lanes then ship with
        their current stacks and the merge replays the continuation as if
        the serial loop had never paused.
        """
        # A zero-pop step performs exactly the serial pre-pop budget
        # checks, so an already-exhausted budget ends the session here
        # the same way the serial loop would — before any dispatch.
        self.step(max_pops=0)
        while not self.done and not self._worklist.at_round_boundary():
            self.step(max_pops=1)
        if self.done:
            return
        lanes = self._worklist.export_lanes()
        if not lanes:
            self._finish()
            return
        from repro.parallel.coordinator import parallel_resume

        pre = SearchStats(**self.stats.as_dict())
        base = SynthesisResult(queries=self._queries, stats=self.stats)
        watch = Stopwatch()
        try:
            result = parallel_resume(
                lanes, self.env, self.demo, self.config,
                self._remaining_config(), self.abstraction_spec,
                self.stop_spec, base, cancel_export=self._export_cancel)
        finally:
            self._live_cancel = None
            self._elapsed += watch.elapsed()
        self._adopt_sharded(result,
                            SearchStats.merge(pre, result.raw_stats))

    def _adopt_sharded(self, result: SynthesisResult,
                       raw: SearchStats | None) -> None:
        self.stats = result.stats
        self._queries = list(result.queries)
        self._target = result.target
        self._target_rank = result.target_rank
        self._raw_stats = raw
        self._engine_base = EngineStats.merge(self._engine_base,
                                              result.engine_stats)
        self._workers_used = self.config.workers
        self._finish()

    def _remaining_config(self) -> SynthesisConfig:
        """Budgets left for the shard workers (worker-local counters start
        at zero, so run-wide budgets ship as their unconsumed remainder;
        the replay merge still cuts off against the *original* config and
        the cumulative counters)."""
        cfg = self.config
        overrides: dict = {}
        if cfg.timeout_s is not None:
            overrides["timeout_s"] = max(0.0, cfg.timeout_s - self._elapsed)
        if cfg.max_visited is not None:
            overrides["max_visited"] = max(
                1, cfg.max_visited - self.stats.visited)
        if self.stop_spec is None:
            overrides["top_n"] = max(
                1, cfg.top_n - self.stats.consistent_found)
        return cfg.replace(**overrides) if overrides else cfg

    # -------------------------------------------------- checkpoint / resume
    def checkpoint(self, strip_env: bool = False) -> bytes:
        """Serialize the session to a resumable blob (side-effect free).

        ``strip_env=True`` omits the input environment from the blob —
        the dispatch mode of the process-backed serving tier, which ships
        the tables once through the shared-memory column store
        (:class:`~repro.engine.shm.EnvHandle`) instead of pickling them
        into every request blob.  A stripped blob must be resumed with
        ``resume(blob, env=...)`` supplying an ``==``-identical
        environment (an shm-attached one qualifies: the codecs are exact).
        """
        if not strip_env:
            return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        state = self.__getstate__()
        state["env"] = None
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def resume(blob: bytes, env: ast.Env | None = None) -> "SynthesisSession":
        """Rebuild a session from :meth:`checkpoint` output.

        The resumed session owns no engine yet — the next ``step`` builds
        a fresh one, or a pool worker attaches a warm one.  ``env``
        re-attaches the environment of an env-stripped blob (and must
        compare equal to the original; engine and plan-cache keys are
        equality-based, so an equal environment preserves byte-identical
        results).
        """
        loaded = pickle.loads(blob)
        if isinstance(loaded, dict):
            session = SynthesisSession.__new__(SynthesisSession)
            session.__setstate__(loaded)
        elif isinstance(loaded, SynthesisSession):
            session = loaded
        else:
            raise TypeError(
                f"not a SynthesisSession checkpoint: {type(loaded).__name__}")
        if session.env is None:
            if env is None:
                raise ValueError(
                    "checkpoint was taken with strip_env=True; resume() "
                    "needs the env= argument to re-attach the tables")
            session.env = env
        return session

    def __getstate__(self):
        if self.abstraction_spec is None:
            raise TypeError(
                "a SynthesisSession built around a pre-built Abstraction "
                "object cannot be pickled/checkpointed — construct it with "
                "the technique name (e.g. 'provenance') so workers can "
                "rebuild the abstraction")
        return {
            "version": CHECKPOINT_VERSION,
            "env": self.env,
            "demo": self.demo,
            "config": self.config,
            "abstraction_spec": self.abstraction_spec,
            "stop_spec": self.stop_spec,
            "phase": self._phase,
            "cancelled": self._cancelled,
            "worklist": self._worklist,
            "stats": self.stats,
            "queries": self._queries,
            "target": self._target,
            "target_rank": self._target_rank,
            "elapsed": self._elapsed,
            # Folded into the blob only — the live session's base/mark
            # stay untouched, which is what makes checkpoint idempotent.
            "engine_base": self.engine_stats(),
            "raw_stats": self._raw_stats,
            "workers_used": self._workers_used,
        }

    def __setstate__(self, state) -> None:
        version = state.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported SynthesisSession checkpoint version "
                f"{version!r} (expected {CHECKPOINT_VERSION})")
        self.env = state["env"]
        self.demo = state["demo"]
        self.config = state["config"]
        self.abstraction_spec = state["abstraction_spec"]
        self.stop_spec = state["stop_spec"]
        self._phase = state["phase"]
        self._cancelled = state["cancelled"]
        self._worklist = state["worklist"]
        self.stats = state["stats"]
        self._queries = state["queries"]
        self._target = state["target"]
        self._target_rank = state["target_rank"]
        self._elapsed = state["elapsed"]
        self._engine_base = state["engine_base"]
        self._raw_stats = state["raw_stats"]
        self._workers_used = state["workers_used"]
        self._engine = None
        self._engine_mark = EngineStats()
        self._abstraction = None
        self._stop_built = None
        self._live_cancel = None
        self._cancel_probe = None
        self._pop_hook = None

    def __repr__(self) -> str:
        return (f"SynthesisSession(status={self.status!r}, "
                f"visited={self.stats.visited}, "
                f"found={len(self._queries)})")

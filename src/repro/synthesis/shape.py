"""Expression-shape precheck for skeletons.

A computation demonstration does more than name input cells — it exhibits
the *structure* of the computation (§1: the specification "constrains the
structure of the desired computation").  The refs-only abstract provenance
of Fig. 11 cannot see that structure: a ``partition ∘ partition`` skeleton
survives its consistency check against a demonstration cell
``percent(sum(...), x)`` even though no instantiation of two partitions can
ever build a ``percent`` application.

This module adds the sound structural necessary condition: under the
tracking semantics each function term is produced by exactly one operator
family —

* arithmetic functions (``percent``, ``div``, ...) — by ``arithmetic``;
* aggregate terms (``sum``, ``avg``, ``max``, ``min``, ``count``) — by
  ``group`` or ``partition`` (``cumsum`` flattens into ``sum``);
* rank terms — by ``partition`` only

— and a term can only contain terms produced strictly *below* it in the
operator chain.  So every root-to-leaf function path of every demonstration
cell must embed, innermost-first, into the skeleton's operator chain as a
subsequence of compatible producers.  Skeleton lanes failing the check are
pruned before any instantiation work (toggle: ``SynthesisConfig.shape_precheck``).

``sum``-flattening makes this conservative in the right direction: a
demonstrated ``sum`` may be realized by any single grouping operator even
when the ground truth stacked several (nested sums collapse), and paths
never demand more structure than the demonstration exhibits.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.functions import function_spec
from repro.provenance.demo import Demonstration
from repro.provenance.expr import Expr, FuncApp

#: Which operator kinds can produce a function term of each registry kind.
_PRODUCERS: dict[str, frozenset[str]] = {
    "arithmetic": frozenset(("arithmetic",)),
    "aggregate": frozenset(("group", "partition")),
    "ranker": frozenset(("partition",)),
}

_OP_NAMES = {
    ast.Group: "group",
    ast.Partition: "partition",
    ast.Arithmetic: "arithmetic",
}


def operator_chain(query: ast.Query) -> list[str]:
    """Producing operators of the unary spine, bottom-up.

    Non-producing operators (filter / sort / proj / joins) are skipped: they
    move cells around but never build function terms.
    """
    chain: list[str] = []
    node = query
    while True:
        name = _OP_NAMES.get(type(node))
        if name is not None:
            chain.append(name)
        children = node.child_queries()
        if not children:
            return list(reversed(chain))
        # Joins fork the spine; terms can only be produced above the fork by
        # spine operators, and below it only raw cells exist.
        if len(children) > 1:
            return list(reversed(chain))
        node = children[0]


def function_paths(expr: Expr) -> list[tuple[str, ...]]:
    """Root-to-leaf paths of function *kinds*, outermost first."""
    if not isinstance(expr, FuncApp):
        return []
    kind = function_spec(expr.func).kind
    child_paths = [path for arg in expr.args for path in function_paths(arg)]
    if not child_paths:
        return [(kind,)]
    return [(kind, *path) for path in child_paths]


def _path_embeds(path: tuple[str, ...], chain: list[str]) -> bool:
    """Innermost function first, matched against the chain bottom-up."""
    pos = 0
    for kind in reversed(path):
        producers = _PRODUCERS[kind]
        while pos < len(chain) and chain[pos] not in producers:
            pos += 1
        if pos == len(chain):
            return False
        pos += 1
    return True


def shape_feasible(query: ast.Query, demo: Demonstration) -> bool:
    """True when every demonstrated function path fits the skeleton."""
    chain = operator_chain(query)
    for row in demo.cells:
        for cell in row:
            for path in function_paths(cell):
                if not _path_embeds(path, chain):
                    return False
    return True

"""Query-skeleton construction (Alg. 1, line 4).

A skeleton is an operator tree with every parameter a hole — e.g.
``arithmetic(partition(group(T, □, □(□)), □, □(□)), □, □)``.  Skeletons are
emitted smallest-first so the breadth-first worklist explores small queries
before large ones (which also realizes the paper's size-based ranking).

For multi-table tasks, leaves include left-deep join trees over distinct
input tables with hole predicates; each join counts toward the operator
budget.
"""

from __future__ import annotations

from itertools import combinations, product

from repro.lang import ast
from repro.lang.holes import Hole
from repro.synthesis.config import SynthesisConfig

_HOLE_BUILDERS = {
    "group": lambda child: ast.Group(
        child, keys=Hole("keys"), agg_func=Hole("agg_func"), agg_col=Hole("agg_col")),
    "partition": lambda child: ast.Partition(
        child, keys=Hole("keys"), agg_func=Hole("agg_func"), agg_col=Hole("agg_col")),
    "arithmetic": lambda child: ast.Arithmetic(
        child, func=Hole("func"), cols=Hole("cols")),
    "filter": lambda child: ast.Filter(child, pred=Hole("pred")),
    "sort": lambda child: ast.Sort(
        child, cols=Hole("cols"), ascending=Hole("ascending")),
    "proj": lambda child: ast.Proj(child, cols=Hole("cols")),
}


def _leaves(env: ast.Env, budget: int) -> list[tuple[ast.Query, int]]:
    """Base queries with their operator cost: tables and join trees."""
    out: list[tuple[ast.Query, int]] = [
        (ast.TableRef(t.name), 0) for t in env.tables]
    names = env.names()
    if len(names) < 2:
        return out
    # Left-deep join trees over 2..k distinct tables; a join costs 1 op.
    # Combinations (not permutations): consistency checking and equivalence
    # are column-order-insensitive, so T1 ⋈ T2 and T2 ⋈ T1 are duplicates.
    for size in range(2, len(names) + 1):
        if size - 1 > budget:
            break
        for combo in combinations(names, size):
            tree: ast.Query = ast.TableRef(combo[0])
            for name in combo[1:]:
                tree = ast.Join(tree, ast.TableRef(name), pred=Hole("pred"))
            out.append((tree, size - 1))
    return out


def _useful_sequence(seq: tuple[str, ...]) -> bool:
    """Weed out sequences no instantiation can make useful.

    Row order is only observable through the order-dependent analytic
    functions of ``partition`` (and the first-occurrence group order feeding
    them), so a sort is useful exactly when a grouping operator consumes it
    directly; anywhere else — including as the outermost operator, where bag
    equality erases it — it only duplicates points in the search space.
    """
    for a, b in zip(seq, seq[1:]):
        if a == "sort" and b not in ("partition", "group"):
            return False
    if seq and seq[-1] == "sort":
        return False
    return True


def construct_skeletons(env: ast.Env, config: SynthesisConfig) -> list[ast.Query]:
    """All skeletons with at most ``config.max_operators`` operators."""
    skeletons: list[tuple[int, int, ast.Query]] = []
    order = 0
    for length in range(0, config.max_operators + 1):
        for seq in product(config.operator_pool, repeat=length):
            if not _useful_sequence(seq):
                continue
            for leaf, leaf_cost in _leaves(env, config.max_operators - length):
                total = leaf_cost + length
                if total > config.max_operators or total == 0:
                    continue
                query: ast.Query = leaf
                for op in seq:
                    query = _HOLE_BUILDERS[op](query)
                skeletons.append((total, order, query))
                order += 1
    skeletons.sort(key=lambda item: (item[0], item[1]))
    return [query for _, _, query in skeletons]

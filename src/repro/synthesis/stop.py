"""Declarative stop predicates for the search loop.

``enumerate_queries`` accepts a plain callable, but a closure cannot cross a
process boundary — and sharded search (:mod:`repro.parallel`) runs one
worker per skeleton shard, each owning its own
:class:`~repro.engine.base.EvalEngine`.  A :class:`StopSpec` separates *what
to stop on* (picklable data) from *how to evaluate it* (built per worker
against that worker's engine), so the same spec drives the serial loop and
every executor backend.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.lang import ast
from repro.synthesis.equivalence import same_output


class StopSpec:
    """A picklable description of the early-stop predicate.

    Subclasses implement :meth:`build`, which turns the spec into a concrete
    ``Query -> bool`` callable evaluated through a specific engine.  Workers
    call ``build`` once at shard start-up.
    """

    def build(self, engine, env: ast.Env) -> Callable[[ast.Query], bool]:
        raise NotImplementedError


@dataclass(frozen=True)
class GroundTruthStop(StopSpec):
    """Stop when a consistent query reproduces ``ground_truth``'s output.

    This is the §5.2 experiment mode ("the synthesizer runs until the
    correct query q_gt is found"); equivalence is output equivalence
    (:func:`~repro.synthesis.equivalence.same_output`), evaluated through
    the building worker's engine so its subtree caches are reused.
    """

    ground_truth: ast.Query

    def build(self, engine, env: ast.Env) -> Callable[[ast.Query], bool]:
        ground_truth = self.ground_truth
        return lambda query: same_output(query, ground_truth, env, engine)


@dataclass(frozen=True)
class CallableStop(StopSpec):
    """Wrap an arbitrary callable.

    Works with the ``thread``/``serial`` executors and — on platforms with
    ``fork`` — the ``process`` executor too (the closure is inherited); it
    is the one spec that cannot be pickled for ``spawn``-based workers.

    The callable must be a *pure function of the query* (no mutable state,
    no dependence on call order or count).  Under ``workers > 1`` each
    worker invokes its own copy on its shard's consistent queries in
    shard-local order; a stateful predicate would see different call
    sequences than the serial run and break the results-identical-to-serial
    guarantee.  Output-equivalence checks like :class:`GroundTruthStop`
    are pure by construction.
    """

    predicate: Callable[[ast.Query], bool]

    def build(self, engine, env: ast.Env) -> Callable[[ast.Query], bool]:
        return self.predicate


def as_stop_spec(stop) -> StopSpec | None:
    """Normalize ``None`` | callable | :class:`StopSpec` to a spec."""
    if stop is None or isinstance(stop, StopSpec):
        return stop
    return CallableStop(stop)

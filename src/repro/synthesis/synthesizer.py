"""Top-level synthesizer facade.

``synthesize(tables, demo, ...)`` is the one-call public API: build an
abstraction, run Algorithm 1, and return ranked consistent queries.  The
:class:`Synthesizer` class is the reusable variant for experiment loops
(keeps the abstraction object and clears its caches between tasks).

Each :class:`Synthesizer` owns its own :class:`~repro.engine.base.EvalEngine`
(selected by ``config.backend``), and the abstraction is bound to it — every
byte of evaluation state is scoped to this instance, so independent
synthesizers can run interleaved (or on separate threads) without sharing
or clobbering caches.  :meth:`Synthesizer.reset` is correspondingly
engine-scoped: it clears *this* session's caches and nobody else's.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.abstraction.base import Abstraction, make_abstraction
from repro.engine.base import EvalEngine, make_engine
from repro.lang.ast import Env, Query
from repro.provenance.demo import Demonstration
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.enumerator import SynthesisResult, enumerate_queries
from repro.synthesis.ranking import rank_queries
from repro.table.table import Table


def _make(name_or_abs: str | Abstraction, config: SynthesisConfig) -> Abstraction:
    if isinstance(name_or_abs, Abstraction):
        return name_or_abs
    if name_or_abs == "provenance":
        return make_abstraction(
            "provenance", target_refinement=config.target_refinement,
            value_shadow=config.value_shadow,
            head_typing=config.head_typing)
    return make_abstraction(name_or_abs)


class Synthesizer:
    """Reusable synthesis engine bound to one abstraction technique."""

    def __init__(self, abstraction: str | Abstraction = "provenance",
                 config: SynthesisConfig | None = None,
                 engine: EvalEngine | None = None) -> None:
        self.config = config or SynthesisConfig()
        if engine is not None and engine.name != self.config.backend:
            # An explicitly supplied engine defines the session backend —
            # keep the config coherent so run() never mistakes the
            # constructor-level choice for a per-run override.
            self.config = self.config.replace(backend=engine.name)
        self.engine = engine or make_engine(self.config.backend)
        self.abstraction = _make(abstraction, self.config)
        self.abstraction.bind_engine(self.engine)

    def run(self, tables: Sequence[Table], demo: Demonstration,
            stop_predicate: Callable[[Query], bool] | None = None,
            config: SynthesisConfig | None = None) -> SynthesisResult:
        env = Env(tuple(tables))
        cfg = config or self.config
        engine = self.engine
        if cfg.backend != engine.name:
            # Honor a per-run backend override: this run evaluates on a
            # fresh engine of the requested kind (session caches stay with
            # the synthesizer's own engine).
            engine = make_engine(cfg.backend)
            self.abstraction.bind_engine(engine)
        try:
            result = enumerate_queries(env, demo, cfg, self.abstraction,
                                       stop_predicate, engine=engine)
        finally:
            if engine is not self.engine:
                self.abstraction.bind_engine(self.engine)
        result.queries = rank_queries(result.queries)
        return result

    def reset(self) -> None:
        """Clear this session's evaluation caches (between experiment runs).

        Engine-scoped: other live synthesizers keep their state untouched.
        """
        self.engine.reset()
        self.abstraction.reset()


def synthesize(tables: Sequence[Table], demo: Demonstration,
               abstraction: str | Abstraction = "provenance",
               config: SynthesisConfig | None = None,
               stop_predicate: Callable[[Query], bool] | None = None,
               ) -> SynthesisResult:
    """Synthesize analytical SQL queries consistent with a demonstration.

    Parameters
    ----------
    tables:
        The input tables ¯T.
    demo:
        The computation demonstration E.
    abstraction:
        ``"provenance"`` (Sickle), ``"value"`` (Scythe-style), ``"type"``
        (Morpheus-style) or ``"none"``; or a pre-built
        :class:`~repro.abstraction.base.Abstraction`.
    config:
        Search-space and budget knobs; see :class:`SynthesisConfig`.
        ``config.backend`` selects the evaluation engine.
    stop_predicate:
        Optional: stop as soon as a consistent query satisfies it.

    Returns
    -------
    SynthesisResult
        Ranked consistent queries plus search statistics.
    """
    return Synthesizer(abstraction, config).run(tables, demo, stop_predicate)

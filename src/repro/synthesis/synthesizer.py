"""Top-level synthesizer facade.

``synthesize(tables, demo, ...)`` is the one-call public API: build an
abstraction, run Algorithm 1, and return ranked consistent queries.  The
:class:`Synthesizer` class is the reusable variant for experiment loops
(keeps the abstraction object and clears its caches between tasks).

Each :class:`Synthesizer` owns its own :class:`~repro.engine.base.EvalEngine`
(selected by ``config.backend``), and the abstraction is bound to it — every
byte of evaluation state is scoped to this instance, so independent
synthesizers can run interleaved (or on separate threads) without sharing
or clobbering caches.  :meth:`Synthesizer.reset` is correspondingly
engine-scoped: it clears *this* session's caches and nobody else's.

With ``config.workers > 1``, :meth:`Synthesizer.run` hands the search to
:mod:`repro.parallel`: the skeleton worklist is partitioned into shards,
each searched by a worker owning its own engine, and the shard outputs are
merged deterministically — ranked queries and search counters are
byte-identical to the serial run regardless of worker count.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.abstraction.base import Abstraction, make_abstraction
from repro.engine.base import EvalEngine, make_engine, resolve_backend
from repro.lang.ast import Env, Query
from repro.provenance.demo import Demonstration
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.enumerator import SynthesisResult
from repro.synthesis.session import SynthesisSession
from repro.synthesis.stop import StopSpec, as_stop_spec
from repro.table.table import Table


def build_abstraction(name_or_abs: str | Abstraction,
                      config: SynthesisConfig) -> Abstraction:
    """Materialize an abstraction from its name (or pass one through).

    Shared by the serial synthesizer and the parallel workers, which each
    rebuild the technique from its name so every worker owns an independent
    instance bound to its own engine.
    """
    if isinstance(name_or_abs, Abstraction):
        return name_or_abs
    if name_or_abs == "provenance":
        return make_abstraction(
            "provenance", target_refinement=config.target_refinement,
            value_shadow=config.value_shadow,
            head_typing=config.head_typing)
    return make_abstraction(name_or_abs)


class Synthesizer:
    """Reusable synthesis engine bound to one abstraction technique."""

    def __init__(self, abstraction: str | Abstraction = "provenance",
                 config: SynthesisConfig | None = None,
                 engine: EvalEngine | None = None) -> None:
        self.config = config or SynthesisConfig()
        if engine is not None and \
                engine.name != resolve_backend(self.config.backend):
            # An explicitly supplied engine defines the session backend —
            # keep the config coherent so run() never mistakes the
            # constructor-level choice for a per-run override.
            self.config = self.config.replace(backend=engine.name)
        self.engine = engine or make_engine(self.config.backend)
        self._engine_supplied = engine is not None
        #: The technique name when known — sharded workers rebuild the
        #: abstraction from it (a bound Abstraction object cannot cross a
        #: process boundary).  None when a pre-built object was supplied.
        self.abstraction_spec = abstraction if isinstance(abstraction, str) \
            else None
        self.abstraction = build_abstraction(abstraction, self.config)
        self.abstraction.bind_engine(self.engine)

    def run(self, tables: Sequence[Table], demo: Demonstration,
            stop_predicate: Callable[[Query], bool] | StopSpec | None = None,
            config: SynthesisConfig | None = None) -> SynthesisResult:
        session = self.session(tables, demo, stop_predicate, config)
        try:
            return session.run()
        finally:
            # A per-run backend override evaluated on a temporary engine;
            # rebind the technique to the synthesizer's own for next run.
            self.abstraction.bind_engine(self.engine)

    def session(self, tables: Sequence[Table] | Env, demo: Demonstration,
                stop: Callable[[Query], bool] | StopSpec | None = None,
                config: SynthesisConfig | None = None) -> SynthesisSession:
        """Open a resumable :class:`SynthesisSession` on this synthesizer.

        A serial session evaluates through this synthesizer's engine (so
        repeated sessions over the same tables reuse warm caches) — unless
        ``config`` overrides the backend, in which case the session gets a
        fresh engine of the requested kind and the synthesizer's own is
        untouched.  A ``workers > 1`` session dispatches to shard workers
        at ``run`` time, each building its own engine from the config.
        """
        env = tables if isinstance(tables, Env) else Env(tuple(tables))
        cfg = config or self.config
        session = SynthesisSession(
            env, demo, cfg,
            abstraction=self.abstraction_spec or self.abstraction,
            stop=as_stop_spec(stop))
        if cfg.workers > 1:
            if self.abstraction_spec is None:
                raise ValueError(
                    "workers > 1 requires the abstraction to be given by "
                    "name (workers rebuild it per shard); pass e.g. "
                    "'provenance' instead of a pre-built Abstraction object")
            if self._engine_supplied:
                raise ValueError(
                    "workers > 1 cannot use an explicitly supplied engine — "
                    "each worker builds its own from config.backend; drop "
                    "the engine argument (or set backend) instead")
            return session
        engine = self.engine
        if resolve_backend(cfg.backend) != engine.name:
            # Honor a per-run backend override: this session evaluates on a
            # fresh engine of the requested kind (session caches stay with
            # the synthesizer's own engine).  Comparison is on *resolved*
            # names so a "numpy" config degraded to the columnar fallback
            # keeps its session engine instead of rebuilding every run.
            engine = make_engine(cfg.backend)
        session.attach_engine(engine, self.abstraction)
        return session

    def reset(self) -> None:
        """Clear this session's evaluation caches (between experiment runs).

        Engine-scoped: other live synthesizers keep their state untouched.
        """
        self.engine.reset()
        self.abstraction.reset()


def synthesize(tables: Sequence[Table], demo: Demonstration,
               abstraction: str | Abstraction = "provenance",
               config: SynthesisConfig | None = None,
               stop_predicate: Callable[[Query], bool] | StopSpec | None = None,
               ) -> SynthesisResult:
    """Synthesize analytical SQL queries consistent with a demonstration.

    Parameters
    ----------
    tables:
        The input tables ¯T.
    demo:
        The computation demonstration E.
    abstraction:
        ``"provenance"`` (Sickle), ``"value"`` (Scythe-style), ``"type"``
        (Morpheus-style) or ``"none"``; or a pre-built
        :class:`~repro.abstraction.base.Abstraction`.
    config:
        Search-space and budget knobs; see :class:`SynthesisConfig`.
        ``config.backend`` selects the evaluation engine;
        ``config.workers`` shards the search across that many workers.
    stop_predicate:
        Optional: stop as soon as a consistent query satisfies it.  Either
        a plain callable or a picklable
        :class:`~repro.synthesis.stop.StopSpec` (required form for
        spawn-based worker processes).

    Returns
    -------
    SynthesisResult
        Ranked consistent queries plus search statistics.
    """
    return Synthesizer(abstraction, config).run(tables, demo, stop_predicate)

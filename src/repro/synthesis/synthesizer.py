"""Top-level synthesizer facade.

``synthesize(tables, demo, ...)`` is the one-call public API: build an
abstraction, run Algorithm 1, and return ranked consistent queries.  The
:class:`Synthesizer` class is the reusable variant for experiment loops
(keeps the abstraction object and clears its caches between tasks).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.abstraction.base import Abstraction, make_abstraction
from repro.lang.ast import Env, Query
from repro.provenance.demo import Demonstration
from repro.semantics import concrete, tracking
from repro.synthesis.config import SynthesisConfig
from repro.synthesis.enumerator import SynthesisResult, enumerate_queries
from repro.synthesis.ranking import rank_queries
from repro.table.table import Table


def _make(name_or_abs: str | Abstraction, config: SynthesisConfig) -> Abstraction:
    if isinstance(name_or_abs, Abstraction):
        return name_or_abs
    if name_or_abs == "provenance":
        return make_abstraction(
            "provenance", target_refinement=config.target_refinement,
            value_shadow=config.value_shadow,
            head_typing=config.head_typing)
    return make_abstraction(name_or_abs)


class Synthesizer:
    """Reusable synthesis engine bound to one abstraction technique."""

    def __init__(self, abstraction: str | Abstraction = "provenance",
                 config: SynthesisConfig | None = None) -> None:
        self.config = config or SynthesisConfig()
        self.abstraction = _make(abstraction, self.config)

    def run(self, tables: Sequence[Table], demo: Demonstration,
            stop_predicate: Callable[[Query], bool] | None = None,
            config: SynthesisConfig | None = None) -> SynthesisResult:
        env = Env(tuple(tables))
        result = enumerate_queries(env, demo, config or self.config,
                                   self.abstraction, stop_predicate)
        result.queries = rank_queries(result.queries)
        return result

    def reset(self) -> None:
        """Clear all evaluation caches (between independent experiment runs)."""
        self.abstraction.reset()
        concrete.clear_cache()
        tracking.clear_cache()


def synthesize(tables: Sequence[Table], demo: Demonstration,
               abstraction: str | Abstraction = "provenance",
               config: SynthesisConfig | None = None,
               stop_predicate: Callable[[Query], bool] | None = None,
               ) -> SynthesisResult:
    """Synthesize analytical SQL queries consistent with a demonstration.

    Parameters
    ----------
    tables:
        The input tables ¯T.
    demo:
        The computation demonstration E.
    abstraction:
        ``"provenance"`` (Sickle), ``"value"`` (Scythe-style), ``"type"``
        (Morpheus-style) or ``"none"``; or a pre-built
        :class:`~repro.abstraction.base.Abstraction`.
    config:
        Search-space and budget knobs; see :class:`SynthesisConfig`.
    stop_predicate:
        Optional: stop as soon as a consistent query satisfies it.

    Returns
    -------
    SynthesisResult
        Ranked consistent queries plus search statistics.
    """
    return Synthesizer(abstraction, config).run(tables, demo, stop_predicate)

"""Ordered-bag table substrate (paper §3.1).

A table is an ordered bag of tuples.  Row order is meaningful only to
order-dependent operators (``sort``, ``cumsum``, ``rank``); equality is bag
equality.  Cells hold numbers, strings, booleans or ``None`` (SQL NULL).
"""

from repro.table.schema import ColumnType, ForeignKey, Schema, infer_type
from repro.table.table import Table
from repro.table.values import (
    is_numeric,
    value_eq,
    value_lt,
    value_sort_key,
    value_type,
)

__all__ = [
    "Table",
    "Schema",
    "ColumnType",
    "ForeignKey",
    "infer_type",
    "is_numeric",
    "value_eq",
    "value_lt",
    "value_type",
    "value_sort_key",
]

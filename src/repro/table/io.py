"""Table I/O: CSV round-tripping and monospace pretty printing."""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence

from repro.table.table import Table
from repro.table.values import Value


def _parse_cell(text: str) -> Value:
    """Parse a CSV cell: empty → NULL, numeric-looking → number, else string."""
    if text == "":
        return None
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def load_csv(name: str, text: str, primary_key: Sequence[str] = (),
             foreign_keys: Sequence = ()) -> Table:
    """Load a table from CSV text (first line is the header)."""
    reader = csv.reader(io.StringIO(text.strip()))
    header = next(reader)
    rows = [[_parse_cell(cell) for cell in row] for row in reader if row]
    return Table.from_rows(name, [h.strip() for h in header], rows,
                           primary_key=primary_key, foreign_keys=foreign_keys)


def dump_csv(table: Table) -> str:
    """Serialize a table to CSV text."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow(["" if v is None else v for v in row])
    return out.getvalue()


def _render_cell(v: Value) -> str:
    if v is None:
        return "NULL"
    if isinstance(v, float):
        if v == int(v):
            return f"{int(v)}.0"
        return f"{v:.4g}"
    return str(v)


def format_table(table: Table, max_rows: int = 50) -> str:
    """Render a table in an aligned monospace grid (for examples / docs)."""
    shown = list(table.rows[:max_rows])
    cells = [[str(c) for c in table.columns]]
    cells += [[_render_cell(v) for v in row] for row in shown]
    widths = [max(len(row[j]) for row in cells) for j in range(table.n_cols)] \
        if table.n_cols else []
    lines = []
    header = " | ".join(cells[0][j].ljust(widths[j]) for j in range(table.n_cols))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(row[j].ljust(widths[j]) for j in range(table.n_cols)))
    if table.n_rows > max_rows:
        lines.append(f"... ({table.n_rows - max_rows} more rows)")
    return "\n".join(lines)

"""Schemas: column names, coarse column types and key metadata.

Key metadata (primary / foreign keys) feeds the synthesizer's join-predicate
domain: as in the paper (§5.1), join predicates are enumerated only over
declared key relationships to avoid unnatural predicates such as
``T1.id < T2.age``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.table.values import Value, value_type

# Coarse column types produced by inference.
ColumnType = str  # one of: "number", "string", "bool", "null", "mixed"


def infer_type(values: list[Value]) -> ColumnType:
    """Infer the coarse type of a column from its non-null values."""
    seen = {value_type(v) for v in values if v is not None}
    if not seen:
        return "null"
    if len(seen) == 1:
        return next(iter(seen))
    return "mixed"


@dataclass(frozen=True)
class ForeignKey:
    """``column`` of this table references ``ref_column`` of ``ref_table``."""

    column: str
    ref_table: str
    ref_column: str


@dataclass(frozen=True)
class Schema:
    """Column names plus optional key metadata.

    ``columns`` is the authoritative order; ``types`` is parallel to it.
    """

    columns: tuple[str, ...]
    types: tuple[ColumnType, ...]
    primary_key: tuple[str, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.columns) != len(set(self.columns)):
            raise SchemaError(f"duplicate column names in {self.columns}")
        if len(self.types) != len(self.columns):
            raise SchemaError("types must be parallel to columns")
        for key_col in self.primary_key:
            if key_col not in self.columns:
                raise SchemaError(f"primary key column {key_col!r} not in schema")
        for fk in self.foreign_keys:
            if fk.column not in self.columns:
                raise SchemaError(f"foreign key column {fk.column!r} not in schema")

    def index_of(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise SchemaError(f"no column named {column!r}; have {self.columns}") from None

    def type_of(self, col: int | str) -> ColumnType:
        if isinstance(col, str):
            col = self.index_of(col)
        return self.types[col]

    @property
    def arity(self) -> int:
        return len(self.columns)

"""The ordered-bag table (paper §3.1).

A :class:`Table` is an ordered bag of tuples: row order is preserved (it
matters for ``sort`` / ``cumsum`` / ``rank``) but equality ignores it.  Cells
may hold any :data:`repro.table.values.Value` — including, in
provenance-embedded tables, provenance expressions; the container is agnostic
and the semantics layers decide what cells mean.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import TableError
from repro.table.schema import Schema, infer_type
from repro.table.values import Value, canonical, row_eq, value_eq


@dataclass(frozen=True, eq=True)
class Table:
    """An immutable ordered bag of rows with a schema.

    ``name`` identifies input tables in provenance references (``T[i, j]``);
    derived tables typically carry a synthetic name.
    """

    name: str
    schema: Schema
    rows: tuple[tuple[Value, ...], ...]

    def __post_init__(self) -> None:
        arity = self.schema.arity
        for i, row in enumerate(self.rows):
            if len(row) != arity:
                raise TableError(
                    f"table {self.name!r}: row {i} has {len(row)} cells, expected {arity}")

    def __hash__(self) -> int:
        # Tables key evaluation caches through Env, and the dataclass hash
        # walks every cell on every lookup; compute it once.  (Safe: all
        # fields are immutable, and equal tables hash the same fields.)
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.name, self.schema, self.rows))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self):
        # The cached hash is process-local (str hashing is seeded); it must
        # never travel through pickle to another interpreter.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    # ------------------------------------------------------------------ build
    @staticmethod
    def from_rows(name: str, columns: Sequence[str],
                  rows: Iterable[Sequence[Value]],
                  primary_key: Sequence[str] = (),
                  foreign_keys: Sequence = ()) -> "Table":
        """Build a table, inferring column types from the data."""
        row_tuples = tuple(tuple(r) for r in rows)
        n_cols = len(columns)
        for i, row in enumerate(row_tuples):
            if len(row) != n_cols:
                raise TableError(f"row {i} has {len(row)} cells, expected {n_cols}")
        types = tuple(
            infer_type([row[j] for row in row_tuples]) for j in range(n_cols))
        schema = Schema(tuple(columns), types,
                        primary_key=tuple(primary_key),
                        foreign_keys=tuple(foreign_keys))
        return Table(name, schema, row_tuples)

    def with_name(self, name: str) -> "Table":
        return Table(name, self.schema, self.rows)

    # ------------------------------------------------------------ inspection
    @property
    def columns(self) -> tuple[str, ...]:
        return self.schema.columns

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_cols(self) -> int:
        return self.schema.arity

    def cell(self, row: int, col: int) -> Value:
        return self.rows[row][col]

    def row(self, i: int) -> tuple[Value, ...]:
        return self.rows[i]

    def column_values(self, col: int | str) -> list[Value]:
        if isinstance(col, str):
            col = self.schema.index_of(col)
        return [row[col] for row in self.rows]

    def col_index(self, col: int | str) -> int:
        if isinstance(col, str):
            return self.schema.index_of(col)
        if not 0 <= col < self.n_cols:
            raise TableError(
                f"column index {col} out of range for table {self.name!r} "
                f"with {self.n_cols} columns")
        return col

    # ------------------------------------------------------------ operations
    def project(self, cols: Sequence[int | str], name: str | None = None) -> "Table":
        """Project (and possibly reorder / rename by position) columns."""
        idxs = [self.col_index(c) for c in cols]
        columns = [self.schema.columns[i] for i in idxs]
        if len(columns) != len(set(columns)):
            columns = [f"{c}_{k}" for k, c in enumerate(columns)]
        rows = [tuple(row[i] for i in idxs) for row in self.rows]
        return Table.from_rows(name or self.name, columns, rows)

    def cross(self, other: "Table", name: str | None = None) -> "Table":
        """Cross product; right-hand columns renamed on clash.

        Renaming is collision-free and deterministic: a clashing column
        first tries ``{other.name}.{c}``, then counts up ``..._2``, ``..._3``
        … until free — so crossing a table with itself (where the qualified
        name already exists) still yields a valid schema.
        """
        columns = list(self.columns)
        for c in other.columns:
            candidate = c if c not in columns else f"{other.name}.{c}"
            k = 2
            while candidate in columns:
                candidate = f"{other.name}.{c}_{k}"
                k += 1
            columns.append(candidate)
        rows = [left + right for left in self.rows for right in other.rows]
        return Table.from_rows(name or f"{self.name}x{other.name}", columns, rows)

    def take_rows(self, indices: Sequence[int], name: str | None = None) -> "Table":
        rows = [self.rows[i] for i in indices]
        return Table.from_rows(name or self.name, self.columns, rows)

    # -------------------------------------------------------------- equality
    def same_rows(self, other: "Table") -> bool:
        """Bag equality of rows (ignores order, column names and table name)."""
        if self.n_cols != other.n_cols or self.n_rows != other.n_rows:
            return False
        mine = Counter(tuple(canonical(v) for v in row) for row in self.rows)
        theirs = Counter(tuple(canonical(v) for v in row) for row in other.rows)
        if mine == theirs:
            return True
        # Canonicalization is equality-compatible for the value domain we
        # use, but fall back to a quadratic matching to be safe with floats.
        return self._quadratic_bag_eq(other)

    def _quadratic_bag_eq(self, other: "Table") -> bool:
        used = [False] * other.n_rows
        for row in self.rows:
            for j, other_row in enumerate(other.rows):
                if not used[j] and row_eq(list(row), list(other_row)):
                    used[j] = True
                    break
            else:
                return False
        return True

    def contains_rows(self, other: "Table") -> bool:
        """True when ``other``'s rows embed injectively into this table's."""
        if self.n_cols != other.n_cols or other.n_rows > self.n_rows:
            return False
        used = [False] * self.n_rows
        for row in other.rows:
            for j, mine in enumerate(self.rows):
                if not used[j] and row_eq(list(row), list(mine)):
                    used[j] = True
                    break
            else:
                return False
        return True

    def contains_cell_value(self, value: Value) -> bool:
        return any(value_eq(cell, value) for row in self.rows for cell in row)

    # --------------------------------------------------------------- display
    def __str__(self) -> str:  # pragma: no cover - cosmetic
        from repro.table.io import format_table
        return format_table(self)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {self.n_rows}x{self.n_cols})"

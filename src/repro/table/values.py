"""Cell values and their comparison semantics.

Values are plain Python objects: ``int``, ``float``, ``str``, ``bool`` or
``None`` (NULL).  Two subtleties are centralized here so that every layer of
the system — concrete evaluation, provenance tracking, bag equality, demo
matching — agrees on them:

* floats compare with a small tolerance (aggregates such as ``avg`` produce
  floats whose bit patterns depend on summation order);
* NULLs sort last and never equal anything except another NULL (a pragmatic
  deviation from three-valued logic that keeps bag equality decidable).
"""

from __future__ import annotations

import math

Value = int | float | str | bool | None

#: Float comparison tolerances.  Public because the NumPy kernels replicate
#: :func:`value_eq`'s ``math.isclose`` call vectorized — both sides of the
#: backend equivalence guarantee must read the same numbers.
FLOAT_REL_TOL = 1e-9
FLOAT_ABS_TOL = 1e-9

_REL_TOL = FLOAT_REL_TOL
_ABS_TOL = FLOAT_ABS_TOL


def is_numeric(v: Value) -> bool:
    """True for ints and floats; booleans are not numeric for our purposes."""
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def value_type(v: Value) -> str:
    """Coarse type tag used by schema inference and domain pruning."""
    if v is None:
        return "null"
    if isinstance(v, bool):
        return "bool"
    if isinstance(v, (int, float)):
        return "number"
    return "string"


def value_eq(a: Value, b: Value) -> bool:
    """Equality with float tolerance; NULL == NULL only."""
    if a is None or b is None:
        return a is None and b is None
    if is_numeric(a) and is_numeric(b):
        if isinstance(a, float) or isinstance(b, float):
            return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)
        return a == b
    if type(a) is not type(b) and not (isinstance(a, str) and isinstance(b, str)):
        return False
    return a == b


def value_lt(a: Value, b: Value) -> bool:
    """Ordering used by sort / rank: NULL last, numbers before strings."""
    ka, kb = value_sort_key(a), value_sort_key(b)
    return ka < kb


def value_sort_key(v: Value) -> tuple:
    """Total-order sort key over mixed-type values.

    Order classes: numbers < strings < booleans < NULL.  Inside a class the
    natural order applies.
    """
    if v is None:
        return (3, 0)
    if isinstance(v, bool):
        return (2, v)
    if isinstance(v, (int, float)):
        return (0, v)
    return (1, v)


def row_eq(row_a: list[Value], row_b: list[Value]) -> bool:
    """Positional equality of two rows under :func:`value_eq`."""
    if len(row_a) != len(row_b):
        return False
    return all(value_eq(a, b) for a, b in zip(row_a, row_b))


def canonical(v: Value) -> Value:
    """Canonical form used for hashing rows into groups.

    Integral floats collapse to ints so that ``2.0`` and ``2`` land in the
    same group, matching :func:`value_eq`.  Non-integral floats are rounded
    to 9 decimal places (consistent with the equality tolerance for the value
    magnitudes the benchmarks use).
    """
    if isinstance(v, bool):
        return v
    if isinstance(v, float):
        if math.isfinite(v) and v == int(v):
            return int(v)
        return round(v, 9)
    return v

"""Small shared utilities: bipartite matching, deterministic RNG, timers."""

from repro.util.matching import bipartite_match, injective_assignment_exists
from repro.util.rng import stable_rng
from repro.util.timer import Deadline, Stopwatch

__all__ = [
    "bipartite_match",
    "injective_assignment_exists",
    "stable_rng",
    "Deadline",
    "Stopwatch",
]

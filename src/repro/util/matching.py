"""Bipartite matching used by the table-level consistency checks.

Both the concrete consistency judgment (Definition 1) and the abstract one
(Definition 3) ask for an *injective* assignment of demonstration rows to
output rows (and demonstration columns to output columns).  The tables
involved are tiny — demonstrations have two or three rows and a handful of
columns — so augmenting-path matchers are more than fast enough and keep
the library dependency-free.

The grid-embedding search runs over *bitsets*: per-(demo column, output
column) match state is a tuple of row bitmasks, column assignment
backtracking ANDs those masks incrementally (a branch dies the moment some
demo row has no surviving output row), and the row matching at each leaf is
Kuhn's algorithm over bitmask adjacency (:func:`bitset_match`).  The mask
representation is also the interchange format of the incremental
consistency checker (:mod:`repro.provenance.incremental`), which memoizes
masks across sibling candidates instead of rebuilding them per call.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence


def bipartite_match(n_left: int, n_right: int,
                    edge: Callable[[int, int], bool]) -> list[int] | None:
    """Find a matching that saturates the left side, or ``None``.

    ``edge(i, j)`` reports whether left node ``i`` may be assigned to right
    node ``j``.  Returns ``assign`` with ``assign[i] = j`` for every left
    node, each ``j`` distinct, or ``None`` when no saturating matching
    exists.  Classic Kuhn augmenting-path algorithm, O(V * E).
    """
    if n_left > n_right:
        return None
    match_right: list[int | None] = [None] * n_right

    def try_augment(i: int, seen: list[bool]) -> bool:
        for j in range(n_right):
            if seen[j] or not edge(i, j):
                continue
            seen[j] = True
            if match_right[j] is None or try_augment(match_right[j], seen):
                match_right[j] = i
                return True
        return False

    for i in range(n_left):
        if not try_augment(i, [False] * n_right):
            return None
    assign: list[int] = [-1] * n_left
    for j, i in enumerate(match_right):
        if i is not None:
            assign[i] = j
    return assign


def injective_assignment_exists(n_left: int, n_right: int,
                                edge: Callable[[int, int], bool]) -> bool:
    """True when an injective left-to-right assignment exists."""
    return bipartite_match(n_left, n_right, edge) is not None


def subsequence_match(needles: Sequence, haystack: Sequence,
                      matches: Callable[[object, object], bool]) -> bool:
    """True when ``needles`` embeds into ``haystack`` as a subsequence.

    Greedy scan is *not* sufficient in general because ``matches`` is a
    relation, not equality; we use backtracking (inputs are tiny).
    """

    def go(ni: int, hi: int) -> bool:
        if ni == len(needles):
            return True
        if len(haystack) - hi < len(needles) - ni:
            return False
        for j in range(hi, len(haystack)):
            if matches(needles[ni], haystack[j]) and go(ni + 1, j + 1):
                return True
        return False

    return go(0, 0)


def bitmask_from_bools(bools) -> int:
    """A row bitmask (bit ``r`` set iff ``bools[r]``) from a boolean vector.

    This is the bridge between vectorized kernels and the bitset matching
    core: a NumPy boolean mask is packed directly (``np.packbits`` →
    ``int.from_bytes``) into the arbitrary-precision integer format that
    :func:`bitset_match` / :func:`bitset_embedding_exists` consume — no
    per-element Python loop, no intermediate list.  Plain sequences take
    the loop path, so callers never need to know which representation a
    backend handed them.
    """
    tobytes = getattr(bools, "tobytes", None)
    if tobytes is not None:                      # ndarray fast path
        import numpy as np

        packed = np.packbits(bools, bitorder="little")
        return int.from_bytes(packed.tobytes(), "little")
    mask = 0
    for r, flag in enumerate(bools):
        if flag:
            mask |= 1 << r
    return mask


def bitset_match(adjacency: Sequence[int], n_right: int) -> list[int] | None:
    """:func:`bipartite_match` over bitmask adjacency rows.

    ``adjacency[i]`` is the bitmask of right nodes left node ``i`` may be
    assigned to.  Returns ``assign`` with ``assign[i] = j`` for every left
    node (each ``j`` distinct), or ``None`` when no saturating matching
    exists.  Kuhn's augmenting-path algorithm with bit scans in place of
    the per-edge callback loop.
    """
    n_left = len(adjacency)
    if n_left > n_right:
        return None
    match_right: dict[int, int] = {}

    def try_augment(i: int, seen: list[int]) -> bool:
        while True:
            avail = adjacency[i] & ~seen[0]
            if not avail:
                return False
            low = avail & -avail
            seen[0] |= low
            j = low.bit_length() - 1
            owner = match_right.get(j)
            if owner is None or try_augment(owner, seen):
                match_right[j] = i
                return True

    for i in range(n_left):
        if not try_augment(i, [0]):
            return None
    assign = [-1] * n_left
    for j, i in match_right.items():
        assign[i] = j
    return assign


#: One ``options[j]`` entry of :func:`bitset_embedding_exists`: an output
#: column index paired with one row bitmask per demo row.
MaskOption = tuple[int, Sequence[int]]


def bitset_embedding_exists(options: Sequence[Sequence[MaskOption]],
                            n_demo_rows: int, n_rows: int) -> bool:
    """Injective grid embedding from precomputed row bitmasks.

    ``options[j]`` lists the compatible output columns for demo column
    ``j`` as ``(c, masks)`` pairs, where ``masks[i]`` is the bitmask of
    output rows whose cell in column ``c`` can realize demo cell
    ``(i, j)`` (every ``masks[i]`` nonzero — incompatible columns are
    filtered by the caller).  Columns are assigned by backtracking with
    the per-demo-row masks ANDed incrementally, so a partial assignment
    dies the moment some demo row has no surviving output row; each full
    assignment is closed with a bitset row matching.
    """
    if any(not opts for opts in options):
        return False
    n_demo_cols = len(options)

    def assign(j: int, used: int, row_masks: tuple[int, ...]) -> bool:
        if j == n_demo_cols:
            return bitset_match(row_masks, n_rows) is not None
        for c, masks in options[j]:
            bit = 1 << c
            if used & bit:
                continue
            merged = tuple(rm & m for rm, m in zip(row_masks, masks))
            if 0 in merged:
                continue
            if assign(j + 1, used | bit, merged):
                return True
        return False

    full = (1 << n_rows) - 1
    return assign(0, 0, (full,) * n_demo_rows)


def embedding_exists(n_demo_rows: int, n_demo_cols: int,
                     n_rows: int, n_cols: int,
                     cell_ok: Callable[[int, int, int, int], bool]) -> bool:
    """Injective embedding of a demo grid into an output grid.

    Searches for injective assignments of demo columns to output columns and
    demo rows to output rows such that ``cell_ok(i, j, r, c)`` holds for every
    demo cell ``(i, j)`` mapped to output cell ``(r, c)``.  This is the shared
    shape of table-level consistency (Definition 1) and abstract provenance
    consistency (Definition 3); only ``cell_ok`` differs.

    The relation is materialized once as per-(demo column, output column)
    row bitmasks — each cell judged at most once, no per-call memo dict —
    and the search runs through :func:`bitset_embedding_exists`.  A column
    pair is abandoned at the first demo row with no matching output row,
    which is the old candidate prefilter folded into mask construction.
    """
    if n_demo_rows > n_rows or n_demo_cols > n_cols:
        return False

    options: list[list[MaskOption]] = []
    for j in range(n_demo_cols):
        opts: list[MaskOption] = []
        for c in range(n_cols):
            masks: list[int] = []
            for i in range(n_demo_rows):
                mask = 0
                for r in range(n_rows):
                    if cell_ok(i, j, r, c):
                        mask |= 1 << r
                if not mask:
                    break
                masks.append(mask)
            else:
                opts.append((c, tuple(masks)))
        if not opts:
            return False
        options.append(opts)

    return bitset_embedding_exists(options, n_demo_rows, n_rows)


def multiset_match(needles: Sequence, haystack: Sequence,
                   matches: Callable[[object, object], bool],
                   exact: bool = False) -> bool:
    """True when each needle matches a *distinct* haystack element.

    With ``exact=True`` the match must be a bijection (same length and every
    haystack element used) — this is the rule for complete commutative
    expressions; without it, the rule for partial (``f♦``) ones.
    """
    if exact and len(needles) != len(haystack):
        return False
    if len(needles) > len(haystack):
        return False
    assign = bipartite_match(
        len(needles), len(haystack),
        lambda i, j: matches(needles[i], haystack[j]))
    return assign is not None

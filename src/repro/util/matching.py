"""Bipartite matching used by the table-level consistency checks.

Both the concrete consistency judgment (Definition 1) and the abstract one
(Definition 3) ask for an *injective* assignment of demonstration rows to
output rows (and demonstration columns to output columns).  The tables
involved are tiny — demonstrations have two or three rows and a handful of
columns — so a simple augmenting-path matcher is more than fast enough and
keeps the library dependency-free.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence


def bipartite_match(n_left: int, n_right: int,
                    edge: Callable[[int, int], bool]) -> list[int] | None:
    """Find a matching that saturates the left side, or ``None``.

    ``edge(i, j)`` reports whether left node ``i`` may be assigned to right
    node ``j``.  Returns ``assign`` with ``assign[i] = j`` for every left
    node, each ``j`` distinct, or ``None`` when no saturating matching
    exists.  Classic Kuhn augmenting-path algorithm, O(V * E).
    """
    if n_left > n_right:
        return None
    match_right: list[int | None] = [None] * n_right

    def try_augment(i: int, seen: list[bool]) -> bool:
        for j in range(n_right):
            if seen[j] or not edge(i, j):
                continue
            seen[j] = True
            if match_right[j] is None or try_augment(match_right[j], seen):
                match_right[j] = i
                return True
        return False

    for i in range(n_left):
        if not try_augment(i, [False] * n_right):
            return None
    assign: list[int] = [-1] * n_left
    for j, i in enumerate(match_right):
        if i is not None:
            assign[i] = j
    return assign


def injective_assignment_exists(n_left: int, n_right: int,
                                edge: Callable[[int, int], bool]) -> bool:
    """True when an injective left-to-right assignment exists."""
    return bipartite_match(n_left, n_right, edge) is not None


def subsequence_match(needles: Sequence, haystack: Sequence,
                      matches: Callable[[object, object], bool]) -> bool:
    """True when ``needles`` embeds into ``haystack`` as a subsequence.

    Greedy scan is *not* sufficient in general because ``matches`` is a
    relation, not equality; we use backtracking (inputs are tiny).
    """

    def go(ni: int, hi: int) -> bool:
        if ni == len(needles):
            return True
        if len(haystack) - hi < len(needles) - ni:
            return False
        for j in range(hi, len(haystack)):
            if matches(needles[ni], haystack[j]) and go(ni + 1, j + 1):
                return True
        return False

    return go(0, 0)


def embedding_exists(n_demo_rows: int, n_demo_cols: int,
                     n_rows: int, n_cols: int,
                     cell_ok: Callable[[int, int, int, int], bool]) -> bool:
    """Injective embedding of a demo grid into an output grid.

    Searches for injective assignments of demo columns to output columns and
    demo rows to output rows such that ``cell_ok(i, j, r, c)`` holds for every
    demo cell ``(i, j)`` mapped to output cell ``(r, c)``.  This is the shared
    shape of table-level consistency (Definition 1) and abstract provenance
    consistency (Definition 3); only ``cell_ok`` differs.

    Columns are assigned by backtracking (few of them); each full column
    assignment is closed with a bipartite row matching.
    """
    if n_demo_rows > n_rows or n_demo_cols > n_cols:
        return False

    # Candidate output columns per demo column: every demo row must be
    # matchable by *some* output row — a cheap necessary condition that
    # prunes the backtracking hard.
    candidates: list[list[int]] = []
    for j in range(n_demo_cols):
        cols = [c for c in range(n_cols)
                if all(any(cell_ok(i, j, r, c) for r in range(n_rows))
                       for i in range(n_demo_rows))]
        if not cols:
            return False
        candidates.append(cols)

    assignment: list[int] = []

    def rows_match() -> bool:
        return bipartite_match(
            n_demo_rows, n_rows,
            lambda i, r: all(cell_ok(i, j, r, assignment[j])
                             for j in range(n_demo_cols))) is not None

    def assign_columns(j: int) -> bool:
        if j == n_demo_cols:
            return rows_match()
        for c in candidates[j]:
            if c in assignment:
                continue
            assignment.append(c)
            if assign_columns(j + 1):
                return True
            assignment.pop()
        return False

    return assign_columns(0)


def multiset_match(needles: Sequence, haystack: Sequence,
                   matches: Callable[[object, object], bool],
                   exact: bool = False) -> bool:
    """True when each needle matches a *distinct* haystack element.

    With ``exact=True`` the match must be a bijection (same length and every
    haystack element used) — this is the rule for complete commutative
    expressions; without it, the rule for partial (``f♦``) ones.
    """
    if exact and len(needles) != len(haystack):
        return False
    if len(needles) > len(haystack):
        return False
    assign = bipartite_match(
        len(needles), len(haystack),
        lambda i, j: matches(needles[i], haystack[j]))
    return assign is not None

"""Deterministic random number generation.

Benchmark data, demonstration sampling and argument permutation must be
reproducible run-to-run, so every stochastic choice in the library flows
through a :func:`stable_rng` seeded from a string label.  The label keeps
seeds independent across call sites without global state.
"""

from __future__ import annotations

import hashlib
import random


def stable_seed(label: str) -> int:
    """Derive a 64-bit seed from a human-readable label."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def stable_rng(label: str, seed: int = 0) -> random.Random:
    """A ``random.Random`` whose stream depends only on ``label`` and ``seed``."""
    return random.Random(stable_seed(f"{label}#{seed}"))

"""Wall-clock helpers: stopwatches and soft deadlines for the search loop."""

from __future__ import annotations

import time


class Stopwatch:
    """Measures elapsed wall-clock time; start on construction."""

    def __init__(self) -> None:
        self._start = time.monotonic()

    def elapsed(self) -> float:
        return time.monotonic() - self._start

    def restart(self) -> None:
        self._start = time.monotonic()


class Deadline:
    """A soft deadline polled by long-running loops.

    ``Deadline(None)`` never expires, which lets callers write a single code
    path for bounded and unbounded runs.
    """

    def __init__(self, seconds: float | None) -> None:
        self.seconds = seconds
        self._expiry = None if seconds is None else time.monotonic() + seconds

    def expired(self) -> bool:
        return self._expiry is not None and time.monotonic() >= self._expiry

    def remaining(self) -> float | None:
        if self._expiry is None:
            return None
        return max(0.0, self._expiry - time.monotonic())

"""Shared fixtures: the paper's running example (Fig. 1–3) and helpers."""

from __future__ import annotations

import pytest

from repro import (
    Arithmetic,
    Demonstration,
    Env,
    Group,
    Partition,
    Proj,
    Table,
    TableRef,
    cell,
    func,
    partial_func,
)

ENROLLMENT = {
    "A": [(1667, 1367), (256, 347), (148, 237), (556, 432)],
    "B": [(2578, 1200), (300, 400), (500, 600), (768, 801)],
}
POPULATION = {"A": 5668, "B": 10541}


def make_health_table() -> Table:
    """The running example's input table T (Fig. 1)."""
    rows = []
    for city in ("A", "B"):
        for quarter, (youth, adult) in enumerate(ENROLLMENT[city], start=1):
            rows.append([city, quarter, "Youth", youth, POPULATION[city]])
            rows.append([city, quarter, "Adult", adult, POPULATION[city]])
    return Table.from_rows(
        "T", ["City", "Quarter", "Group", "Enrolled", "Population"], rows)


def make_ground_truth() -> Proj:
    """The paper's solution query q (Fig. 2), with the final projection."""
    q1 = Group(TableRef("T"), keys=(0, 1, 4), agg_func="sum", agg_col=3,
               alias="C1")
    q2 = Partition(q1, keys=(0,), agg_func="cumsum", agg_col=3, alias="C2")
    q3 = Arithmetic(q2, func="percent", cols=(4, 2), alias="Percentage")
    return Proj(q3, cols=(0, 1, 5))


def make_paper_demo() -> Demonstration:
    """The demonstration E exactly as shown in Fig. 3 (0-based indices)."""
    return Demonstration.of([
        [cell("T", 0, 0), cell("T", 0, 1),
         func("percent",
              func("sum", cell("T", 0, 3), cell("T", 1, 3)),
              cell("T", 0, 4))],
        [cell("T", 6, 0), cell("T", 6, 1),
         func("percent",
              partial_func("sum", cell("T", 0, 3), cell("T", 1, 3),
                           cell("T", 7, 3)),
              cell("T", 6, 4))],
    ])


@pytest.fixture(scope="session")
def health_table() -> Table:
    return make_health_table()


@pytest.fixture(scope="session")
def health_env(health_table) -> Env:
    return Env.of(health_table)


@pytest.fixture(scope="session")
def ground_truth() -> Proj:
    return make_ground_truth()


@pytest.fixture(scope="session")
def paper_demo() -> Demonstration:
    return make_paper_demo()


@pytest.fixture
def tiny_table() -> Table:
    """The introduction's table T (ID / Quarter / Sales)."""
    return Table.from_rows("T", ["ID", "Quarter", "Sales"], [
        ["A", 1, 10],
        ["A", 2, 20],
        ["A", 3, 15],
        ["B", 1, 20],
        ["B", 2, 15],
    ])

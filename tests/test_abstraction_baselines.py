"""The Morpheus-style type and Scythe-style value abstraction baselines."""

import pytest

from repro.abstraction import TypeAbstraction, ValueAbstraction
from repro.abstraction.type_abs import Shape, shape_of
from repro.abstraction.value_abs import ColumnValues, column_values_of
from repro.lang import (
    Arithmetic,
    Env,
    Filter,
    Group,
    Hole,
    Join,
    Partition,
    Proj,
    TableRef,
)
from repro.provenance import Demonstration, cell, func, partial_func
from repro.table import Table

H = Hole


@pytest.fixture
def env(tiny_table):
    return Env.of(tiny_table)


class TestTypeShapes:
    def test_concrete_shape_is_exact(self, env):
        q = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        assert shape_of(q, env) == Shape.exact(2, 2)

    def test_filter_hole_rows_interval(self, env):
        q = Filter(TableRef("T"), pred=H("pred"))
        s = shape_of(q, env)
        assert (s.rows_min, s.rows_max) == (0, 5)

    def test_group_with_known_keys_counts_groups(self, env):
        q = Group(TableRef("T"), keys=(0,), agg_func=H("agg_func"),
                  agg_col=H("agg_col"))
        s = shape_of(q, env)
        assert (s.rows_min, s.rows_max) == (2, 2)
        assert (s.cols_min, s.cols_max) == (2, 2)

    def test_group_unknown_keys_wide_interval(self, env):
        q = Group(TableRef("T"), keys=H("keys"), agg_func=H("agg_func"),
                  agg_col=H("agg_col"))
        s = shape_of(q, env)
        assert s.rows_max == 5
        assert s.cols_max == 4

    def test_partition_and_arith_add_column(self, env):
        for node in (Partition(TableRef("T"), keys=H("keys"),
                               agg_func=H("agg_func"), agg_col=H("agg_col")),
                     Arithmetic(TableRef("T"), func=H("func"),
                                cols=H("cols"))):
            s = shape_of(node, env)
            assert (s.cols_min, s.cols_max) == (4, 4)
            assert (s.rows_min, s.rows_max) == (5, 5)

    def test_join_shape(self, tiny_table):
        other = Table.from_rows("N", ["K"], [[1], [2], [3]])
        env = Env.of(tiny_table, other)
        s = shape_of(Join(TableRef("T"), TableRef("N"), pred=H("pred")), env)
        assert s.rows_max == 15
        assert s.cols_max == 4

    def test_proj_hole_cols(self, env):
        s = shape_of(Proj(TableRef("T"), cols=H("cols")), env)
        assert (s.cols_min, s.cols_max) == (1, 3)


class TestTypeFeasibility:
    def test_prunes_when_too_few_columns(self, env):
        demo = Demonstration.of([[cell("T", 0, 0)] * 3] * 2)
        q = Proj(Group(TableRef("T"), keys=(0,), agg_func=H("agg_func"),
                       agg_col=H("agg_col")), cols=H("cols"))
        assert not TypeAbstraction().feasible(q, env, demo)

    def test_prunes_when_too_few_rows(self, env):
        demo = Demonstration.of([[cell("T", i, 0)] for i in range(3)])
        q = Proj(Group(TableRef("T"), keys=(0,), agg_func=H("agg_func"),
                       agg_col=H("agg_col")), cols=H("cols"))
        assert not TypeAbstraction().feasible(q, env, demo)

    def test_cannot_see_wrong_grouping(self, health_env, paper_demo):
        """The paper's q_B survives type abstraction (§2.2)."""
        qb = Arithmetic(Group(TableRef("T"), keys=(0, 1, 4),
                              agg_func=H("agg_func"), agg_col=H("agg_col")),
                        func=H("func"), cols=H("cols"))
        assert TypeAbstraction().feasible(qb, health_env, paper_demo)


class TestValueColumns:
    def test_concrete_columns_exact(self, env):
        cols = column_values_of(TableRef("T"), env)
        assert cols[0].known == frozenset(("A", "B"))
        assert not cols[0].unknown

    def test_aggregate_column_is_top(self, env):
        q = Group(TableRef("T"), keys=(0,), agg_func=H("agg_func"),
                  agg_col=H("agg_col"))
        cols = column_values_of(q, env)
        assert cols[-1].unknown

    def test_covers(self):
        cv = ColumnValues(frozenset((1, 2)), False)
        assert cv.covers(2) and not cv.covers(3)
        assert ColumnValues.top().covers(42)


class TestValueFeasibility:
    def test_prunes_impossible_value(self, env):
        demo = Demonstration.of([
            [cell("T", 0, 0), func("sum", cell("T", 0, 2))],
            [cell("T", 3, 0), func("sum", cell("T", 3, 2))],
        ])
        # proj keeps only the key column: the sum value (10) exists nowhere
        q = Proj(Group(TableRef("T"), keys=(0, 2), agg_func="count",
                       agg_col=1), cols=H("cols"))
        # count output column is top, so this SURVIVES; but a proj of the
        # raw table only (no aggregate column) must be pruned
        q2 = Proj(Filter(TableRef("T"), pred=H("pred")), cols=(0,))
        assert not ValueAbstraction().feasible(q2, env, demo)

    def test_unknown_columns_match_anything(self, health_env, paper_demo):
        """The paper's q_B survives value abstraction (§2.2, table t_v2)."""
        qb = Arithmetic(Group(TableRef("T"), keys=(0, 1, 4),
                              agg_func=H("agg_func"), agg_col=H("agg_col")),
                        func=H("func"), cols=H("cols"))
        assert ValueAbstraction().feasible(qb, health_env, paper_demo)

    def test_partial_cells_are_skipped(self, env):
        demo = Demonstration.of([
            [partial_func("sum", cell("T", 0, 2))],
            [partial_func("sum", cell("T", 3, 2))],
        ])
        q = Proj(TableRef("T"), cols=H("cols"))
        assert ValueAbstraction().feasible(q, env, demo)

    def test_needs_enough_columns(self, env):
        demo = Demonstration.of([[cell("T", 0, 0)] * 5] * 1)
        q = Proj(TableRef("T"), cols=H("cols"))
        assert not ValueAbstraction().feasible(q, env, demo)

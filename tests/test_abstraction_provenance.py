"""The abstract provenance interpreter (Fig. 11) and its three tiers."""

import pytest

from repro.abstraction import (
    ProvenanceAbstraction,
    abstract_consistent,
    abstract_eval,
)
from repro.lang import (
    Arithmetic,
    Env,
    Filter,
    Group,
    Hole,
    Join,
    Partition,
    Proj,
    Sort,
    TableRef,
)
from repro.provenance import Demonstration, cell, func, partial_func
from repro.provenance.expr import CellRef
from repro.provenance.refs import refs_of
from repro.semantics import evaluate_tracking
from repro.table import Table

H = Hole


@pytest.fixture
def env(tiny_table):
    return Env.of(tiny_table)


def _refs(table_name, *pairs):
    return frozenset(CellRef(table_name, i, j) for i, j in pairs)


class TestBaseAndLift:
    def test_concrete_query_lifts_tracking(self, env):
        q = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        abs_t = abstract_eval(q, env)
        tracked = evaluate_tracking(q, env)
        for i in range(abs_t.n_rows):
            for j in range(abs_t.n_cols):
                assert abs_t.cell(i, j).refs == refs_of(tracked.exprs[i][j])
                assert abs_t.cell(i, j).known

    def test_table_ref_cells(self, env):
        abs_t = abstract_eval(TableRef("T"), env)
        assert abs_t.cell(2, 1).refs == _refs("T", (2, 1))


class TestWeakTier:
    def test_weak_partition_new_column_is_everything(self, env):
        q = Partition(TableRef("T"), keys=H("keys"), agg_func=H("agg_func"),
                      agg_col=H("agg_col"))
        abs_t = abstract_eval(q, env)
        assert abs_t.n_cols == 4
        everything = _refs("T", *[(i, j) for i in range(5) for j in range(3)])
        assert abs_t.cell(0, 3).refs == everything
        # existing columns pass through untouched
        assert abs_t.cell(1, 0).refs == _refs("T", (1, 0))

    def test_weak_group_collapses_columns(self, env):
        q = Group(TableRef("T"), keys=H("keys"), agg_func=H("agg_func"),
                  agg_col=H("agg_col"))
        abs_t = abstract_eval(q, env)
        # column c may draw from any row of column c
        assert abs_t.cell(0, 1).refs == _refs("T", *[(i, 1) for i in range(5)])
        assert abs_t.n_rows == 5  # up to one group per row

    def test_weak_arithmetic_uses_own_row(self, env):
        q = Arithmetic(TableRef("T"), func=H("func"), cols=H("cols"))
        abs_t = abstract_eval(q, env)
        assert abs_t.cell(1, 3).refs == _refs("T", (1, 0), (1, 1), (1, 2))


class TestMediumTier:
    def _abstract_valued_child(self):
        # The inner group's aggregate column has *unknown values* (function
        # hole), so an outer operator keyed on it lands in the medium tier.
        return Group(TableRef("T"), keys=(0,), agg_func=H("agg_func"),
                     agg_col=H("agg_col"))

    def test_medium_group_restricts_to_non_keys(self, env):
        q = Group(self._abstract_valued_child(), keys=(1,),
                  agg_func=H("agg_func"), agg_col=H("agg_col"))
        abs_t = abstract_eval(q, env)
        assert abs_t.n_cols == 2
        # the only non-key child column is the group-key column (col 0),
        # whose refs are the original ID column cells
        expected = _refs("T", *[(i, 0) for i in range(5)])
        assert abs_t.cell(0, 1).refs == expected

    def test_medium_partition_excludes_key_columns(self, env):
        q = Partition(self._abstract_valued_child(), keys=(1,),
                      agg_func=H("agg_func"), agg_col=H("agg_col"))
        abs_t = abstract_eval(q, env)
        child = abstract_eval(self._abstract_valued_child(), env)
        key_refs = frozenset().union(*(c.refs for c in child.column(1)))
        for i in range(abs_t.n_rows):
            assert not (abs_t.cell(i, 2).refs & key_refs)

    def test_rows_not_exact_below_pred_hole(self, env):
        child = Filter(TableRef("T"), pred=H("pred"))
        abs_t = abstract_eval(child, env)
        assert not abs_t.rows_exact
        # but the surviving cells keep exact value shadows
        assert abs_t.cell(0, 0).known


class TestStrongTier:
    def test_strong_partition_per_group_refs(self, env):
        q = Partition(TableRef("T"), keys=(0,), agg_func=H("agg_func"),
                      agg_col=H("agg_col"))
        abs_t = abstract_eval(q, env)
        # row 0 is in group A (rows 0-2); non-key columns 1, 2
        expected = _refs("T", *[(i, j) for i in range(3) for j in (1, 2)])
        assert abs_t.cell(0, 3).refs == expected

    def test_target_refinement_restricts_to_column(self, env):
        q = Partition(TableRef("T"), keys=(0,), agg_func=H("agg_func"),
                      agg_col=2)
        refined = abstract_eval(q, env, target_refinement=True)
        assert refined.cell(0, 3).refs == _refs("T", (0, 2), (1, 2), (2, 2))
        unrefined = abstract_eval(q, env, target_refinement=False)
        assert refined.cell(0, 3).refs < unrefined.cell(0, 3).refs

    def test_strong_group_one_row_per_group(self, env):
        q = Group(TableRef("T"), keys=(0,), agg_func=H("agg_func"),
                  agg_col=H("agg_col"))
        abs_t = abstract_eval(q, env)
        assert abs_t.n_rows == 2

    def test_aggregate_shadow_value_when_known(self, env):
        q = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        # wrap so the whole query is still partial
        q2 = Arithmetic(q, func=H("func"), cols=H("cols"))
        abs_t = abstract_eval(q2, env)
        assert abs_t.cell(0, 1).known
        assert abs_t.cell(0, 1).value == 45


class TestStructuralOps:
    def test_join_cross_product(self, tiny_table):
        other = Table.from_rows("N", ["ID"], [["A"], ["B"]])
        env = Env.of(tiny_table, other)
        q = Join(TableRef("T"), TableRef("N"), pred=H("pred"))
        abs_t = abstract_eval(q, env)
        assert abs_t.n_rows == 10
        assert not abs_t.rows_exact

    def test_sort_and_proj_pass_through(self, env):
        base = Partition(TableRef("T"), keys=H("keys"),
                         agg_func=H("agg_func"), agg_col=H("agg_col"))
        sorted_q = Sort(base, cols=H("cols"), ascending=H("ascending"))
        assert abstract_eval(sorted_q, env) == abstract_eval(base, env)
        proj_q = Proj(base, cols=(1, 3))
        abs_t = abstract_eval(proj_q, env)
        assert abs_t.n_cols == 2


class TestPaperPruningScenario:
    """§2.2 / Fig. 6: q_B is pruned, the correct skeleton path survives."""

    def _demo(self):
        return Demonstration.of([
            [cell("T", 0, 0), cell("T", 0, 1),
             func("percent", func("sum", cell("T", 0, 3), cell("T", 1, 3)),
                  cell("T", 0, 4))],
            [cell("T", 6, 0), cell("T", 6, 1),
             func("percent",
                  partial_func("sum", cell("T", 0, 3), cell("T", 1, 3),
                               cell("T", 7, 3)),
                  cell("T", 6, 4))],
        ])

    def test_qb_is_pruned(self, health_env):
        qb = Arithmetic(Group(TableRef("T"), keys=(0, 1, 4),
                              agg_func=H("agg_func"), agg_col=H("agg_col")),
                        func=H("func"), cols=H("cols"))
        prov = ProvenanceAbstraction()
        assert not prov.feasible(qb, health_env, self._demo())

    def test_correct_path_survives(self, health_env):
        good = Arithmetic(
            Partition(Group(TableRef("T"), keys=(0, 1, 4),
                            agg_func=H("agg_func"), agg_col=H("agg_col")),
                      keys=H("keys"), agg_func=H("agg_func"),
                      agg_col=H("agg_col")),
            func=H("func"), cols=H("cols"))
        prov = ProvenanceAbstraction()
        assert prov.feasible(good, health_env, self._demo())

    def test_fully_abstract_skeleton_survives(self, health_env):
        skel = Arithmetic(Group(TableRef("T"), keys=H("keys"),
                                agg_func=H("agg_func"), agg_col=H("agg_col")),
                          func=H("func"), cols=H("cols"))
        prov = ProvenanceAbstraction()
        assert prov.feasible(skel, health_env, self._demo())


class TestValueShadowRefinement:
    def test_wrong_function_refuted_by_value(self, env):
        # demo demands sum(10, 20, 15) = 45 for group A; a proj-with-hole on
        # top keeps the query partial without adding shielding columns
        demo = Demonstration.of([
            [cell("T", 0, 0), func("sum", cell("T", 0, 2), cell("T", 1, 2),
                                   cell("T", 2, 2))],
            [cell("T", 3, 0), func("sum", cell("T", 3, 2), cell("T", 4, 2))],
        ])
        wrong = Proj(Group(TableRef("T"), keys=(0,), agg_func="avg",
                           agg_col=2), cols=H("cols"))
        right = Proj(Group(TableRef("T"), keys=(0,), agg_func="sum",
                           agg_col=2), cols=H("cols"))
        strict = ProvenanceAbstraction(value_shadow=True)
        loose = ProvenanceAbstraction(value_shadow=False)
        assert not strict.feasible(wrong, env, demo)
        assert strict.feasible(right, env, demo)
        # without the refinement, refs cannot tell the functions apart
        assert loose.feasible(wrong, env, demo)

    def test_partial_demo_cells_never_value_checked(self, env):
        demo = Demonstration.of([
            [cell("T", 0, 0), partial_func("sum", cell("T", 0, 2))],
            [cell("T", 3, 0), partial_func("sum", cell("T", 3, 2))],
        ])
        q = Arithmetic(Group(TableRef("T"), keys=(0,), agg_func="avg",
                             agg_col=2),
                       func=H("func"), cols=H("cols"))
        # avg's value differs from any sum, but the demo cells are partial,
        # so the value refinement must not fire
        assert ProvenanceAbstraction().feasible(q, env, demo)


class TestAnalyzerRetention:
    """bind_engine keeps the session analyzer pinned and LRU-evicts
    override analyzers — an explicit policy, not dict-iteration luck."""

    def _engines(self, n):
        from repro.engine import RowEngine
        return [RowEngine() for _ in range(n)]

    def test_session_analyzer_survives_many_rebinds(self):
        prov = ProvenanceAbstraction()
        engines = self._engines(8)          # held alive: ids stay unique
        prov.bind_engine(engines[0])
        session = prov.analyzer
        for engine in engines[1:]:
            prov.bind_engine(engine)
        assert len(prov._analyzers) <= ProvenanceAbstraction.MAX_ANALYZERS
        prov.bind_engine(engines[0])
        assert prov.analyzer is session     # pinned, never evicted

    def test_override_eviction_is_lru(self):
        prov = ProvenanceAbstraction()
        engines = self._engines(6)
        for engine in engines[:4]:          # session + 3 overrides: at cap
            prov.bind_engine(engine)
        analyzers = {id(e): prov._analyzers[id(e)] for e in engines[:4]}
        prov.bind_engine(engines[1])        # refresh override 1's recency
        prov.bind_engine(engines[4])        # evicts override 2 (LRU), not 1
        assert id(engines[2]) not in prov._analyzers
        assert prov._analyzers[id(engines[1])] is analyzers[id(engines[1])]
        assert prov._analyzers[id(engines[0])] is analyzers[id(engines[0])]

    def test_rebind_reuses_retained_analyzer(self):
        prov = ProvenanceAbstraction()
        engines = self._engines(3)
        for engine in engines:
            prov.bind_engine(engine)
        first = prov._analyzers[id(engines[1])]
        prov.bind_engine(engines[1])
        assert prov.analyzer is first

    def test_stale_id_entry_replaced_not_reused(self):
        # Simulate id() reuse: poke an entry whose analyzer points at a
        # *different* engine object under the new engine's key.
        from repro.engine import RowEngine
        from repro.abstraction.provenance_abs import ProvenanceAnalyzer
        prov = ProvenanceAbstraction()
        old_engine, new_engine = RowEngine(), RowEngine()
        stale = ProvenanceAnalyzer(old_engine)
        prov._analyzers[id(new_engine)] = stale
        prov.bind_engine(new_engine)
        assert prov.analyzer is not stale
        assert prov.analyzer.engine is new_engine


class TestDemoAnalysisCache:
    """The demo-analysis memo is instance-owned and identity-safe."""

    def _demo(self):
        return Demonstration.of([
            [cell("T", 0, 0), func("sum", cell("T", 0, 2), cell("T", 1, 2),
                                   cell("T", 2, 2))],
            [cell("T", 3, 0), func("sum", cell("T", 3, 2), cell("T", 4, 2))],
        ])

    def test_no_module_global_cache(self):
        import repro.abstraction.consistency as consistency
        assert not hasattr(consistency, "_DEMO_CACHE")

    def test_instances_do_not_share_entries(self, env):
        a, b = ProvenanceAbstraction(), ProvenanceAbstraction()
        demo = self._demo()
        q = Group(TableRef("T"), keys=(0,), agg_func=H("agg_func"),
                  agg_col=H("agg_col"))
        assert a.feasible(q, env, demo)
        assert len(a._demo_cache) > 0
        assert len(b._demo_cache) == 0

    def test_stale_env_identity_is_recomputed(self, env):
        """A recycled Env id must never surface another env's values.

        Regression: the old guard only identity-checked the *demo*, so an
        entry keyed by a garbage-collected env's id answered for whatever
        new env inherited that id.  Entries now pin and identity-check
        both objects; a poked stale entry must be ignored and recomputed.
        """
        from repro.abstraction.consistency import DemoAnalysisCache
        cache = DemoAnalysisCache()
        demo = self._demo()
        other_env = Env.of(Table.from_rows("T", ["a", "b", "c"],
                                           [["x", 0, 0]] * 5))
        poison = object()
        cache._entries[(id(demo), id(env), True)] = \
            (demo, other_env, poison, poison, poison)
        refs, values, heads = cache.analysis(demo, env, True)
        assert refs is not poison
        assert values[0][1] == 45            # sum(10, 20, 15) under *env*
        # The stale entry was replaced by one pinning the right env.
        entry = cache._entries[(id(demo), id(env), True)]
        assert entry[1] is env

    def test_reset_clears_demo_cache(self, env):
        prov = ProvenanceAbstraction()
        prov.feasible(Group(TableRef("T"), keys=(0,), agg_func=H("agg_func"),
                            agg_col=H("agg_col")), env, self._demo())
        assert len(prov._demo_cache) > 0
        prov.reset()
        assert len(prov._demo_cache) == 0

"""Generative cross-backend differential harness.

With three engine backends, the repo's core guarantee — the ``backend``
knob trades evaluation strategy, never results — can no longer be held by
hand-picked cases alone.  This harness generates seeded random query plans
over seeded random tables (mixed dtypes, ``None`` cells, empty tables,
single-row groups, tolerance-tripping floats, ints past the NumPy
backend's int64-safe bound) and asserts that the row, columnar and NumPy
backends produce

* identical concrete tables (rows *and* inferred schemas),
* identical tracked terms and value shadows (term-for-term), and
* identical demonstration-consistency verdicts (incremental checker vs
  the naive Definition-1 oracle),

raising the same error type whenever a candidate is ill-typed on the
data.  Everything is deterministic through :func:`repro.util.rng.stable_rng`
— a failure reproduces from its printed seed alone.

When NumPy is absent the harness still differentials row vs columnar;
the NumPy comparisons skip cleanly (and CI runs a no-NumPy leg so the
pure-python fallback cannot rot).
"""

from __future__ import annotations

import pytest

from repro.engine import HAVE_NUMPY, make_engine
from repro.lang import ast
from repro.lang.predicates import AndPred, ColCmp, ConstCmp, TruePred
from repro.provenance.consistency import demo_consistent
from repro.provenance.demo import Demonstration
from repro.provenance.expr import CellRef, Const
from repro.table.table import Table
from repro.util.rng import stable_rng

#: Seeded evaluation cases (acceptance bar: >= 200 generated cases).
N_EVAL_CASES = 300
#: Seeded consistency-verdict cases (tracked output subgrids, half
#: perturbed so both verdicts occur).
N_CONSISTENCY_CASES = 120
#: Cases per parametrized batch: small enough that a failing batch
#: localizes quickly, large enough to keep collection overhead low.
BATCH = 25

AGG_FUNCS = ("sum", "avg", "max", "min", "count")
ANALYTIC_FUNCS = ("sum", "avg", "max", "min", "count", "cumsum", "cummax",
                  "cummin", "cumavg", "rank", "dense_rank", "rank_desc",
                  "dense_rank_desc")
ARITH_FUNCS = ("add", "sub", "mul", "div", "percent", "pct_change")
COMPARISON_OPS = ("==", "<", ">", "<=", ">=", "!=")

#: Value pools chosen to trip every classification and comparison edge:
#: int/float collisions (2 vs 2.0), float pairs inside and outside the
#: 1e-9 equality tolerance, ints beyond the int64-exactness bound, empty
#: strings, bools (same Python value as 0/1, different sort class).
INT_POOL = (0, 1, 2, 3, -1, -7, 10, 100, 10**12, 10**12 + 1, 2**53 + 1,
            -(2**53) - 3)
FLOAT_POOL = (0.0, -0.0, 1.0, 2.0, 2.5, -1.5, 0.1 + 0.2, 0.3, 1e-10,
              -1e-10, 1e12, 1e12 + 0.001, 3.0000000001, 3.0)
STR_POOL = ("a", "b", "cc", "d", "", "A", "ab", "a\x00", "\x00")
COLUMN_KINDS = ("int", "float", "str", "bool", "mixed")


def _value(rng, kind: str, none_p: float = 0.2):
    if rng.random() < none_p:
        return None
    if kind == "mixed":
        kind = rng.choice(("int", "float", "str", "bool"))
    if kind == "int":
        return rng.choice(INT_POOL)
    if kind == "float":
        return rng.choice(FLOAT_POOL)
    if kind == "bool":
        return rng.random() < 0.5
    return rng.choice(STR_POOL)


def _table(rng, name: str) -> Table:
    n_rows = rng.randrange(0, 9)       # 0 rows: empty-table edge case
    n_cols = rng.randrange(1, 5)
    kinds = [rng.choice(COLUMN_KINDS) for _ in range(n_cols)]
    # Low per-column None probability keeps most columns typed under the
    # NumPy backend while still exercising the object escape hatch.
    none_p = rng.choice((0.0, 0.0, 0.15, 0.5))
    rows = [tuple(_value(rng, kinds[j], none_p) for j in range(n_cols))
            for _ in range(n_rows)]
    return Table.from_rows(name, [f"c{j}" for j in range(n_cols)], rows)


def _pred(rng, n_cols: int):
    roll = rng.random()
    if roll < 0.4:
        return ConstCmp(rng.randrange(n_cols), rng.choice(COMPARISON_OPS),
                        _value(rng, "mixed", none_p=0.1))
    if roll < 0.75:
        return ColCmp(rng.randrange(n_cols), rng.choice(COMPARISON_OPS),
                      rng.randrange(n_cols))
    if roll < 0.9:
        return AndPred((ConstCmp(rng.randrange(n_cols),
                                 rng.choice(COMPARISON_OPS),
                                 _value(rng, "mixed", none_p=0.1)),
                        ColCmp(rng.randrange(n_cols),
                               rng.choice(COMPARISON_OPS),
                               rng.randrange(n_cols))))
    return TruePred()


def _width(query: ast.Query, env: ast.Env) -> int:
    from repro.lang.naming import output_columns

    return len(output_columns(query, env))


def _query(rng, env: ast.Env, depth: int) -> ast.Query:
    query: ast.Query = ast.TableRef(rng.choice(env.names()))
    for _ in range(depth):
        n_cols = _width(query, env)
        op = rng.choice(("filter", "sort", "proj", "group", "group",
                         "partition", "partition", "arith", "join",
                         "leftjoin"))
        if op == "filter":
            query = ast.Filter(query, _pred(rng, n_cols))
        elif op == "sort":
            width = rng.randrange(1, min(n_cols, 3) + 1)
            query = ast.Sort(query,
                             tuple(rng.sample(range(n_cols), width)),
                             rng.random() < 0.5)
        elif op == "proj":
            width = rng.randrange(1, n_cols + 1)
            query = ast.Proj(query,
                             tuple(rng.sample(range(n_cols), width)))
        elif op == "group":
            keys = tuple(sorted(rng.sample(range(n_cols),
                                           rng.randrange(0, n_cols))))
            query = ast.Group(query, keys, rng.choice(AGG_FUNCS),
                              rng.randrange(n_cols))
        elif op == "partition":
            keys = tuple(sorted(rng.sample(range(n_cols),
                                           rng.randrange(0, n_cols))))
            query = ast.Partition(query, keys, rng.choice(ANALYTIC_FUNCS),
                                  rng.randrange(n_cols))
        elif op == "arith":
            query = ast.Arithmetic(query, rng.choice(ARITH_FUNCS),
                                   (rng.randrange(n_cols),
                                    rng.randrange(n_cols)))
        elif op in ("join", "leftjoin"):
            other = ast.TableRef(rng.choice(env.names()))
            total = n_cols + _width(other, env)
            if op == "join":
                pred = None if rng.random() < 0.3 else _pred(rng, total)
                query = ast.Join(query, other, pred)
            else:
                query = ast.LeftJoin(query, other, _pred(rng, total))
    return query


def _case(label: str, seed: int):
    """(env, query) of one seeded case."""
    rng = stable_rng(label, seed)
    tables = [_table(rng, "T"), _table(rng, "S")]
    env = ast.Env(tuple(tables))
    return rng, env, _query(rng, env, rng.randrange(1, 6))


def _outcome(thunk):
    """(result, error type) with the error classes batch eval tolerates."""
    try:
        return thunk(), None
    except (TypeError, ValueError, ZeroDivisionError) as err:
        return None, type(err)


#: Backends differential against the row-engine reference.
TARGETS = ["columnar"] + (["numpy"] if HAVE_NUMPY else [])

_BATCHES = [range(start, start + BATCH)
            for start in range(0, N_EVAL_CASES, BATCH)]


@pytest.mark.parametrize("seeds", _BATCHES,
                         ids=[f"{b[0]}-{b[-1]}" for b in _BATCHES])
def test_backends_identical_on_random_plans(seeds):
    """Concrete tables and tracked terms agree on every backend."""
    for seed in seeds:
        _, env, query = _case("backend-fuzz", seed)
        reference = make_engine("row")
        expected, expected_err = _outcome(
            lambda: reference.evaluate(query, env))
        tracked, tracked_err = _outcome(
            lambda: reference.evaluate_tracking(query, env))
        for backend in TARGETS:
            engine = make_engine(backend)
            actual, err = _outcome(lambda: engine.evaluate(query, env))
            assert err == expected_err, (seed, backend, query)
            if expected is not None:
                assert actual.rows == expected.rows, (seed, backend, query)
                assert actual.schema == expected.schema, \
                    (seed, backend, query)
            actual_tracked, err = _outcome(
                lambda: engine.evaluate_tracking(query, env))
            assert err == tracked_err, (seed, backend, query)
            if tracked is not None:
                assert actual_tracked.columns == tracked.columns, \
                    (seed, backend, query)
                assert actual_tracked.values == tracked.values, \
                    (seed, backend, query)
                assert actual_tracked.exprs == tracked.exprs, \
                    (seed, backend, query)


_CONSISTENCY_BATCHES = [range(start, start + BATCH)
                        for start in range(0, N_CONSISTENCY_CASES, BATCH)]


@pytest.mark.parametrize("seeds", _CONSISTENCY_BATCHES,
                         ids=[f"{b[0]}-{b[-1]}" for b in _CONSISTENCY_BATCHES])
def test_consistency_verdicts_identical_on_random_demos(seeds):
    """Incremental-checker verdicts match the oracle on every backend.

    Demonstrations are random subgrids of the reference tracked output
    (consistent by construction), half perturbed with foreign refs or
    constants so inconsistent verdicts are exercised too.
    """
    for seed in seeds:
        rng, env, query = _case("consistency-fuzz", seed)
        reference = make_engine("row")
        tracked, _ = _outcome(
            lambda: reference.evaluate_tracking(query, env))
        if tracked is None or tracked.n_rows == 0 or tracked.n_cols == 0:
            continue
        n_demo_rows = rng.randrange(1, min(3, tracked.n_rows) + 1)
        n_demo_cols = rng.randrange(1, min(3, tracked.n_cols) + 1)
        row_pick = rng.sample(range(tracked.n_rows), n_demo_rows)
        col_pick = rng.sample(range(tracked.n_cols), n_demo_cols)
        cells = [[tracked.exprs[r][c] for c in col_pick] for r in row_pick]
        if rng.random() < 0.5:
            i = rng.randrange(n_demo_rows)
            j = rng.randrange(n_demo_cols)
            cells[i][j] = rng.choice(
                (Const(_value(rng, "mixed", none_p=0.1)),
                 CellRef("T", rng.randrange(9), rng.randrange(5))))
        demo = Demonstration.of(cells)
        oracle = demo_consistent(tracked.exprs, demo.cells)
        for backend in ["row", *TARGETS]:
            engine = make_engine(backend)
            verdict = engine.consistency.demo_consistent(query, env, demo)
            assert verdict == oracle, (seed, backend, query)


@pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
def test_numpy_backend_constructs_numpy_engine():
    from repro.engine import NumpyEngine

    assert isinstance(make_engine("numpy"), NumpyEngine)


def test_fuzz_case_count_meets_acceptance_bar():
    """The harness must keep generating at least the promised case count."""
    assert N_EVAL_CASES >= 200
    assert len(TARGETS) >= 1

"""Generative cross-backend differential harness.

With three engine backends, the repo's core guarantee — the ``backend``
knob trades evaluation strategy, never results — can no longer be held by
hand-picked cases alone.  This harness draws seeded random query plans
over seeded random tables from :mod:`repro.oracle.fuzz`'s backend profile
(mixed dtypes, ``None`` cells, empty tables, single-row groups,
tolerance-tripping floats, ints past the NumPy backend's int64-safe
bound — the generator lives there so the database-oracle suite shares
it) and asserts that the row, columnar and NumPy backends produce

* identical concrete tables (rows *and* inferred schemas),
* identical tracked terms and value shadows (term-for-term), and
* identical demonstration-consistency verdicts (incremental checker vs
  the naive Definition-1 oracle),

raising the same error type whenever a candidate is ill-typed on the
data.  Everything is deterministic through :func:`repro.util.rng.stable_rng`
— a failure reproduces from its printed seed alone.

When NumPy is absent the harness still differentials row vs columnar;
the NumPy comparisons skip cleanly (and CI runs a no-NumPy leg so the
pure-python fallback cannot rot).
"""

from __future__ import annotations

import pytest

from repro.engine import HAVE_NUMPY, make_engine
from repro.oracle.fuzz import fuzz_case as _case
from repro.oracle.fuzz import random_value as _value
from repro.provenance.consistency import demo_consistent
from repro.provenance.demo import Demonstration
from repro.provenance.expr import CellRef, Const

#: Seeded evaluation cases (acceptance bar: >= 200 generated cases).
N_EVAL_CASES = 300
#: Seeded consistency-verdict cases (tracked output subgrids, half
#: perturbed so both verdicts occur).
N_CONSISTENCY_CASES = 120
#: Cases per parametrized batch: small enough that a failing batch
#: localizes quickly, large enough to keep collection overhead low.
BATCH = 25


def _outcome(thunk):
    """(result, error type) with the error classes batch eval tolerates."""
    try:
        return thunk(), None
    except (TypeError, ValueError, ZeroDivisionError) as err:
        return None, type(err)


#: Backends differential against the row-engine reference.
TARGETS = ["columnar"] + (["numpy"] if HAVE_NUMPY else [])

_BATCHES = [range(start, start + BATCH)
            for start in range(0, N_EVAL_CASES, BATCH)]


@pytest.mark.parametrize("seeds", _BATCHES,
                         ids=[f"{b[0]}-{b[-1]}" for b in _BATCHES])
def test_backends_identical_on_random_plans(seeds):
    """Concrete tables and tracked terms agree on every backend."""
    for seed in seeds:
        _, env, query = _case("backend-fuzz", seed)
        reference = make_engine("row")
        expected, expected_err = _outcome(
            lambda: reference.evaluate(query, env))
        tracked, tracked_err = _outcome(
            lambda: reference.evaluate_tracking(query, env))
        for backend in TARGETS:
            engine = make_engine(backend)
            actual, err = _outcome(lambda: engine.evaluate(query, env))
            assert err == expected_err, (seed, backend, query)
            if expected is not None:
                assert actual.rows == expected.rows, (seed, backend, query)
                assert actual.schema == expected.schema, \
                    (seed, backend, query)
            actual_tracked, err = _outcome(
                lambda: engine.evaluate_tracking(query, env))
            assert err == tracked_err, (seed, backend, query)
            if tracked is not None:
                assert actual_tracked.columns == tracked.columns, \
                    (seed, backend, query)
                assert actual_tracked.values == tracked.values, \
                    (seed, backend, query)
                assert actual_tracked.exprs == tracked.exprs, \
                    (seed, backend, query)


_CONSISTENCY_BATCHES = [range(start, start + BATCH)
                        for start in range(0, N_CONSISTENCY_CASES, BATCH)]


@pytest.mark.parametrize("seeds", _CONSISTENCY_BATCHES,
                         ids=[f"{b[0]}-{b[-1]}" for b in _CONSISTENCY_BATCHES])
def test_consistency_verdicts_identical_on_random_demos(seeds):
    """Incremental-checker verdicts match the oracle on every backend.

    Demonstrations are random subgrids of the reference tracked output
    (consistent by construction), half perturbed with foreign refs or
    constants so inconsistent verdicts are exercised too.
    """
    for seed in seeds:
        rng, env, query = _case("consistency-fuzz", seed)
        reference = make_engine("row")
        tracked, _ = _outcome(
            lambda: reference.evaluate_tracking(query, env))
        if tracked is None or tracked.n_rows == 0 or tracked.n_cols == 0:
            continue
        n_demo_rows = rng.randrange(1, min(3, tracked.n_rows) + 1)
        n_demo_cols = rng.randrange(1, min(3, tracked.n_cols) + 1)
        row_pick = rng.sample(range(tracked.n_rows), n_demo_rows)
        col_pick = rng.sample(range(tracked.n_cols), n_demo_cols)
        cells = [[tracked.exprs[r][c] for c in col_pick] for r in row_pick]
        if rng.random() < 0.5:
            i = rng.randrange(n_demo_rows)
            j = rng.randrange(n_demo_cols)
            cells[i][j] = rng.choice(
                (Const(_value(rng, "mixed", none_p=0.1)),
                 CellRef("T", rng.randrange(9), rng.randrange(5))))
        demo = Demonstration.of(cells)
        oracle = demo_consistent(tracked.exprs, demo.cells)
        for backend in ["row", *TARGETS]:
            engine = make_engine(backend)
            verdict = engine.consistency.demo_consistent(query, env, demo)
            assert verdict == oracle, (seed, backend, query)


@pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
def test_numpy_backend_constructs_numpy_engine():
    from repro.engine import NumpyEngine

    assert isinstance(make_engine("numpy"), NumpyEngine)


def test_fuzz_case_count_meets_acceptance_bar():
    """The harness must keep generating at least the promised case count."""
    assert N_EVAL_CASES >= 200
    assert len(TARGETS) >= 1

"""The 80-task benchmark suite: structure, validity, statistics."""

import pytest

from repro.benchmarks import (
    all_tasks,
    easy_tasks,
    get_task,
    hard_tasks,
    task_summary,
    tasks_by_suite,
    validate_task,
)
from repro.errors import BenchmarkError
from repro.provenance.consistency import demo_consistent
from repro.semantics import evaluate, evaluate_tracking

TASKS = all_tasks()


class TestSuiteComposition:
    """§5.1's benchmark profile."""

    def test_eighty_tasks(self):
        assert len(TASKS) == 80

    def test_split_43_easy_37_hard(self):
        assert len(easy_tasks()) == 43
        assert len(hard_tasks()) == 37

    def test_60_forum_20_tpcds(self):
        assert len(tasks_by_suite("forum")) == 60
        assert len(tasks_by_suite("tpcds")) == 20

    def test_tpcds_all_hard(self):
        assert all(t.difficulty == "hard" for t in tasks_by_suite("tpcds"))

    def test_easy_tasks_use_1_to_3_operators(self):
        assert all(1 <= t.operators_required <= 3 for t in easy_tasks())

    def test_hard_tasks_use_4_to_7_operators(self):
        assert all(4 <= t.operators_required <= 7 for t in hard_tasks())

    def test_unique_names(self):
        names = [t.name for t in TASKS]
        assert len(names) == len(set(names))

    def test_feature_mix(self):
        summary = task_summary()
        assert summary["requires_join"] >= 15
        assert summary["requires_partition"] >= 45
        assert summary["requires_group"] >= 30

    def test_mean_demo_size_near_paper(self):
        # paper: average demonstration size 9 cells (vs ~50 for full output)
        summary = task_summary()
        assert 6 <= summary["mean_demo_cells"] <= 12
        assert summary["mean_full_output_cells"] >= \
            3 * summary["mean_demo_cells"]


class TestEveryTaskIsWellFormed:
    @pytest.mark.parametrize("task", TASKS, ids=lambda t: t.name)
    def test_validates(self, task):
        validate_task(task)

    @pytest.mark.parametrize("task", TASKS, ids=lambda t: t.name)
    def test_demo_consistent_with_ground_truth(self, task):
        tracked = evaluate_tracking(task.ground_truth, task.env)
        assert demo_consistent(tracked.exprs, task.demonstration.cells)

    @pytest.mark.parametrize("task", TASKS, ids=lambda t: t.name)
    def test_ground_truth_within_budget(self, task):
        assert task.operators_required <= task.config.max_operators

    @pytest.mark.parametrize("task", TASKS, ids=lambda t: t.name)
    def test_demonstration_deterministic(self, task):
        from repro.spec import generate_demonstration
        again = generate_demonstration(task.ground_truth, task.env,
                                       task.demo_config, label=task.name)
        assert again.cells == task.demonstration.cells


class TestRegistry:
    def test_get_task(self):
        t = get_task("fe36_health_program_percentage")
        assert t.suite == "forum"

    def test_get_unknown_task(self):
        with pytest.raises(KeyError):
            get_task("nope")

    def test_running_example_output_matches_paper(self):
        t = get_task("fe36_health_program_percentage")
        out = evaluate(t.ground_truth, t.env)
        # Fig. 1: city A percentages 53.5, 64.1, 70.9, 88.3
        a_rows = [row for row in out.rows if row[0] == "A"]
        percentages = sorted(round(row[-1], 1) for row in a_rows)
        assert percentages == [53.5, 64.2, 71.0, 88.4]


class TestTaskInvariants:
    def test_invalid_suite_rejected(self):
        from repro.benchmarks.task import BenchmarkTask
        from repro.synthesis import SynthesisConfig
        from repro.lang import TableRef
        t = TASKS[0]
        with pytest.raises(BenchmarkError):
            BenchmarkTask(name="x", suite="weird", difficulty="easy",
                          description="", tables=t.tables,
                          ground_truth=TableRef("T"),
                          config=SynthesisConfig())

    def test_features_derived_from_ground_truth(self):
        t = get_task("fe23_amount_by_segment")
        assert "join" in t.features and "group" in t.features

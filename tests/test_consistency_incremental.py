"""Differential tests for the incremental consistency checker.

The incremental checker (:mod:`repro.provenance.incremental`) must be a
pure performance device: over each task's *real* instantiation stream —
the exact candidate population Algorithm 1 feeds the ≺ judgment — its
verdicts must be identical to the naive Definition-1 implementation
(``demo_consistent``, kept as the reference oracle) on every task in the
benchmark registry, on both engine backends.

The unit tests below pin the checker's contract: verdict caching, the
column match-state memo shared across sibling candidates, column-level
pruning, batching equivalence, and reset behavior.
"""

import pytest

from repro.benchmarks import all_tasks, instantiation_stream
from repro.engine import HAVE_NUMPY, make_engine
from repro.provenance.consistency import demo_consistent

#: Concrete candidates per task for the registry-wide differential sweep.
CANDIDATES = 40

TASKS = all_tasks()

#: Row-backend subset (the generic ``tracked_columns_many`` transpose
#: path): the full 80-task sweep runs columnar — the synthesis default and
#: the backend whose column sharing the memo exploits.
ROW_TASKS = [t for t in TASKS if t.name in (
    "fe01_total_sales_per_region",
    "fe09_cumulative_units_per_product",
    "fe10_salary_rank_within_dept",
    "fe20_share_of_region_total",
    "fh02_region_quarter_share",
    "td03_category_profit_rank",
)]


def concrete_candidates(task, cap=CANDIDATES):
    """The task's real instantiation stream (shared helper)."""
    return instantiation_stream(task, cap)


def assert_matches_oracle(task, backend):
    engine = make_engine(backend)
    candidates = concrete_candidates(task)
    verdicts = engine.consistency.demo_consistent_many(
        candidates, task.env, task.demonstration)
    tracked = engine.evaluate_tracking_many(candidates, task.env,
                                            errors="none")
    for query, verdict, table in zip(candidates, verdicts, tracked):
        expected = (table is not None
                    and demo_consistent(table.exprs, task.demonstration.cells))
        assert verdict == expected, f"verdict mismatch on {query}"


@pytest.mark.parametrize("task", TASKS, ids=[t.name for t in TASKS])
def test_incremental_matches_oracle_columnar(task):
    assert_matches_oracle(task, "columnar")


@pytest.mark.parametrize("task", ROW_TASKS, ids=[t.name for t in ROW_TASKS])
def test_incremental_matches_oracle_row(task):
    assert_matches_oracle(task, "row")


@pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
@pytest.mark.parametrize("task", TASKS, ids=[t.name for t in TASKS])
def test_incremental_matches_oracle_numpy(task):
    """The NumPy backend's cached TrackedBlock columns (handed out by
    identity through ``tracked_columns_many``) must drive the checker to
    the same verdicts as the naive oracle on every registry task."""
    assert_matches_oracle(task, "numpy")


@pytest.fixture()
def task():
    return next(t for t in TASKS if t.name == "fe01_total_sales_per_region")


class TestCheckerContract:
    def test_ground_truth_consistent(self, task):
        engine = make_engine("columnar")
        assert engine.consistency.demo_consistent(
            task.ground_truth, task.env, task.demonstration)

    def test_verdict_cache(self, task):
        engine = make_engine("columnar")
        checker = engine.consistency
        checker.demo_consistent(task.ground_truth, task.env,
                                task.demonstration)
        assert engine.stats.consistency_checks == 1
        assert engine.stats.consistency_hits == 0
        checker.demo_consistent(task.ground_truth, task.env,
                                task.demonstration)
        assert engine.stats.consistency_checks == 1
        assert engine.stats.consistency_hits == 1

    def test_batched_equals_single(self, task):
        candidates = concrete_candidates(task)
        batched = make_engine("columnar")
        singles = make_engine("columnar")
        many = batched.consistency.demo_consistent_many(
            candidates, task.env, task.demonstration)
        ones = [singles.consistency.demo_consistent(q, task.env,
                                                    task.demonstration)
                for q in candidates]
        assert many == ones

    def test_sibling_family_shares_column_state(self, task):
        """Checking a sibling family only computes each shared column's
        match matrix once — the memo must hit for reused columns."""
        candidates = concrete_candidates(task)
        engine = make_engine("columnar")
        engine.consistency.demo_consistent_many(candidates, task.env,
                                                task.demonstration)
        stats = engine.stats
        assert stats.col_match_hits > 0
        # Far fewer matrices computed than (candidate, column) pairs.
        total_columns = sum(
            t.n_cols for t in engine.evaluate_tracking_many(
                candidates, task.env, errors="none") if t is not None)
        assert stats.col_match_evals < total_columns

    def test_column_level_pruning_counted(self, task):
        """Candidates whose columns cannot cover the demo are rejected
        before any row embedding and counted as column-pruned."""
        candidates = concrete_candidates(task)
        engine = make_engine("columnar")
        engine.consistency.demo_consistent_many(candidates, task.env,
                                                task.demonstration)
        stats = engine.stats
        assert 0 < stats.consistency_col_pruned <= stats.consistency_checks

    def test_ill_typed_candidate_is_inconsistent(self, task):
        """A candidate that errors under evaluation is not a solution."""
        from repro.lang import ast
        bad = ast.Arithmetic(ast.TableRef(task.tables[0].name), "div",
                             (0, 0))
        engine = make_engine("columnar")
        try:
            engine.evaluate_tracking(bad, task.env)
            ill_typed = False
        except (TypeError, ValueError, ZeroDivisionError):
            ill_typed = True
        if not ill_typed:
            pytest.skip("table admits div(c0, c0); not an error case here")
        assert engine.consistency.demo_consistent(
            bad, task.env, task.demonstration) is False

    def test_reset_clears_checker_state(self, task):
        engine = make_engine("columnar")
        engine.consistency.demo_consistent(task.ground_truth, task.env,
                                           task.demonstration)
        engine.reset()
        assert engine.stats.consistency_checks == 0
        engine.consistency.demo_consistent(task.ground_truth, task.env,
                                           task.demonstration)
        # Cold again: the verdict was recomputed, not served from cache.
        assert engine.stats.consistency_checks == 1
        assert engine.stats.consistency_hits == 0

    def test_row_and_columnar_verdicts_agree(self, task):
        candidates = concrete_candidates(task)
        row = make_engine("row")
        columnar = make_engine("columnar")
        assert row.consistency.demo_consistent_many(
            candidates, task.env, task.demonstration) == \
            columnar.consistency.demo_consistent_many(
                candidates, task.env, task.demonstration)


class TestBitsetMatching:
    def test_bitset_match_agrees_with_callback_matcher(self):
        from itertools import product

        from repro.util.matching import bipartite_match, bitset_match
        # Exhaustive 3x3 adjacency sweep: feasibility must agree with the
        # callback matcher on all 512 graphs.
        for rows in product(range(8), repeat=3):
            viaset = bitset_match(list(rows), 3)
            via_cb = bipartite_match(3, 3,
                                     lambda i, j: bool(rows[i] >> j & 1))
            assert (viaset is None) == (via_cb is None), rows

    def test_bitset_match_assignment_is_valid(self):
        from repro.util.matching import bitset_match
        adjacency = [0b011, 0b001, 0b110]
        assign = bitset_match(adjacency, 3)
        assert assign is not None
        assert sorted(assign) == sorted(set(assign))
        for i, j in enumerate(assign):
            assert adjacency[i] >> j & 1

    def test_bitset_embedding_respects_injectivity(self):
        from repro.util.matching import bitset_embedding_exists
        # Two demo columns both only compatible with output column 0.
        options = [[(0, (0b1,))], [(0, (0b1,))]]
        assert not bitset_embedding_exists(options, 1, 1)

    def test_bitset_embedding_row_masks_intersect(self):
        from repro.util.matching import bitset_embedding_exists
        # Column choices individually fine, but their row masks force the
        # single demo row onto two different output rows — the AND of the
        # masks is empty, so no embedding exists.
        options = [[(0, (0b01,))], [(1, (0b10,))]]
        assert not bitset_embedding_exists(options, 1, 2)
        # Overlapping masks embed fine.
        options = [[(0, (0b11,))], [(1, (0b10,))]]
        assert bitset_embedding_exists(options, 1, 2)

"""The evaluation engine layer: caches, backends, isolation."""

import pytest

from repro.engine import (
    BoundedCache,
    ColumnarEngine,
    ColumnBlock,
    RowEngine,
    make_engine,
)
from repro.engine.columns import (
    arithmetic_block,
    cross_join,
    filter_block,
    group_block,
    join_blocks,
    left_join_blocks,
    partition_block,
    predicate_mask,
    select_columns,
    sort_block,
)
from repro.errors import HoleError
from repro.lang import (
    Arithmetic,
    Env,
    Filter,
    Group,
    Hole,
    Join,
    LeftJoin,
    Partition,
    Proj,
    Sort,
    TableRef,
)
from repro.lang.predicates import AndPred, ColCmp, ConstCmp, TruePred
from repro.table.table import Table


@pytest.fixture
def table():
    return Table.from_rows(
        "T", ["City", "Quarter", "Amount"],
        [["A", 1, 10], ["A", 2, 20], ["B", 1, 30], ["B", 2, 40], ["A", 1, 5]])


@pytest.fixture
def env(table):
    return Env.of(table)


@pytest.fixture
def lookup():
    return Table.from_rows("L", ["City", "Region"],
                           [["A", "north"], ["B", "south"]])


class TestBoundedCache:
    def test_roundtrip(self):
        c = BoundedCache(10)
        c["a"] = 1
        assert c["a"] == 1
        assert c.get("missing") is None
        assert len(c) == 1

    def test_eviction_is_lru(self):
        c = BoundedCache(2)
        c["a"], c["b"] = 1, 2
        _ = c["a"]          # refresh "a"
        c["c"] = 3          # evicts "b"
        assert "a" in c and "c" in c and "b" not in c

    def test_unbounded(self):
        c = BoundedCache(None)
        for i in range(1000):
            c[i] = i
        assert len(c) == 1000

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            BoundedCache(0)


class TestMakeEngine:
    def test_factory_names(self):
        assert make_engine("row").name == "row"
        assert make_engine("columnar").name == "columnar"

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            make_engine("gpu")


@pytest.mark.parametrize("engine_cls", [RowEngine, ColumnarEngine])
class TestEngineContract:
    def test_evaluate_matches_semantics(self, engine_cls, env):
        from repro.semantics import evaluate
        q = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        assert engine_cls().evaluate(q, env) == evaluate(q, env)

    def test_tracking_matches_semantics(self, engine_cls, env):
        from repro.semantics import evaluate_tracking
        q = Partition(TableRef("T"), keys=(0,), agg_func="cumsum", agg_col=2)
        assert engine_cls().evaluate_tracking(q, env) == evaluate_tracking(q, env)

    def test_partial_query_raises(self, engine_cls, env):
        q = Group(TableRef("T"), keys=Hole("keys"), agg_func="sum", agg_col=2)
        with pytest.raises(HoleError):
            engine_cls().evaluate(q, env)
        with pytest.raises(HoleError):
            engine_cls().evaluate_tracking(q, env)

    def test_cache_hits_counted(self, engine_cls, env):
        engine = engine_cls()
        q = Sort(TableRef("T"), cols=(2,), ascending=False)
        first = engine.evaluate(q, env)
        second = engine.evaluate(q, env)
        assert first is second
        assert engine.stats.concrete_hits == 1
        assert engine.stats.concrete_evals == 1

    def test_reset_drops_state(self, engine_cls, env):
        engine = engine_cls()
        q = TableRef("T")
        engine.evaluate(q, env)
        engine.evaluate_tracking(q, env)
        engine.reset()
        assert engine.stats.concrete_evals == 0
        engine.evaluate(q, env)
        assert engine.stats.concrete_hits == 0
        assert engine.stats.concrete_evals == 1

    def test_engines_do_not_share_state(self, engine_cls, env):
        a, b = engine_cls(), engine_cls()
        q = TableRef("T")
        a.evaluate(q, env)
        assert b.stats.concrete_evals == 0
        b.evaluate(q, env)
        assert b.stats.concrete_hits == 0  # b computed, not served from a

    def test_shared_prefix_computed_once(self, engine_cls, env):
        engine = engine_cls()
        base = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        for func in ("sum", "max", "min", "count"):
            q = Arithmetic(Group(TableRef("T"), keys=(0,), agg_func=func,
                                 agg_col=2), func="div", cols=(1, 1))
            engine.evaluate(q, env)
        # The TableRef (and the sum-Group) subtree results were reused.
        assert engine.evaluate(base, env) is engine.evaluate(base, env)


class TestRowColumnarEquivalence:
    """The two backends are byte-for-byte interchangeable."""

    def _queries(self):
        t = TableRef("T")
        return [
            t,
            Filter(t, ConstCmp(2, ">", 10)),
            Filter(t, ColCmp(2, ">", 1)),
            Proj(t, cols=(2, 0)),
            Proj(t, cols=(0, 0)),
            Sort(t, cols=(2,), ascending=True),
            Sort(t, cols=(0,), ascending=False),
            Group(t, keys=(0,), agg_func="avg", agg_col=2),
            Group(t, keys=(0, 1), agg_func="count", agg_col=2),
            Group(t, keys=(), agg_func="sum", agg_col=2),
            Partition(t, keys=(0,), agg_func="cumsum", agg_col=2),
            Partition(t, keys=(), agg_func="rank", agg_col=2),
            Partition(t, keys=(1,), agg_func="max", agg_col=2),
            Arithmetic(t, func="div", cols=(2, 1)),
            Arithmetic(Group(t, keys=(0,), agg_func="sum", agg_col=2),
                       func="percent", cols=(1, 1)),
        ]

    def test_single_table_queries(self, env):
        row, col = RowEngine(), ColumnarEngine()
        for q in self._queries():
            assert row.evaluate(q, env) == col.evaluate(q, env), q

    def test_join_queries(self, table, lookup):
        env = Env.of(table, lookup)
        t, l = TableRef("T"), TableRef("L")
        queries = [
            Join(t, l),                                   # cross product
            Join(t, l, pred=ColCmp(0, "==", 3)),          # equi-join
            Join(t, l, pred=ColCmp(0, "==", 0)),          # degenerate (left-left)
            Join(t, l, pred=ColCmp(3, "==", 3)),          # degenerate (right-right)
            LeftJoin(t, l, pred=ColCmp(0, "==", 3)),
            LeftJoin(t, l, pred=ColCmp(2, "==", 3)),      # no matches: padding
            Join(t, l, pred=AndPred((ColCmp(0, "==", 3), TruePred()))),
        ]
        row, col = RowEngine(), ColumnarEngine()
        for q in queries:
            assert row.evaluate(q, env) == col.evaluate(q, env), q

    def test_empty_results_match(self, env):
        row, col = RowEngine(), ColumnarEngine()
        q = Group(Filter(TableRef("T"), ConstCmp(2, ">", 1_000_000)),
                  keys=(0,), agg_func="sum", agg_col=2)
        assert row.evaluate(q, env) == col.evaluate(q, env)


class TestColumnBlockKernels:
    def _block(self, table):
        return ColumnBlock.from_table(table)

    def test_roundtrip(self, table):
        block = self._block(table)
        assert block.n_rows == table.n_rows
        assert block.n_cols == table.n_cols
        assert block.row_tuples() == list(table.rows)

    def test_select_shares_columns(self, table):
        block = self._block(table)
        picked = select_columns(block, (2, 0))
        assert picked.columns[0] is block.columns[2]
        assert picked.columns[1] is block.columns[0]

    def test_append_only_operators_share_columns(self, table):
        block = self._block(table)
        part = partition_block(block, (0,), "sum", 2)
        arith = arithmetic_block(block, "add", (2, 2))
        for j in range(block.n_cols):
            assert part.columns[j] is block.columns[j]
            assert arith.columns[j] is block.columns[j]

    def test_predicate_mask_matches_rowwise(self, table):
        block = self._block(table)
        preds = [TruePred(), ConstCmp(2, ">=", 20), ColCmp(1, "<", 2),
                 AndPred((ConstCmp(0, "==", "A"), ConstCmp(2, ">", 5)))]
        for pred in preds:
            mask = predicate_mask(pred, block)
            assert mask == [pred.evaluate(r) for r in table.rows]

    def test_filter_all_pass_reuses_block(self, table):
        block = self._block(table)
        assert filter_block(block, TruePred()) is block

    def test_cross_join_order(self):
        left = ColumnBlock([[1, 2]], 2)
        right = ColumnBlock([["x", "y"]], 2)
        crossed = cross_join(left, right)
        assert crossed.row_tuples() == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]

    def test_join_blocks_pred_none_is_cross(self):
        left = ColumnBlock([[1, 2]], 2)
        right = ColumnBlock([["x"]], 1)
        assert join_blocks(left, right, None).row_tuples() == \
            cross_join(left, right).row_tuples()

    def test_left_join_pads_unmatched(self):
        left = ColumnBlock([[1, 2, 3]], 3)
        right = ColumnBlock([[2, 3], ["b", "c"]], 2)
        out = left_join_blocks(left, right, ColCmp(0, "==", 1))
        assert out.row_tuples() == [(1, None, None), (2, 2, "b"), (3, 3, "c")]

    def test_sort_block_is_stable(self, table):
        block = self._block(table)
        out = sort_block(block, (0,), ascending=True)
        # Ties on "A" keep original relative order (stable sort).
        assert [r[2] for r in out.row_tuples()] == [10, 20, 5, 30, 40]

    def test_group_block_first_occurrence_order(self, table):
        block = self._block(table)
        out = group_block(block, (0,), "sum", 2)
        assert out.row_tuples() == [("A", 35), ("B", 70)]


class TestSessionEngineContracts:
    """Regressions from review: engine supply, override hygiene, pickling."""

    def _task(self):
        from repro.benchmarks import get_task
        return get_task("fe01_total_sales_per_region")

    def test_supplied_engine_is_used(self):
        from repro.synthesis.synthesizer import Synthesizer
        task = self._task()
        engine = RowEngine()
        s = Synthesizer("provenance", task.config.replace(max_visited=100),
                        engine=engine)
        s.run(task.tables, task.demonstration)
        assert s.engine is engine
        assert s.config.backend == "row"
        assert engine.stats.concrete_evals + engine.stats.tracking_evals > 0

    def test_backend_override_keeps_session_state(self):
        from repro.synthesis.synthesizer import Synthesizer
        task = self._task()
        s = Synthesizer("provenance",
                        task.config.replace(backend="columnar",
                                            max_visited=100))
        base = s.run(task.tables, task.demonstration)
        session_analyzer = s.abstraction.analyzer
        for _ in range(8):   # repeated overrides must not leak analyzers
            override = s.run(task.tables, task.demonstration,
                             config=task.config.replace(backend="row",
                                                        max_visited=100))
            assert override.queries == base.queries
        assert s.engine.name == "columnar"
        assert s.abstraction.analyzer is session_analyzer
        assert len(s.abstraction._analyzers) <= 4

    def test_cached_hashes_not_pickled(self):
        import pickle
        task = self._task()
        for obj in (task.tables[0], task.env, task.ground_truth):
            hash(obj)  # populate the per-process cache
            clone = pickle.loads(pickle.dumps(obj))
            assert "_hash" not in clone.__dict__
            assert clone == obj and hash(clone) == hash(obj)

"""The evaluation engine layer: caches, backends, isolation."""

import pytest

from repro.engine import (
    HAVE_NUMPY,
    BoundedCache,
    ColumnarEngine,
    ColumnBlock,
    NumpyEngine,
    RowEngine,
    capabilities,
    make_engine,
    resolve_backend,
)
from repro.engine.columns import (
    arithmetic_block,
    cross_join,
    filter_block,
    group_block,
    join_blocks,
    left_join_blocks,
    partition_block,
    predicate_mask,
    select_columns,
    sort_block,
)
from repro.errors import HoleError
from repro.lang import (
    Arithmetic,
    Env,
    Filter,
    Group,
    Hole,
    Join,
    LeftJoin,
    Partition,
    Proj,
    Sort,
    TableRef,
)
from repro.lang.predicates import AndPred, ColCmp, ConstCmp, TruePred
from repro.table.table import Table


@pytest.fixture
def table():
    return Table.from_rows(
        "T", ["City", "Quarter", "Amount"],
        [["A", 1, 10], ["A", 2, 20], ["B", 1, 30], ["B", 2, 40], ["A", 1, 5]])


@pytest.fixture
def env(table):
    return Env.of(table)


@pytest.fixture
def lookup():
    return Table.from_rows("L", ["City", "Region"],
                           [["A", "north"], ["B", "south"]])


class TestBoundedCache:
    def test_roundtrip(self):
        c = BoundedCache(10)
        c["a"] = 1
        assert c["a"] == 1
        assert c.get("missing") is None
        assert len(c) == 1

    def test_eviction_is_lru(self):
        c = BoundedCache(2)
        c["a"], c["b"] = 1, 2
        _ = c["a"]          # refresh "a"
        c["c"] = 3          # evicts "b"
        assert "a" in c and "c" in c and "b" not in c

    def test_unbounded(self):
        c = BoundedCache(None)
        for i in range(1000):
            c[i] = i
        assert len(c) == 1000

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            BoundedCache(0)


class TestMakeEngine:
    def test_factory_names(self):
        assert make_engine("row").name == "row"
        assert make_engine("columnar").name == "columnar"

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            make_engine("gpu")
        with pytest.raises(ValueError, match="unknown engine backend"):
            resolve_backend("gpu")

    def test_numpy_backend_resolution(self):
        engine = make_engine("numpy")
        if HAVE_NUMPY:
            assert isinstance(engine, NumpyEngine)
            assert engine.name == "numpy"
            assert resolve_backend("numpy") == "numpy"
        else:
            # The gate: no NumPy means a pure-python columnar fallback.
            assert isinstance(engine, ColumnarEngine)
            assert engine.name == "columnar"
            assert resolve_backend("numpy") == "columnar"

    def test_capabilities_probe(self):
        caps = capabilities()
        assert set(caps["backends"]) == {"row", "columnar", "numpy"}
        assert caps["default_backend"] == "columnar"
        assert caps["resolved"]["columnar"] == "columnar"
        assert caps["numpy_available"] == HAVE_NUMPY
        assert (caps["numpy_version"] is not None) == HAVE_NUMPY
        assert caps["resolved"]["numpy"] == \
            ("numpy" if HAVE_NUMPY else "columnar")


ENGINE_CLASSES = [RowEngine, ColumnarEngine,
                  pytest.param(NumpyEngine,
                               marks=pytest.mark.skipif(
                                   not HAVE_NUMPY,
                                   reason="NumPy not installed"))]


@pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
class TestEngineContract:
    def test_evaluate_matches_semantics(self, engine_cls, env):
        from repro.semantics import evaluate
        q = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        assert engine_cls().evaluate(q, env) == evaluate(q, env)

    def test_tracking_matches_semantics(self, engine_cls, env):
        from repro.semantics import evaluate_tracking
        q = Partition(TableRef("T"), keys=(0,), agg_func="cumsum", agg_col=2)
        assert engine_cls().evaluate_tracking(q, env) == evaluate_tracking(q, env)

    def test_partial_query_raises(self, engine_cls, env):
        q = Group(TableRef("T"), keys=Hole("keys"), agg_func="sum", agg_col=2)
        with pytest.raises(HoleError):
            engine_cls().evaluate(q, env)
        with pytest.raises(HoleError):
            engine_cls().evaluate_tracking(q, env)

    def test_cache_hits_counted(self, engine_cls, env):
        engine = engine_cls()
        q = Sort(TableRef("T"), cols=(2,), ascending=False)
        first = engine.evaluate(q, env)
        second = engine.evaluate(q, env)
        assert first is second
        assert engine.stats.concrete_hits == 1
        assert engine.stats.concrete_evals == 1

    def test_reset_drops_state(self, engine_cls, env):
        engine = engine_cls()
        q = TableRef("T")
        engine.evaluate(q, env)
        engine.evaluate_tracking(q, env)
        engine.reset()
        assert engine.stats.concrete_evals == 0
        engine.evaluate(q, env)
        assert engine.stats.concrete_hits == 0
        assert engine.stats.concrete_evals == 1

    def test_engines_do_not_share_state(self, engine_cls, env):
        a, b = engine_cls(), engine_cls()
        q = TableRef("T")
        a.evaluate(q, env)
        assert b.stats.concrete_evals == 0
        b.evaluate(q, env)
        assert b.stats.concrete_hits == 0  # b computed, not served from a

    def test_shared_prefix_computed_once(self, engine_cls, env):
        engine = engine_cls()
        base = Group(TableRef("T"), keys=(0,), agg_func="sum", agg_col=2)
        for func in ("sum", "max", "min", "count"):
            q = Arithmetic(Group(TableRef("T"), keys=(0,), agg_func=func,
                                 agg_col=2), func="div", cols=(1, 1))
            engine.evaluate(q, env)
        # The TableRef (and the sum-Group) subtree results were reused.
        assert engine.evaluate(base, env) is engine.evaluate(base, env)


class TestRowColumnarEquivalence:
    """The two backends are byte-for-byte interchangeable."""

    def _queries(self):
        t = TableRef("T")
        return [
            t,
            Filter(t, ConstCmp(2, ">", 10)),
            Filter(t, ColCmp(2, ">", 1)),
            Proj(t, cols=(2, 0)),
            Proj(t, cols=(0, 0)),
            Sort(t, cols=(2,), ascending=True),
            Sort(t, cols=(0,), ascending=False),
            Group(t, keys=(0,), agg_func="avg", agg_col=2),
            Group(t, keys=(0, 1), agg_func="count", agg_col=2),
            Group(t, keys=(), agg_func="sum", agg_col=2),
            Partition(t, keys=(0,), agg_func="cumsum", agg_col=2),
            Partition(t, keys=(), agg_func="rank", agg_col=2),
            Partition(t, keys=(1,), agg_func="max", agg_col=2),
            Arithmetic(t, func="div", cols=(2, 1)),
            Arithmetic(Group(t, keys=(0,), agg_func="sum", agg_col=2),
                       func="percent", cols=(1, 1)),
        ]

    def test_single_table_queries(self, env):
        row, col = RowEngine(), ColumnarEngine()
        for q in self._queries():
            assert row.evaluate(q, env) == col.evaluate(q, env), q

    def test_join_queries(self, table, lookup):
        env = Env.of(table, lookup)
        t, l = TableRef("T"), TableRef("L")
        queries = [
            Join(t, l),                                   # cross product
            Join(t, l, pred=ColCmp(0, "==", 3)),          # equi-join
            Join(t, l, pred=ColCmp(0, "==", 0)),          # degenerate (left-left)
            Join(t, l, pred=ColCmp(3, "==", 3)),          # degenerate (right-right)
            LeftJoin(t, l, pred=ColCmp(0, "==", 3)),
            LeftJoin(t, l, pred=ColCmp(2, "==", 3)),      # no matches: padding
            Join(t, l, pred=AndPred((ColCmp(0, "==", 3), TruePred()))),
        ]
        row, col = RowEngine(), ColumnarEngine()
        for q in queries:
            assert row.evaluate(q, env) == col.evaluate(q, env), q

    def test_empty_results_match(self, env):
        row, col = RowEngine(), ColumnarEngine()
        q = Group(Filter(TableRef("T"), ConstCmp(2, ">", 1_000_000)),
                  keys=(0,), agg_func="sum", agg_col=2)
        assert row.evaluate(q, env) == col.evaluate(q, env)


class TestColumnBlockKernels:
    def _block(self, table):
        return ColumnBlock.from_table(table)

    def test_roundtrip(self, table):
        block = self._block(table)
        assert block.n_rows == table.n_rows
        assert block.n_cols == table.n_cols
        assert block.row_tuples() == list(table.rows)

    def test_select_shares_columns(self, table):
        block = self._block(table)
        picked = select_columns(block, (2, 0))
        assert picked.columns[0] is block.columns[2]
        assert picked.columns[1] is block.columns[0]

    def test_append_only_operators_share_columns(self, table):
        block = self._block(table)
        part = partition_block(block, (0,), "sum", 2)
        arith = arithmetic_block(block, "add", (2, 2))
        for j in range(block.n_cols):
            assert part.columns[j] is block.columns[j]
            assert arith.columns[j] is block.columns[j]

    def test_predicate_mask_matches_rowwise(self, table):
        block = self._block(table)
        preds = [TruePred(), ConstCmp(2, ">=", 20), ColCmp(1, "<", 2),
                 AndPred((ConstCmp(0, "==", "A"), ConstCmp(2, ">", 5)))]
        for pred in preds:
            mask = predicate_mask(pred, block)
            assert mask == [pred.evaluate(r) for r in table.rows]

    def test_filter_all_pass_reuses_block(self, table):
        block = self._block(table)
        assert filter_block(block, TruePred()) is block

    def test_cross_join_order(self):
        left = ColumnBlock([[1, 2]], 2)
        right = ColumnBlock([["x", "y"]], 2)
        crossed = cross_join(left, right)
        assert crossed.row_tuples() == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]

    def test_join_blocks_pred_none_is_cross(self):
        left = ColumnBlock([[1, 2]], 2)
        right = ColumnBlock([["x"]], 1)
        assert join_blocks(left, right, None).row_tuples() == \
            cross_join(left, right).row_tuples()

    def test_left_join_pads_unmatched(self):
        left = ColumnBlock([[1, 2, 3]], 3)
        right = ColumnBlock([[2, 3], ["b", "c"]], 2)
        out = left_join_blocks(left, right, ColCmp(0, "==", 1))
        assert out.row_tuples() == [(1, None, None), (2, 2, "b"), (3, 3, "c")]

    def test_sort_block_is_stable(self, table):
        block = self._block(table)
        out = sort_block(block, (0,), ascending=True)
        # Ties on "A" keep original relative order (stable sort).
        assert [r[2] for r in out.row_tuples()] == [10, 20, 5, 30, 40]

    def test_group_block_first_occurrence_order(self, table):
        block = self._block(table)
        out = group_block(block, (0,), "sum", 2)
        assert out.row_tuples() == [("A", 35), ("B", 70)]


def _backends():
    return ["row", "columnar"] + (["numpy"] if HAVE_NUMPY else [])


class TestMixedDtypeOrdering:
    """Sort/aggregate kernels over mixed dtypes and NULLs, all backends.

    The contract under test (pinned while building the cross-backend fuzz
    harness): every backend orders values exactly like the row engine's
    ``value_sort_key`` — numbers < strings < booleans < NULL, NULLs last
    ascending and therefore first descending — and aggregates skip NULLs
    identically, including the typed-array backend whose fixed-width
    representations (int64, float64, UCS-4) must never leak their own
    comparison semantics (the fuzzer caught NumPy's trailing-NUL string
    truncation doing exactly that).
    """

    def _mixed_env(self):
        rows = [(3, "b", None), (None, "a", 2.0), (2.5, None, 2),
                (True, "a\x00", 10**13), ("x", "", -1), (2, "a", 2.0000001)]
        return Env.of(Table.from_rows("M", ["k", "s", "v"], rows))

    def _assert_all_backends_match(self, queries, env):
        reference = RowEngine()
        for query in queries:
            expected = reference.evaluate(query, env)
            tracked = reference.evaluate_tracking(query, env)
            for backend in _backends()[1:]:
                engine = make_engine(backend)
                actual = engine.evaluate(query, env)
                assert actual.rows == expected.rows, (backend, query)
                assert actual.schema == expected.schema, (backend, query)
                assert engine.evaluate_tracking(query, env) == tracked, \
                    (backend, query)

    def test_sort_null_ordering_matches_row_engine(self):
        env = self._mixed_env()
        t = TableRef("M")
        queries = [Sort(t, cols=(0,), ascending=True),
                   Sort(t, cols=(0,), ascending=False),
                   Sort(t, cols=(1, 2), ascending=True),
                   Sort(t, cols=(2, 1), ascending=False)]
        self._assert_all_backends_match(queries, env)

    def test_sort_null_last_ascending_first_descending(self):
        env = self._mixed_env()
        rows_asc = make_engine("columnar").evaluate(
            Sort(TableRef("M"), cols=(0,), ascending=True), env).rows
        rows_desc = make_engine("columnar").evaluate(
            Sort(TableRef("M"), cols=(0,), ascending=False), env).rows
        assert rows_asc[-1][0] is None      # NULL sorts last ascending
        assert rows_desc[0][0] is None      # and first descending
        # Class order ascending: numbers, then strings, then bools, NULL.
        assert [r[0] for r in rows_asc] == [2, 2.5, 3, "x", True, None]

    def test_aggregates_skip_nulls_identically(self):
        env = self._mixed_env()
        t = TableRef("M")
        queries = [Group(t, keys=(1,), agg_func=f, agg_col=0)
                   for f in ("max", "min", "count")]
        queries += [Partition(t, keys=(), agg_func=f, agg_col=0)
                    for f in ("max", "min", "count", "cummax", "cummin",
                              "rank", "rank_desc", "dense_rank")]
        self._assert_all_backends_match(queries, env)

    def test_rank_of_null_matches_row_engine(self):
        env = Env.of(Table.from_rows(
            "M", ["v"], [(5,), (None,), (1,), (None,), (5,)]))
        queries = [Partition(TableRef("M"), keys=(), agg_func=f, agg_col=0)
                   for f in ("rank", "rank_desc", "cumsum", "cumavg",
                             "cummax", "cummin", "count")]
        self._assert_all_backends_match(queries, env)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
    def test_nul_bearing_strings_stay_on_object_path(self):
        """NumPy's UCS-4 arrays drop trailing NUL codepoints; such columns
        must never be typed or "a\\x00" compares equal to "a"."""
        from repro.engine.numpy_kernels import classify_column
        assert classify_column(["a\x00", "a"]).is_object
        assert classify_column(["a", "b"]).kind == "str"
        env = Env.of(Table.from_rows("M", ["a", "b"],
                                     [("a\x00", "a"), ("b", "b")]))
        q = Filter(TableRef("M"), ColCmp(0, "==", 1))
        assert make_engine("numpy").evaluate(q, env).rows == \
            RowEngine().evaluate(q, env).rows == (("b", "b"),)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
    def test_negative_zero_ties_match_row_engine_bitwise(self):
        """NumPy min/max reductions and accumulate seeds pick the other
        signed zero than the reference fold; 0.0 == -0.0 makes plain
        equality assertions blind, so compare reprs.  Columns containing
        -0.0 must classify as object (fuzz-harness finding)."""
        from repro.engine.numpy_kernels import classify_column
        assert classify_column([0.0, -0.0]).is_object
        assert classify_column([0.0, 1.5]).kind == "float"
        env = Env.of(Table.from_rows("M", ["k", "v"],
                                     [("a", 0.0), ("a", -0.0)]))
        queries = [Group(TableRef("M"), keys=(0,), agg_func=f, agg_col=1)
                   for f in ("max", "min")]
        queries += [Partition(TableRef("M"), keys=(0,), agg_func=f,
                              agg_col=1)
                    for f in ("cummax", "cummin", "cumsum")]
        for query in queries:
            expected = RowEngine().evaluate(query, env)
            actual = make_engine("numpy").evaluate(query, env)
            assert repr(actual.rows) == repr(expected.rows), query

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
    def test_float_overflow_matches_row_engine_without_warnings(self):
        """Python float arithmetic overflows silently to inf; the NumPy
        kernels must not leak RuntimeWarnings (backend-dependent errors
        under -W error) and must produce the same inf cells."""
        import warnings
        env = Env.of(Table.from_rows(
            "M", ["a", "b"],
            [(1e308, 1e308), (1e308, -1e308), (1e308, 1e-308), (2.0, 3.0)]))
        t = TableRef("M")
        queries = [Arithmetic(t, func=f, cols=(0, 1))
                   for f in ("add", "sub", "mul", "div", "percent",
                             "pct_change")]
        queries += [Filter(t, ColCmp(0, op, 1))
                    for op in ("==", "!=", "<", ">=")]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for query in queries:
                expected = RowEngine().evaluate(query, env)
                assert make_engine("numpy").evaluate(query, env).rows == \
                    expected.rows, query

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
    def test_typed_column_classification(self):
        from repro.engine.numpy_kernels import INT_SAFE, classify_column
        assert classify_column([1, 2, 3]).kind == "int"
        assert classify_column([1.0, 2.5]).kind == "float"
        assert classify_column(["a", "b"]).kind == "str"
        # Escape hatches: None cells, bools, mixed classes, unsafe ints,
        # non-finite floats, empty columns.
        assert classify_column([1, None]).is_object
        assert classify_column([True, False]).is_object
        assert classify_column([1, 2.0]).is_object
        assert classify_column([1, INT_SAFE + 1]).is_object
        assert classify_column([1.0, float("inf")]).is_object
        assert classify_column([]).is_object

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
    def test_float_equality_tolerance_matches_value_eq(self):
        from repro.table.values import value_eq
        values = [0.3, 0.1 + 0.2, 1.0, 1.0 + 1e-12, 2.0, -0.0, 0.0, 1e12,
                  1e12 + 1.0]
        env = Env.of(Table.from_rows("M", ["v"], [(v,) for v in values]))
        for const in (0.3, 1.0, 0.0, 1e12, 2):
            q = Filter(TableRef("M"), ConstCmp(0, "==", const))
            expected = tuple((v,) for v in values if value_eq(v, const))
            assert make_engine("numpy").evaluate(q, env).rows == expected
            assert RowEngine().evaluate(q, env).rows == expected

    def test_cross_class_comparisons_match(self):
        env = self._mixed_env()
        t = TableRef("M")
        queries = [Filter(t, ConstCmp(0, op, const))
                   for op in ("==", "!=", "<", "<=", ">", ">=")
                   for const in (2, "a", True, None, 2.0000001)]
        queries += [Filter(t, ColCmp(0, op, 2))
                    for op in ("==", "!=", "<", ">=")]
        self._assert_all_backends_match(queries, env)


class TestSessionEngineContracts:
    """Regressions from review: engine supply, override hygiene, pickling."""

    def _task(self):
        from repro.benchmarks import get_task
        return get_task("fe01_total_sales_per_region")

    def test_supplied_engine_is_used(self):
        from repro.synthesis.synthesizer import Synthesizer
        task = self._task()
        engine = RowEngine()
        s = Synthesizer("provenance", task.config.replace(max_visited=100),
                        engine=engine)
        s.run(task.tables, task.demonstration)
        assert s.engine is engine
        assert s.config.backend == "row"
        assert engine.stats.concrete_evals + engine.stats.tracking_evals > 0

    def test_backend_override_keeps_session_state(self):
        from repro.synthesis.synthesizer import Synthesizer
        task = self._task()
        s = Synthesizer("provenance",
                        task.config.replace(backend="columnar",
                                            max_visited=100))
        base = s.run(task.tables, task.demonstration)
        session_analyzer = s.abstraction.analyzer
        for _ in range(8):   # repeated overrides must not leak analyzers
            override = s.run(task.tables, task.demonstration,
                             config=task.config.replace(backend="row",
                                                        max_visited=100))
            assert override.queries == base.queries
        assert s.engine.name == "columnar"
        assert s.abstraction.analyzer is session_analyzer
        assert len(s.abstraction._analyzers) <= 4

    def test_cached_hashes_not_pickled(self):
        import pickle
        task = self._task()
        for obj in (task.tables[0], task.env, task.ground_truth):
            hash(obj)  # populate the per-process cache
            clone = pickle.loads(pickle.dumps(obj))
            assert "_hash" not in clone.__dict__
            assert clone == obj and hash(clone) == hash(obj)

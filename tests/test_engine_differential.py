"""Differential backend tests.

The ``backend`` knob must trade evaluation strategy only — never results.
Every task in the benchmark registry runs through ``RowEngine``,
``ColumnarEngine`` and (when NumPy is installed — the parametrization
skips cleanly otherwise) ``NumpyEngine``; ranked queries and the search
counters the paper reports (``pruned`` / ``visited``) must match exactly.

Searches run under a visited-query budget (no wall clock) so the
backends traverse identical search prefixes regardless of machine speed.
"""

import pytest

from repro.benchmarks import all_tasks, instantiation_stream
from repro.engine import HAVE_NUMPY, RowEngine, make_engine
from repro.synthesis.synthesizer import Synthesizer

#: Enough budget to cross several skeletons on every task while keeping the
#: full 80-task differential sweep in tens of seconds.
VISITED_BUDGET = 400

#: Concrete candidates per task for the term-for-term tracking sweep.
TRACKING_CANDIDATES = 24

TASKS = all_tasks()

#: Backends differentialed against the row-engine reference, all 80 tasks.
TARGET_BACKENDS = ["columnar",
                   pytest.param("numpy",
                                marks=pytest.mark.skipif(
                                    not HAVE_NUMPY,
                                    reason="NumPy not installed"))]


def concrete_candidates(task, cap):
    """The first ``cap`` concrete queries of the task's instantiation
    stream — the exact population Algorithm 1 feeds ``evaluate_tracking``."""
    return instantiation_stream(task, cap, engine=RowEngine())


def _run(task, backend: str):
    config = task.config.replace(backend=backend, timeout_s=None,
                                 max_visited=VISITED_BUDGET)
    synthesizer = Synthesizer("provenance", config)
    assert synthesizer.engine.name == backend
    return synthesizer.run(task.tables, task.demonstration)


#: One reference (row-backend) search per task, shared across the target
#: backends — the run is deterministic, so recomputing it per target would
#: only double the sweep's wall clock.
_ROW_RUNS: dict = {}


def _row_run(task):
    if task.name not in _ROW_RUNS:
        _ROW_RUNS[task.name] = _run(task, "row")
    return _ROW_RUNS[task.name]


def _assert_identical_search(reference, other):
    assert reference.queries == other.queries
    ref_stats, other_stats = reference.stats.as_dict(), other.stats.as_dict()
    ref_stats.pop("elapsed_s")          # wall clock is machine noise
    other_stats.pop("elapsed_s")
    assert ref_stats == other_stats


@pytest.mark.parametrize("backend", TARGET_BACKENDS)
@pytest.mark.parametrize("task", TASKS, ids=[t.name for t in TASKS])
def test_backends_identical_search(task, backend):
    _assert_identical_search(_row_run(task), _run(task, backend))


@pytest.mark.parametrize("backend", TARGET_BACKENDS)
@pytest.mark.parametrize("task", TASKS, ids=[t.name for t in TASKS])
def test_backends_identical_ground_truth_eval(task, backend):
    """Concrete and tracking evaluation agree byte-for-byte on q_gt."""
    row, target = RowEngine(), make_engine(backend)
    env = task.env
    assert row.evaluate(task.ground_truth, env) == \
        target.evaluate(task.ground_truth, env)
    assert row.evaluate_tracking(task.ground_truth, env) == \
        target.evaluate_tracking(task.ground_truth, env)


@pytest.mark.parametrize("backend", TARGET_BACKENDS)
@pytest.mark.parametrize("task", TASKS, ids=[t.name for t in TASKS])
def test_backends_identical_tracking_terms(task, backend):
    """``evaluate_tracking`` is compared *term-for-term* across backends.

    The population is the task's real instantiation stream (sibling
    candidates sharing all but their topmost parameters) plus q_gt — the
    exact workload whose provenance grids the TrackedBlock kernels build
    through shared selections, groupings and per-group term construction.
    """
    row, target = RowEngine(), make_engine(backend)
    env = task.env
    queries = concrete_candidates(task, TRACKING_CANDIDATES)
    queries.append(task.ground_truth)
    for query in queries:
        try:
            expected = row.evaluate_tracking(query, env)
        except (TypeError, ValueError, ZeroDivisionError) as err:
            with pytest.raises(type(err)):
                target.evaluate_tracking(query, env)
            continue
        actual = target.evaluate_tracking(query, env)
        assert actual.columns == expected.columns, query
        assert actual.values == expected.values, query
        for i, (row_exp, row_act) in enumerate(zip(expected.exprs,
                                                   actual.exprs)):
            for j, (term_exp, term_act) in enumerate(zip(row_exp, row_act)):
                assert term_act == term_exp, (query, i, j)


def test_interleaved_sessions_do_not_share_state():
    """Two synthesizers advance independently: no module-global caches.

    The runs are interleaved task-by-task with a reset of one session in
    the middle — under the old global-cache design the reset clobbered the
    other session's memoized state (and both sessions inflated each other's
    hit rates); now each engine owns its caches outright.
    """
    task_a, task_b = TASKS[0], TASKS[1]
    config = {"timeout_s": None, "max_visited": 200}

    solo = Synthesizer("provenance",
                       task_a.config.replace(backend="columnar", **config))
    solo_result = solo.run(task_a.tables, task_a.demonstration)

    a = Synthesizer("provenance",
                    task_a.config.replace(backend="columnar", **config))
    b = Synthesizer("provenance",
                    task_b.config.replace(backend="columnar", **config))
    b.run(task_b.tables, task_b.demonstration)
    b.reset()                      # must not touch a's caches
    a_result = a.run(task_a.tables, task_a.demonstration)
    b.run(task_b.tables, task_b.demonstration)

    assert a_result.queries == solo_result.queries
    assert a_result.stats.visited == solo_result.stats.visited
    assert a_result.stats.pruned == solo_result.stats.pruned
    # b's evaluations never landed in a's engine, and vice versa.
    assert a.engine is not b.engine
    assert b.engine.stats.concrete_evals > 0
    assert a.engine.stats.concrete_evals > 0
